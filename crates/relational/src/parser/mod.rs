//! Parser for the supported SQL subset (Section 3.2):
//!
//! ```sql
//! SELECT R.A1, ..., S.B1, ...
//! FROM R [AS r], S [AS s]
//! WHERE <expr over R> = <expr over S> [AND attr = const]...
//! ```
//!
//! Exactly one `WHERE` conjunct must reference both relations (the join
//! condition); every other conjunct must be an `attr = const` filter.

mod lexer;

pub use lexer::{lex, Token, TokenKind};

use crate::error::{RelationalError, Result};
use crate::expr::{BinOp, Expr};
use crate::query::{Filter, JoinQuery, QueryKey, QuerySpec, SelectItem, Side};
use crate::schema::Catalog;
use crate::value::{Timestamp, Value};

/// An attribute reference as written in the SQL text, before resolution.
#[derive(Clone, Debug, PartialEq, Eq)]
struct RawAttr {
    qualifier: Option<String>,
    name: String,
    offset: usize,
}

/// Expression AST before attribute resolution.
#[derive(Clone, Debug)]
enum RawExpr {
    Attr(RawAttr),
    Const(Value),
    Bin {
        op: BinOp,
        lhs: Box<RawExpr>,
        rhs: Box<RawExpr>,
    },
}

/// A parsed and resolved query, ready to be instantiated with a key,
/// subscriber and insertion time.
#[derive(Clone, Debug)]
pub struct ParsedQuery {
    /// Left (`R`) relation name.
    pub left_relation: String,
    /// Right (`S`) relation name.
    pub right_relation: String,
    /// Select list.
    pub select: Vec<SelectItem>,
    /// Join-condition side over the left relation (`α`).
    pub cond_left: Expr,
    /// Join-condition side over the right relation (`β`).
    pub cond_right: Expr,
    /// Extra `attr = const` filters.
    pub filters: Vec<Filter>,
}

impl ParsedQuery {
    /// Instantiates a continuous query from the parsed form.
    pub fn into_query(
        self,
        key: QueryKey,
        subscriber: impl Into<String>,
        ins_time: Timestamp,
        catalog: &Catalog,
    ) -> Result<JoinQuery> {
        JoinQuery::new(
            QuerySpec {
                key,
                subscriber: subscriber.into(),
                ins_time,
                relations: [self.left_relation, self.right_relation],
                select: self.select,
                conditions: [self.cond_left, self.cond_right],
                filters: self.filters,
            },
            catalog,
        )
    }
}

/// Parses a continuous two-way equi-join query and resolves every attribute
/// reference against the catalog.
pub fn parse_query(sql: &str, catalog: &Catalog) -> Result<ParsedQuery> {
    let tokens = lex(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let parsed = p.parse(catalog)?;
    Ok(parsed)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

/// A relation mentioned in `FROM` with its optional alias.
#[derive(Clone, Debug)]
struct FromItem {
    relation: String,
    alias: Option<String>,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn next(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<Token> {
        let t = self.next();
        if std::mem::discriminant(&t.kind) == std::mem::discriminant(kind) {
            Ok(t)
        } else {
            Err(self.err_at(t.offset, &format!("expected {what}, found {:?}", t.kind)))
        }
    }

    fn err_at(&self, offset: usize, detail: &str) -> RelationalError {
        RelationalError::ParseError {
            offset,
            detail: detail.to_string(),
        }
    }

    fn ident(&mut self, what: &str) -> Result<(String, usize)> {
        let t = self.next();
        match t.kind {
            TokenKind::Ident(s) => Ok((s, t.offset)),
            other => Err(self.err_at(t.offset, &format!("expected {what}, found {other:?}"))),
        }
    }

    fn parse(&mut self, catalog: &Catalog) -> Result<ParsedQuery> {
        self.expect(&TokenKind::Select, "SELECT")?;
        let select_raw = self.parse_select_list()?;
        self.expect(&TokenKind::From, "FROM")?;
        let left = self.parse_from_item()?;
        self.expect(&TokenKind::Comma, "',' between the two FROM relations")?;
        let right = self.parse_from_item()?;
        self.expect(&TokenKind::Where, "WHERE")?;
        let mut equalities = vec![self.parse_equality()?];
        while self.peek().kind == TokenKind::And {
            self.next();
            equalities.push(self.parse_equality()?);
        }
        let eof = self.next();
        if eof.kind != TokenKind::Eof {
            return Err(self.err_at(eof.offset, "trailing input after query"));
        }
        Resolver::new(catalog, left, right)?.resolve(select_raw, equalities)
    }

    fn parse_select_list(&mut self) -> Result<Vec<RawAttr>> {
        let mut items = vec![self.parse_raw_attr()?];
        while self.peek().kind == TokenKind::Comma {
            self.next();
            items.push(self.parse_raw_attr()?);
        }
        Ok(items)
    }

    fn parse_raw_attr(&mut self) -> Result<RawAttr> {
        let (first, offset) = self.ident("attribute name")?;
        if self.peek().kind == TokenKind::Dot {
            self.next();
            let (name, _) = self.ident("attribute name after '.'")?;
            Ok(RawAttr {
                qualifier: Some(first),
                name,
                offset,
            })
        } else {
            Ok(RawAttr {
                qualifier: None,
                name: first,
                offset,
            })
        }
    }

    fn parse_from_item(&mut self) -> Result<FromItem> {
        let (relation, _) = self.ident("relation name")?;
        let alias = if self.peek().kind == TokenKind::As {
            self.next();
            Some(self.ident("alias after AS")?.0)
        } else if let TokenKind::Ident(_) = self.peek().kind {
            // implicit alias: FROM Document D
            Some(self.ident("alias")?.0)
        } else {
            None
        };
        Ok(FromItem { relation, alias })
    }

    fn parse_equality(&mut self) -> Result<(RawExpr, RawExpr, usize)> {
        let offset = self.peek().offset;
        let lhs = self.parse_expr()?;
        self.expect(&TokenKind::Eq, "'=' in WHERE conjunct")?;
        let rhs = self.parse_expr()?;
        Ok((lhs, rhs, offset))
    }

    /// expr := term (('+' | '-' | '||') term)*
    fn parse_expr(&mut self) -> Result<RawExpr> {
        let mut lhs = self.parse_term()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                TokenKind::Concat => BinOp::Concat,
                _ => break,
            };
            self.next();
            let rhs = self.parse_term()?;
            lhs = RawExpr::Bin {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    /// term := factor ('*' factor)*
    fn parse_term(&mut self) -> Result<RawExpr> {
        let mut lhs = self.parse_factor()?;
        while self.peek().kind == TokenKind::Star {
            self.next();
            let rhs = self.parse_factor()?;
            lhs = RawExpr::Bin {
                op: BinOp::Mul,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            };
        }
        Ok(lhs)
    }

    fn parse_factor(&mut self) -> Result<RawExpr> {
        let t = self.next();
        match t.kind {
            TokenKind::Int(v) => Ok(RawExpr::Const(Value::Int(v))),
            TokenKind::Str(s) => Ok(RawExpr::Const(Value::Str(s))),
            TokenKind::Minus => {
                let inner = self.parse_factor()?;
                match inner {
                    RawExpr::Const(Value::Int(v)) => Ok(RawExpr::Const(Value::Int(-v))),
                    other => Ok(RawExpr::Bin {
                        op: BinOp::Sub,
                        lhs: Box::new(RawExpr::Const(Value::Int(0))),
                        rhs: Box::new(other),
                    }),
                }
            }
            TokenKind::LParen => {
                let e = self.parse_expr()?;
                self.expect(&TokenKind::RParen, "')'")?;
                Ok(e)
            }
            TokenKind::Ident(first) => {
                if self.peek().kind == TokenKind::Dot {
                    self.next();
                    let (name, _) = self.ident("attribute name after '.'")?;
                    Ok(RawExpr::Attr(RawAttr {
                        qualifier: Some(first),
                        name,
                        offset: t.offset,
                    }))
                } else {
                    Ok(RawExpr::Attr(RawAttr {
                        qualifier: None,
                        name: first,
                        offset: t.offset,
                    }))
                }
            }
            other => Err(self.err_at(t.offset, &format!("expected expression, found {other:?}"))),
        }
    }
}

/// Resolves raw attribute references to sides and validates the shape of the
/// WHERE clause.
struct Resolver<'a> {
    catalog: &'a Catalog,
    relations: [String; 2],
    aliases: [Option<String>; 2],
}

impl<'a> Resolver<'a> {
    fn new(catalog: &'a Catalog, left: FromItem, right: FromItem) -> Result<Self> {
        // Validate that the relations exist up front for decent errors.
        catalog.get(&left.relation)?;
        catalog.get(&right.relation)?;
        Ok(Resolver {
            catalog,
            relations: [left.relation, right.relation],
            aliases: [left.alias, right.alias],
        })
    }

    fn side_of_qualifier(&self, q: &str, offset: usize) -> Result<Side> {
        for side in Side::BOTH {
            let i = side.idx();
            if self.relations[i] == q || self.aliases[i].as_deref() == Some(q) {
                return Ok(side);
            }
        }
        Err(RelationalError::ParseError {
            offset,
            detail: format!("unknown relation or alias {q:?}"),
        })
    }

    fn resolve_attr(&self, raw: &RawAttr) -> Result<(Side, String)> {
        match &raw.qualifier {
            Some(q) => {
                let side = self.side_of_qualifier(q, raw.offset)?;
                let schema = self.catalog.get(&self.relations[side.idx()])?;
                schema.index_of(&raw.name)?;
                Ok((side, raw.name.clone()))
            }
            None => {
                let mut found = None;
                for side in Side::BOTH {
                    let schema = self.catalog.get(&self.relations[side.idx()])?;
                    if schema.has_attribute(&raw.name) {
                        if found.is_some() {
                            return Err(RelationalError::ParseError {
                                offset: raw.offset,
                                detail: format!(
                                    "attribute {:?} is ambiguous between {} and {}",
                                    raw.name, self.relations[0], self.relations[1]
                                ),
                            });
                        }
                        found = Some(side);
                    }
                }
                match found {
                    Some(side) => Ok((side, raw.name.clone())),
                    None => Err(RelationalError::ParseError {
                        offset: raw.offset,
                        detail: format!("attribute {:?} not found in either relation", raw.name),
                    }),
                }
            }
        }
    }

    /// Resolves an expression, returning it together with the single side it
    /// references (`None` if it references no attribute at all).
    fn resolve_expr(&self, raw: &RawExpr) -> Result<(Expr, Option<Side>)> {
        match raw {
            RawExpr::Const(v) => Ok((Expr::Const(v.clone()), None)),
            RawExpr::Attr(a) => {
                let (side, name) = self.resolve_attr(a)?;
                Ok((Expr::Attr(name), Some(side)))
            }
            RawExpr::Bin { op, lhs, rhs } => {
                let (l, ls) = self.resolve_expr(lhs)?;
                let (r, rs) = self.resolve_expr(rhs)?;
                let side = match (ls, rs) {
                    (Some(a), Some(b)) if a != b => {
                        return Err(RelationalError::UnsupportedQuery {
                            detail:
                                "a join-condition side must reference attributes of one relation only"
                                    .to_string(),
                        })
                    }
                    (Some(a), _) => Some(a),
                    (_, b) => b,
                };
                Ok((Expr::bin(*op, l, r), side))
            }
        }
    }

    fn resolve(
        self,
        select_raw: Vec<RawAttr>,
        equalities: Vec<(RawExpr, RawExpr, usize)>,
    ) -> Result<ParsedQuery> {
        let mut select = Vec::with_capacity(select_raw.len());
        for raw in &select_raw {
            let (side, attr) = self.resolve_attr(raw)?;
            select.push(SelectItem { side, attr });
        }

        let mut join: Option<(Expr, Expr)> = None;
        let mut filters = Vec::new();
        for (lhs_raw, rhs_raw, offset) in &equalities {
            let (lhs, ls) = self.resolve_expr(lhs_raw)?;
            let (rhs, rs) = self.resolve_expr(rhs_raw)?;
            match (ls, rs) {
                // join condition: one side per relation
                (Some(a), Some(b)) if a != b => {
                    if join.is_some() {
                        return Err(RelationalError::UnsupportedQuery {
                            detail: "more than one join condition (only two-way joins supported)"
                                .to_string(),
                        });
                    }
                    let (alpha, beta) = if a == Side::Left {
                        (lhs, rhs)
                    } else {
                        (rhs, lhs)
                    };
                    join = Some((alpha, beta));
                }
                // filter: attr = const (either order)
                (Some(side), None) | (None, Some(side)) => {
                    let (attr_expr, const_expr) = if ls.is_some() {
                        (&lhs, &rhs)
                    } else {
                        (&rhs, &lhs)
                    };
                    let attr = attr_expr.as_single_attr().ok_or_else(|| {
                        RelationalError::UnsupportedQuery {
                            detail: "filters must have the form attribute = constant".to_string(),
                        }
                    })?;
                    let value = match const_expr {
                        Expr::Const(v) => v.clone(),
                        _ => {
                            return Err(RelationalError::UnsupportedQuery {
                                detail: "filters must compare against a constant".to_string(),
                            })
                        }
                    };
                    filters.push(Filter {
                        side,
                        attr: attr.to_string(),
                        value,
                    });
                }
                (Some(_), Some(_)) => {
                    // same side on both ends: a single-relation predicate we
                    // don't support (not attr = const)
                    return Err(RelationalError::UnsupportedQuery {
                        detail: "single-relation predicates must be attribute = constant"
                            .to_string(),
                    });
                }
                (None, None) => {
                    return Err(RelationalError::ParseError {
                        offset: *offset,
                        detail: "conjunct references no attribute".to_string(),
                    })
                }
            }
        }
        let (cond_left, cond_right) = join.ok_or_else(|| RelationalError::UnsupportedQuery {
            detail: "WHERE clause has no join condition linking the two relations".to_string(),
        })?;
        Ok(ParsedQuery {
            left_relation: self.relations[0].clone(),
            right_relation: self.relations[1].clone(),
            select,
            cond_left,
            cond_right,
            filters,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;
    use crate::value::DataType;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            RelationSchema::of(
                "Document",
                &[
                    ("Id", DataType::Int),
                    ("Title", DataType::Str),
                    ("Conference", DataType::Str),
                    ("AuthorId", DataType::Int),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        c.register(
            RelationSchema::of(
                "Authors",
                &[
                    ("Id", DataType::Int),
                    ("Name", DataType::Str),
                    ("Surname", DataType::Str),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        c.register(
            RelationSchema::of(
                "R",
                &[
                    ("A", DataType::Int),
                    ("B", DataType::Int),
                    ("C", DataType::Int),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        c.register(
            RelationSchema::of(
                "S",
                &[
                    ("D", DataType::Int),
                    ("E", DataType::Int),
                    ("F", DataType::Int),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        c
    }

    #[test]
    fn parses_the_paper_elearning_query() {
        // Section 3.2's example query, verbatim modulo whitespace.
        let c = catalog();
        let p = parse_query(
            "Select D.Title, D.Conference \
             From Document as D, Authors as A \
             Where D.AuthorId = A.Id and A.Surname = 'Smith'",
            &c,
        )
        .unwrap();
        assert_eq!(p.left_relation, "Document");
        assert_eq!(p.right_relation, "Authors");
        assert_eq!(p.select.len(), 2);
        assert!(p.select.iter().all(|s| s.side == Side::Left));
        assert_eq!(p.cond_left, Expr::attr("AuthorId"));
        assert_eq!(p.cond_right, Expr::attr("Id"));
        assert_eq!(
            p.filters,
            vec![Filter {
                side: Side::Right,
                attr: "Surname".into(),
                value: Value::Str("Smith".into())
            }]
        );
        let q = p
            .into_query(QueryKey::derive("n", 0), "n", Timestamp(0), &c)
            .unwrap();
        assert_eq!(q.query_type(), crate::query::QueryType::T1);
    }

    #[test]
    fn parses_the_paper_t2_query() {
        // Section 4.5's type-T2 example.
        let c = catalog();
        let p = parse_query(
            "SELECT R.A, S.D FROM R, S \
             WHERE 4*R.B + R.C + 8 = 5*S.E + S.D - S.F",
            &c,
        )
        .unwrap();
        let q = p
            .into_query(QueryKey::derive("n", 0), "n", Timestamp(0), &c)
            .unwrap();
        assert_eq!(q.query_type(), crate::query::QueryType::T2);
        assert_eq!(q.join_attr(Side::Left), None);
    }

    #[test]
    fn join_condition_sides_are_normalized() {
        // S-side written first: α must still be the R-side expression.
        let c = catalog();
        let p = parse_query("SELECT R.A FROM R, S WHERE S.E = R.B", &c).unwrap();
        assert_eq!(p.cond_left, Expr::attr("B"));
        assert_eq!(p.cond_right, Expr::attr("E"));
    }

    #[test]
    fn unqualified_attributes_resolve_when_unique() {
        let c = catalog();
        let p = parse_query("SELECT A, D FROM R, S WHERE B = E", &c).unwrap();
        assert_eq!(p.select[0].side, Side::Left);
        assert_eq!(p.select[1].side, Side::Right);
    }

    #[test]
    fn ambiguous_unqualified_attribute_is_rejected() {
        let c = catalog();
        // Id exists in both Document and Authors.
        let err = parse_query(
            "SELECT Id FROM Document, Authors WHERE AuthorId = Authors.Id",
            &c,
        )
        .unwrap_err();
        assert!(matches!(err, RelationalError::ParseError { .. }), "{err}");
    }

    #[test]
    fn missing_join_condition_is_rejected() {
        let c = catalog();
        let err = parse_query("SELECT R.A FROM R, S WHERE R.A = 5", &c).unwrap_err();
        assert!(matches!(err, RelationalError::UnsupportedQuery { .. }));
    }

    #[test]
    fn two_join_conditions_are_rejected() {
        let c = catalog();
        let err =
            parse_query("SELECT R.A FROM R, S WHERE R.A = S.D AND R.B = S.E", &c).unwrap_err();
        assert!(matches!(err, RelationalError::UnsupportedQuery { .. }));
    }

    #[test]
    fn mixed_side_expression_is_rejected() {
        let c = catalog();
        let err = parse_query("SELECT R.A FROM R, S WHERE R.A + S.D = S.E", &c).unwrap_err();
        assert!(matches!(err, RelationalError::UnsupportedQuery { .. }));
    }

    #[test]
    fn negative_literals_parse() {
        let c = catalog();
        let p = parse_query("SELECT R.A FROM R, S WHERE R.B - -3 = S.E", &c).unwrap();
        let q = p
            .into_query(QueryKey::derive("n", 0), "n", Timestamp(0), &c)
            .unwrap();
        assert_eq!(q.query_type(), crate::query::QueryType::T2);
    }

    #[test]
    fn parenthesized_expressions_parse() {
        let c = catalog();
        let p = parse_query("SELECT R.A FROM R, S WHERE 2*(R.B + R.C) = S.E", &c).unwrap();
        assert_eq!(p.cond_left.attributes().len(), 2);
    }

    #[test]
    fn implicit_alias_without_as() {
        let c = catalog();
        let p = parse_query(
            "SELECT d.Title FROM Document d, Authors a WHERE d.AuthorId = a.Id",
            &c,
        )
        .unwrap();
        assert_eq!(p.left_relation, "Document");
    }

    #[test]
    fn unknown_relation_is_reported() {
        let c = catalog();
        let err = parse_query("SELECT X.A FROM X, S WHERE X.A = S.D", &c).unwrap_err();
        assert!(matches!(err, RelationalError::UnknownRelation { .. }));
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let c = catalog();
        let err = parse_query("SELECT R.A FROM R, S WHERE R.B = S.E GARBAGE MORE", &c).unwrap_err();
        assert!(matches!(err, RelationalError::ParseError { .. }));
    }

    #[test]
    fn filter_with_constant_on_left_side() {
        let c = catalog();
        let p = parse_query("SELECT R.A FROM R, S WHERE R.B = S.E AND 7 = R.C", &c).unwrap();
        assert_eq!(
            p.filters,
            vec![Filter {
                side: Side::Left,
                attr: "C".into(),
                value: Value::Int(7)
            }]
        );
    }
}
