//! Protocol messages exchanged between network nodes (Chapter 4).

use std::sync::Arc;

use cq_overlay::Id;
use cq_relational::{Notification, QueryRef, RewrittenQuery, Side, Tuple};

use crate::replication::ReplicaItem;

/// A protocol message, addressed to the node responsible for an identifier.
#[derive(Clone, Debug)]
pub enum Message {
    /// `query(q, Id(n), IP(n))` — index a query at the attribute level
    /// (Section 4.3.1 / 4.4.1). The receiving node becomes one of the
    /// query's rewriters.
    IndexQuery {
        /// The query.
        query: QueryRef,
        /// Which join-condition side this rewriter represents.
        index_side: Side,
        /// `IndexA(q)` for this rewriter.
        index_attr: String,
        /// The attribute-level identifier the message targets (a replica
        /// identifier when the Section 4.7 replication scheme is active).
        index_id: Id,
    },
    /// `al-index(t, A_i)` — a tuple arrives at the attribute level
    /// (Section 4.2); it triggers stored queries and is *not* stored.
    AlIndexTuple {
        /// The tuple.
        tuple: Arc<Tuple>,
        /// `IndexA(t)` — the attribute that routed the tuple here.
        attr: String,
        /// The attribute-level identifier targeted.
        index_id: Id,
    },
    /// `vl-index(t, A_i)` — a tuple arrives at the value level
    /// (Section 4.2). Not used by DAI-V.
    VlIndexTuple {
        /// The tuple.
        tuple: Arc<Tuple>,
        /// `IndexA(t)`.
        attr: String,
        /// The value-level identifier targeted.
        index_id: Id,
    },
    /// `join(q'_1, ..., q'_j)` — rewritten queries of one query group
    /// reindexed at the value level (Sections 4.3.2/4.3.3). All items share
    /// the same target identifier because they share the join condition.
    Join {
        /// The rewritten queries.
        items: Vec<RewrittenQuery>,
        /// The value-level identifier targeted.
        index_id: Id,
    },
    /// `join(q', t')` — DAI-V's combined message (Section 4.5): rewritten
    /// queries of one group plus the triggering tuple, which the evaluator
    /// stores after matching. The payload lives in [`ValueJoin`].
    JoinV(ValueJoin),
    /// Notification delivery toward `Successor(Id(n))` for an offline
    /// subscriber (Section 4.6). Online subscribers are contacted directly
    /// by IP and never see this message.
    StoreNotifications {
        /// Identifier of the subscriber's key.
        subscriber_id: Id,
        /// The notifications to hold until the subscriber reconnects.
        notifications: Vec<Notification>,
    },
    /// Direct notification delivery to an *online* subscriber (one hop to a
    /// known IP, Section 4.6). Modeled as a message so the fault layer can
    /// lose, duplicate or retransmit deliveries like any other traffic.
    Notify {
        /// The notifications for the subscriber.
        notifications: Vec<Notification>,
    },
    /// Mirror one primary state item onto a successor (the k-successor
    /// replication scheme of the robustness layer). Node-addressed: sent
    /// directly to a known successor, never routed by identifier.
    Replicate {
        /// The item to mirror into the receiver's replica store.
        item: Box<ReplicaItem>,
    },
    /// Heartbeat probe from the failure-detection layer (`engine::recovery`):
    /// a ring neighbor asking "are you alive?". Node-addressed and
    /// fire-and-forget — probes never open ack windows; an unanswered probe
    /// *is* the failure signal.
    Ping {
        /// The probing node's slot (where the pong returns).
        from: u32,
        /// Probe sequence number (recovery-layer local).
        seq: u64,
    },
    /// Heartbeat reply: the probed node confirming liveness.
    Pong {
        /// The responding node's slot.
        from: u32,
        /// Echo of the probe's sequence number.
        seq: u64,
    },
    /// Several messages of one multisend batch coalesced for a single
    /// destination — one queue entry instead of one per message. The
    /// receiver unwraps them in order, so dispatch order is exactly what
    /// separate enqueues would produce. Only the perfect-delivery,
    /// untraced transport path bundles (the fault pump's per-transmission
    /// draws and the tracer's per-message send events both observe logical
    /// messages individually); bundles are never nested.
    Bundle(Vec<Message>),
}

/// Payload of [`Message::JoinV`]: one group's rewritten queries plus the
/// triggering tuple and the store key it is filed under.
#[derive(Clone, Debug)]
pub struct ValueJoin {
    /// Group key of the queries (matching is group-scoped).
    pub group: String,
    /// The rewritten queries.
    pub items: Vec<RewrittenQuery>,
    /// The triggering tuple, to be stored at the evaluator.
    pub tuple: Arc<Tuple>,
    /// Which side of the group the tuple belongs to.
    pub side: Side,
    /// Canonical form of `valJC` (the store key).
    pub value_key: String,
    /// The value-level identifier targeted (`Hash(valJC)`).
    pub index_id: Id,
}

impl Message {
    /// All kind labels, in [`Message::kind_index`] order (used by the
    /// per-kind wire-byte counters).
    pub const KINDS: [&'static str; 11] = [
        "query",
        "al-index",
        "vl-index",
        "join",
        "join-v",
        "store-notify",
        "notify",
        "replicate",
        "ping",
        "pong",
        "bundle",
    ];

    /// Index of this message's kind in [`Message::KINDS`] — a direct
    /// discriminant map so per-kind byte accounting never compares strings.
    pub fn kind_index(&self) -> usize {
        match self {
            Message::IndexQuery { .. } => 0,
            Message::AlIndexTuple { .. } => 1,
            Message::VlIndexTuple { .. } => 2,
            Message::Join { .. } => 3,
            Message::JoinV(_) => 4,
            Message::StoreNotifications { .. } => 5,
            Message::Notify { .. } => 6,
            Message::Replicate { .. } => 7,
            Message::Ping { .. } => 8,
            Message::Pong { .. } => 9,
            Message::Bundle(_) => 10,
        }
    }

    /// A short label for debugging/tracing.
    pub fn kind(&self) -> &'static str {
        match self {
            Message::IndexQuery { .. } => "query",
            Message::AlIndexTuple { .. } => "al-index",
            Message::VlIndexTuple { .. } => "vl-index",
            Message::Join { .. } => "join",
            Message::JoinV(_) => "join-v",
            Message::StoreNotifications { .. } => "store-notify",
            Message::Notify { .. } => "notify",
            Message::Replicate { .. } => "replicate",
            Message::Ping { .. } => "ping",
            Message::Pong { .. } => "pong",
            Message::Bundle(_) => "bundle",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_relational::QueryKey;

    #[test]
    fn kinds_match_the_paper_message_names() {
        let msg = Message::StoreNotifications {
            subscriber_id: Id(1),
            notifications: vec![Notification {
                query_key: QueryKey::derive("n", 0),
                subscriber: "n".into(),
                values: vec![],
            }],
        };
        assert_eq!(msg.kind(), "store-notify");
    }
}
