//! DAI-V — double-attribute indexing at the value of the join condition
//! (Section 4.5). The only algorithm that evaluates type-T2 queries.
//!
//! Tuples are indexed at the attribute level only; on arrival at a
//! rewriter, each triggered query is rewritten to a *value* target and
//! shipped — together with the triggering tuple — in a combined `JoinV`
//! message to `Hash(valJC)`, where the evaluator matches against stored
//! tuples of the other side and then stores the tuple.

use std::sync::Arc;

use cq_overlay::Id;
use cq_relational::{JoinQuery, QueryRef, RewrittenQuery, Side, Tuple};

use super::common;
use crate::error::Result;
use crate::indexing;
use crate::messages::{Message, ValueJoin};
use crate::protocol::{Effect, NodeCtx, Protocol};
use crate::replication::ReplicaItem;
use crate::tables::StoredValueTuple;
use crate::trace::TraceEvent;

/// The DAI-V protocol (Section 4.5).
#[derive(Clone, Copy, Debug, Default)]
pub struct DaiVProtocol;

impl Protocol for DaiVProtocol {
    fn name(&self) -> &'static str {
        "DAI-V"
    }

    fn validate_query(&self, _query: &JoinQuery) -> Result<()> {
        // DAI-V evaluates both T1 and T2 queries.
        Ok(())
    }

    fn index_attr(&self, ctx: &mut NodeCtx<'_>, query: &JoinQuery, side: Side) -> String {
        common::default_index_attr(ctx, query, side)
    }

    fn on_pose_query(&self, ctx: &mut NodeCtx<'_>, query: &QueryRef) -> Result<()> {
        common::pose_at_sides(self, ctx, query, &Side::BOTH)
    }

    fn on_publish_tuple(&self, ctx: &mut NodeCtx<'_>, tuple: &Arc<Tuple>) -> Result<()> {
        // Attribute level only — the value-level identifier of a tuple is
        // not knowable without the query's join condition.
        common::publish_tuple(ctx, tuple, false);
        Ok(())
    }

    fn on_tuple_arrival(
        &self,
        ctx: &mut NodeCtx<'_>,
        tuple: Arc<Tuple>,
        attr: String,
        index_id: Id,
    ) -> Result<()> {
        let groups = common::triggered_groups(ctx, &tuple, &attr, index_id)?;
        let space = ctx.space();
        let keyed = ctx.config().dai_v_keyed;
        for (group, stored) in groups {
            if keyed {
                // Section 4.5's keyed extension: one evaluator — and one
                // message — per (query, valJC); no grouping possible.
                for sq in &stored {
                    if sq.index_attr != attr {
                        continue;
                    }
                    let Some(rq) = RewrittenQuery::rewrite_value(&sq.query, sq.index_side, &tuple)?
                    else {
                        continue;
                    };
                    let val = rq.target().value().clone();
                    let qkey = sq.query.key().0.clone();
                    let id = indexing::vindex_value_keyed(space, &qkey, &val);
                    let msg = Message::JoinV(ValueJoin {
                        // matching is scoped per query under this variant
                        group: format!("K|{qkey}"),
                        items: vec![rq],
                        tuple: Arc::clone(&tuple),
                        side: sq.index_side,
                        value_key: val.canonical(),
                        index_id: id,
                    });
                    ctx.push(Effect::Send { id, msg });
                }
            } else {
                // One message per (group, valJC): rewritten queries + tuple.
                let mut items: Vec<RewrittenQuery> = Vec::new();
                let mut side = None;
                let mut val = None;
                for sq in &stored {
                    if sq.index_attr != attr {
                        continue; // stored under a different attribute bucket
                    }
                    if let Some(rq) =
                        RewrittenQuery::rewrite_value(&sq.query, sq.index_side, &tuple)?
                    {
                        side = Some(sq.index_side);
                        val = Some(rq.target().value().clone());
                        items.push(rq);
                    }
                }
                if let (Some(side), Some(val)) = (side, val) {
                    let id = indexing::vindex_value(space, &val);
                    let msg = Message::JoinV(ValueJoin {
                        group,
                        items,
                        tuple: Arc::clone(&tuple),
                        side,
                        value_key: val.canonical(),
                        index_id: id,
                    });
                    ctx.push(Effect::Send { id, msg });
                }
            }
        }
        Ok(())
    }

    fn on_join_message(&self, ctx: &mut NodeCtx<'_>, join: ValueJoin) -> Result<()> {
        let ValueJoin {
            group,
            items,
            tuple,
            side,
            value_key,
            index_id,
        } = join;
        // Match the rewritten queries against stored tuples of the other
        // side, then store the triggering tuple. Rewritten queries are not
        // stored.
        let other = side.other();
        let node = ctx.node().index();
        let mut matches = ctx.new_matches();
        let mut checked = 0u64;
        for rq in &items {
            let candidates: Vec<Arc<Tuple>> = ctx
                .state()
                .vstore
                .candidates(&group, &value_key, other)
                .map(|e| Arc::clone(&e.tuple))
                .collect();
            ctx.metrics()
                .add_evaluator_filtering(node, candidates.len() as u64);
            checked += candidates.len() as u64;
            for t in &candidates {
                if rq.matches(t)? {
                    matches.add(rq, t)?;
                }
            }
        }
        let (tick, produced) = (ctx.tick(), matches.len());
        ctx.trace(|| TraceEvent::JoinEval {
            tick,
            node: node as u32,
            candidates: checked,
            matches: produced,
        });
        ctx.trace(|| TraceEvent::IndexInsert {
            tick,
            node: node as u32,
            table: "vstore",
            fresh: true, // the value store keeps every arrival
        });
        let entry = StoredValueTuple {
            index_id,
            side,
            tuple,
        };
        if ctx.repl_k() > 0 {
            ctx.state().vstore.insert(&group, &value_key, entry.clone());
            ctx.push(Effect::Replicate {
                item: ReplicaItem::ValueTuple {
                    group,
                    value_key,
                    entry,
                },
            });
        } else {
            ctx.state().vstore.insert(&group, &value_key, entry);
        }
        ctx.push(Effect::Deliver { matches });
        Ok(())
    }
}
