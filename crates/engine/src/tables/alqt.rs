//! The attribute-level query table (ALQT, Section 4.3.5).
//!
//! "A two level hash table. At the first level, queries are indexed according
//! to their index attribute while at the second level the string values of
//! join conditions are used as keys" — so an incoming tuple finds all
//! candidate queries in one step, already grouped by equivalent join
//! condition.

use cq_fasthash::FxHashMap;
use cq_overlay::Id;
use cq_relational::{QueryRef, Side};

use super::keys::{bucket_mut, lookup_key, str_bucket_mut, StrPair};

/// A query stored at a rewriter, remembering which side it was indexed by
/// and under which attribute-level identifier (for key transfer on churn).
#[derive(Clone, Debug)]
pub struct StoredQuery {
    /// The attribute-level identifier the query was indexed under
    /// (`Hash(IndexR + IndexA)`, possibly a replica identifier).
    pub index_id: Id,
    /// The query itself.
    pub query: QueryRef,
    /// Which side of the join condition this rewriter represents.
    pub index_side: Side,
    /// `IndexA(q)` — the attribute the query is indexed by here.
    pub index_attr: String,
}

/// The two-level attribute-level query table.
///
/// Level-1 buckets are keyed by the index attribute (relation + attribute)
/// as an owned [`StrPair`], level-2 by the join-condition group key; lookups
/// borrow the caller's `&str`s instead of allocating (see [`super::keys`]).
#[derive(Clone, Debug, Default)]
pub struct Alqt {
    buckets: FxHashMap<StrPair, FxHashMap<Box<str>, Vec<StoredQuery>>>,
    len: usize,
}

impl Alqt {
    /// An empty table.
    pub fn new() -> Self {
        Alqt::default()
    }

    /// Stores a query under its index attribute; idempotent in
    /// `(query key, index side, index identifier)` so re-deliveries don't
    /// duplicate. The identifier is part of the dedup key: with replication,
    /// two replica identifiers can be owned by the same physical node, and
    /// each must keep its own entry so churn-time key transfer can split
    /// them again.
    pub fn insert(&mut self, entry: StoredQuery) -> bool {
        let group = entry.query.group_key();
        let groups = bucket_mut(
            &mut self.buckets,
            entry.query.relation(entry.index_side),
            &entry.index_attr,
        );
        let bucket = str_bucket_mut(groups, &group);
        if bucket.iter().any(|e| {
            e.query.key() == entry.query.key()
                && e.index_side == entry.index_side
                && e.index_id == entry.index_id
        }) {
            return false;
        }
        bucket.push(entry);
        self.len += 1;
        true
    }

    /// All groups of queries indexed under `(relation, attr)` — the level-1
    /// lookup an incoming tuple performs. Each item is
    /// `(group_key, queries)`.
    pub fn groups(
        &self,
        relation: &str,
        attr: &str,
    ) -> impl Iterator<Item = (&str, &[StoredQuery])> {
        self.buckets
            .get(lookup_key(&(relation, attr)))
            .into_iter()
            .flat_map(|m| m.iter().map(|(g, v)| (&**g, v.as_slice())))
    }

    /// Number of candidate queries an incoming tuple for `(relation, attr)`
    /// must be checked against — the rewriter's filtering work for that
    /// tuple.
    pub fn candidate_count(&self, relation: &str, attr: &str) -> usize {
        self.buckets
            .get(lookup_key(&(relation, attr)))
            .map_or(0, |m| m.values().map(Vec::len).sum())
    }

    /// Iterates every stored entry, in arbitrary order (anti-entropy
    /// digests; the digest combination is order-independent).
    pub fn entries(&self) -> impl Iterator<Item = &StoredQuery> {
        self.buckets
            .values()
            .flat_map(|groups| groups.values())
            .flatten()
    }

    /// Total stored queries (the rewriter's storage load contribution).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes and returns every entry whose index identifier satisfies the
    /// predicate — used to transfer keys when nodes join or leave.
    pub fn extract_where(&mut self, mut pred: impl FnMut(Id) -> bool) -> Vec<StoredQuery> {
        let mut out = Vec::new();
        for groups in self.buckets.values_mut() {
            for entries in groups.values_mut() {
                let mut i = 0;
                while i < entries.len() {
                    if pred(entries[i].index_id) {
                        out.push(entries.swap_remove(i));
                    } else {
                        i += 1;
                    }
                }
            }
            groups.retain(|_, v| !v.is_empty());
        }
        self.buckets.retain(|_, m| !m.is_empty());
        self.len -= out.len();
        out
    }

    /// Removes and returns all entries (voluntary-leave key transfer).
    pub fn drain_all(&mut self) -> Vec<StoredQuery> {
        self.extract_where(|_| true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_relational::{
        Catalog, DataType, Expr, JoinQuery, QueryKey, QuerySpec, RelationSchema, SelectItem,
        Timestamp,
    };
    use std::sync::Arc;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(RelationSchema::of("R", &[("A", DataType::Int), ("B", DataType::Int)]).unwrap())
            .unwrap();
        c.register(RelationSchema::of("S", &[("C", DataType::Int), ("D", DataType::Int)]).unwrap())
            .unwrap();
        c
    }

    fn query(c: &Catalog, n: u64) -> QueryRef {
        Arc::new(
            JoinQuery::new(
                QuerySpec {
                    key: QueryKey::derive("node", n),
                    subscriber: "node".into(),
                    ins_time: Timestamp(0),
                    relations: ["R".into(), "S".into()],
                    select: vec![SelectItem {
                        side: Side::Left,
                        attr: "A".into(),
                    }],
                    conditions: [Expr::attr("B"), Expr::attr("C")],
                    filters: vec![],
                },
                c,
            )
            .unwrap(),
        )
    }

    fn entry(q: &QueryRef) -> StoredQuery {
        StoredQuery {
            index_id: Id(1),
            query: Arc::clone(q),
            index_side: Side::Left,
            index_attr: "B".into(),
        }
    }

    #[test]
    fn insert_and_lookup_by_attribute() {
        let c = catalog();
        let mut t = Alqt::new();
        let q = query(&c, 0);
        assert!(t.insert(entry(&q)));
        assert_eq!(t.len(), 1);
        assert_eq!(t.candidate_count("R", "B"), 1);
        assert_eq!(t.candidate_count("R", "A"), 0);
        assert_eq!(t.candidate_count("S", "B"), 0);
        let groups: Vec<_> = t.groups("R", "B").collect();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].1.len(), 1);
    }

    #[test]
    fn duplicate_insert_is_rejected() {
        let c = catalog();
        let mut t = Alqt::new();
        let q = query(&c, 0);
        assert!(t.insert(entry(&q)));
        assert!(!t.insert(entry(&q)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn equivalent_conditions_share_a_group() {
        let c = catalog();
        let mut t = Alqt::new();
        t.insert(entry(&query(&c, 0)));
        t.insert(entry(&query(&c, 1)));
        let groups: Vec<_> = t.groups("R", "B").collect();
        assert_eq!(groups.len(), 1, "same condition → one group");
        assert_eq!(groups[0].1.len(), 2);
    }

    #[test]
    fn extract_where_partitions_by_identifier() {
        let c = catalog();
        let mut t = Alqt::new();
        let mut e1 = entry(&query(&c, 0));
        e1.index_id = Id(10);
        let mut e2 = entry(&query(&c, 1));
        e2.index_id = Id(20);
        t.insert(e1);
        t.insert(e2);
        let moved = t.extract_where(|id| id == Id(10));
        assert_eq!(moved.len(), 1);
        assert_eq!(t.len(), 1);
        assert_eq!(t.candidate_count("R", "B"), 1);
    }

    #[test]
    fn drain_empties_table() {
        let c = catalog();
        let mut t = Alqt::new();
        t.insert(entry(&query(&c, 0)));
        let all = t.drain_all();
        assert_eq!(all.len(), 1);
        assert!(t.is_empty());
    }
}
