//! Continuous two-way equi-join queries (Section 3.2).
//!
//! ```sql
//! SELECT R.A1, ..., S.B1, ...
//! FROM   R, S
//! WHERE  α = β  [AND attr = const ...]
//! ```
//!
//! where `α` involves only attributes of `R` (plus constants) and `β` only
//! attributes of `S`. If both sides are bare attributes the query is of
//! **type T1**; otherwise **type T2** (handled only by DAI-V).

use std::fmt;
use std::sync::Arc;

use crate::error::{RelationalError, Result};
use crate::expr::Expr;
use crate::schema::Catalog;
use crate::tuple::Tuple;
use crate::value::{Timestamp, Value};

/// One of the two sides of a join: `Left` is the first `FROM` relation
/// (`R`), `Right` the second (`S`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Side {
    /// The `R` side.
    Left,
    /// The `S` side.
    Right,
}

impl Side {
    /// The opposite side.
    #[inline]
    pub fn other(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }

    /// Both sides, left first.
    pub const BOTH: [Side; 2] = [Side::Left, Side::Right];

    #[inline]
    pub(crate) fn idx(self) -> usize {
        match self {
            Side::Left => 0,
            Side::Right => 1,
        }
    }
}

impl fmt::Display for Side {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Side::Left => write!(f, "L"),
            Side::Right => write!(f, "R"),
        }
    }
}

/// One item of the `SELECT` clause: an attribute of one of the two relations.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SelectItem {
    /// Which relation the attribute belongs to.
    pub side: Side,
    /// Attribute name.
    pub attr: String,
}

/// An extra conjunct of the `WHERE` clause of the form `attr = const`
/// ("a join condition conjoined with a highly selective predicate",
/// Section 4.3.6).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Filter {
    /// Which relation the predicate constrains.
    pub side: Side,
    /// Attribute name.
    pub attr: String,
    /// Constant the attribute must equal.
    pub value: Value,
}

/// The unique key of a query: `Key(q) = Key(n) + "#" + counter`
/// (Section 3.2).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct QueryKey(pub String);

impl QueryKey {
    /// Builds a query key from the posing node's key and a local counter.
    pub fn derive(node_key: &str, counter: u64) -> QueryKey {
        QueryKey(format!("{node_key}#{counter}"))
    }
}

impl fmt::Display for QueryKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The class of a query (Section 3.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryType {
    /// Both join-condition sides are single attributes with a unique
    /// solution (bare attribute references).
    T1,
    /// At least one side is a compound expression.
    T2,
}

/// The unvalidated components of a [`JoinQuery`], in clause order.
///
/// Passed to [`JoinQuery::new`], which validates them against the catalog.
/// `relations` and `conditions` are `[left, right]` arrays, mirroring the
/// query's internal per-[`Side`] representation.
#[derive(Clone, Debug)]
pub struct QuerySpec {
    /// The query's unique key `Key(q)`.
    pub key: QueryKey,
    /// Key of the posing node (notification destination).
    pub subscriber: String,
    /// Insertion time `insT(q)`.
    pub ins_time: Timestamp,
    /// The two `FROM` relations, left first.
    pub relations: [String; 2],
    /// The `SELECT` list.
    pub select: Vec<SelectItem>,
    /// The two join-condition sides (`α`, `β`), left first.
    pub conditions: [Expr; 2],
    /// Extra `attr = const` conjuncts.
    pub filters: Vec<Filter>,
}

/// A validated continuous two-way equi-join query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JoinQuery {
    key: QueryKey,
    subscriber: String,
    ins_time: Timestamp,
    relations: [String; 2],
    select: Vec<SelectItem>,
    conditions: [Expr; 2],
    /// Attributes referenced by each condition side, sorted and deduplicated.
    /// Precomputed at validation time so per-arrival index-attribute choices
    /// (T2 picks pseudo-randomly among these) don't re-walk the expression.
    cond_attrs: [Vec<String>; 2],
    filters: Vec<Filter>,
}

impl JoinQuery {
    /// Builds and validates a query against the catalog.
    ///
    /// Validation enforces the supported class: two *distinct* relations,
    /// every referenced attribute exists, each condition side references at
    /// least one attribute of its own relation, and the select list is
    /// non-empty.
    pub fn new(spec: QuerySpec, catalog: &Catalog) -> Result<Self> {
        let QuerySpec {
            key,
            subscriber,
            ins_time,
            relations,
            select,
            conditions,
            filters,
        } = spec;
        if relations[0] == relations[1] {
            return Err(RelationalError::UnsupportedQuery {
                detail: format!(
                    "self-joins are not supported (relation {:?} on both sides)",
                    relations[0]
                ),
            });
        }
        let schemas = [catalog.get(&relations[0])?, catalog.get(&relations[1])?];
        if select.is_empty() {
            return Err(RelationalError::UnsupportedQuery {
                detail: "empty select list".to_string(),
            });
        }
        for item in &select {
            let schema = schemas[item.side.idx()];
            schema.index_of(&item.attr)?;
        }
        let mut cond_attrs: [Vec<String>; 2] = [Vec::new(), Vec::new()];
        for side in Side::BOTH {
            let expr = &conditions[side.idx()];
            let attrs = expr.attributes();
            if attrs.is_empty() {
                return Err(RelationalError::UnsupportedQuery {
                    detail: format!("join-condition side {side} references no attribute"),
                });
            }
            for a in &attrs {
                schemas[side.idx()].index_of(a)?;
            }
            // `Expr::attributes` yields a BTreeSet, so this preserves the
            // sorted, deduplicated order callers historically observed.
            cond_attrs[side.idx()] = attrs.into_iter().map(str::to_string).collect();
        }
        for flt in &filters {
            let schema = schemas[flt.side.idx()];
            let ty = schema.type_of(&flt.attr)?;
            if ty != flt.value.data_type() {
                return Err(RelationalError::UnsupportedQuery {
                    detail: format!(
                        "filter {}={} has type {} but attribute is {}",
                        flt.attr,
                        flt.value,
                        flt.value.data_type(),
                        ty
                    ),
                });
            }
        }
        Ok(JoinQuery {
            key,
            subscriber,
            ins_time,
            relations,
            select,
            conditions,
            cond_attrs,
            filters,
        })
    }

    /// The query's unique key `Key(q)`.
    #[inline]
    pub fn key(&self) -> &QueryKey {
        &self.key
    }

    /// Key of the node that posed the query (used to deliver notifications).
    #[inline]
    pub fn subscriber(&self) -> &str {
        &self.subscriber
    }

    /// Insertion time `insT(q)`.
    #[inline]
    pub fn ins_time(&self) -> Timestamp {
        self.ins_time
    }

    /// Relation name of one side.
    #[inline]
    pub fn relation(&self, side: Side) -> &str {
        &self.relations[side.idx()]
    }

    /// The side a given relation plays in this query, if any.
    pub fn side_of(&self, relation: &str) -> Option<Side> {
        Side::BOTH
            .into_iter()
            .find(|s| self.relation(*s) == relation)
    }

    /// The join-condition expression of one side (`α` or `β`).
    #[inline]
    pub fn condition(&self, side: Side) -> &Expr {
        &self.conditions[side.idx()]
    }

    /// The select list.
    #[inline]
    pub fn select(&self) -> &[SelectItem] {
        &self.select
    }

    /// The extra equality filters.
    #[inline]
    pub fn filters(&self) -> &[Filter] {
        &self.filters
    }

    /// Query type classification (Section 3.2).
    pub fn query_type(&self) -> QueryType {
        if self.join_attr(Side::Left).is_some() && self.join_attr(Side::Right).is_some() {
            QueryType::T1
        } else {
            QueryType::T2
        }
    }

    /// If the condition side is a bare attribute, its name — the candidate
    /// index/load-distributing attribute of the T1 algorithms.
    pub fn join_attr(&self, side: Side) -> Option<&str> {
        self.condition(side).as_single_attr()
    }

    /// Attributes referenced by `side`'s condition expression, sorted and
    /// deduplicated (precomputed at validation time; never empty).
    #[inline]
    pub fn condition_attrs(&self, side: Side) -> &[String] {
        &self.cond_attrs[side.idx()]
    }

    /// Attributes of `side` appearing in the select list, with their select
    /// positions.
    pub fn select_positions(&self, side: Side) -> impl Iterator<Item = (usize, &str)> {
        self.select
            .iter()
            .enumerate()
            .filter(move |(_, it)| it.side == side)
            .map(|(i, it)| (i, it.attr.as_str()))
    }

    /// Whether a tuple of `side`'s relation satisfies every filter on that
    /// side. (Filters on the other side are checked when the other tuple is
    /// examined.)
    pub fn filters_pass(&self, side: Side, tuple: &Tuple) -> Result<bool> {
        for flt in self.filters.iter().filter(|f| f.side == side) {
            if tuple.get(&flt.attr)? != &flt.value {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Whether a tuple of `side`'s relation can trigger this query:
    /// `pubT(t) >= insT(q)` and the side's filters pass.
    pub fn triggered_by(&self, side: Side, tuple: &Tuple) -> Result<bool> {
        if tuple.pub_time() < self.ins_time {
            return Ok(false);
        }
        if tuple.relation() != self.relation(side) {
            return Ok(false);
        }
        self.filters_pass(side, tuple)
    }

    /// The grouping key for "queries with equivalent join condition"
    /// (Section 4.3.5): relations, condition expressions and filters —
    /// everything that determines *where* rewritten forms are reindexed and
    /// *which* tuples trigger them. Select lists may differ within a group.
    pub fn group_key(&self) -> String {
        let mut s = String::with_capacity(64);
        s.push_str(&self.relations[0]);
        s.push('|');
        s.push_str(&self.relations[1]);
        s.push('|');
        s.push_str(&self.conditions[0].canonical());
        s.push('=');
        s.push_str(&self.conditions[1].canonical());
        let mut filters: Vec<String> = self
            .filters
            .iter()
            .map(|f| format!("{}{}.{}={}", '|', f.side, f.attr, f.value.canonical()))
            .collect();
        filters.sort();
        for f in filters {
            s.push_str(&f);
        }
        s
    }
}

impl fmt::Display for JoinQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SELECT ")?;
        for (i, it) in self.select.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            let rel = self.relation(it.side);
            write!(f, "{rel}.{}", it.attr)?;
        }
        write!(
            f,
            " FROM {}, {} WHERE {} = {}",
            self.relations[0], self.relations[1], self.conditions[0], self.conditions[1]
        )?;
        for flt in &self.filters {
            write!(
                f,
                " AND {}.{} = {}",
                self.relation(flt.side),
                flt.attr,
                flt.value
            )?;
        }
        Ok(())
    }
}

/// Shared handle to a query, as stored in node-local tables.
pub type QueryRef = Arc<JoinQuery>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;
    use crate::value::DataType;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            RelationSchema::of(
                "R",
                &[
                    ("A", DataType::Int),
                    ("B", DataType::Int),
                    ("C", DataType::Int),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        c.register(
            RelationSchema::of(
                "S",
                &[
                    ("B", DataType::Str),
                    ("E", DataType::Int),
                    ("D", DataType::Int),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        c
    }

    fn spec(counter: u64, node: &str) -> QuerySpec {
        QuerySpec {
            key: QueryKey::derive(node, counter),
            subscriber: node.into(),
            ins_time: Timestamp(0),
            relations: ["R".into(), "S".into()],
            select: vec![SelectItem {
                side: Side::Left,
                attr: "A".into(),
            }],
            conditions: [Expr::attr("C"), Expr::attr("E")],
            filters: vec![],
        }
    }

    fn t1_query(c: &Catalog) -> JoinQuery {
        JoinQuery::new(
            QuerySpec {
                ins_time: Timestamp(10),
                select: vec![
                    SelectItem {
                        side: Side::Left,
                        attr: "A".into(),
                    },
                    SelectItem {
                        side: Side::Right,
                        attr: "D".into(),
                    },
                ],
                ..spec(0, "n1")
            },
            c,
        )
        .unwrap()
    }

    #[test]
    fn t1_classification() {
        let c = catalog();
        let q = t1_query(&c);
        assert_eq!(q.query_type(), QueryType::T1);
        assert_eq!(q.join_attr(Side::Left), Some("C"));
        assert_eq!(q.join_attr(Side::Right), Some("E"));
    }

    #[test]
    fn t2_classification() {
        let c = catalog();
        let q = JoinQuery::new(
            QuerySpec {
                conditions: [
                    Expr::bin(crate::expr::BinOp::Add, Expr::attr("B"), Expr::attr("C")),
                    Expr::attr("E"),
                ],
                ..spec(1, "n1")
            },
            &c,
        )
        .unwrap();
        assert_eq!(q.query_type(), QueryType::T2);
        assert_eq!(q.join_attr(Side::Left), None);
    }

    #[test]
    fn self_join_rejected() {
        let c = catalog();
        let err = JoinQuery::new(
            QuerySpec {
                relations: ["R".into(), "R".into()],
                conditions: [Expr::attr("B"), Expr::attr("C")],
                ..spec(2, "n1")
            },
            &c,
        )
        .unwrap_err();
        assert!(matches!(err, RelationalError::UnsupportedQuery { .. }));
    }

    #[test]
    fn unknown_attribute_rejected() {
        let c = catalog();
        let err = JoinQuery::new(
            QuerySpec {
                select: vec![SelectItem {
                    side: Side::Left,
                    attr: "Zzz".into(),
                }],
                ..spec(3, "n1")
            },
            &c,
        )
        .unwrap_err();
        assert!(matches!(err, RelationalError::UnknownAttribute { .. }));
    }

    #[test]
    fn filter_type_mismatch_rejected() {
        let c = catalog();
        let err = JoinQuery::new(
            QuerySpec {
                filters: vec![Filter {
                    side: Side::Left,
                    attr: "A".into(),
                    value: Value::Str("x".into()),
                }],
                ..spec(4, "n1")
            },
            &c,
        )
        .unwrap_err();
        assert!(matches!(err, RelationalError::UnsupportedQuery { .. }));
    }

    #[test]
    fn triggering_respects_time_and_filters() {
        let c = catalog();
        let q = JoinQuery::new(
            QuerySpec {
                ins_time: Timestamp(10),
                filters: vec![Filter {
                    side: Side::Left,
                    attr: "B".into(),
                    value: Value::Int(7),
                }],
                ..spec(5, "n1")
            },
            &c,
        )
        .unwrap();
        let schema = c.get("R").unwrap().clone();
        let mk = |b: i64, t: u64| {
            Tuple::new(
                schema.clone(),
                vec![Value::Int(1), Value::Int(b), Value::Int(3)],
                Timestamp(t),
                0,
            )
            .unwrap()
        };
        assert!(q.triggered_by(Side::Left, &mk(7, 10)).unwrap());
        assert!(!q.triggered_by(Side::Left, &mk(7, 9)).unwrap(), "too old");
        assert!(
            !q.triggered_by(Side::Left, &mk(8, 10)).unwrap(),
            "filter fails"
        );
    }

    #[test]
    fn group_key_ignores_select_list() {
        let c = catalog();
        let q1 = t1_query(&c);
        let q2 = JoinQuery::new(
            QuerySpec {
                ins_time: Timestamp(99),
                select: vec![SelectItem {
                    side: Side::Right,
                    attr: "B".into(),
                }],
                ..spec(0, "n2")
            },
            &c,
        )
        .unwrap();
        assert_eq!(q1.group_key(), q2.group_key());
    }

    #[test]
    fn group_key_distinguishes_conditions() {
        let c = catalog();
        let q1 = t1_query(&c);
        let q3 = JoinQuery::new(
            QuerySpec {
                conditions: [Expr::attr("B"), Expr::attr("E")],
                ..spec(0, "n3")
            },
            &c,
        )
        .unwrap();
        assert_ne!(q1.group_key(), q3.group_key());
    }

    #[test]
    fn display_roundtrips_structure() {
        let c = catalog();
        let q = t1_query(&c);
        assert_eq!(q.to_string(), "SELECT R.A, S.D FROM R, S WHERE C = E");
    }
}
