//! Unit tests for the `Protocol` trait implementations in `cq_engine::algo`.
//!
//! Unlike the end-to-end tests in `algorithms.rs`, these drive each
//! algorithm's handlers directly through a `NodeCtx` with a minimal message
//! pump — no `Network`, no transport layer — and check the delivered
//! notification set against the centralized oracle. This pins down the
//! trait contract itself: a protocol implementation is correct iff feeding
//! its emitted effects back through `route_owner` reproduces the oracle
//! set on a two-relation workload.

use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

use cq_engine::protocol_for;
use cq_engine::tables::StoredQuery;
use cq_engine::Oracle;
use cq_engine::{
    Algorithm, Effect, EngineConfig, EngineError, Matches, Message, Metrics, NodeCtx, NodeState,
    Protocol,
};
use cq_overlay::{Id, NodeHandle, Ring};
use cq_relational::{
    parse_query, Catalog, DataType, Notification, QueryKey, QueryRef, RelationSchema,
    RewrittenQuery, Side, Timestamp, Tuple, Value,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(RelationSchema::of("R", &[("A", DataType::Int), ("B", DataType::Int)]).unwrap())
        .unwrap();
    c.register(RelationSchema::of("S", &[("C", DataType::Int), ("D", DataType::Int)]).unwrap())
        .unwrap();
    c
}

/// A minimal handler driver: owns the state a `NodeCtx` borrows, routes
/// queued messages to their identifier's owner, and collects `Deliver`
/// effects. Storage-level messages (`IndexQuery`) are applied directly —
/// they are the orchestrator's job, not the protocol's.
struct Driver {
    config: EngineConfig,
    catalog: Catalog,
    ring: Ring,
    nodes: Vec<NodeState>,
    metrics: Metrics,
    rng: StdRng,
    protocol: Arc<dyn Protocol>,
    queue: VecDeque<(Id, Message)>,
    delivered: HashSet<Notification>,
    queries: Vec<QueryRef>,
    tuples: Vec<Arc<Tuple>>,
    clock: u64,
    seq: u64,
}

impl Driver {
    fn new(config: EngineConfig) -> Self {
        let ring = Ring::build(config.space(), config.nodes, "node-");
        let slots = ring.slot_count();
        let seed = config.seed;
        let protocol = protocol_for(config.algorithm);
        Driver {
            catalog: catalog(),
            ring,
            nodes: (0..slots).map(|_| NodeState::new()).collect(),
            metrics: Metrics::new(slots),
            rng: StdRng::seed_from_u64(seed),
            protocol,
            queue: VecDeque::new(),
            delivered: HashSet::new(),
            queries: Vec::new(),
            tuples: Vec::new(),
            clock: 0,
            seq: 0,
            config,
        }
    }

    fn of(alg: Algorithm) -> Self {
        Driver::new(EngineConfig::new(alg).with_nodes(24).with_seed(5))
    }

    /// Runs one handler at `at` through a `NodeCtx`, then folds its effects
    /// back into the driver: sends are queued, deliveries collected,
    /// replication ignored (no fault layer here).
    fn run(
        &mut self,
        at: NodeHandle,
        f: impl FnOnce(&dyn Protocol, &mut NodeCtx<'_>) -> cq_engine::Result<()>,
    ) -> cq_engine::Result<()> {
        let protocol = Arc::clone(&self.protocol);
        let mut outbox = Vec::new();
        let mut scratch = String::new();
        {
            let mut ctx = NodeCtx::new(
                at,
                &self.config,
                &self.ring,
                &mut self.nodes,
                &mut self.metrics,
                &mut self.rng,
                &mut outbox,
                &mut scratch,
            );
            f(&*protocol, &mut ctx)?;
        }
        for effect in outbox {
            match effect {
                Effect::Batch { targets, .. } => self.queue.extend(targets),
                Effect::Send { id, msg } => self.queue.push_back((id, msg)),
                Effect::Replicate { .. } => {}
                Effect::Deliver { matches } => match matches {
                    Matches::Full(ns) => self.delivered.extend(ns),
                    Matches::Counts(_) => panic!("tests run with retention on"),
                },
            }
        }
        Ok(())
    }

    /// Drains the queue, resolving each message's owner on the real ring.
    fn pump(&mut self) -> cq_engine::Result<()> {
        let origin = self.ring.alive_nodes().next().expect("ring is non-empty");
        while let Some((id, msg)) = self.queue.pop_front() {
            let (owner, _) = self.ring.route_owner(origin, id)?;
            match msg {
                Message::IndexQuery {
                    query,
                    index_side,
                    index_attr,
                    index_id,
                } => {
                    self.nodes[owner.index()].alqt.insert(StoredQuery {
                        index_id,
                        query,
                        index_side,
                        index_attr,
                    });
                }
                Message::AlIndexTuple {
                    tuple,
                    attr,
                    index_id,
                } => self.run(owner, |p, ctx| {
                    p.on_tuple_arrival(ctx, tuple, attr, index_id)
                })?,
                Message::VlIndexTuple {
                    tuple,
                    attr,
                    index_id,
                } => self.run(owner, |p, ctx| p.on_value_tuple(ctx, tuple, attr, index_id))?,
                Message::Join { items, index_id } => {
                    self.run(owner, |p, ctx| p.on_rewritten_query(ctx, items, index_id))?
                }
                Message::JoinV(join) => self.run(owner, |p, ctx| p.on_join_message(ctx, join))?,
                other => panic!("protocol handlers never emit {}", other.kind()),
            }
        }
        Ok(())
    }

    fn pose(&mut self, sql: &str) -> cq_engine::Result<()> {
        self.clock += 1;
        let node = self.ring.alive_nodes().next().unwrap();
        let node_key = self.ring.node(node).key().to_string();
        let parsed = parse_query(sql, &self.catalog)?;
        let key = QueryKey::derive(&node_key, self.queries.len() as u64);
        let query: QueryRef =
            Arc::new(parsed.into_query(key, node_key, Timestamp(self.clock), &self.catalog)?);
        self.protocol.validate_query(&query)?;
        self.queries.push(Arc::clone(&query));
        self.run(node, |p, ctx| p.on_pose_query(ctx, &query))?;
        self.pump()
    }

    fn insert(&mut self, relation: &str, values: Vec<Value>) -> cq_engine::Result<()> {
        self.clock += 1;
        let node = self.ring.alive_nodes().next().unwrap();
        let schema = self.catalog.get(relation)?.clone();
        let tuple = Arc::new(Tuple::new(schema, values, Timestamp(self.clock), self.seq)?);
        self.seq += 1;
        self.tuples.push(Arc::clone(&tuple));
        self.run(node, |p, ctx| p.on_publish_tuple(ctx, &tuple))?;
        self.pump()
    }

    fn check_against_oracle(&self) {
        let mut oracle = Oracle::new();
        oracle.ingest(&self.queries, &self.tuples);
        let expected = oracle.expected().unwrap();
        assert_eq!(
            self.delivered,
            expected,
            "{} diverged from the oracle",
            self.protocol.name()
        );
    }
}

/// Tuples before the query, after the query, and values that never match —
/// exercised identically for every algorithm.
fn run_small_workload(mut d: Driver) {
    // Tuples published before the query is posed must NOT trigger it
    // (insT semantics) ...
    d.insert("R", vec![Value::Int(100), Value::Int(1)]).unwrap();
    d.insert("S", vec![Value::Int(1), Value::Int(200)]).unwrap();
    d.pose("SELECT R.A, S.D FROM R, S WHERE R.B = S.C").unwrap();
    // ... except where one side arrived before and one after: the oracle
    // requires both tuples at-or-after insT, so R(100,1)⋈S(1,201) is out.
    for v in 0..6i64 {
        d.insert("R", vec![Value::Int(10 + v), Value::Int(v % 3)])
            .unwrap();
        d.insert("S", vec![Value::Int(v % 4), Value::Int(200 + v)])
            .unwrap();
    }
    assert!(!d.delivered.is_empty(), "workload produces matches");
    d.check_against_oracle();
}

#[test]
fn sai_handlers_match_oracle() {
    run_small_workload(Driver::of(Algorithm::Sai));
}

#[test]
fn dai_q_handlers_match_oracle() {
    run_small_workload(Driver::of(Algorithm::DaiQ));
}

#[test]
fn dai_t_handlers_match_oracle() {
    run_small_workload(Driver::of(Algorithm::DaiT));
}

#[test]
fn dai_v_handlers_match_oracle() {
    run_small_workload(Driver::of(Algorithm::DaiV));
}

#[test]
fn dai_v_keyed_handlers_match_oracle() {
    run_small_workload(Driver::new(
        EngineConfig::new(Algorithm::DaiV)
            .with_nodes(24)
            .with_seed(5)
            .with_dai_v_keyed(true),
    ));
}

#[test]
fn dai_v_evaluates_t2_queries_through_handlers() {
    let mut d = Driver::of(Algorithm::DaiV);
    d.pose("SELECT R.A, S.D FROM R, S WHERE 2*R.B = S.C + S.D")
        .unwrap();
    // left valJC = 2*5 = 10; right: 4 + 6 = 10.
    d.insert("R", vec![Value::Int(1), Value::Int(5)]).unwrap();
    d.insert("S", vec![Value::Int(4), Value::Int(6)]).unwrap();
    d.insert("S", vec![Value::Int(4), Value::Int(7)]).unwrap(); // 11 ≠ 10
    assert_eq!(d.delivered.len(), 1);
    d.check_against_oracle();
}

#[test]
fn t1_protocols_reject_t2_queries() {
    for alg in [Algorithm::Sai, Algorithm::DaiQ, Algorithm::DaiT] {
        let mut d = Driver::of(alg);
        let err = d
            .pose("SELECT R.A FROM R, S WHERE R.A + R.B = S.C")
            .unwrap_err();
        assert!(
            matches!(err, EngineError::UnsupportedByAlgorithm { .. }),
            "{alg}: {err}"
        );
    }
}

/// A `Join` message reaching DAI-V is a protocol violation — a typed error,
/// not a panic (DAI-V only ever emits `JoinV`).
#[test]
fn join_message_to_dai_v_is_a_typed_protocol_error() {
    let mut d = Driver::of(Algorithm::DaiV);
    let node = d.ring.alive_nodes().next().unwrap();
    let err = d
        .run(node, |p, ctx| p.on_rewritten_query(ctx, Vec::new(), Id(1)))
        .unwrap_err();
    assert!(matches!(err, EngineError::Protocol { .. }), "{err}");
}

/// A `JoinV` message reaching a T1 algorithm is equally a typed error.
#[test]
fn join_v_message_to_t1_algorithms_is_a_typed_protocol_error() {
    for alg in [Algorithm::Sai, Algorithm::DaiQ, Algorithm::DaiT] {
        let mut d = Driver::of(alg);
        let node = d.ring.alive_nodes().next().unwrap();
        let schema = d.catalog.get("R").unwrap().clone();
        let tuple = Arc::new(
            Tuple::new(schema, vec![Value::Int(1), Value::Int(2)], Timestamp(1), 0).unwrap(),
        );
        let err = d
            .run(node, |p, ctx| {
                p.on_join_message(
                    ctx,
                    cq_engine::ValueJoin {
                        group: "g".into(),
                        items: Vec::new(),
                        tuple,
                        side: Side::Left,
                        value_key: "1".into(),
                        index_id: Id(1),
                    },
                )
            })
            .unwrap_err();
        assert!(matches!(err, EngineError::Protocol { .. }), "{alg}: {err}");
    }
}

/// A value-targeted rewritten query inside a plain `Join` message (only
/// DAI-V produces value targets) surfaces as a typed error from the
/// evaluator's attribute-target matcher.
#[test]
fn value_targeted_rewritten_query_in_plain_join_is_a_typed_protocol_error() {
    let mut d = Driver::of(Algorithm::DaiQ);
    let node = d.ring.alive_nodes().next().unwrap();
    let node_key = d.ring.node(node).key().to_string();
    let parsed = parse_query("SELECT R.A, S.D FROM R, S WHERE R.B = S.C", &d.catalog).unwrap();
    let query: QueryRef = Arc::new(
        parsed
            .into_query(
                QueryKey::derive(&node_key, 0),
                node_key,
                Timestamp(1),
                &d.catalog,
            )
            .unwrap(),
    );
    let schema = d.catalog.get("R").unwrap().clone();
    let tuple = Tuple::new(schema, vec![Value::Int(1), Value::Int(2)], Timestamp(2), 0).unwrap();
    let rq = RewrittenQuery::rewrite_value(&query, Side::Left, &tuple)
        .unwrap()
        .expect("tuple triggers the query");
    let err = d
        .run(node, |p, ctx| p.on_rewritten_query(ctx, vec![rq], Id(1)))
        .unwrap_err();
    assert!(matches!(err, EngineError::Protocol { .. }), "{err}");
}
