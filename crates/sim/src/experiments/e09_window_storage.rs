//! E9 — Figure "Effect of window size and installed queries in total
//! evaluator storage load" (Section 5.4).
//!
//! Companion of E8 for storage: the number of value-level items (rewritten
//! queries, tuples) evaluators hold after the window. Expected shape:
//! DAI-Q stores only tuples (grows with the window, independent of
//! queries); DAI-T stores only rewritten queries from *both* rewriters
//! (≈ 2× SAI's rewritten-query volume, growing with the query population);
//! SAI stores tuples *plus* its single rewriter's rewritten queries, so it
//! always exceeds DAI-Q on the same stream.

use cq_engine::Algorithm;
use cq_workload::WorkloadConfig;

use super::Scale;
use crate::harness::RunConfig;
use crate::parallel::run_many;
use crate::report::{fnum, Report};

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let nodes = scale.pick(128, 1024);
    let windows: Vec<usize> = scale.pick(vec![100, 200, 400], vec![500, 1000, 2000]);
    let query_pops: Vec<usize> = scale.pick(vec![20, 80], vec![1000, 4000]);
    let mut headers = vec!["window".to_string()];
    for q in &query_pops {
        for alg in Algorithm::ALL {
            headers.push(format!("{} Q={q}", alg.name()));
        }
    }
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut report = Report::new(
        "E9",
        &format!("total evaluator storage load vs window size (N={nodes})"),
        &headers_ref,
    );
    let mut cfgs = Vec::new();
    for &w in &windows {
        for &q in &query_pops {
            for alg in Algorithm::ALL {
                cfgs.push(RunConfig {
                    algorithm: alg,
                    nodes,
                    queries: q,
                    tuples: w,
                    workload: WorkloadConfig {
                        domain: scale.pick(40, 400),
                        ..WorkloadConfig::default()
                    },
                    ..RunConfig::new(alg)
                });
            }
        }
    }
    let mut results = run_many(&cfgs).into_iter();
    for &w in &windows {
        let mut row = vec![w.to_string()];
        for _ in 0..query_pops.len() * Algorithm::ALL.len() {
            let r = results.next().expect("one result per config");
            row.push(fnum(r.total_evaluator_storage()));
        }
        report.row(row);
    }
    report.note("paper: SAI stores rewritten queries AND tuples; DAI-Q tuples; DAI-T queries");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_decomposition_matches_algorithm_semantics() {
        let r = run(Scale::Quick);
        let last: Vec<f64> = r
            .to_csv()
            .lines()
            .last()
            .unwrap()
            .split(',')
            .skip(1)
            .map(|c| c.parse().unwrap())
            .collect();
        // Columns per Q block: SAI, DAI-Q, DAI-T, DAI-V.
        assert!(
            last[0] > last[1],
            "SAI (tuples + rewrites) must exceed DAI-Q (tuples only)"
        );
        assert!(last[2] > 0.0, "DAI-T must store rewritten queries");
        // DAI-T stores rewrites from two rewriters; SAI's rewrites come from
        // one. DAI-T's query-driven storage must exceed SAI's minus the
        // shared tuple storage (= DAI-Q's column).
        assert!(
            last[2] > last[0] - last[1],
            "DAI-T rewrites ≈ 2× SAI rewrites"
        );
    }
}
