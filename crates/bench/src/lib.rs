//! # cq-bench — criterion benchmark harness
//!
//! One benchmark group per reproduced figure/table (see DESIGN.md's
//! experiment index) plus micro-benchmarks of the hot operations:
//! routing, multisend, tuple insertion per algorithm, and SQL parsing.
//!
//! Run with `cargo bench --workspace`. Each figure-level benchmark times a
//! `Scale::Quick` run of the corresponding experiment; the full-scale
//! numbers for EXPERIMENTS.md come from `cargo run --release -p cq-sim
//! --bin experiments -- --full`.

/// Re-export used by the benches to keep their imports uniform.
pub use cq_sim::experiments::{self, Scale};
