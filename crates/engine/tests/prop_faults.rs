//! Property-based check of the reliable-delivery layer: for random
//! workloads under random message loss (up to 30%), duplication and
//! reordering, acks + retransmissions + receiver dedup windows must keep
//! the observable notification set exactly equal to the oracle's —
//! exactly-once semantics over a faulty channel.

use cq_engine::{Algorithm, EngineConfig, FaultConfig, Network, Oracle};
use cq_relational::{Catalog, DataType, RelationSchema, Value};
use proptest::prelude::*;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(RelationSchema::of("R", &[("A", DataType::Int), ("B", DataType::Int)]).unwrap())
        .unwrap();
    c.register(RelationSchema::of("S", &[("D", DataType::Int), ("E", DataType::Int)]).unwrap())
        .unwrap();
    c
}

/// One step of a random workload.
#[derive(Clone, Debug)]
enum Step {
    PoseSimple,
    PoseWithFilter(i64),
    InsertR(i64, i64),
    InsertS(i64, i64),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        1 => Just(Step::PoseSimple),
        1 => (-2i64..2).prop_map(Step::PoseWithFilter),
        4 => ((-20i64..20), (-3i64..3)).prop_map(|(a, b)| Step::InsertR(a, b)),
        4 => ((-20i64..20), (-3i64..3)).prop_map(|(d, e)| Step::InsertS(d, e)),
    ]
}

fn run(alg: Algorithm, steps: &[Step], seed: u64, fault: FaultConfig) -> Network {
    let mut net = Network::new(
        EngineConfig::new(alg)
            .with_nodes(32)
            .with_seed(seed)
            .with_fault(fault),
        catalog(),
    );
    for (n, step) in steps.iter().enumerate() {
        let from = net.node_at(n % 32);
        match step {
            Step::PoseSimple => {
                net.pose_query_sql(from, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
                    .unwrap();
            }
            Step::PoseWithFilter(v) => {
                net.pose_query_sql(
                    from,
                    &format!("SELECT R.A FROM R, S WHERE R.B = S.E AND S.D = {v}"),
                )
                .unwrap();
            }
            Step::InsertR(a, b) => {
                net.insert_tuple(from, "R", vec![Value::Int(*a), Value::Int(*b)])
                    .unwrap();
            }
            Step::InsertS(d, e) => {
                net.insert_tuple(from, "S", vec![Value::Int(*d), Value::Int(*e)])
                    .unwrap();
            }
        }
    }
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn exactly_once_delivery_over_a_faulty_channel(
        steps in prop::collection::vec(step_strategy(), 1..40),
        seed in 0u64..1000,
        loss_pct in 0u32..31,
        fault_seed in 0u64..1000,
    ) {
        let loss = f64::from(loss_pct) / 100.0;
        for alg in Algorithm::ALL {
            let net = run(alg, &steps, seed, FaultConfig::lossy(loss, fault_seed));
            let mut oracle = Oracle::new();
            oracle.ingest(net.posed_queries(), net.inserted_tuples());
            let expected = oracle.expected().unwrap();
            prop_assert_eq!(
                net.delivered_set(),
                expected,
                "{} diverged from oracle under loss {}", alg, loss
            );
        }
    }

    #[test]
    fn backoff_and_dedup_survive_sustained_loss_with_delay(
        steps in prop::collection::vec(step_strategy(), 1..30),
        seed in 0u64..1000,
        loss_pct in 5u32..31,
        delay_pct in 0u32..100,
        max_delay in 1u64..8,
        fault_seed in 0u64..1000,
    ) {
        // Loss combined with delivery delay: retransmissions fire while
        // originals (or their acks) are still in flight, exercising the
        // backoff schedule and the retransmit/late-ack dedup race. The
        // delivered set must still be exactly the oracle's.
        let mut fault = FaultConfig::lossy(f64::from(loss_pct) / 100.0, fault_seed);
        fault.delay_rate = f64::from(delay_pct) / 100.0;
        fault.max_delay = max_delay;
        fault.ack_timeout = 1; // aggressive: races acks against retries
        for alg in Algorithm::ALL {
            let net = run(alg, &steps, seed, fault.clone());
            let mut oracle = Oracle::new();
            oracle.ingest(net.posed_queries(), net.inserted_tuples());
            let expected = oracle.expected().unwrap();
            prop_assert_eq!(
                net.delivered_set(),
                expected,
                "{} diverged under loss {} + delay {}", alg, loss_pct, delay_pct
            );
        }
    }
}
