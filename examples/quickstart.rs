//! Quickstart: pose a continuous equi-join query on a simulated DHT and
//! watch notifications arrive as tuples are published.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cq_engine::{Algorithm, EngineConfig, Network};
use cq_relational::{Catalog, DataType, RelationSchema, Value};

fn main() {
    // 1. Schemas every node knows (different schemas co-exist; no mappings).
    let mut catalog = Catalog::new();
    catalog
        .register(
            RelationSchema::of(
                "Orders",
                &[
                    ("OrderId", DataType::Int),
                    ("Symbol", DataType::Str),
                    ("Qty", DataType::Int),
                ],
            )
            .unwrap(),
        )
        .unwrap();
    catalog
        .register(
            RelationSchema::of(
                "Trades",
                &[
                    ("TradeId", DataType::Int),
                    ("Ticker", DataType::Str),
                    ("Price", DataType::Int),
                ],
            )
            .unwrap(),
        )
        .unwrap();

    // 2. A 64-node Chord overlay running the DAI-T algorithm.
    let config = EngineConfig::new(Algorithm::DaiT).with_nodes(64);
    let mut net = Network::new(config, catalog);

    // 3. Any node can pose a continuous query; it is indexed at rewriter
    //    nodes and waits for tuples.
    let subscriber = net.node_at(0);
    let key = net
        .pose_query_sql(
            subscriber,
            "SELECT Orders.OrderId, Trades.Price \
             FROM Orders, Trades WHERE Orders.Symbol = Trades.Ticker",
        )
        .unwrap();
    println!("installed continuous query {key}");

    // 4. Other nodes publish tuples; the network cooperates to create
    //    notifications for every new join match.
    let publisher = net.node_at(33);
    net.insert_tuple(
        publisher,
        "Orders",
        vec![Value::Int(1), Value::from("ACME"), Value::Int(100)],
    )
    .unwrap();
    println!(
        "published Orders(1, 'ACME', 100) — no match yet, inbox: {}",
        net.inbox(subscriber).len()
    );

    net.insert_tuple(
        publisher,
        "Trades",
        vec![Value::Int(7), Value::from("ACME"), Value::Int(42)],
    )
    .unwrap();
    net.insert_tuple(
        publisher,
        "Trades",
        vec![Value::Int(8), Value::from("OTHER"), Value::Int(9)],
    )
    .unwrap();

    // 5. The subscriber received exactly the matching combination.
    for n in net.inbox(subscriber) {
        println!("notification: {n}");
    }
    assert_eq!(net.inbox(subscriber).len(), 1);

    // 6. Everything is measured: overlay hops per message category.
    for kind in cq_engine::TrafficKind::ALL {
        let t = net.metrics().traffic(kind);
        if t.messages > 0 {
            println!(
                "traffic[{kind}]: {} messages, {} hops ({:.1} hops/msg)",
                t.messages,
                t.hops,
                t.hops_per_message()
            );
        }
    }
}
