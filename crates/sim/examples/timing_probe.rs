use cq_engine::Algorithm;
use cq_sim::{run, RunConfig};
use cq_workload::WorkloadConfig;
use std::time::Instant;

fn main() {
    for (n, q, t) in [
        (1024, 5000, 1000),
        (2000, 10_000, 1000),
        (2000, 20_000, 2000),
    ] {
        let start = Instant::now();
        let cfg = RunConfig {
            nodes: n,
            queries: q,
            tuples: t,
            workload: WorkloadConfig {
                domain: 400,
                ..WorkloadConfig::default()
            },
            ..RunConfig::new(Algorithm::Sai)
        };
        let r = run(&cfg);
        println!(
            "N={n} Q={q} T={t}: {:?} (TF={}, hops/t={:.1})",
            start.elapsed(),
            r.total_filtering(),
            r.hops_per_tuple()
        );
    }
}
