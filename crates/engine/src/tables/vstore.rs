//! DAI-V's evaluator-side tuple store (Section 4.5).
//!
//! A DAI-V evaluator receives `join(q', t')` messages, matches `q'` against
//! tuples of the *other* relation previously stored for the same query group
//! and join-condition value, and then stores `t'` for future matches.
//!
//! The paper ships `t'` as the projection of the triggering tuple on "the
//! attributes needed for the evaluation of the join"; we store the full
//! tuple — a pure bandwidth optimization in the paper that does not change
//! hop counts, load distribution or match results, which are what the
//! experiments measure.

use std::sync::Arc;

use cq_fasthash::FxHashMap;
use cq_overlay::Id;
use cq_relational::{Side, Tuple};

use super::keys::{bucket_mut, lookup_key, StrPair};

/// A tuple stored at a DAI-V evaluator.
#[derive(Clone, Debug)]
pub struct StoredValueTuple {
    /// The value-level identifier (`Hash(valJC)`).
    pub index_id: Id,
    /// Which side of the query group the tuple belongs to.
    pub side: Side,
    /// The tuple.
    pub tuple: Arc<Tuple>,
}

/// DAI-V evaluator store.
///
/// Keyed by `(query group, join-condition value)` — matching is scoped to a
/// group so that unrelated conditions that happen to produce the same value
/// at the same node neither collide nor duplicate. The key is an owned
/// [`StrPair`] so lookups borrow instead of allocating (see
/// [`super::keys`]).
#[derive(Clone, Debug, Default)]
pub struct VStore {
    buckets: FxHashMap<StrPair, [Vec<StoredValueTuple>; 2]>,
    len: usize,
}

fn side_slot(side: Side) -> usize {
    match side {
        Side::Left => 0,
        Side::Right => 1,
    }
}

impl VStore {
    /// An empty store.
    pub fn new() -> Self {
        VStore::default()
    }

    /// Stores a tuple for `(group, value)` on its side.
    pub fn insert(&mut self, group: &str, value_key: &str, entry: StoredValueTuple) {
        bucket_mut(&mut self.buckets, group, value_key)[side_slot(entry.side)].push(entry);
        self.len += 1;
    }

    /// Stored tuples of `side` for `(group, value)` — what a rewritten query
    /// bound on the *other* side is matched against.
    pub fn candidates(
        &self,
        group: &str,
        value_key: &str,
        side: Side,
    ) -> impl Iterator<Item = &StoredValueTuple> {
        self.buckets
            .get(lookup_key(&(group, value_key)))
            .map(|slots| slots[side_slot(side)].as_slice())
            .unwrap_or(&[])
            .iter()
    }

    /// Number of candidates (evaluator filtering work per join message).
    pub fn candidate_count(&self, group: &str, value_key: &str, side: Side) -> usize {
        self.buckets
            .get(lookup_key(&(group, value_key)))
            .map_or(0, |slots| slots[side_slot(side)].len())
    }

    /// Iterates every stored entry with its `(group, value)` key, in
    /// arbitrary order (anti-entropy digests; the digest combination is
    /// order-independent).
    pub fn entries(&self) -> impl Iterator<Item = (&str, &str, &StoredValueTuple)> {
        self.buckets
            .iter()
            .flat_map(|(key, slots)| slots.iter().flatten().map(move |e| (&*key.a, &*key.b, e)))
    }

    /// Total stored tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes entries whose index identifier satisfies the predicate,
    /// returning them with their `(group, value)` keys.
    pub fn extract_where(
        &mut self,
        mut pred: impl FnMut(Id) -> bool,
    ) -> Vec<(String, String, StoredValueTuple)> {
        let mut out = Vec::new();
        for (key, slots) in self.buckets.iter_mut() {
            for side_entries in slots.iter_mut() {
                let mut i = 0;
                while i < side_entries.len() {
                    if pred(side_entries[i].index_id) {
                        out.push((
                            key.a.to_string(),
                            key.b.to_string(),
                            side_entries.swap_remove(i),
                        ));
                    } else {
                        i += 1;
                    }
                }
            }
        }
        self.buckets
            .retain(|_, slots| slots.iter().any(|v| !v.is_empty()));
        self.len -= out.len();
        out
    }

    /// Removes and returns all entries.
    pub fn drain_all(&mut self) -> Vec<(String, String, StoredValueTuple)> {
        self.extract_where(|_| true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_relational::{DataType, RelationSchema, Timestamp, Value};

    fn tuple() -> Arc<Tuple> {
        let schema = Arc::new(RelationSchema::of("R", &[("A", DataType::Int)]).unwrap());
        Arc::new(Tuple::new(schema, vec![Value::Int(1)], Timestamp(0), 0).unwrap())
    }

    #[test]
    fn matching_is_group_and_side_scoped() {
        let mut s = VStore::new();
        s.insert(
            "g1",
            "v25",
            StoredValueTuple {
                index_id: Id(0),
                side: Side::Left,
                tuple: tuple(),
            },
        );
        assert_eq!(s.candidate_count("g1", "v25", Side::Left), 1);
        assert_eq!(s.candidate_count("g1", "v25", Side::Right), 0);
        assert_eq!(s.candidate_count("g2", "v25", Side::Left), 0, "other group");
        assert_eq!(s.candidate_count("g1", "v26", Side::Left), 0, "other value");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn extract_and_drain() {
        let mut s = VStore::new();
        s.insert(
            "g",
            "v",
            StoredValueTuple {
                index_id: Id(1),
                side: Side::Left,
                tuple: tuple(),
            },
        );
        s.insert(
            "g",
            "v",
            StoredValueTuple {
                index_id: Id(2),
                side: Side::Right,
                tuple: tuple(),
            },
        );
        let moved = s.extract_where(|id| id == Id(1));
        assert_eq!(moved.len(), 1);
        assert_eq!(moved[0].0, "g");
        assert_eq!(s.len(), 1);
        assert_eq!(s.drain_all().len(), 1);
        assert!(s.is_empty());
    }
}
