//! Descriptive statistics for load-distribution figures.
//!
//! The paper's distribution plots show per-node load curves; in a text
//! harness we summarize each curve by its Gini coefficient, the load share
//! of the most-loaded nodes, percentiles and utilization (fraction of nodes
//! that carry any load at all).

/// Gini coefficient of a non-negative sample (0 = perfectly even,
/// → 1 = concentrated on one node). Returns 0 for empty or all-zero input.
pub fn gini(values: &[f64]) -> f64 {
    let n = values.len();
    if n == 0 {
        return 0.0;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    let total: f64 = sorted.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    // G = (2 * sum_i i*x_i) / (n * total) - (n + 1) / n, with 1-based i
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, x)| (i + 1) as f64 * x)
        .sum();
    (2.0 * weighted) / (n as f64 * total) - (n as f64 + 1.0) / n as f64
}

/// The values sorted in descending order.
pub fn sorted_desc(values: &[f64]) -> Vec<f64> {
    let mut v = values.to_vec();
    v.sort_by(|a, b| f64::total_cmp(b, a));
    v
}

/// Share of the total carried by the most-loaded `frac` of the population
/// (e.g. `top_share(loads, 0.01)` = load fraction on the top 1% of nodes).
pub fn top_share(values: &[f64], frac: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let sorted = sorted_desc(values);
    let total: f64 = sorted.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    let k = ((values.len() as f64 * frac).ceil() as usize).clamp(1, values.len());
    sorted[..k].iter().sum::<f64>() / total
}

/// `p`-th percentile (0..=100) of the sorted data, by **rounded
/// linear-interpolation rank**: the element at 0-based index
/// `round((p/100) · (n − 1))`. Note this is *not* textbook nearest-rank
/// `⌈(p/100) · n⌉` — for `n = 5`, `p = 20` this picks the second element
/// where nearest-rank picks the first. The golden files pin this behavior;
/// changing the formula would shift every percentile column.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut v = values.to_vec();
    v.sort_by(f64::total_cmp);
    let rank = ((p / 100.0) * (v.len() as f64 - 1.0)).round() as usize;
    v[rank.min(v.len() - 1)]
}

/// Arithmetic mean (0 for empty input).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Maximum (0 for empty input).
pub fn max(values: &[f64]) -> f64 {
    values.iter().copied().fold(0.0, f64::max)
}

/// Fraction of entries that are strictly positive — the paper's "network
/// utilization" (percentage of nodes participating in query processing).
pub fn utilization(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|&&v| v > 0.0).count() as f64 / values.len() as f64
}

/// Converts integer loads to `f64` for the functions above.
pub fn to_f64<T: Copy + Into<f64>>(values: &[T]) -> Vec<f64> {
    values.iter().map(|&v| v.into()).collect()
}

/// Converts `u64`/`usize` loads (not `Into<f64>`) losslessly enough for
/// statistics.
pub fn loads_to_f64(values: &[u64]) -> Vec<f64> {
    values.iter().map(|&v| v as f64).collect()
}

/// Summary of one load-distribution curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DistributionSummary {
    /// Gini coefficient.
    pub gini: f64,
    /// Maximum per-node load.
    pub max: f64,
    /// Mean per-node load.
    pub mean: f64,
    /// Load share of the top 1% of nodes.
    pub top1: f64,
    /// Load share of the top 10% of nodes.
    pub top10: f64,
    /// Fraction of nodes with any load.
    pub utilization: f64,
}

impl DistributionSummary {
    /// Computes the summary of a curve.
    ///
    /// Loads are produced by counting, so non-finite values always indicate
    /// an upstream bug — flagged here (the aggregation entry point) in debug
    /// builds. The individual statistics below use `f64::total_cmp` and
    /// therefore never panic on NaN in release sweeps; NaN merely sorts
    /// after +∞ and poisons sums, which the debug assertion surfaces early.
    pub fn of(values: &[f64]) -> Self {
        debug_assert!(
            values.iter().all(|v| v.is_finite()),
            "non-finite load in distribution input"
        );
        DistributionSummary {
            gini: gini(values),
            max: max(values),
            mean: mean(values),
            top1: top_share(values, 0.01),
            top10: top_share(values, 0.10),
            utilization: utilization(values),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gini_of_uniform_is_zero() {
        assert!(gini(&[5.0, 5.0, 5.0, 5.0]).abs() < 1e-9);
    }

    #[test]
    fn gini_of_concentrated_approaches_one() {
        let mut v = vec![0.0; 100];
        v[0] = 100.0;
        assert!(gini(&v) > 0.98);
    }

    #[test]
    fn gini_is_scale_invariant() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [10.0, 20.0, 30.0, 40.0];
        assert!((gini(&a) - gini(&b)).abs() < 1e-12);
    }

    #[test]
    fn gini_handles_degenerate_input() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn top_share_concentration() {
        let mut v = vec![1.0; 100];
        v[0] = 901.0; // total 1000, top node has 90.1%
        assert!((top_share(&v, 0.01) - 0.901).abs() < 1e-9);
        assert!(top_share(&v, 1.0) > 0.999);
    }

    #[test]
    fn percentile_rounded_interpolation_rank() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
        // Discriminating cases pinning the documented formula
        // round((p/100)·(n−1)) against textbook nearest-rank ⌈(p/100)·n⌉:
        // p=20 → round(0.8) = index 1 → 2.0 (nearest-rank would give 1.0);
        // p=40 → round(1.6) = index 2 → 3.0 (nearest-rank would give 2.0).
        assert_eq!(percentile(&v, 20.0), 2.0);
        assert_eq!(percentile(&v, 40.0), 3.0);
    }

    #[test]
    fn percentile_boundaries() {
        // n = 1: every percentile is the single element.
        assert_eq!(percentile(&[7.0], 0.0), 7.0);
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
        assert_eq!(percentile(&[7.0], 100.0), 7.0);
        // Empty input.
        assert_eq!(percentile(&[], 50.0), 0.0);
        // Repeated values collapse to the same answer at every rank.
        let v = [4.0, 4.0, 4.0, 4.0];
        for p in [0.0, 25.0, 50.0, 75.0, 100.0] {
            assert_eq!(percentile(&v, p), 4.0);
        }
        // Unsorted input is sorted internally.
        assert_eq!(percentile(&[5.0, 1.0, 3.0], 100.0), 5.0);
    }

    #[test]
    fn nan_input_does_not_panic() {
        // Before the switch to `f64::total_cmp`, any NaN load aborted the
        // whole experiment sweep via `partial_cmp().expect(...)` inside
        // sort. Now NaN sorts deterministically (after +∞) and the
        // functions return without panicking.
        let v = [1.0, f64::NAN, 3.0];
        let g = gini(&v);
        assert!(g.is_nan() || g.is_finite()); // no panic is the contract
        let d = sorted_desc(&v);
        assert_eq!(d.len(), 3);
        assert!(d[0].is_nan()); // total order: NaN above +inf descending
        let t = top_share(&v, 0.5);
        assert!(t.is_nan() || t.is_finite());
        let p = percentile(&v, 100.0);
        assert!(p.is_nan()); // NaN sorts last ascending
        assert_eq!(percentile(&v, 0.0), 1.0);
    }

    #[test]
    fn utilization_counts_positive() {
        assert!((utilization(&[0.0, 1.0, 2.0, 0.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn summary_fields_consistent() {
        let v = [0.0, 10.0, 10.0, 0.0];
        let s = DistributionSummary::of(&v);
        assert_eq!(s.max, 10.0);
        assert_eq!(s.mean, 5.0);
        assert!((s.utilization - 0.5).abs() < 1e-12);
    }
}
