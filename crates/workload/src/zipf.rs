//! A Zipf-distributed sampler over `0..n`.
//!
//! The paper's experiments "assume a highly skewed distribution for all
//! attributes" (Section 4.3.6); Zipf is the standard model. Implemented from
//! scratch (the offered `rand` crate does not bundle `rand_distr`) via an
//! inverse-CDF table with binary search — O(n) setup, O(log n) per sample.

use rand::Rng;

/// Zipf sampler: rank `r` (0-based) is drawn with probability proportional
/// to `1 / (r + 1)^theta`. `theta = 0` degenerates to the uniform
/// distribution.
#[derive(Clone, Debug)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `0..n` with skew `theta >= 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative/non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf domain must be non-empty");
        assert!(
            theta >= 0.0 && theta.is_finite(),
            "theta must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // guard against rounding keeping the last entry below 1.0
        *cdf.last_mut().expect("non-empty") = 1.0;
        Zipf { cdf }
    }

    /// Domain size.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Draws one rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // first index with cdf[i] >= u
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!(c > 1500 && c < 2500, "count {c} far from uniform 2000");
        }
    }

    #[test]
    fn skewed_when_theta_high() {
        let z = Zipf::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(
            counts[0] > 10 * counts[50].max(1),
            "rank 0 ({}) must dominate rank 50 ({})",
            counts[0],
            counts[50]
        );
        // monotone-ish head
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[10]);
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(7, 0.8);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    fn singleton_domain() {
        let z = Zipf::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_domain_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
