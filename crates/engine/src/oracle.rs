//! A centralized evaluation oracle.
//!
//! Computes, by brute force over all posed queries and inserted tuples, the
//! exact set of notification contents the distributed algorithms must
//! deliver: every pair `(r, s)` with `pubT(r) >= insT(q)`,
//! `pubT(s) >= insT(q)`, both sides' filters passing and the join condition
//! satisfied. Used by the correctness tests to check all four algorithms
//! against the same ground truth.

use std::collections::HashSet;
use std::sync::Arc;

use cq_relational::{Notification, QueryRef, Result, RewrittenQuery, Side, Tuple};

/// The brute-force oracle.
#[derive(Clone, Debug, Default)]
pub struct Oracle {
    queries: Vec<QueryRef>,
    tuples: Vec<Arc<Tuple>>,
}

impl Oracle {
    /// An empty oracle.
    pub fn new() -> Self {
        Oracle::default()
    }

    /// Registers a posed query.
    pub fn add_query(&mut self, q: QueryRef) {
        self.queries.push(q);
    }

    /// Registers an inserted tuple.
    pub fn add_tuple(&mut self, t: Arc<Tuple>) {
        self.tuples.push(t);
    }

    /// Registers many queries and tuples at once (e.g. from the network's
    /// logs).
    pub fn ingest(&mut self, queries: &[QueryRef], tuples: &[Arc<Tuple>]) {
        self.queries.extend(queries.iter().cloned());
        self.tuples.extend(tuples.iter().cloned());
    }

    /// The exact set of notification contents that must be delivered.
    pub fn expected(&self) -> Result<HashSet<Notification>> {
        let mut out = HashSet::new();
        for q in &self.queries {
            let left_rel = q.relation(Side::Left);
            let right_rel = q.relation(Side::Right);
            for r in self.tuples.iter().filter(|t| t.relation() == left_rel) {
                // Reuse the rewriting machinery: rewriting + matching is by
                // construction equivalent to checking the join condition
                // (verified independently by the relational property tests).
                let Some(rq) = RewrittenQuery::rewrite_value(q, Side::Left, r)? else {
                    continue;
                };
                for s in self.tuples.iter().filter(|t| t.relation() == right_rel) {
                    if let Some(n) = rq.match_tuple(s)? {
                        out.insert(n);
                    }
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_relational::{
        Catalog, DataType, Expr, JoinQuery, QueryKey, QuerySpec, RelationSchema, SelectItem,
        Timestamp, Value,
    };

    fn setup() -> (Catalog, QueryRef) {
        let mut c = Catalog::new();
        c.register(RelationSchema::of("R", &[("A", DataType::Int), ("B", DataType::Int)]).unwrap())
            .unwrap();
        c.register(RelationSchema::of("S", &[("C", DataType::Int), ("D", DataType::Int)]).unwrap())
            .unwrap();
        let q = Arc::new(
            JoinQuery::new(
                QuerySpec {
                    key: QueryKey::derive("n", 0),
                    subscriber: "n".into(),
                    ins_time: Timestamp(5),
                    relations: ["R".into(), "S".into()],
                    select: vec![
                        SelectItem {
                            side: Side::Left,
                            attr: "A".into(),
                        },
                        SelectItem {
                            side: Side::Right,
                            attr: "D".into(),
                        },
                    ],
                    conditions: [Expr::attr("B"), Expr::attr("C")],
                    filters: vec![],
                },
                &c,
            )
            .unwrap(),
        );
        (c, q)
    }

    fn tup(c: &Catalog, rel: &str, v: [i64; 2], t: u64, seq: u64) -> Arc<Tuple> {
        Arc::new(
            Tuple::new(
                c.get(rel).unwrap().clone(),
                v.into_iter().map(Value::Int).collect(),
                Timestamp(t),
                seq,
            )
            .unwrap(),
        )
    }

    #[test]
    fn oracle_joins_matching_pairs() {
        let (c, q) = setup();
        let mut o = Oracle::new();
        o.add_query(q);
        o.add_tuple(tup(&c, "R", [1, 7], 10, 0));
        o.add_tuple(tup(&c, "S", [7, 2], 11, 1)); // matches
        o.add_tuple(tup(&c, "S", [8, 3], 12, 2)); // join value differs
        o.add_tuple(tup(&c, "S", [7, 4], 3, 3)); // too old (pubT < insT)
        let set = o.expected().unwrap();
        assert_eq!(set.len(), 1);
        let n = set.iter().next().unwrap();
        assert_eq!(n.values, vec![Value::Int(1), Value::Int(2)]);
    }

    #[test]
    fn oracle_deduplicates_identical_content() {
        let (c, q) = setup();
        let mut o = Oracle::new();
        o.add_query(q);
        o.add_tuple(tup(&c, "R", [1, 7], 10, 0));
        o.add_tuple(tup(&c, "R", [1, 7], 11, 1)); // same content, later time
        o.add_tuple(tup(&c, "S", [7, 2], 12, 2));
        assert_eq!(o.expected().unwrap().len(), 1);
    }

    #[test]
    fn empty_oracle_expects_nothing() {
        assert!(Oracle::new().expected().unwrap().is_empty());
    }
}
