//! E4 — Figure "Comparison of the various index attribute selection
//! strategies in SAI" (Section 5.2.3).
//!
//! With a biased stream (`bos = 0.8`: relation R0 receives 4× the tuples of
//! R1), an SAI query indexed on the R0 side is rewritten four times as
//! often. The rate-based strategy probes the two candidate rewriters and
//! picks the colder side. Expected shape: lowest-rate < random in hops per
//! tuple; most-distinct optimizes distribution, not traffic.

use cq_engine::{Algorithm, IndexStrategy};
use cq_workload::WorkloadConfig;

use super::Scale;
use crate::harness::RunConfig;
use crate::parallel::run_many;
use crate::report::{fnum, Report};
use crate::stats;

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let nodes = scale.pick(128, 1024);
    let queries = scale.pick(60, 5000);
    let tuples = scale.pick(300, 800);
    let warmup = scale.pick(150, 400);
    let mut report = Report::new(
        "E4",
        &format!("SAI index-attribute strategies (N={nodes}, Q={queries}, bos=0.8)"),
        &["strategy", "hops/tuple", "probe msgs", "evaluator gini"],
    );
    let cfgs: Vec<RunConfig> = IndexStrategy::ALL
        .into_iter()
        .map(|strategy| RunConfig {
            algorithm: Algorithm::Sai,
            nodes,
            queries,
            tuples,
            warmup_tuples: warmup,
            strategy,
            measure_stream_only: true,
            workload: WorkloadConfig {
                bos_ratio: 0.8,
                domain: scale.pick(40, 400),
                ..WorkloadConfig::default()
            },
            ..RunConfig::new(Algorithm::Sai)
        })
        .collect();
    for (strategy, r) in IndexStrategy::ALL.into_iter().zip(run_many(&cfgs)) {
        report.row(vec![
            strategy.name().to_string(),
            fnum(r.hops_per_tuple()),
            r.install_traffic_of(cq_engine::TrafficKind::Probe)
                .messages
                .to_string(),
            fnum(stats::gini(&r.evaluator_filtering)),
        ]);
    }
    report.note("paper: choose the attribute with the lower tuple-arrival rate to cut traffic");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowest_rate_beats_random_on_biased_streams() {
        let r = run(Scale::Quick);
        let mut hops = std::collections::HashMap::new();
        for line in r.to_csv().lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            hops.insert(cells[0].to_string(), cells[1].parse::<f64>().unwrap());
        }
        assert!(
            hops["lowest-rate"] <= hops["random"],
            "lowest-rate {} should not exceed random {}",
            hops["lowest-rate"],
            hops["random"]
        );
    }
}
