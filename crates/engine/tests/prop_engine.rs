//! Property-based end-to-end test: for random interleavings of query
//! postings and tuple insertions, all four algorithms must deliver exactly
//! the oracle's notification set — and therefore agree with each other.

use cq_engine::{Algorithm, EngineConfig, Network, Oracle};
use cq_relational::{Catalog, DataType, RelationSchema, Value};
use proptest::prelude::*;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(RelationSchema::of("R", &[("A", DataType::Int), ("B", DataType::Int)]).unwrap())
        .unwrap();
    c.register(RelationSchema::of("S", &[("D", DataType::Int), ("E", DataType::Int)]).unwrap())
        .unwrap();
    c
}

/// One step of a random workload.
#[derive(Clone, Debug)]
enum Step {
    PoseSimple,
    PoseWithFilter(i64),
    InsertR(i64, i64),
    InsertS(i64, i64),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        1 => Just(Step::PoseSimple),
        1 => (-2i64..2).prop_map(Step::PoseWithFilter),
        4 => ((-20i64..20), (-3i64..3)).prop_map(|(a, b)| Step::InsertR(a, b)),
        4 => ((-20i64..20), (-3i64..3)).prop_map(|(d, e)| Step::InsertS(d, e)),
    ]
}

fn run(alg: Algorithm, steps: &[Step], seed: u64) -> Network {
    let mut net = Network::new(
        EngineConfig::new(alg).with_nodes(32).with_seed(seed),
        catalog(),
    );
    for (n, step) in steps.iter().enumerate() {
        let from = net.node_at(n % 32);
        match step {
            Step::PoseSimple => {
                net.pose_query_sql(from, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
                    .unwrap();
            }
            Step::PoseWithFilter(v) => {
                net.pose_query_sql(
                    from,
                    &format!("SELECT R.A FROM R, S WHERE R.B = S.E AND S.D = {v}"),
                )
                .unwrap();
            }
            Step::InsertR(a, b) => {
                net.insert_tuple(from, "R", vec![Value::Int(*a), Value::Int(*b)])
                    .unwrap();
            }
            Step::InsertS(d, e) => {
                net.insert_tuple(from, "S", vec![Value::Int(*d), Value::Int(*e)])
                    .unwrap();
            }
        }
    }
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_algorithms_agree_with_the_oracle(
        steps in prop::collection::vec(step_strategy(), 1..40),
        seed in 0u64..1000,
    ) {
        let mut reference: Option<std::collections::HashSet<_>> = None;
        for alg in Algorithm::ALL {
            let net = run(alg, &steps, seed);
            let mut oracle = Oracle::new();
            oracle.ingest(net.posed_queries(), net.inserted_tuples());
            let expected = oracle.expected().unwrap();
            let delivered = net.delivered_set();
            prop_assert_eq!(
                &delivered, &expected,
                "{} diverged from oracle", alg
            );
            if let Some(r) = &reference {
                prop_assert_eq!(r, &delivered, "{} diverged from other algorithms", alg);
            } else {
                reference = Some(delivered);
            }
        }
    }
}
