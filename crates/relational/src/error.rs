//! Error types for the relational layer.

use std::error::Error;
use std::fmt;

/// Errors produced while building schemas, tuples, queries, or parsing SQL.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RelationalError {
    /// Two attributes with the same name in one relation.
    DuplicateAttribute {
        /// Relation being defined.
        relation: String,
        /// Offending attribute name.
        attribute: String,
    },
    /// A relation name registered twice.
    DuplicateRelation {
        /// Offending relation name.
        relation: String,
    },
    /// Reference to a relation the catalog does not know.
    UnknownRelation {
        /// Offending relation name.
        relation: String,
    },
    /// Reference to an attribute the relation does not have.
    UnknownAttribute {
        /// Relation searched.
        relation: String,
        /// Offending attribute name.
        attribute: String,
    },
    /// A tuple's values do not match its schema (wrong arity or types).
    SchemaMismatch {
        /// Relation the tuple claims to belong to.
        relation: String,
        /// Human-readable detail.
        detail: String,
    },
    /// Expression evaluation failed (type error, overflow, division by zero).
    EvalError {
        /// Human-readable detail.
        detail: String,
    },
    /// SQL text could not be parsed.
    ParseError {
        /// Byte offset of the error in the input.
        offset: usize,
        /// Human-readable detail.
        detail: String,
    },
    /// The parsed query is outside the supported class
    /// (continuous two-way equi-joins).
    UnsupportedQuery {
        /// Human-readable detail.
        detail: String,
    },
}

impl fmt::Display for RelationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationalError::DuplicateAttribute {
                relation,
                attribute,
            } => {
                write!(
                    f,
                    "duplicate attribute {attribute:?} in relation {relation:?}"
                )
            }
            RelationalError::DuplicateRelation { relation } => {
                write!(f, "relation {relation:?} already registered")
            }
            RelationalError::UnknownRelation { relation } => {
                write!(f, "unknown relation {relation:?}")
            }
            RelationalError::UnknownAttribute {
                relation,
                attribute,
            } => {
                write!(f, "relation {relation:?} has no attribute {attribute:?}")
            }
            RelationalError::SchemaMismatch { relation, detail } => {
                write!(f, "tuple does not match schema of {relation:?}: {detail}")
            }
            RelationalError::EvalError { detail } => write!(f, "evaluation error: {detail}"),
            RelationalError::ParseError { offset, detail } => {
                write!(f, "parse error at byte {offset}: {detail}")
            }
            RelationalError::UnsupportedQuery { detail } => {
                write!(f, "unsupported query: {detail}")
            }
        }
    }
}

impl Error for RelationalError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, RelationalError>;
