//! Regression test for run determinism: a fixed seed must produce
//! byte-identical metric vectors on every execution, whether runs go
//! through the sequential harness or fan out over worker threads.
//!
//! This pins the property the parallel harness and the hash-map changes
//! (SipHash → Fx) rely on: metric aggregation is order-independent, and
//! each `RunConfig` owns an independent seeded `Network`, so scheduling
//! cannot leak into results.

use cq_engine::Algorithm;
use cq_sim::{run, run_many, set_jobs, FaultConfig, RunConfig, RunResult};
use cq_workload::WorkloadConfig;

fn cfgs() -> Vec<RunConfig> {
    [
        Algorithm::Sai,
        Algorithm::DaiQ,
        Algorithm::DaiT,
        Algorithm::DaiV,
    ]
    .into_iter()
    .enumerate()
    .map(|(i, alg)| RunConfig {
        algorithm: alg,
        nodes: 48,
        queries: 12,
        tuples: 80,
        warmup_tuples: 10,
        workload: WorkloadConfig {
            seed: 1000 + i as u64,
            ..WorkloadConfig::default()
        },
        ..RunConfig::new(alg)
    })
    .collect()
}

/// The same runs under a nonzero fault model: seeded loss, duplication,
/// delay, retransmissions, abrupt failures and replication all active.
fn faulty_cfgs() -> Vec<RunConfig> {
    cfgs()
        .into_iter()
        .map(|mut cfg| {
            let mut fault = FaultConfig::lossy(0.15, 77);
            fault.replication = 2;
            cfg.fault = fault;
            cfg.failures = 1;
            cfg.retain_notifications = true;
            cfg
        })
        .collect()
}

/// Exact equality over every metric a figure could read.
fn assert_identical(a: &RunResult, b: &RunResult, label: &str) {
    assert_eq!(a.filtering, b.filtering, "{label}: filtering");
    assert_eq!(
        a.rewriter_filtering, b.rewriter_filtering,
        "{label}: rewriter filtering"
    );
    assert_eq!(
        a.evaluator_filtering, b.evaluator_filtering,
        "{label}: evaluator filtering"
    );
    assert_eq!(a.storage, b.storage, "{label}: storage");
    assert_eq!(
        a.evaluator_storage, b.evaluator_storage,
        "{label}: evaluator storage"
    );
    assert_eq!(
        a.stored_rewritten, b.stored_rewritten,
        "{label}: stored rewritten"
    );
    assert_eq!(a.stored_tuples, b.stored_tuples, "{label}: stored tuples");
    assert_eq!(a.traffic, b.traffic, "{label}: traffic");
    assert_eq!(a.total_traffic, b.total_traffic, "{label}: total traffic");
    assert_eq!(
        a.install_traffic, b.install_traffic,
        "{label}: install traffic"
    );
    assert_eq!(a.notifications, b.notifications, "{label}: notifications");
    assert_eq!(a.streamed, b.streamed, "{label}: streamed");
    assert_eq!(a.faults, b.faults, "{label}: fault counters");
    assert_eq!(
        a.expected_notifications, b.expected_notifications,
        "{label}: expected notifications"
    );
    assert_eq!(
        a.delivered_notifications, b.delivered_notifications,
        "{label}: delivered notifications"
    );
    assert_eq!(a.recall, b.recall, "{label}: recall");
}

#[test]
fn same_seed_is_bit_identical_across_sequential_runs() {
    for cfg in cfgs() {
        let first = run(&cfg);
        let second = run(&cfg);
        assert_identical(&first, &second, cfg.algorithm.name());
    }
}

#[test]
fn parallel_runs_match_sequential_bit_for_bit() {
    let cfgs = cfgs();
    let sequential: Vec<RunResult> = cfgs.iter().map(run).collect();

    set_jobs(4);
    let parallel = run_many(&cfgs);
    set_jobs(1);

    assert_eq!(parallel.len(), sequential.len());
    for ((cfg, seq), par) in cfgs.iter().zip(&sequential).zip(&parallel) {
        assert_identical(seq, par, cfg.algorithm.name());
    }
}

#[test]
fn faulty_runs_are_bit_identical_too() {
    // The fault pipe draws from its own seeded generator, so an active
    // fault model must stay exactly as deterministic as a clean run —
    // sequentially and across worker threads.
    let cfgs = faulty_cfgs();
    let sequential: Vec<RunResult> = cfgs.iter().map(run).collect();
    for (cfg, first) in cfgs.iter().zip(&sequential) {
        let second = run(cfg);
        assert_identical(first, &second, cfg.algorithm.name());
        assert!(
            first.faults.messages_lost > 0,
            "{}: the fault model must actually fire",
            cfg.algorithm.name()
        );
    }

    set_jobs(4);
    let parallel = run_many(&cfgs);
    set_jobs(1);
    for ((cfg, seq), par) in cfgs.iter().zip(&sequential).zip(&parallel) {
        assert_identical(seq, par, cfg.algorithm.name());
    }
}
