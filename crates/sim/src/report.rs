//! Plain-text rendering of experiment results: aligned tables that stand in
//! for the paper's figures, plus CSV emission for external plotting.

use std::fmt::Write as _;

/// A rectangular result table (one per reproduced figure/table).
#[derive(Clone, Debug)]
pub struct Report {
    /// Identifier, e.g. `"E2"` or `"T1"`.
    pub id: String,
    /// Human-readable title (the paper's caption).
    pub title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Report {
    /// Starts a report with column headers.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Report {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        debug_assert_eq!(cells.len(), self.headers.len(), "row arity");
        self.rows.push(cells);
        self
    }

    /// Appends a free-form note shown under the table (e.g. the expected
    /// shape from the paper).
    pub fn note(&mut self, text: &str) -> &mut Self {
        self.notes.push(text.to_string());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the report holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {}: {} ==", self.id, self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                let _ = write!(s, "{:>width$}", c, width = widths[i]);
            }
            let _ = writeln!(out, "{s}");
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        for n in &self.notes {
            let _ = writeln!(out, "# {n}");
        }
        out
    }

    /// Renders the same data as CSV (headers first).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Formats a float with sensible precision for tables.
pub fn fnum(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut r = Report::new("E0", "demo", &["x", "value"]);
        r.row(vec!["1".into(), "10".into()]);
        r.row(vec!["100".into(), "2".into()]);
        let s = r.render();
        assert!(s.contains("E0: demo"));
        let lines: Vec<&str> = s.lines().collect();
        // title + header + separator + 2 rows
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[3].len(), lines[4].len(), "rows aligned");
    }

    #[test]
    fn csv_escapes_commas() {
        let mut r = Report::new("E0", "demo", &["a,b", "c"]);
        r.row(vec!["x\"y".into(), "z".into()]);
        let csv = r.to_csv();
        assert!(csv.starts_with("\"a,b\",c\n"));
        assert!(csv.contains("\"x\"\"y\",z"));
    }

    #[test]
    fn fnum_scales_precision() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(0.1234), "0.123");
        assert_eq!(fnum(12.34), "12.3");
        assert_eq!(fnum(1234.7), "1235");
    }

    #[test]
    fn notes_are_rendered() {
        let mut r = Report::new("E1", "t", &["a"]);
        r.row(vec!["1".into()]).note("expected shape");
        assert!(r.render().contains("# expected shape"));
    }
}
