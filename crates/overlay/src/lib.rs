//! # cq-overlay — Chord DHT simulator
//!
//! The structured-overlay substrate of the continuous equi-join system
//! (the paper's Chapter 2): an in-process, deterministic Chord ring with
//!
//! * consistent hashing of string keys onto an `m`-bit identifier circle,
//! * per-node successor lists, predecessor pointers and finger tables,
//! * greedy `O(log N)` routing that walks real finger tables hop by hop,
//! * joins, voluntary leaves, abrupt failures, and the three periodic
//!   stabilization algorithms (`stabilize`, `fix_fingers`,
//!   `check_predecessor`),
//! * the paper's API extensions: `send(msg, I)` (= [`Ring::route`]) and
//!   `multisend(msg, L)` in both the recursive and the iterative design.
//!
//! All state lives inside [`Ring`]; nodes are addressed by stable
//! [`NodeHandle`]s so that a departed node can later rejoin with the same
//! identifier (needed for offline notification delivery, Section 4.6).
//!
//! ```
//! use cq_overlay::{IdSpace, Ring, hash_parts};
//!
//! // A stable 100-node network, as the experiments assume.
//! let ring = Ring::build(IdSpace::new(32), 100, "node-");
//!
//! // Index something under Hash(R + B + "7"), the paper's VIndex scheme.
//! let id = hash_parts(ring.space(), &["R", "B", "7"]);
//! let from = ring.alive_nodes().next().unwrap();
//! let route = ring.route(from, id).unwrap();
//! assert_eq!(route.owner, ring.owner_of(id).unwrap());
//! assert!(route.hops() <= 14); // O(log N)
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod hash;
pub mod id;
pub mod multisend;
pub mod node;
pub mod ring;
pub mod stats;

pub use error::{OverlayError, Result};
pub use hash::{fnv1a, hash_key, hash_parts, KeyHasher};
pub use id::{Id, IdSpace, MAX_BITS};
pub use multisend::MultisendOutcome;
pub use node::{Node, NodeHandle};
pub use ring::{Ring, Route, DEFAULT_SUCCESSOR_LIST_LEN};
pub use stats::TrafficStats;
