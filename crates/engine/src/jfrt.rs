//! The Join Fingers Routing Table (JFRT, Section 4.7).
//!
//! A rewriter repeatedly reindexes rewritten queries toward value-level
//! identifiers. The JFRT caches, per value-level identifier, the evaluator
//! node discovered by the first O(log N) lookup; subsequent reindex messages
//! for the same identifier reach the evaluator in a single hop. Under churn
//! a cached entry can go stale; a stale hit costs one wasted hop and falls
//! back to ordinary routing.

use cq_fasthash::FxHashMap;
use cq_overlay::{Id, NodeHandle};

/// Outcome of consulting the JFRT for one reindex message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JfrtLookup {
    /// Cache hit: deliver directly to the node in one hop.
    Hit(NodeHandle),
    /// Cache miss: route normally, then insert the discovered evaluator.
    Miss,
    /// Stale entry: the cached node no longer owns the identifier; one hop
    /// was wasted reaching it, then route normally.
    Stale(NodeHandle),
}

/// Per-rewriter cache of `value-level identifier → evaluator`.
#[derive(Clone, Debug, Default)]
pub struct Jfrt {
    entries: FxHashMap<Id, NodeHandle>,
    hits: u64,
    misses: u64,
    stale: u64,
}

impl Jfrt {
    /// An empty table.
    pub fn new() -> Self {
        Jfrt::default()
    }

    /// Consults the cache; `still_owner` must report whether a node is alive
    /// and currently responsible for the identifier (a node can verify this
    /// with one direct probe).
    pub fn lookup(&mut self, id: Id, still_owner: impl Fn(NodeHandle, Id) -> bool) -> JfrtLookup {
        match self.entries.get(&id) {
            Some(&node) if still_owner(node, id) => {
                self.hits += 1;
                JfrtLookup::Hit(node)
            }
            Some(&node) => {
                self.stale += 1;
                self.entries.remove(&id);
                JfrtLookup::Stale(node)
            }
            None => {
                self.misses += 1;
                JfrtLookup::Miss
            }
        }
    }

    /// Records the evaluator discovered by a routed lookup.
    pub fn record(&mut self, id: Id, node: NodeHandle) {
        self.entries.insert(id, node);
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `(hits, misses, stale)` counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.stale)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut j = Jfrt::new();
        let id = Id(42);
        let n = NodeHandle::from_index(3);
        assert_eq!(j.lookup(id, |_, _| true), JfrtLookup::Miss);
        j.record(id, n);
        assert_eq!(j.lookup(id, |_, _| true), JfrtLookup::Hit(n));
        assert_eq!(j.stats(), (1, 1, 0));
    }

    #[test]
    fn stale_entry_is_evicted() {
        let mut j = Jfrt::new();
        let id = Id(42);
        j.record(id, NodeHandle::from_index(3));
        assert_eq!(
            j.lookup(id, |_, _| false),
            JfrtLookup::Stale(NodeHandle::from_index(3))
        );
        // entry evicted: next lookup is a miss
        assert_eq!(j.lookup(id, |_, _| true), JfrtLookup::Miss);
        assert!(j.is_empty());
    }

    #[test]
    fn record_overwrites() {
        let mut j = Jfrt::new();
        j.record(Id(1), NodeHandle::from_index(1));
        j.record(Id(1), NodeHandle::from_index(2));
        assert_eq!(j.len(), 1);
        assert_eq!(
            j.lookup(Id(1), |_, _| true),
            JfrtLookup::Hit(NodeHandle::from_index(2))
        );
    }
}
