//! Regenerates the paper's evaluation figures and Table 4.1.
//!
//! ```text
//! experiments [--full] [--csv] [--jobs N] [--trace DIR] [--trace-format FMT] [ids...]
//!
//!   --full       paper-approaching scale (default: quick)
//!   --csv        also print CSV blocks after each table
//!   --jobs N     fan independent simulation runs over N worker threads
//!                (default: 1 = sequential; results are identical either way)
//!   --trace DIR  write one trace file per simulation run into DIR
//!                (created if missing; tracing observes only — the report
//!                output is identical with or without it)
//!   --trace-format FMT
//!                trace serialization: `jsonl` (default) or `binary`
//!                (wire-framed; convert back with the trace_dump tool)
//!   ids          e01..e16, t01, a01, ef01 (default: all)
//! ```

use std::path::PathBuf;
use std::time::Instant;

use cq_sim::experiments::{all, Scale};
use cq_sim::TraceFormat;

fn parse_trace_format(s: &str) -> TraceFormat {
    match s {
        "jsonl" => TraceFormat::Jsonl,
        "binary" => TraceFormat::Binary,
        other => {
            eprintln!("unknown trace format {other} (expected `jsonl` or `binary`)");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut full = false;
    let mut csv = false;
    let mut trace: Option<PathBuf> = None;
    let mut ids: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--full" => full = true,
            "--csv" => csv = true,
            "--trace" => {
                let dir = iter.next().unwrap_or_else(|| {
                    eprintln!("--trace expects a directory path");
                    std::process::exit(2);
                });
                trace = Some(PathBuf::from(dir));
            }
            other if other.starts_with("--trace=") => {
                trace = Some(PathBuf::from(&other["--trace=".len()..]));
            }
            "--trace-format" => {
                let fmt = iter.next().unwrap_or_else(|| {
                    eprintln!("--trace-format expects `jsonl` or `binary`");
                    std::process::exit(2);
                });
                cq_sim::set_trace_format(parse_trace_format(fmt));
            }
            other if other.starts_with("--trace-format=") => {
                cq_sim::set_trace_format(parse_trace_format(&other["--trace-format=".len()..]));
            }
            "--jobs" => {
                let n = iter
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--jobs expects a positive integer");
                        std::process::exit(2);
                    });
                cq_sim::set_jobs(n);
            }
            other if other.starts_with("--jobs=") => {
                let n = other["--jobs=".len()..]
                    .parse::<usize>()
                    .unwrap_or_else(|_| {
                        eprintln!("--jobs expects a positive integer");
                        std::process::exit(2);
                    });
                cq_sim::set_jobs(n);
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
            other => ids.push(other.to_string()),
        }
    }
    let scale = if full { Scale::Full } else { Scale::Quick };

    if let Some(dir) = trace {
        std::fs::create_dir_all(&dir).unwrap_or_else(|e| {
            eprintln!("cannot create trace directory {}: {e}", dir.display());
            std::process::exit(2);
        });
        // Stderr only: stdout is diffed against the committed goldens.
        eprintln!("[tracing: one trace file per run into {}]", dir.display());
        cq_sim::set_trace_dir(Some(dir));
    }

    let registry = all();
    let selected: Vec<_> = if ids.is_empty() {
        registry
    } else {
        registry
            .into_iter()
            .filter(|(id, _)| ids.iter().any(|want| want == *id))
            .collect()
    };
    if selected.is_empty() {
        eprintln!("no experiment matches; known ids: e01..e16, t01, a01, ef01, ef02");
        std::process::exit(2);
    }

    println!(
        "# Continuous equi-join experiments — scale: {}",
        if full { "full" } else { "quick" }
    );
    for (id, f) in selected {
        let start = Instant::now();
        let report = f(scale);
        let elapsed = start.elapsed();
        println!("{}", report.render());
        if csv {
            println!("```csv\n{}```", report.to_csv());
        }
        println!("[{} finished in {:.2?}]\n", id, elapsed);
    }
}
