//! Tokenizer for the supported SQL subset.

use crate::error::{RelationalError, Result};

/// A lexical token with its byte offset in the input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset where the token starts (for error reporting).
    pub offset: usize,
}

/// The kinds of token the SQL subset uses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Keyword `SELECT` (case-insensitive).
    Select,
    /// Keyword `FROM`.
    From,
    /// Keyword `WHERE`.
    Where,
    /// Keyword `AND`.
    And,
    /// Keyword `AS`.
    As,
    /// Identifier (relation, alias or attribute name).
    Ident(String),
    /// Integer literal (negative literals are handled by the parser).
    Int(i64),
    /// Single-quoted string literal.
    Str(String),
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `||`
    Concat,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// End of input.
    Eof,
}

/// Tokenizes the input, returning the token stream ending in
/// [`TokenKind::Eof`].
pub fn lex(input: &str) -> Result<Vec<Token>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        let kind = match c {
            ',' => {
                i += 1;
                TokenKind::Comma
            }
            '.' => {
                i += 1;
                TokenKind::Dot
            }
            '=' => {
                i += 1;
                TokenKind::Eq
            }
            '+' => {
                i += 1;
                TokenKind::Plus
            }
            '-' => {
                i += 1;
                TokenKind::Minus
            }
            '*' => {
                i += 1;
                TokenKind::Star
            }
            '(' => {
                i += 1;
                TokenKind::LParen
            }
            ')' => {
                i += 1;
                TokenKind::RParen
            }
            '|' => {
                if bytes.get(i + 1) == Some(&b'|') {
                    i += 2;
                    TokenKind::Concat
                } else {
                    return Err(err(start, "expected '||'"));
                }
            }
            '\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        Some(b'\'') => {
                            // '' escapes a quote inside the literal
                            if bytes.get(i + 1) == Some(&b'\'') {
                                s.push('\'');
                                i += 2;
                            } else {
                                i += 1;
                                break;
                            }
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                        None => return Err(err(start, "unterminated string literal")),
                    }
                }
                TokenKind::Str(s)
            }
            c if c.is_ascii_digit() => {
                while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let text = &input[start..i];
                let v: i64 = text
                    .parse()
                    .map_err(|_| err(start, &format!("integer literal {text:?} out of range")))?;
                TokenKind::Int(v)
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let word = &input[start..i];
                match word.to_ascii_uppercase().as_str() {
                    "SELECT" => TokenKind::Select,
                    "FROM" => TokenKind::From,
                    "WHERE" => TokenKind::Where,
                    "AND" => TokenKind::And,
                    "AS" => TokenKind::As,
                    _ => TokenKind::Ident(word.to_string()),
                }
            }
            other => return Err(err(start, &format!("unexpected character {other:?}"))),
        };
        tokens.push(Token {
            kind,
            offset: start,
        });
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        offset: input.len(),
    });
    Ok(tokens)
}

fn err(offset: usize, detail: &str) -> RelationalError {
    RelationalError::ParseError {
        offset,
        detail: detail.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        lex(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_keywords_case_insensitively() {
        assert_eq!(
            kinds("select FROM Where aNd as"),
            vec![
                TokenKind::Select,
                TokenKind::From,
                TokenKind::Where,
                TokenKind::And,
                TokenKind::As,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_qualified_attribute() {
        assert_eq!(
            kinds("R.A"),
            vec![
                TokenKind::Ident("R".into()),
                TokenKind::Dot,
                TokenKind::Ident("A".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_literals() {
        assert_eq!(
            kinds("42 'Smith' 'O''Hara'"),
            vec![
                TokenKind::Int(42),
                TokenKind::Str("Smith".into()),
                TokenKind::Str("O'Hara".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn lexes_operators() {
        assert_eq!(
            kinds("+ - * || = ( ) ,"),
            vec![
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Concat,
                TokenKind::Eq,
                TokenKind::LParen,
                TokenKind::RParen,
                TokenKind::Comma,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn reports_unterminated_string() {
        assert!(matches!(
            lex("'oops"),
            Err(RelationalError::ParseError { .. })
        ));
    }

    #[test]
    fn reports_stray_character() {
        assert!(matches!(
            lex("R ; S"),
            Err(RelationalError::ParseError { .. })
        ));
    }

    #[test]
    fn single_pipe_is_an_error() {
        assert!(matches!(
            lex("a | b"),
            Err(RelationalError::ParseError { .. })
        ));
    }
}
