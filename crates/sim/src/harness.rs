//! The experiment harness: builds a network + workload from a [`RunConfig`],
//! installs queries, streams tuples and collects the metric vectors the
//! figures are built from.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use cq_engine::{
    Algorithm, BinarySummarySink, EngineConfig, FaultConfig, FaultCounters, IndexStrategy,
    JsonlSummarySink, Network, Oracle, RecoveryCounters, SuspicionConfig, TraceSummary,
    TrafficKind,
};
use cq_overlay::TrafficStats;
use cq_workload::{Workload, WorkloadConfig};

/// Directory trace files are written into when tracing is enabled via
/// [`set_trace_dir`] (the experiments binary's `--trace <dir>` flag).
static TRACE_DIR: Mutex<Option<PathBuf>> = Mutex::new(None);
/// The serialization the trace files use (`--trace-format`).
static TRACE_FORMAT: Mutex<TraceFormat> = Mutex::new(TraceFormat::Jsonl);
/// Monotonic counter making trace file names unique across runs (and across
/// `--jobs` workers; the assignment order — not the file contents — depends
/// on scheduling under parallelism).
static TRACE_RUN: AtomicU64 = AtomicU64::new(0);

/// Serialization of the per-run trace files.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TraceFormat {
    /// One JSON object per line (`.jsonl`) — greppable, the default.
    #[default]
    Jsonl,
    /// One length-prefixed `cq_engine::wire` frame per event (`.trace`) —
    /// compact; convert back to JSONL with the `trace_dump` tool.
    Binary,
}

impl TraceFormat {
    /// The trace-file extension for this format.
    fn extension(self) -> &'static str {
        match self {
            TraceFormat::Jsonl => "jsonl",
            TraceFormat::Binary => "trace",
        }
    }
}

/// Enables tracing for every subsequent [`run`]: each run writes
/// `trace-NNNN-<alg>-<nodes>n-seed<seed>.<ext>` into `dir` and fills
/// [`RunResult::trace`] with a [`TraceSummary`]. Pass `None` to disable.
/// The extension and encoding follow [`set_trace_format`].
///
/// Tracing observes only — metric vectors and report output are identical
/// with it on or off (goldens are generated with it off).
pub fn set_trace_dir(dir: Option<PathBuf>) {
    *TRACE_DIR.lock().expect("trace dir lock") = dir;
}

/// Selects the trace-file serialization for every subsequent [`run`]
/// (default [`TraceFormat::Jsonl`]). Takes effect only while a trace
/// directory is set.
pub fn set_trace_format(format: TraceFormat) {
    *TRACE_FORMAT.lock().expect("trace format lock") = format;
}

fn trace_dir() -> Option<PathBuf> {
    TRACE_DIR.lock().expect("trace dir lock").clone()
}

fn trace_format() -> TraceFormat {
    *TRACE_FORMAT.lock().expect("trace format lock")
}

fn trace_file_name(dir: &Path, cfg: &RunConfig, format: TraceFormat) -> PathBuf {
    let n = TRACE_RUN.fetch_add(1, Ordering::Relaxed);
    dir.join(format!(
        "trace-{n:04}-{}-{}n-seed{}.{}",
        cfg.algorithm.to_string().to_lowercase(),
        cfg.nodes,
        cfg.workload.seed,
        format.extension()
    ))
}

/// The fused trace sink a run installs, in either serialization. Both
/// variants share the flush/summary surface the harness needs.
enum HarnessSink {
    Jsonl(Arc<JsonlSummarySink>),
    Binary(Arc<BinarySummarySink>),
}

impl HarnessSink {
    fn create(dir: &Path, cfg: &RunConfig) -> (Self, Arc<dyn cq_engine::TraceSink>) {
        let format = trace_format();
        let path = trace_file_name(dir, cfg, format);
        match format {
            TraceFormat::Jsonl => {
                let sink = Arc::new(JsonlSummarySink::create(path).expect("create trace file"));
                (HarnessSink::Jsonl(sink.clone()), sink)
            }
            TraceFormat::Binary => {
                let sink = Arc::new(BinarySummarySink::create(path).expect("create trace file"));
                (HarnessSink::Binary(sink.clone()), sink)
            }
        }
    }

    fn flush(&self) -> std::io::Result<()> {
        match self {
            HarnessSink::Jsonl(s) => s.flush(),
            HarnessSink::Binary(s) => s.flush(),
        }
    }

    fn summary(&self) -> TraceSummary {
        match self {
            HarnessSink::Jsonl(s) => s.summary(),
            HarnessSink::Binary(s) => s.summary(),
        }
    }
}

/// Parameters of one simulation run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Evaluation algorithm.
    pub algorithm: Algorithm,
    /// Network size `N`.
    pub nodes: usize,
    /// Number of continuous queries to install.
    pub queries: usize,
    /// Number of tuples to stream in the measured window.
    pub tuples: usize,
    /// Warm-up tuples streamed *before* queries are installed (builds the
    /// rewriters' arrival statistics for the probing strategies and fills
    /// value-level stores).
    pub warmup_tuples: usize,
    /// SAI index-attribute strategy.
    pub strategy: IndexStrategy,
    /// JFRT on/off.
    pub use_jfrt: bool,
    /// Attribute-level replication factor.
    pub replication: usize,
    /// Generate type-T2 queries (requires DAI-V).
    pub t2_queries: bool,
    /// Reset traffic/load counters after installation, so results cover only
    /// the measured tuple window.
    pub measure_stream_only: bool,
    /// Workload shape (domain, skew, bos ratio, ...).
    pub workload: WorkloadConfig,
    /// Fault model for the run (message loss/duplication/delay, reliable
    /// delivery, k-successor replication). Inert by default.
    pub fault: FaultConfig,
    /// In-protocol failure detection (heartbeats, suspicion, anti-entropy).
    /// Disabled by default: failures are then repaired by oracle
    /// `stabilize` calls, the seed behavior. When enabled, the harness
    /// never stabilizes for the detector — it `settle`s at the end of the
    /// stream instead and reports recall against the oracle both overall
    /// and restricted to tuples published outside detection windows.
    pub suspicion: SuspicionConfig,
    /// Abrupt node failures injected at evenly spaced points across the
    /// measured tuple window, each followed by two stabilization rounds.
    pub failures: usize,
    /// Retain notification bodies so recall against the oracle can be
    /// computed (needed by the fault experiment; off by default because
    /// bodies dominate memory at full scale).
    pub retain_notifications: bool,
}

impl RunConfig {
    /// A small, fast default over two relations.
    pub fn new(algorithm: Algorithm) -> Self {
        RunConfig {
            algorithm,
            nodes: 128,
            queries: 50,
            tuples: 300,
            warmup_tuples: 0,
            strategy: IndexStrategy::LowestRate,
            use_jfrt: true,
            replication: 1,
            t2_queries: false,
            measure_stream_only: true,
            workload: WorkloadConfig::default(),
            fault: FaultConfig::default(),
            suspicion: SuspicionConfig::default(),
            failures: 0,
            retain_notifications: false,
        }
    }
}

/// The metric vectors collected by one run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Per-node total filtering load (rewriter + evaluator), by node slot.
    pub filtering: Vec<f64>,
    /// Per-node rewriter-only filtering load.
    pub rewriter_filtering: Vec<f64>,
    /// Per-node evaluator-only filtering load.
    pub evaluator_filtering: Vec<f64>,
    /// Per-node storage load.
    pub storage: Vec<f64>,
    /// Per-node evaluator storage (value-level items only).
    pub evaluator_storage: Vec<f64>,
    /// Total rewritten queries stored at evaluators (VLQT sizes).
    pub stored_rewritten: u64,
    /// Total tuples stored at evaluators (VLTT + DAI-V store sizes).
    pub stored_tuples: u64,
    /// Traffic per category.
    pub traffic: Vec<(TrafficKind, TrafficStats)>,
    /// Total traffic.
    pub total_traffic: TrafficStats,
    /// Notifications delivered (with multiplicity).
    pub notifications: u64,
    /// Tuples actually streamed in the measured window.
    pub streamed: usize,
    /// Traffic of the installation phase (warm-up + query indexing),
    /// captured before any reset — e.g. the strategy probes of E4.
    pub install_traffic: Vec<(TrafficKind, TrafficStats)>,
    /// Fault-layer counters (loss, duplication, retransmissions, dedup
    /// suppressions, failures, promotions).
    pub faults: FaultCounters,
    /// Failure-detection counters (heartbeats, suspicions, detections,
    /// anti-entropy repair work); all zero unless suspicion was enabled.
    pub recovery: RecoveryCounters,
    /// Recall restricted to tuples published *outside* detection windows —
    /// the deliveries the detector-based engine actually guarantees.
    /// Equals `recall` when no window opened (or recall was not computed).
    pub recall_outside_windows: f64,
    /// Distinct notification contents the oracle expects (only computed
    /// when `retain_notifications` is set; zero otherwise).
    pub expected_notifications: u64,
    /// Of those, how many were actually delivered to an inbox or offline
    /// store (set semantics).
    pub delivered_notifications: u64,
    /// `delivered / expected` (1.0 when nothing was expected or recall was
    /// not computed).
    pub recall: f64,
    /// Aggregate trace view (per-kind event counts, per-node hop
    /// histograms). `None` unless tracing was enabled via [`set_trace_dir`].
    pub trace: Option<TraceSummary>,
}

impl RunResult {
    /// Traffic of one category.
    pub fn traffic_of(&self, kind: TrafficKind) -> TrafficStats {
        self.traffic
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, s)| *s)
            .unwrap_or_default()
    }

    /// Installation-phase traffic of one category.
    pub fn install_traffic_of(&self, kind: TrafficKind) -> TrafficStats {
        self.install_traffic
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, s)| *s)
            .unwrap_or_default()
    }

    /// Average overlay hops consumed per streamed tuple (the paper's
    /// traffic-cost metric).
    pub fn hops_per_tuple(&self) -> f64 {
        if self.streamed == 0 {
            0.0
        } else {
            self.total_traffic.hops as f64 / self.streamed as f64
        }
    }

    /// Total filtering load over all nodes (`TF`).
    pub fn total_filtering(&self) -> f64 {
        self.filtering.iter().sum()
    }

    /// Total storage load over all nodes (`TS`).
    pub fn total_storage(&self) -> f64 {
        self.storage.iter().sum()
    }

    /// Total evaluator storage.
    pub fn total_evaluator_storage(&self) -> f64 {
        self.evaluator_storage.iter().sum()
    }

    /// Total evaluator filtering.
    pub fn total_evaluator_filtering(&self) -> f64 {
        self.evaluator_filtering.iter().sum()
    }
}

/// Executes one run.
pub fn run(cfg: &RunConfig) -> RunResult {
    let mut workload = Workload::new(cfg.workload.clone());
    let engine_cfg = EngineConfig {
        algorithm: cfg.algorithm,
        space_bits: 32,
        nodes: cfg.nodes,
        strategy: cfg.strategy,
        use_jfrt: cfg.use_jfrt,
        replication: cfg.replication,
        recursive_multisend: true,
        // Delivery traffic and counts are measured; retaining millions of
        // notification bodies would dominate simulator memory at full
        // scale, so bodies are kept only when a run needs recall.
        retain_notifications: cfg.retain_notifications,
        dai_v_keyed: false,
        batch_delivery: true,
        seed: cfg.workload.seed,
        fault: cfg.fault.clone(),
        suspicion: cfg.suspicion,
    };
    // The harness picks the protocol explicitly; `Network` stays a pure
    // orchestrator over whatever strategy object it is handed.
    let protocol = cq_engine::protocol_for(engine_cfg.algorithm);
    let mut net = Network::with_protocol(engine_cfg, workload.catalog().clone(), protocol);

    // When tracing is enabled, stream every event into a trace file (JSONL
    // or wire-framed binary per `set_trace_format`) while accumulating an
    // in-memory summary (one fused sink, one lock). Sinks only observe: the
    // run's results are identical with or without them.
    let trace_sink = trace_dir().map(|dir| {
        let (harness_sink, tracer) = HarnessSink::create(&dir, cfg);
        net.set_tracer(tracer);
        harness_sink
    });

    // Warm-up stream (before queries exist, so it only builds statistics
    // and value-level tuple stores).
    net.trace_phase("warmup");
    for _ in 0..cfg.warmup_tuples {
        stream_one(&mut net, &mut workload);
    }

    // Install queries over the focused pair (R0, R1).
    net.trace_phase("install");
    for _ in 0..cfg.queries {
        let poser = net.random_node();
        let sql = if cfg.t2_queries {
            workload.random_t2_query_sql()
        } else {
            workload.query_between(0, 1)
        };
        net.pose_query_sql(poser, &sql)
            .expect("generated queries are valid");
    }

    let install_traffic: Vec<(TrafficKind, TrafficStats)> = TrafficKind::ALL
        .iter()
        .map(|&k| (k, net.metrics().traffic(k)))
        .collect();
    if cfg.measure_stream_only {
        net.reset_metrics();
    }

    // The measured tuple window, with any requested abrupt failures spread
    // evenly across it (each immediately followed by stabilization, which
    // repairs the ring and promotes replicas).
    net.trace_phase("stream");
    let detect = cfg.suspicion.enabled;
    let mut failed = 0usize;
    for i in 0..cfg.tuples {
        while failed < cfg.failures && i * (cfg.failures + 1) >= (failed + 1) * cfg.tuples {
            fail_one(&mut net, detect);
            failed += 1;
        }
        stream_one(&mut net, &mut workload);
    }
    while failed < cfg.failures {
        fail_one(&mut net, detect);
        failed += 1;
    }
    if detect {
        // Let the detector confirm every outstanding failure and verify
        // its repair before measuring.
        net.settle().expect("failure detection converges");
    }

    let mut result = collect(&net, cfg.tuples, cfg.retain_notifications);
    result.install_traffic = install_traffic;
    if let Some(sink) = trace_sink {
        sink.flush().expect("flush trace file");
        result.trace = Some(sink.summary());
    }
    result
}

/// Abruptly fails one pseudo-random alive node (never the last one). With
/// `detect` off, the harness repairs immediately with oracle knowledge
/// (the seed behavior); with it on, the in-protocol detector must discover
/// the failure on its own.
fn fail_one(net: &mut Network, detect: bool) {
    if net.alive_count() <= 1 {
        return;
    }
    let victim = net.random_node();
    net.node_fail(victim).expect("victim is alive");
    if !detect {
        net.stabilize(2).expect("stabilization after failure");
    }
}

fn stream_one(net: &mut Network, workload: &mut Workload) {
    let rel = workload.next_stream_relation();
    let values = workload.random_tuple_values();
    let from = net.random_node();
    net.insert_tuple(from, &rel, values)
        .expect("generated tuples are valid");
}

fn collect(net: &Network, streamed: usize, with_recall: bool) -> RunResult {
    let loads = net.metrics().loads();
    let filtering: Vec<f64> = loads.iter().map(|l| l.filtering() as f64).collect();
    let rewriter_filtering: Vec<f64> = loads.iter().map(|l| l.rewriter_filtering as f64).collect();
    let evaluator_filtering: Vec<f64> =
        loads.iter().map(|l| l.evaluator_filtering as f64).collect();
    let storage: Vec<f64> = net.storage_loads().iter().map(|&s| s as f64).collect();
    let mut stored_rewritten = 0u64;
    let mut stored_tuples = 0u64;
    let evaluator_storage: Vec<f64> = (0..storage.len())
        .map(|i| {
            let st = net.node_state(cq_overlay::NodeHandle::from_index(i));
            stored_rewritten += st.vlqt.len() as u64;
            stored_tuples += (st.vltt.len() + st.vstore.len()) as u64;
            st.evaluator_storage() as f64
        })
        .collect();
    let traffic: Vec<(TrafficKind, TrafficStats)> = TrafficKind::ALL
        .iter()
        .map(|&k| (k, net.metrics().traffic(k)))
        .collect();
    let (expected_notifications, delivered_notifications, recall, recall_outside_windows) =
        if with_recall {
            let mut oracle = Oracle::new();
            oracle.ingest(net.posed_queries(), net.inserted_tuples());
            let expected = oracle.expected().expect("oracle evaluation");
            let delivered = net.delivered_set();
            let hit = expected.iter().filter(|n| delivered.contains(*n)).count() as u64;
            let total = expected.len() as u64;
            let recall = if total == 0 {
                1.0
            } else {
                hit as f64 / total as f64
            };
            // Recall over the oracle restricted to tuples published outside
            // every detection window — the deliveries a detector-based
            // engine guarantees (tuples inside a window may have been
            // routed to a failed-but-undetected owner).
            let windows = net.detection_windows();
            let outside = if windows.is_empty() {
                recall
            } else {
                let tuples: Vec<_> = net
                    .inserted_tuples()
                    .iter()
                    .filter(|t| {
                        let p = t.pub_time().0;
                        windows.iter().all(|&(a, b)| p < a || p > b)
                    })
                    .cloned()
                    .collect();
                let mut o = Oracle::new();
                o.ingest(net.posed_queries(), &tuples);
                let exp = o.expected().expect("oracle evaluation");
                let hit = exp.iter().filter(|n| delivered.contains(*n)).count() as u64;
                if exp.is_empty() {
                    1.0
                } else {
                    hit as f64 / exp.len() as f64
                }
            };
            (total, hit, recall, outside)
        } else {
            (0, 0, 1.0, 1.0)
        };
    RunResult {
        filtering,
        rewriter_filtering,
        evaluator_filtering,
        storage,
        evaluator_storage,
        total_traffic: net.metrics().total_traffic(),
        traffic,
        notifications: net.metrics().notifications_delivered,
        streamed,
        install_traffic: Vec::new(),
        stored_rewritten,
        stored_tuples,
        faults: net.metrics().faults,
        recovery: net.metrics().recovery,
        expected_notifications,
        delivered_notifications,
        recall,
        recall_outside_windows,
        trace: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_produces_consistent_vectors() {
        let cfg = RunConfig {
            nodes: 32,
            queries: 5,
            tuples: 40,
            ..RunConfig::new(Algorithm::Sai)
        };
        let r = run(&cfg);
        assert_eq!(r.filtering.len(), 32);
        assert_eq!(r.storage.len(), 32);
        assert!(r.total_traffic.hops > 0);
        assert!(r.hops_per_tuple() > 0.0);
        assert!(
            (r.total_filtering()
                - (r.rewriter_filtering.iter().sum::<f64>()
                    + r.evaluator_filtering.iter().sum::<f64>()))
            .abs()
                < 1e-9
        );
    }

    #[test]
    fn all_algorithms_run() {
        for alg in Algorithm::ALL {
            let cfg = RunConfig {
                nodes: 32,
                queries: 4,
                tuples: 30,
                ..RunConfig::new(alg)
            };
            let r = run(&cfg);
            assert!(r.total_traffic.messages > 0, "{alg}");
        }
    }

    #[test]
    fn t2_runs_under_dai_v() {
        let cfg = RunConfig {
            nodes: 32,
            queries: 4,
            tuples: 30,
            t2_queries: true,
            ..RunConfig::new(Algorithm::DaiV)
        };
        let r = run(&cfg);
        assert!(r.total_traffic.messages > 0);
    }

    #[test]
    fn measure_stream_only_excludes_installation() {
        let mk = |measure_stream_only| {
            let cfg = RunConfig {
                nodes: 32,
                queries: 20,
                tuples: 1,
                measure_stream_only,
                ..RunConfig::new(Algorithm::Sai)
            };
            run(&cfg).traffic_of(TrafficKind::QueryIndex).messages
        };
        assert_eq!(mk(true), 0);
        assert!(mk(false) >= 20);
    }
}
