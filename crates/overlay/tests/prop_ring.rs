//! Property-based tests for the Chord ring invariants.

use cq_overlay::{Id, IdSpace, Ring};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Greedy routing always terminates at the ground-truth owner,
    /// from any start node, for any target identifier.
    #[test]
    fn routing_agrees_with_ground_truth(
        n in 1usize..120,
        start in 0usize..120,
        targets in prop::collection::vec(0u64..u64::MAX, 1..20),
    ) {
        let ring = Ring::build(IdSpace::new(24), n, "p-");
        let from = ring.alive_nodes().nth(start % n).unwrap();
        for raw in targets {
            let t = ring.space().id(raw);
            let route = ring.route(from, t).unwrap();
            prop_assert_eq!(route.owner, ring.owner_of(t).unwrap());
            // path is connected and starts at the sender
            prop_assert_eq!(route.path[0], from);
            prop_assert_eq!(*route.path.last().unwrap(), route.owner);
        }
    }

    /// Multisend (both designs) partitions the identifier list over exactly
    /// the true owners, with no identifier lost or duplicated.
    #[test]
    fn multisend_partitions_targets(
        n in 1usize..100,
        start in 0usize..100,
        targets in prop::collection::vec(0u64..u64::MAX, 0..40),
    ) {
        let ring = Ring::build(IdSpace::new(24), n, "q-");
        let from = ring.alive_nodes().nth(start % n).unwrap();
        let ids: Vec<Id> = targets.iter().map(|&r| ring.space().id(r)).collect();
        for out in [
            ring.multisend_recursive(from, &ids).unwrap(),
            ring.multisend_iterative(from, &ids).unwrap(),
        ] {
            let mut delivered: Vec<Id> =
                out.deliveries.iter().flat_map(|(_, v)| v.clone()).collect();
            delivered.sort();
            let mut expect = ids.clone();
            expect.sort();
            expect.dedup();
            prop_assert_eq!(delivered, expect);
            for (owner, owned) in &out.deliveries {
                for id in owned {
                    prop_assert_eq!(ring.owner_of(*id).unwrap(), *owner);
                }
            }
        }
    }

    /// After arbitrary failures followed by stabilization, every surviving
    /// node's successor pointer matches ground truth and routing works.
    #[test]
    fn stabilization_restores_successors(
        n in 8usize..80,
        kill in prop::collection::vec(0usize..80, 0..8),
        probe in 0u64..u64::MAX,
    ) {
        let mut ring = Ring::build(IdSpace::new(24), n, "s-");
        let handles: Vec<_> = ring.alive_nodes().collect();
        let mut killed = std::collections::HashSet::new();
        for k in kill {
            let h = handles[k % handles.len()];
            if killed.insert(h) && ring.len() > 1 {
                ring.fail(h).unwrap();
            }
        }
        // Chord repairs one link per round in the worst case; give the
        // protocol enough rounds to provably converge for this ring size.
        ring.stabilize_all(ring.len().max(4));
        let t = ring.space().id(probe);
        let from = ring.alive_nodes().next().unwrap();
        let route = ring.route(from, t).unwrap();
        prop_assert_eq!(route.owner, ring.owner_of(t).unwrap());
        for h in ring.alive_nodes().collect::<Vec<_>>() {
            let succ = ring.first_alive_successor(h).unwrap();
            let expect = ring.owner_of(ring.space().add(ring.id_of(h), 1)).unwrap();
            prop_assert_eq!(succ, expect);
        }
    }

    /// Ownership ranges of all alive nodes tile the identifier circle.
    #[test]
    fn ownership_tiles_the_circle(n in 1usize..100) {
        let ring = Ring::build(IdSpace::new(24), n, "t-");
        let mut total = 0u64;
        for h in ring.alive_nodes() {
            let (pred, id) = ring.owned_range(h).unwrap();
            // pred == id means a single node owning the whole circle
            total += if pred == id {
                ring.space().size()
            } else {
                ring.space().distance(pred, id)
            };
        }
        prop_assert_eq!(total, ring.space().size());
    }
}
