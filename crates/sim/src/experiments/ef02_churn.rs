//! EF2 — Churn-hardened recovery: detection timeouts vs trace-driven churn
//! (robustness extension, not a paper figure).
//!
//! Sweeps the churn model (in-pump rate-driven failures, plus log-normal
//! and Weibull session-length churn as measurement studies report for
//! peer-to-peer populations) against the failure detector (the oracle
//! baseline that repairs the instant a node dies, and the in-protocol
//! heartbeat/suspicion detector at an aggressive and a patient timeout).
//! Every run combines churn with a 20% lossy channel and `k = 2` successor
//! replication. The report shows recall against the brute-force oracle —
//! overall and restricted to tuples published outside detection windows —
//! plus the detector's cost: time-to-detect, time-to-repair, anti-entropy
//! repair bytes and messages swallowed by undetected failures.

use cq_engine::{Algorithm, ChurnModel, FaultConfig, SessionDist, SuspicionConfig};

use super::Scale;
use crate::harness::RunConfig;
use crate::parallel::run_many;
use crate::report::{fnum, Report};

/// The two algorithms the sweep contrasts (one single-index, one
/// double-index; the full four-way comparison lives in EF1).
const ALGS: [Algorithm; 2] = [Algorithm::Sai, Algorithm::DaiT];

/// Swept churn models, by report label.
const CHURNS: [&str; 3] = ["rate", "lognormal", "weibull"];

/// Swept detectors: report label and suspicion timeout in pump ticks
/// (`None` = the oracle baseline, repairs on the failure tick).
const DETECTORS: [(&str, Option<u64>); 3] =
    [("oracle", None), ("fast", Some(4)), ("patient", Some(12))];

/// The fault profile of one churn scenario: a 20% lossy channel with
/// reliable delivery and `k = 2` replication, plus the named churn model.
fn fault_for(churn: &str, max_events: usize) -> FaultConfig {
    let mut fault = FaultConfig::lossy(0.2, 0xEF02);
    fault.replication = 2;
    match churn {
        "rate" => {
            fault.failure_rate = 0.004;
            fault.max_failures = max_events;
        }
        "lognormal" => {
            // median session ≈ e^7.3 ≈ 1500 pump ticks, so expiries land
            // inside the measured tuple stream rather than during install
            fault.churn = ChurnModel::Empirical {
                session: SessionDist::LogNormal {
                    mu: 7.3,
                    sigma: 0.8,
                },
                max_events,
            };
        }
        "weibull" => {
            // heavy-tailed sessions (shape < 1), scale 2000 ticks
            fault.churn = ChurnModel::Empirical {
                session: SessionDist::Weibull {
                    shape: 0.7,
                    scale: 2000.0,
                },
                max_events,
            };
        }
        _ => unreachable!("unknown churn label"),
    }
    fault
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let nodes = scale.pick(32, 128);
    let queries = scale.pick(10, 40);
    let tuples = scale.pick(100, 400);
    let max_events = scale.pick(2, 6);
    let mut report = Report::new(
        "EF2",
        &format!("recall and repair cost under churn models x detection timeouts (N={nodes})"),
        &[
            "algorithm",
            "churn",
            "detector",
            "recall",
            "outside-win",
            "expected",
            "failed",
            "detected",
            "avg detect t",
            "avg repair t",
            "repair B",
            "lost in win",
            "heartbeats",
        ],
    );
    let mut keys = Vec::new();
    let mut cfgs = Vec::new();
    for alg in ALGS {
        for churn in CHURNS {
            for (det, suspect_after) in DETECTORS {
                let suspicion = match suspect_after {
                    None => SuspicionConfig::default(),
                    // Both timeouts track the sweep axis so an aggressive
                    // detector is aggressive end-to-end.
                    Some(t) => SuspicionConfig::active()
                        .with_suspect_after(t)
                        .with_confirm_after(t),
                };
                keys.push((alg, churn, det));
                cfgs.push(RunConfig {
                    nodes,
                    queries,
                    tuples,
                    fault: fault_for(churn, max_events),
                    suspicion,
                    retain_notifications: true,
                    // Session-length churn spans the whole run (install
                    // included), so count faults over the whole run too.
                    measure_stream_only: false,
                    ..RunConfig::new(alg)
                });
            }
        }
    }
    for ((alg, churn, det), r) in keys.into_iter().zip(run_many(&cfgs)) {
        let rec = r.recovery;
        let avg = |total: u64, n: u64| {
            if n == 0 {
                0.0
            } else {
                total as f64 / n as f64
            }
        };
        report.row(vec![
            alg.to_string(),
            churn.to_string(),
            det.to_string(),
            fnum(r.recall),
            fnum(r.recall_outside_windows),
            r.expected_notifications.to_string(),
            r.faults.nodes_failed.to_string(),
            rec.detections.to_string(),
            fnum(avg(rec.detect_ticks_total, rec.detections)),
            fnum(avg(rec.repair_ticks_total, rec.repairs)),
            rec.repair_bytes.to_string(),
            rec.lost_in_detection_window.to_string(),
            rec.heartbeats_sent.to_string(),
        ]);
    }
    report.note("outside-win: recall over tuples published outside detection windows");
    report.note("oracle detector repairs on the failure tick (detection cost 0 by fiat)");
    report.note("patient detectors trade longer blind windows for fewer false suspicions");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detector_rows_behave() {
        let r = run(Scale::Quick);
        let rows: Vec<Vec<String>> = r
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(str::to_string).collect())
            .collect();
        assert_eq!(rows.len(), ALGS.len() * CHURNS.len() * DETECTORS.len());
        for row in &rows {
            let det = row[2].as_str();
            let outside: f64 = row[4].parse().unwrap();
            let detected: u64 = row[7].parse().unwrap();
            let heartbeats: u64 = row[12].parse().unwrap();
            if det == "oracle" {
                assert_eq!(heartbeats, 0, "oracle rows probe nothing: {row:?}");
                assert_eq!(detected, 0, "oracle rows detect nothing: {row:?}");
            } else {
                assert!(heartbeats > 0, "detector rows must probe: {row:?}");
                // The acceptance bar: every notification the oracle expects
                // from tuples published outside detection windows is
                // delivered, churn and 20% loss notwithstanding.
                assert!(
                    (outside - 1.0).abs() < 1e-9,
                    "outside-window recall must be 1.0: {row:?}"
                );
            }
        }
        // At least one detector run must actually exercise detection, or
        // the sweep proves nothing.
        let total_detected: u64 = rows.iter().map(|r| r[7].parse::<u64>().unwrap()).sum();
        assert!(total_detected > 0, "no run detected any failure");
    }
}
