//! The value-level query table (VLQT, Section 4.3.5).
//!
//! "At the first level rewritten queries are indexed according to their load
//! distributing attribute, while at the second level according to the value
//! that this attribute must take" — incoming tuples find the rewritten
//! queries they might match in one step. Entries are keyed by the rewritten
//! query's unique key, giving the deduplication of Section 4.3.3.

use cq_fasthash::FxHashMap;
use cq_overlay::Id;
use cq_relational::{MatchTarget, RewrittenQuery};

use super::keys::{bucket_mut, lookup_key, str_bucket_mut, StrPair};
use crate::error::{EngineError, Result};

/// A rewritten query stored at an evaluator together with the value-level
/// identifier it was indexed under.
#[derive(Clone, Debug)]
pub struct StoredRewritten {
    /// The value-level identifier (`Hash(DisR + DisA + v)`).
    pub index_id: Id,
    /// The rewritten query.
    pub rq: RewrittenQuery,
}

/// The two-level value-level query table.
///
/// First-level buckets are keyed by the load-distributing attribute as an
/// owned `(relation, attr)` [`StrPair`]; the second level by the value's
/// canonical form; the third by the rewritten query's dedup key. Lookups
/// borrow the caller's `&str`s instead of allocating (see [`super::keys`]).
#[derive(Clone, Debug, Default)]
pub struct Vlqt {
    buckets: FxHashMap<StrPair, ByValue>,
    len: usize,
}

/// Second level (canonical value) → third level (rewritten-query dedup key).
type ByValue = FxHashMap<Box<str>, FxHashMap<Box<str>, StoredRewritten>>;

impl Vlqt {
    /// An empty table.
    pub fn new() -> Self {
        Vlqt::default()
    }

    /// Stores a rewritten query. Returns `false` (and stores nothing) when a
    /// rewritten query with the same key is already present — "x need only
    /// store the information related to tuple t". Errors on a rewritten
    /// query without an attribute target (a mis-wired protocol or a
    /// corrupted replica payload — VLQT is attribute-indexed).
    pub fn insert(&mut self, entry: StoredRewritten) -> Result<bool> {
        Ok(self.insert_fresh(entry)?.is_some())
    }

    /// Like [`Vlqt::insert`], but hands back a borrow of the freshly stored
    /// entry (or `None` on a duplicate key). Lets the SAI evaluator keep
    /// working with the stored copy instead of cloning the rewritten query.
    pub fn insert_fresh(&mut self, entry: StoredRewritten) -> Result<Option<&StoredRewritten>> {
        let MatchTarget::Attribute { attr, value } = entry.rq.target() else {
            return Err(EngineError::Protocol {
                detail: format!(
                    "VLQT stores attribute-targeted rewritten queries only, \
                     got a value-targeted one for key {}",
                    entry.rq.key()
                ),
            });
        };
        let mut vkey = String::new();
        value.canonical_into(&mut vkey);
        let by_value = bucket_mut(&mut self.buckets, entry.rq.free_relation(), attr);
        let by_key = str_bucket_mut(by_value, &vkey);
        if by_key.contains_key(entry.rq.key()) {
            return Ok(None);
        }
        self.len += 1;
        let key: Box<str> = entry.rq.key().into();
        Ok(Some(by_key.entry(key).or_insert(entry)))
    }

    /// The rewritten queries an incoming tuple of `(relation, attr = value)`
    /// might trigger — the evaluator's level-1 + level-2 lookup.
    pub fn candidates(
        &self,
        relation: &str,
        attr: &str,
        value_key: &str,
    ) -> impl Iterator<Item = &StoredRewritten> {
        self.buckets
            .get(lookup_key(&(relation, attr)))
            .and_then(|m| m.get(value_key))
            .into_iter()
            .flat_map(|m| m.values())
    }

    /// Number of candidates for a given `(relation, attr, value)` — the
    /// evaluator's filtering work for one incoming tuple.
    pub fn candidate_count(&self, relation: &str, attr: &str, value_key: &str) -> usize {
        self.buckets
            .get(lookup_key(&(relation, attr)))
            .and_then(|m| m.get(value_key))
            .map_or(0, FxHashMap::len)
    }

    /// Iterates every stored entry, in arbitrary order (anti-entropy
    /// digests; the digest combination is order-independent).
    pub fn entries(&self) -> impl Iterator<Item = &StoredRewritten> {
        self.buckets
            .values()
            .flat_map(|by_value| by_value.values())
            .flat_map(|by_key| by_key.values())
    }

    /// Total stored rewritten queries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes entries whose index identifier satisfies the predicate
    /// (key transfer on churn).
    pub fn extract_where(&mut self, mut pred: impl FnMut(Id) -> bool) -> Vec<StoredRewritten> {
        let mut out = Vec::new();
        for by_value in self.buckets.values_mut() {
            for by_key in by_value.values_mut() {
                let keys: Vec<Box<str>> = by_key
                    .iter()
                    .filter(|(_, e)| pred(e.index_id))
                    .map(|(k, _)| k.clone())
                    .collect();
                for k in keys {
                    // Invariant: `keys` was collected from this same map
                    // two lines up, with no removals in between.
                    out.push(by_key.remove(&*k).expect("key listed above"));
                }
            }
            by_value.retain(|_, m| !m.is_empty());
        }
        self.buckets.retain(|_, m| !m.is_empty());
        self.len -= out.len();
        out
    }

    /// Removes and returns all entries.
    pub fn drain_all(&mut self) -> Vec<StoredRewritten> {
        self.extract_where(|_| true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_relational::{
        Catalog, DataType, Expr, JoinQuery, QueryKey, QuerySpec, RelationSchema, SelectItem, Side,
        Timestamp, Tuple, Value,
    };
    use std::sync::Arc;

    fn setup() -> (Catalog, cq_relational::QueryRef) {
        let mut c = Catalog::new();
        c.register(RelationSchema::of("R", &[("A", DataType::Int), ("B", DataType::Int)]).unwrap())
            .unwrap();
        c.register(RelationSchema::of("S", &[("C", DataType::Int), ("D", DataType::Int)]).unwrap())
            .unwrap();
        let q = Arc::new(
            JoinQuery::new(
                QuerySpec {
                    key: QueryKey::derive("node", 0),
                    subscriber: "node".into(),
                    ins_time: Timestamp(0),
                    relations: ["R".into(), "S".into()],
                    select: vec![SelectItem {
                        side: Side::Left,
                        attr: "A".into(),
                    }],
                    conditions: [Expr::attr("B"), Expr::attr("C")],
                    filters: vec![],
                },
                &c,
            )
            .unwrap(),
        );
        (c, q)
    }

    fn rewritten(c: &Catalog, q: &cq_relational::QueryRef, a: i64, b: i64) -> RewrittenQuery {
        let t = Tuple::new(
            c.get("R").unwrap().clone(),
            vec![Value::Int(a), Value::Int(b)],
            Timestamp(1),
            0,
        )
        .unwrap();
        RewrittenQuery::rewrite_attribute(q, Side::Left, "B", "C", &t)
            .unwrap()
            .unwrap()
    }

    #[test]
    fn insert_and_candidate_lookup() {
        let (c, q) = setup();
        let mut t = Vlqt::new();
        let rq = rewritten(&c, &q, 1, 7);
        assert!(t
            .insert(StoredRewritten {
                index_id: Id(0),
                rq
            })
            .unwrap());
        assert_eq!(t.len(), 1);
        let vkey = Value::Int(7).canonical();
        assert_eq!(t.candidate_count("S", "C", &vkey), 1);
        assert_eq!(t.candidate_count("S", "C", &Value::Int(8).canonical()), 0);
        assert_eq!(t.candidate_count("S", "D", &vkey), 0);
        assert_eq!(t.candidates("S", "C", &vkey).count(), 1);
    }

    #[test]
    fn same_key_is_stored_once() {
        let (c, q) = setup();
        let mut t = Vlqt::new();
        assert!(t
            .insert(StoredRewritten {
                index_id: Id(0),
                rq: rewritten(&c, &q, 1, 7)
            })
            .unwrap());
        // identical select value and join value → same rewritten key
        assert!(!t
            .insert(StoredRewritten {
                index_id: Id(0),
                rq: rewritten(&c, &q, 1, 7)
            })
            .unwrap());
        assert_eq!(t.len(), 1);
        // different select value → different key
        assert!(t
            .insert(StoredRewritten {
                index_id: Id(0),
                rq: rewritten(&c, &q, 2, 7)
            })
            .unwrap());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn extract_where_moves_matching_entries() {
        let (c, q) = setup();
        let mut t = Vlqt::new();
        t.insert(StoredRewritten {
            index_id: Id(1),
            rq: rewritten(&c, &q, 1, 7),
        })
        .unwrap();
        t.insert(StoredRewritten {
            index_id: Id(2),
            rq: rewritten(&c, &q, 1, 8),
        })
        .unwrap();
        let moved = t.extract_where(|id| id == Id(2));
        assert_eq!(moved.len(), 1);
        assert_eq!(t.len(), 1);
    }
}
