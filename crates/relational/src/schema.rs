//! Relation schemas and the catalog.
//!
//! "Data is described using the relational data model … different schemas can
//! co-exist but schema mappings are not supported" (Section 3.2).

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::error::{RelationalError, Result};
use crate::value::DataType;

/// One attribute of a relation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name, unique within its relation.
    pub name: String,
    /// Attribute type.
    pub ty: DataType,
}

/// The schema of a relation `R(A_1, ..., A_h)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RelationSchema {
    name: String,
    attributes: Vec<Attribute>,
    by_name: HashMap<String, usize>,
}

impl RelationSchema {
    /// Builds a schema; attribute names must be distinct.
    pub fn new(name: impl Into<String>, attributes: Vec<Attribute>) -> Result<Self> {
        let name = name.into();
        let mut by_name = HashMap::with_capacity(attributes.len());
        for (i, a) in attributes.iter().enumerate() {
            if by_name.insert(a.name.clone(), i).is_some() {
                return Err(RelationalError::DuplicateAttribute {
                    relation: name,
                    attribute: a.name.clone(),
                });
            }
        }
        Ok(RelationSchema {
            name,
            attributes,
            by_name,
        })
    }

    /// Convenience constructor from `(name, type)` pairs.
    pub fn of(name: impl Into<String>, attrs: &[(&str, DataType)]) -> Result<Self> {
        RelationSchema::new(
            name,
            attrs
                .iter()
                .map(|(n, t)| Attribute {
                    name: (*n).to_string(),
                    ty: *t,
                })
                .collect(),
        )
    }

    /// The relation name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All attributes in declaration order.
    #[inline]
    pub fn attributes(&self) -> &[Attribute] {
        &self.attributes
    }

    /// Number of attributes (`h` in Section 4.2).
    #[inline]
    pub fn arity(&self) -> usize {
        self.attributes.len()
    }

    /// Index of an attribute by name.
    ///
    /// Relation schemas have single-digit arity, so a linear scan over the
    /// short attribute names beats hashing the lookup key on every tuple
    /// touch; the name map is kept for wide schemas.
    pub fn index_of(&self, attr: &str) -> Result<usize> {
        if self.attributes.len() <= 8 {
            self.attributes.iter().position(|a| a.name == attr)
        } else {
            self.by_name.get(attr).copied()
        }
        .ok_or_else(|| RelationalError::UnknownAttribute {
            relation: self.name.clone(),
            attribute: attr.to_string(),
        })
    }

    /// Whether the relation has an attribute with this name.
    pub fn has_attribute(&self, attr: &str) -> bool {
        self.by_name.contains_key(attr)
    }

    /// The attribute's declared type.
    pub fn type_of(&self, attr: &str) -> Result<DataType> {
        Ok(self.attributes[self.index_of(attr)?].ty)
    }
}

impl fmt::Display for RelationSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.attributes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", a.name, a.ty)?;
        }
        write!(f, ")")
    }
}

/// A set of co-existing relation schemas known to every node.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    relations: HashMap<String, Arc<RelationSchema>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers a schema; relation names must be unique.
    pub fn register(&mut self, schema: RelationSchema) -> Result<Arc<RelationSchema>> {
        let name = schema.name().to_string();
        if self.relations.contains_key(&name) {
            return Err(RelationalError::DuplicateRelation { relation: name });
        }
        let arc = Arc::new(schema);
        self.relations.insert(name, Arc::clone(&arc));
        Ok(arc)
    }

    /// Looks up a relation schema by name.
    pub fn get(&self, relation: &str) -> Result<&Arc<RelationSchema>> {
        self.relations
            .get(relation)
            .ok_or_else(|| RelationalError::UnknownRelation {
                relation: relation.to_string(),
            })
    }

    /// Iterates over all registered schemas.
    pub fn relations(&self) -> impl Iterator<Item = &Arc<RelationSchema>> {
        self.relations.values()
    }

    /// Number of registered relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc_schema() -> RelationSchema {
        // The paper's e-learning example schema.
        RelationSchema::of(
            "Document",
            &[
                ("Id", DataType::Int),
                ("Title", DataType::Str),
                ("Conference", DataType::Str),
                ("AuthorId", DataType::Int),
            ],
        )
        .unwrap()
    }

    #[test]
    fn schema_lookup() {
        let s = doc_schema();
        assert_eq!(s.arity(), 4);
        assert_eq!(s.index_of("AuthorId").unwrap(), 3);
        assert_eq!(s.type_of("Title").unwrap(), DataType::Str);
        assert!(s.has_attribute("Id"));
        assert!(!s.has_attribute("Nope"));
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err =
            RelationSchema::of("R", &[("A", DataType::Int), ("A", DataType::Str)]).unwrap_err();
        assert!(matches!(err, RelationalError::DuplicateAttribute { .. }));
    }

    #[test]
    fn unknown_attribute_reported() {
        let s = doc_schema();
        assert!(matches!(
            s.index_of("Missing"),
            Err(RelationalError::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn catalog_register_and_get() {
        let mut c = Catalog::new();
        c.register(doc_schema()).unwrap();
        assert_eq!(c.get("Document").unwrap().name(), "Document");
        assert!(c.get("Authors").is_err());
        assert!(matches!(
            c.register(doc_schema()),
            Err(RelationalError::DuplicateRelation { .. })
        ));
    }

    #[test]
    fn display_formats() {
        let s = RelationSchema::of("R", &[("A", DataType::Int)]).unwrap();
        assert_eq!(s.to_string(), "R(A INT)");
    }
}
