//! E6 — Figure "Effect of the replication scheme in filtering load
//! distribution" (Section 5.3).
//!
//! Replicates each attribute-level rewriter on `k` nodes; queries are
//! indexed at every replica while each tuple visits exactly one (chosen by
//! value hash). Expected shape: the most-loaded rewriters' filtering load
//! drops ~k-fold and the Gini coefficient falls as `k` grows.

use cq_engine::Algorithm;
use cq_workload::WorkloadConfig;

use super::Scale;
use crate::harness::RunConfig;
use crate::parallel::run_many;
use crate::report::{fnum, Report};
use crate::stats;

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let nodes = scale.pick(128, 1024);
    let queries = scale.pick(60, 5000);
    let tuples = scale.pick(300, 800);
    let mut report = Report::new(
        "E6",
        &format!("rewriter filtering-load distribution vs replication k (SAI, N={nodes})"),
        &["k", "max load", "top-1% share", "gini", "loaded nodes"],
    );
    let ks = [1usize, 2, 4, 8];
    let cfgs: Vec<RunConfig> = ks
        .into_iter()
        .map(|k| RunConfig {
            algorithm: Algorithm::Sai,
            nodes,
            queries,
            tuples,
            replication: k,
            workload: WorkloadConfig {
                domain: scale.pick(40, 400),
                ..WorkloadConfig::default()
            },
            ..RunConfig::new(Algorithm::Sai)
        })
        .collect();
    for (k, r) in ks.into_iter().zip(run_many(&cfgs)) {
        let loads = &r.rewriter_filtering;
        report.row(vec![
            k.to_string(),
            fnum(stats::max(loads)),
            fnum(stats::top_share(loads, 0.01)),
            fnum(stats::gini(loads)),
            loads.iter().filter(|&&l| l > 0.0).count().to_string(),
        ]);
    }
    report.note("paper: replication flattens the rewriters' filtering-load curve");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replication_reduces_max_rewriter_load() {
        let r = run(Scale::Quick);
        let rows: Vec<Vec<String>> = r
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(str::to_string).collect())
            .collect();
        let max_k1: f64 = rows[0][1].parse().unwrap();
        let max_k8: f64 = rows[3][1].parse().unwrap();
        assert!(
            max_k8 < max_k1,
            "k=8 max load {max_k8} must be below k=1 max load {max_k1}"
        );
        let loaded_k1: usize = rows[0][4].parse().unwrap();
        let loaded_k8: usize = rows[3][4].parse().unwrap();
        assert!(
            loaded_k8 > loaded_k1,
            "replication spreads the role over more nodes"
        );
    }
}
