//! Identifier computation for the two-level indexing scheme (Section 4.2).
//!
//! * Attribute level: `AIndex = Hash(R + A)` — with the replication scheme of
//!   Section 4.7, `Hash(R + A + "#" + i)` for replica `i`.
//! * Value level (T1 algorithms): `VIndex = Hash(R + A + v)`.
//! * Value level (DAI-V): `VIndex = Hash(valJC)`.

use cq_overlay::{Id, IdSpace, KeyHasher};
use cq_relational::{Tuple, Value};

/// `Hash(R + A)`: the attribute-level identifier of `(relation, attribute)`.
pub fn aindex(space: IdSpace, relation: &str, attr: &str) -> Id {
    let mut h = KeyHasher::new();
    h.write("A").write(relation).write(attr);
    h.finish(space)
}

/// Attribute-level identifier of replica `i` of `(relation, attribute)` when
/// the rewriter role is replicated on `k` nodes. With `k == 1` this is the
/// plain [`aindex`], so an unreplicated run is byte-identical to the base
/// scheme.
pub fn aindex_replica(space: IdSpace, relation: &str, attr: &str, i: usize, k: usize) -> Id {
    debug_assert!(k >= 1 && i < k);
    if k == 1 {
        return aindex(space, relation, attr);
    }
    let mut h = KeyHasher::new();
    h.write("A")
        .write(relation)
        .write(attr)
        .write(&format!("#{i}"));
    h.finish(space)
}

/// All `k` attribute-level replica identifiers for `(relation, attribute)`.
pub fn aindex_replicas(space: IdSpace, relation: &str, attr: &str, k: usize) -> Vec<Id> {
    (0..k.max(1))
        .map(|i| aindex_replica(space, relation, attr, i, k.max(1)))
        .collect()
}

/// Which replica an incoming tuple's value is routed to: deterministic in the
/// value so every tuple with a given value meets every query at the same
/// replica (preserving completeness).
pub fn replica_for_value(value: &Value, k: usize) -> usize {
    if k <= 1 {
        return 0;
    }
    let mut h = KeyHasher::new();
    h.write(&value.canonical());
    (h.finish_raw() % k as u64) as usize
}

/// `Hash(R + A + v)`: the value-level identifier used by SAI, DAI-Q and
/// DAI-T.
pub fn vindex_attr(space: IdSpace, relation: &str, attr: &str, value: &Value) -> Id {
    let mut h = KeyHasher::new();
    h.write("V")
        .write(relation)
        .write(attr)
        .write(&value.canonical());
    h.finish(space)
}

/// `Hash(valJC)`: the value-level identifier used by DAI-V — "V Index
/// identifier creation is based on the value that the left- or right-hand
/// side of the join condition takes" (Section 4.5).
pub fn vindex_value(space: IdSpace, value: &Value) -> Id {
    let mut h = KeyHasher::new();
    h.write("J").write(&value.canonical());
    h.finish(space)
}

/// `Hash(Key(q) + valJC)`: the keyed DAI-V variant of Section 4.5 — one
/// evaluator per (query, value) pair instead of per value. Load spreads like
/// the attribute-prefixed algorithms, but rewritten queries can no longer be
/// grouped, multiplying reindex traffic.
pub fn vindex_value_keyed(space: IdSpace, query_key: &str, value: &Value) -> Id {
    let mut h = KeyHasher::new();
    h.write("JK").write(query_key).write(&value.canonical());
    h.finish(space)
}

/// `Hash(Key(n))`: the identifier of a node key, used to deliver
/// notifications to (possibly offline) subscribers (Section 4.6).
pub fn subscriber_id(space: IdSpace, node_key: &str) -> Id {
    cq_overlay::hash_key(space, node_key)
}

/// The `2h` (or `h`, for DAI-V) identifiers a tuple is indexed under
/// (Section 4.2): for each attribute `A_i` with value `v_i`, the pair
/// `(AIndex_i, VIndex_i)`. Returns `(attr_name, attribute_level_id,
/// value_level_id)` triples; `value_level_id` is `None` when the value level
/// is disabled (DAI-V).
pub fn tuple_index_ids(
    space: IdSpace,
    tuple: &Tuple,
    value_level: bool,
    replication: usize,
) -> Vec<(String, Id, Option<Id>)> {
    let rel = tuple.relation();
    tuple
        .schema()
        .attributes()
        .iter()
        .zip(tuple.values())
        .map(|(a, v)| {
            let replica = replica_for_value(v, replication);
            let ai = aindex_replica(space, rel, &a.name, replica, replication.max(1));
            let vi = value_level.then(|| vindex_attr(space, rel, &a.name, v));
            (a.name.clone(), ai, vi)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_relational::{DataType, RelationSchema, Timestamp};
    use std::sync::Arc;

    fn space() -> IdSpace {
        IdSpace::new(32)
    }

    #[test]
    fn aindex_is_deterministic_and_attr_specific() {
        let s = space();
        assert_eq!(aindex(s, "R", "B"), aindex(s, "R", "B"));
        assert_ne!(aindex(s, "R", "B"), aindex(s, "R", "C"));
        assert_ne!(aindex(s, "R", "B"), aindex(s, "S", "B"));
    }

    #[test]
    fn vindex_depends_on_value() {
        let s = space();
        assert_ne!(
            vindex_attr(s, "R", "B", &Value::Int(1)),
            vindex_attr(s, "R", "B", &Value::Int(2))
        );
        assert_eq!(
            vindex_attr(s, "R", "B", &Value::Int(1)),
            vindex_attr(s, "R", "B", &Value::Int(1))
        );
    }

    #[test]
    fn attribute_and_value_namespaces_are_disjoint() {
        // A query indexed at the attribute level must never collide with a
        // value-level identifier by accident of concatenation.
        let s = space();
        assert_ne!(
            aindex(s, "R", "B"),
            vindex_value(s, &Value::Str("R".into()))
        );
    }

    #[test]
    fn single_replica_matches_plain_scheme() {
        let s = space();
        assert_eq!(aindex_replica(s, "R", "B", 0, 1), aindex(s, "R", "B"));
        assert_eq!(aindex_replicas(s, "R", "B", 1), vec![aindex(s, "R", "B")]);
    }

    #[test]
    fn replicas_are_distinct() {
        let s = space();
        let ids = aindex_replicas(s, "R", "B", 4);
        assert_eq!(ids.len(), 4);
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_ne!(ids[i], ids[j]);
            }
        }
    }

    #[test]
    fn replica_choice_is_deterministic_and_in_range() {
        for k in 1..6 {
            for v in 0..50 {
                let r = replica_for_value(&Value::Int(v), k);
                assert!(r < k);
                assert_eq!(r, replica_for_value(&Value::Int(v), k));
            }
        }
    }

    #[test]
    fn tuple_index_ids_cover_every_attribute() {
        let schema = Arc::new(
            RelationSchema::of("R", &[("A", DataType::Int), ("B", DataType::Str)]).unwrap(),
        );
        let t = Tuple::new(
            schema,
            vec![Value::Int(1), Value::Str("x".into())],
            Timestamp(0),
            0,
        )
        .unwrap();
        let s = space();
        let ids = tuple_index_ids(s, &t, true, 1);
        assert_eq!(ids.len(), 2);
        assert_eq!(ids[0].0, "A");
        assert_eq!(ids[0].1, aindex(s, "R", "A"));
        assert_eq!(ids[0].2, Some(vindex_attr(s, "R", "A", &Value::Int(1))));
        // DAI-V: attribute level only
        let ids_v = tuple_index_ids(s, &t, false, 1);
        assert!(ids_v.iter().all(|(_, _, v)| v.is_none()));
    }
}
