//! In-protocol failure detection and anti-entropy replica repair.
//!
//! The fault layer (`engine::faults`) injects abrupt node failures, but the
//! seed engine repaired them with *oracle knowledge*: the harness called
//! [`Network::stabilize`] the instant a node died. This module replaces the
//! oracle with an in-protocol detector:
//!
//! * **Heartbeats** — every [`SuspicionConfig::heartbeat_every`] pump ticks,
//!   each alive node pings every entry of its *local* successor list (the
//!   stale, per-node view — exactly what a real Chord node has). Probes are
//!   fire-and-forget: they never open ack windows, and in-flight probes do
//!   not keep the message pump busy (see `FaultPipe::busy`).
//! * **Suspicion** — an unanswered probe moves the watch to *suspected*
//!   after [`SuspicionConfig::suspect_after`] ticks; a pong at any point
//!   clears it (a late pong from a slow-but-alive node is counted as a
//!   *false suspicion*). A suspicion that survives another
//!   [`SuspicionConfig::confirm_after`] ticks is *confirmed*: the watcher
//!   triggers ring stabilization and replica promotion. Confirming a node
//!   that was actually alive is harmless — promotion only extracts replicas
//!   whose identifiers the promoting node *really* owns.
//! * **Anti-entropy** — every [`SuspicionConfig::anti_entropy_every`] ticks,
//!   each primary compares an order-independent digest of its owned state
//!   (entry count + commutative hash sum, see
//!   [`crate::replication`]) against each of its `k` successors' replica
//!   stores and re-mirrors only the missing items. A round in which no
//!   successor was missing anything closes all open repair episodes.
//!
//! With [`SuspicionConfig::default`] (disabled) none of this exists at
//! runtime and every run is byte-identical to the pre-detection engine.

use std::collections::BTreeMap;

use cq_fasthash::FxHashMap;
use cq_fasthash::FxHashSet;
use cq_overlay::{Id, NodeHandle};

use crate::error::{EngineError, Result};
use crate::faults::FaultPipe;
use crate::messages::Message;
use crate::network::Network;
use crate::node::NodeState;
use crate::replication::{
    digest_of, hash_offline, hash_query, hash_rewritten, hash_tuple, hash_value_tuple, ReplicaItem,
};
use crate::trace::TraceEvent;
use crate::transport::Transport as _;
use crate::wire;

/// Failure-detection knobs. All durations are pump ticks (the same unit the
/// fault layer uses). The default is fully disabled: no probes, no
/// suspicion, no anti-entropy — failures are repaired by whoever calls
/// [`Network::stabilize`], exactly as before this module existed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SuspicionConfig {
    /// Master switch. When `false` every other knob is ignored.
    pub enabled: bool,
    /// Ticks between heartbeat rounds (treated as 1 if set to 0).
    pub heartbeat_every: u64,
    /// Ticks an unanswered probe waits before the target is *suspected*.
    pub suspect_after: u64,
    /// Ticks a suspicion must survive (no pong) before it is *confirmed*
    /// and repair (stabilization + replica promotion) is triggered.
    pub confirm_after: u64,
    /// Ticks between anti-entropy digest rounds; `0` disables anti-entropy
    /// (repair episodes then close at confirmation time).
    pub anti_entropy_every: u64,
}

impl Default for SuspicionConfig {
    fn default() -> Self {
        SuspicionConfig {
            enabled: false,
            heartbeat_every: 4,
            suspect_after: 8,
            confirm_after: 8,
            anti_entropy_every: 16,
        }
    }
}

impl SuspicionConfig {
    /// An enabled profile with the default cadence — the starting point for
    /// tests and the `ef02` experiment.
    pub fn active() -> Self {
        SuspicionConfig {
            enabled: true,
            ..SuspicionConfig::default()
        }
    }

    /// Overrides the suspicion timeout (the `ef02` sweep axis). Sets only
    /// [`SuspicionConfig::suspect_after`] — pair with
    /// [`SuspicionConfig::with_confirm_after`] to scale the confirmation
    /// grace alongside it. (An earlier version silently overwrote
    /// `confirm_after` too, making it impossible to configure the two
    /// timeouts independently.)
    pub fn with_suspect_after(mut self, ticks: u64) -> Self {
        self.suspect_after = ticks;
        self
    }

    /// Overrides the confirmation grace: how long a suspicion must survive
    /// before repair is triggered.
    pub fn with_confirm_after(mut self, ticks: u64) -> Self {
        self.confirm_after = ticks;
        self
    }

    /// Overrides the anti-entropy cadence (`0` disables digest rounds).
    pub fn with_anti_entropy_every(mut self, ticks: u64) -> Self {
        self.anti_entropy_every = ticks;
        self
    }
}

/// One watcher→target probe relationship.
#[derive(Clone, Copy, Debug)]
enum WatchState {
    /// A probe is out; `sent_at` is the tick of the *first* unanswered
    /// probe (later heartbeat rounds re-ping without resetting the clock).
    Waiting {
        /// Tick of the first unanswered probe.
        sent_at: u64,
    },
    /// The suspect timer expired without a pong.
    Suspected {
        /// Tick the watch moved to suspected.
        suspected_at: u64,
    },
}

/// Runtime state of the failure detector. Owned by [`Network`] when
/// [`SuspicionConfig::enabled`] is set; absent otherwise.
#[derive(Debug)]
pub(crate) struct Recovery {
    /// The configuration.
    cfg: SuspicionConfig,
    /// Mirror of the pipe's current tick (the pipe itself is moved out of
    /// the network while the pump runs, so sites like `fail_node_state`
    /// read the tick here).
    pub(crate) now: u64,
    /// Probe sequence counter (shared across nodes; probes are
    /// fire-and-forget so uniqueness is all that matters).
    probe_seq: u64,
    /// Active watches, keyed `(prober slot, target slot)`. A `BTreeMap`
    /// so deadline sweeps iterate in a deterministic order.
    watches: BTreeMap<(u32, u32), WatchState>,
    /// Failed-but-not-yet-confirmed nodes: slot → (failure pump tick,
    /// failure logical clock). Metrics/window bookkeeping only — the
    /// protocol never reads this map to decide anything, or the detector
    /// would be an oracle in disguise.
    pub(crate) undetected: FxHashMap<u32, (u64, u64)>,
    /// Closed detection windows as logical-clock intervals
    /// `[fail_clock, confirm_clock]`.
    windows: Vec<(u64, u64)>,
    /// Detected failures whose replica repair has not yet been verified by
    /// a clean anti-entropy round: `(slot, failure pump tick)`.
    repair_pending: Vec<(u32, u64)>,
    /// Next tick a heartbeat round fires.
    next_heartbeat: u64,
    /// Next tick an anti-entropy round fires.
    next_anti_entropy: u64,
}

impl Recovery {
    /// Fresh detector state.
    pub(crate) fn new(cfg: SuspicionConfig) -> Self {
        Recovery {
            cfg,
            now: 0,
            probe_seq: 0,
            watches: BTreeMap::new(),
            undetected: FxHashMap::default(),
            windows: Vec::new(),
            repair_pending: Vec::new(),
            next_heartbeat: 1,
            next_anti_entropy: cfg.anti_entropy_every.max(1),
        }
    }

    /// Whether detection or repair work is still outstanding (failures not
    /// yet confirmed, or confirmed but not yet verified repaired).
    pub(crate) fn pending(&self) -> bool {
        !self.undetected.is_empty() || !self.repair_pending.is_empty()
    }
}

/// Digest hashes of the primary state `st` holds under identifiers
/// satisfying `pred` (the anti-entropy reference side; the replica side is
/// [`crate::replication::ReplicaStore::hashes_where`]).
fn primary_hashes(st: &NodeState, pred: impl Fn(Id) -> bool + Copy) -> FxHashSet<u64> {
    let mut out = FxHashSet::default();
    for e in st.alqt.entries() {
        if pred(e.index_id) {
            out.insert(hash_query(e));
        }
    }
    for e in st.vlqt.entries() {
        if pred(e.index_id) {
            out.insert(hash_rewritten(e));
        }
    }
    for e in st.vltt.entries() {
        if pred(e.index_id) {
            out.insert(hash_tuple(e));
        }
    }
    for (group, value_key, e) in st.vstore.entries() {
        if pred(e.index_id) {
            out.insert(hash_value_tuple(group, value_key, e));
        }
    }
    for (id, n) in &st.offline_store {
        if pred(*id) {
            out.insert(hash_offline(*id, n));
        }
    }
    out
}

/// Primary items under `pred` whose digest hash the replica side (`have`)
/// is missing — the anti-entropy repair payload.
fn missing_primary_items(
    st: &NodeState,
    pred: impl Fn(Id) -> bool + Copy,
    have: &FxHashSet<u64>,
) -> Vec<ReplicaItem> {
    let mut out = Vec::new();
    for e in st.alqt.entries() {
        if pred(e.index_id) && !have.contains(&hash_query(e)) {
            out.push(ReplicaItem::Query(e.clone()));
        }
    }
    for e in st.vlqt.entries() {
        if pred(e.index_id) && !have.contains(&hash_rewritten(e)) {
            out.push(ReplicaItem::Rewritten(e.clone()));
        }
    }
    for e in st.vltt.entries() {
        if pred(e.index_id) && !have.contains(&hash_tuple(e)) {
            out.push(ReplicaItem::Tuple(e.clone()));
        }
    }
    for (group, value_key, e) in st.vstore.entries() {
        if pred(e.index_id) && !have.contains(&hash_value_tuple(group, value_key, e)) {
            out.push(ReplicaItem::ValueTuple {
                group: group.to_string(),
                value_key: value_key.to_string(),
                entry: e.clone(),
            });
        }
    }
    for (id, n) in &st.offline_store {
        if pred(*id) && !have.contains(&hash_offline(*id, n)) {
            out.push(ReplicaItem::Offline {
                id: *id,
                notification: n.clone(),
            });
        }
    }
    out
}

impl Network {
    /// Whether the in-protocol failure detector is installed.
    #[inline]
    pub(crate) fn recovery_active(&self) -> bool {
        self.recovery.is_some()
    }

    /// Records an abrupt failure with the detector (window/metric
    /// bookkeeping only). Called by `fail_node_state`.
    pub(crate) fn note_failure(&mut self, slot: u32) {
        let clock = self.trace_tick();
        if let Some(rec) = self.recovery.as_mut() {
            rec.undetected.insert(slot, (rec.now, clock));
        }
    }

    /// A pong arrived at `prober` from slot `from`: clear the watch, and
    /// count a false suspicion if the target had already been suspected.
    pub(crate) fn on_pong(&mut self, prober: NodeHandle, from: u32) {
        let Some(rec) = self.recovery.as_mut() else {
            return;
        };
        let node = prober.index() as u32;
        let now = rec.now;
        let was_suspected = matches!(
            rec.watches.remove(&(node, from)),
            Some(WatchState::Suspected { .. })
        );
        if was_suspected {
            self.metrics.recovery.false_suspects += 1;
            self.trace(|| TraceEvent::FalseSuspect {
                tick: now,
                node,
                target: from,
            });
        }
    }

    /// One detector step, run at the top of every pump tick: heartbeat
    /// round, suspicion deadline sweep, anti-entropy round — each on its
    /// own cadence. A no-op when detection is disabled.
    pub(crate) fn recovery_tick(&mut self, pipe: &mut FaultPipe) -> Result<()> {
        if self.recovery.is_none() {
            return Ok(());
        }
        // Invariant: is_none() returned above; take-and-restore releases the
        // &mut self borrow while the round runs.
        let mut rec = self.recovery.take().expect("checked above");
        rec.now = pipe.tick;
        let result = self
            .heartbeat_round(&mut rec)
            .and_then(|()| self.sweep_deadlines(&mut rec))
            .and_then(|()| self.anti_entropy_round(&mut rec));
        self.recovery = Some(rec);
        result
    }

    /// Sends one round of probes: every alive node pings every entry of its
    /// *local* successor list (which may be stale — that is the point).
    /// Existing watches are re-pinged without resetting their clocks.
    fn heartbeat_round(&mut self, rec: &mut Recovery) -> Result<()> {
        if rec.now < rec.next_heartbeat {
            return Ok(());
        }
        rec.next_heartbeat = rec.now + rec.cfg.heartbeat_every.max(1);
        let probers: Vec<NodeHandle> = self.ring.alive_nodes().collect();
        for p in probers {
            let slot = p.index() as u32;
            let targets: Vec<NodeHandle> = self
                .ring
                .node(p)
                .successor_list()
                .iter()
                .copied()
                .filter(|t| *t != p)
                .collect();
            for t in targets {
                let tslot = t.index() as u32;
                rec.watches
                    .entry((slot, tslot))
                    .or_insert(WatchState::Waiting { sent_at: rec.now });
                let seq = rec.probe_seq;
                rec.probe_seq += 1;
                self.metrics.recovery.heartbeats_sent += 1;
                self.push_direct(p, t, Message::Ping { from: slot, seq });
            }
        }
        Ok(())
    }

    /// Advances watch deadlines: waiting → suspected → confirmed. A
    /// confirmation removes the watch, triggers stabilization + replica
    /// promotion, and — when the target really was dead — closes the
    /// detection window and opens a repair episode.
    fn sweep_deadlines(&mut self, rec: &mut Recovery) -> Result<()> {
        let now = rec.now;
        let mut confirmed: Vec<(u32, u32)> = Vec::new();
        let mut suspected: Vec<(u32, u32)> = Vec::new();
        let mut dead_probers: Vec<(u32, u32)> = Vec::new();
        for (&(p, t), state) in rec.watches.iter_mut() {
            if !self
                .ring
                .node(NodeHandle::from_index(p as usize))
                .is_alive()
            {
                dead_probers.push((p, t));
                continue;
            }
            match *state {
                WatchState::Waiting { sent_at } => {
                    if now >= sent_at + rec.cfg.suspect_after {
                        *state = WatchState::Suspected { suspected_at: now };
                        suspected.push((p, t));
                    }
                }
                WatchState::Suspected { suspected_at } => {
                    if now >= suspected_at + rec.cfg.confirm_after {
                        confirmed.push((p, t));
                    }
                }
            }
        }
        for key in dead_probers {
            rec.watches.remove(&key);
        }
        for (p, t) in suspected {
            self.metrics.recovery.suspects += 1;
            self.trace(|| TraceEvent::Suspect {
                tick: now,
                node: p,
                target: t,
            });
        }
        let mut repaired = false;
        for (p, t) in confirmed {
            rec.watches.remove(&(p, t));
            let dead = !self
                .ring
                .node(NodeHandle::from_index(t as usize))
                .is_alive();
            self.metrics.recovery.confirms += 1;
            self.trace(|| TraceEvent::Confirm {
                tick: now,
                node: p,
                target: t,
                dead,
            });
            if !dead {
                // A slow-but-alive node was declared dead. Stabilization
                // and promotion below are harmless (the ring still lists
                // it; promotion extracts nothing it owns) — the cost is
                // the spurious repair work itself, which is the honest
                // price of an aggressive timeout.
                self.metrics.recovery.false_suspects += 1;
            } else if let Some((fail_tick, fail_clock)) = rec.undetected.remove(&t) {
                // First confirmation of this actually-dead node.
                self.metrics.recovery.detections += 1;
                self.metrics.recovery.detect_ticks_total += now.saturating_sub(fail_tick);
                rec.windows.push((fail_clock, self.trace_tick()));
                if rec.cfg.anti_entropy_every > 0 && self.repl_k() > 0 {
                    rec.repair_pending.push((t, fail_tick));
                } else {
                    // No digest rounds to verify against: promotion below
                    // is the whole repair.
                    self.metrics.recovery.repairs += 1;
                    self.metrics.recovery.repair_ticks_total += now.saturating_sub(fail_tick);
                }
            }
            repaired = true;
        }
        if repaired {
            self.ring.stabilize_all(1);
            self.promote_replicas()?;
        }
        Ok(())
    }

    /// One anti-entropy round: every alive primary digests its owned state
    /// against each of its `k` successors' replica stores and re-mirrors
    /// only the missing items. A globally clean round (nothing missing
    /// anywhere) closes all open repair episodes.
    fn anti_entropy_round(&mut self, rec: &mut Recovery) -> Result<()> {
        let k = self.repl_k();
        if k == 0 || rec.cfg.anti_entropy_every == 0 || rec.now < rec.next_anti_entropy {
            return Ok(());
        }
        rec.next_anti_entropy = rec.now + rec.cfg.anti_entropy_every;
        let now = rec.now;
        // Plan immutably first (digests borrow node state), then send.
        let mut plans: Vec<(NodeHandle, NodeHandle, Vec<ReplicaItem>)> = Vec::new();
        let mut exchanges: Vec<(u32, u32, u64, u64)> = Vec::new();
        {
            let ring = &self.ring;
            let primaries: Vec<NodeHandle> = ring.alive_nodes().collect();
            for p in primaries {
                let succs = ring.successors_of(p, k);
                if succs.is_empty() {
                    continue;
                }
                let owned = |id: Id| ring.owns(p, id);
                let primary = primary_hashes(&self.nodes[p.index()], owned);
                let pdig = digest_of(&primary);
                for s in succs {
                    let sdig = self.nodes[s.index()].replicas.digest_where(owned);
                    let missing = if sdig == pdig {
                        Vec::new()
                    } else {
                        let mut have = FxHashSet::default();
                        self.nodes[s.index()]
                            .replicas
                            .hashes_where(owned, &mut have);
                        missing_primary_items(&self.nodes[p.index()], owned, &have)
                    };
                    exchanges.push((
                        p.index() as u32,
                        s.index() as u32,
                        pdig.0,
                        missing.len() as u64,
                    ));
                    if !missing.is_empty() {
                        plans.push((p, s, missing));
                    }
                }
            }
        }
        for (node, to, items, missing) in exchanges {
            self.metrics.recovery.digest_exchanges += 1;
            self.trace(|| TraceEvent::DigestExchange {
                tick: now,
                node,
                to,
                items,
                missing,
            });
        }
        let clean = plans.is_empty();
        for (p, s, items) in plans {
            let (node, to, count) = (p.index() as u32, s.index() as u32, items.len() as u64);
            // Exact repair cost: the serialized size of each re-mirror's
            // `Replicate` frame under the wire codec.
            let msgs: Vec<Message> = items
                .into_iter()
                .map(|item| Message::Replicate {
                    item: Box::new(item),
                })
                .collect();
            let bytes: u64 = msgs.iter().map(wire::encoded_len).sum();
            self.metrics.recovery.repair_items += count;
            self.metrics.recovery.repair_bytes += bytes;
            self.trace(|| TraceEvent::Repair {
                tick: now,
                node,
                to,
                items: count,
                bytes,
            });
            for msg in msgs {
                self.push_direct(p, s, msg);
            }
        }
        if clean && !rec.repair_pending.is_empty() {
            for (_, fail_tick) in rec.repair_pending.drain(..) {
                self.metrics.recovery.repairs += 1;
                self.metrics.recovery.repair_ticks_total += now.saturating_sub(fail_tick);
            }
        }
        Ok(())
    }

    /// Drives the pump until the detector has confirmed every outstanding
    /// failure and verified its repair — forcing empty ticks if no protocol
    /// traffic keeps the clock moving. A no-op without a detector. Errors
    /// if detection cannot converge (e.g. more consecutive failures than
    /// the successor lists cover).
    pub fn settle(&mut self) -> Result<()> {
        self.process_all()?;
        if self.recovery.is_none() {
            return Ok(());
        }
        let Some(mut pipe) = self.transport.take_pipe() else {
            return Ok(());
        };
        let mut result = Ok(());
        let mut forced = 0u64;
        loop {
            let pending = self.recovery.as_ref().is_some_and(|r| r.pending());
            if !pending && !pipe.busy() && self.transport.is_idle() {
                break;
            }
            forced += 1;
            if forced > 100_000 {
                result = Err(EngineError::Protocol {
                    detail: "failure detection did not converge within 100000 forced ticks \
                             (more consecutive failures than successor lists cover?)"
                        .to_string(),
                });
                break;
            }
            let drained = loop {
                match self.transport.next_delivery() {
                    Ok(Some(p)) => self.transmit(&mut pipe, p),
                    Ok(None) => break Ok(()),
                    Err(e) => break Err(e),
                }
            };
            if let Err(e) = drained {
                result = Err(e);
                break;
            }
            if let Err(e) = self.pump_tick(&mut pipe) {
                result = Err(e);
                break;
            }
        }
        self.transport.restore_pipe(pipe);
        result
    }

    /// The detection windows observed so far, as closed logical-clock
    /// intervals `[fail, confirm]`; failures not yet confirmed yield
    /// half-open windows `[fail, u64::MAX]`. Tuples published inside any
    /// window have no delivery guarantee (the paper's best-effort
    /// semantics); everything outside must match the oracle.
    pub fn detection_windows(&self) -> Vec<(u64, u64)> {
        let Some(rec) = self.recovery.as_ref() else {
            return Vec::new();
        };
        let mut out = rec.windows.clone();
        for (_, fail_clock) in rec.undetected.values() {
            out.push((*fail_clock, u64::MAX));
        }
        out.sort_unstable();
        out
    }

    /// Failure-detection counters (alias for `metrics().recovery`).
    pub fn recovery_counters(&self) -> crate::metrics::RecoveryCounters {
        self.metrics.recovery
    }

    /// Runs one anti-entropy round immediately, regardless of cadence
    /// (test hook for divergence-repair scenarios).
    #[doc(hidden)]
    pub fn anti_entropy_now(&mut self) -> Result<()> {
        if self.recovery.is_none() {
            return Ok(());
        }
        // Invariant: is_none() returned above; take-and-restore releases the
        // &mut self borrow while the round runs.
        let mut rec = self.recovery.take().expect("checked above");
        rec.next_anti_entropy = rec.now;
        let result = self.anti_entropy_round(&mut rec);
        self.recovery = Some(rec);
        if result.is_ok() {
            return self.process_all();
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_disabled() {
        let cfg = SuspicionConfig::default();
        assert!(!cfg.enabled);
    }

    #[test]
    fn active_profile_enables_and_scales() {
        let cfg = SuspicionConfig::active()
            .with_suspect_after(4)
            .with_confirm_after(4);
        assert!(cfg.enabled);
        assert_eq!(cfg.suspect_after, 4);
        assert_eq!(cfg.confirm_after, 4);
    }

    #[test]
    fn builder_setters_are_independent() {
        // `with_suspect_after` must not touch the confirmation grace (it
        // once silently overwrote it, making independent tuning impossible).
        let cfg = SuspicionConfig::active().with_suspect_after(3);
        assert_eq!(cfg.suspect_after, 3);
        assert_eq!(
            cfg.confirm_after,
            SuspicionConfig::default().confirm_after,
            "with_suspect_after must leave confirm_after alone"
        );
        let cfg = SuspicionConfig::active().with_confirm_after(5);
        assert_eq!(cfg.suspect_after, SuspicionConfig::default().suspect_after);
        assert_eq!(cfg.confirm_after, 5);
        // And the pair composes in either order.
        let cfg = SuspicionConfig::active()
            .with_confirm_after(9)
            .with_suspect_after(6);
        assert_eq!((cfg.suspect_after, cfg.confirm_after), (6, 9));
    }

    #[test]
    fn recovery_starts_idle() {
        let rec = Recovery::new(SuspicionConfig::active());
        assert!(!rec.pending());
        assert_eq!(rec.next_heartbeat, 1);
    }
}
