//! Identifiers on the Chord ring.
//!
//! Chord orders node and key identifiers on a circle modulo `2^m` (the paper's
//! Section 2.2). All interval tests used by routing and ring maintenance are
//! defined here so the wrap-around arithmetic lives in exactly one place.

use std::fmt;

/// Maximum number of identifier bits supported by [`Id`].
pub const MAX_BITS: u32 = 63;

/// An identifier in an `m`-bit circular identifier space.
///
/// The space size `m` is carried by [`IdSpace`], not by the identifier itself;
/// mixing identifiers from different spaces is a logic error that the
/// [`IdSpace`] constructors prevent by masking.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Id(pub u64);

impl fmt::Debug for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Id({})", self.0)
    }
}

impl fmt::Display for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// An `m`-bit circular identifier space (`0 .. 2^m`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IdSpace {
    bits: u32,
}

impl IdSpace {
    /// Creates an identifier space with `bits` identifier bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or greater than [`MAX_BITS`].
    pub fn new(bits: u32) -> Self {
        assert!(
            (1..=MAX_BITS).contains(&bits),
            "identifier space must have 1..={MAX_BITS} bits, got {bits}"
        );
        IdSpace { bits }
    }

    /// Number of identifier bits (`m` in the paper).
    #[inline]
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Size of the identifier space, `2^m`.
    #[inline]
    pub fn size(&self) -> u64 {
        1u64 << self.bits
    }

    /// Bit mask selecting the low `m` bits.
    #[inline]
    pub fn mask(&self) -> u64 {
        self.size() - 1
    }

    /// Truncates an arbitrary 64-bit value into this space.
    #[inline]
    pub fn id(&self, raw: u64) -> Id {
        Id(raw & self.mask())
    }

    /// `a + b mod 2^m`.
    #[inline]
    pub fn add(&self, a: Id, b: u64) -> Id {
        Id(a.0.wrapping_add(b) & self.mask())
    }

    /// The identifier `a + 2^(j-1) mod 2^m` — the start of finger interval `j`
    /// (`1 <= j <= m`), as in the paper's finger-table definition.
    #[inline]
    pub fn finger_start(&self, a: Id, j: u32) -> Id {
        debug_assert!(j >= 1 && j <= self.bits);
        self.add(a, 1u64 << (j - 1))
    }

    /// Clockwise distance from `a` to `b` on the ring.
    #[inline]
    pub fn distance(&self, a: Id, b: Id) -> u64 {
        b.0.wrapping_sub(a.0) & self.mask()
    }

    /// Tests `x ∈ (a, b)` on the ring (exclusive at both ends).
    ///
    /// When `a == b` the interval covers the whole ring except `a` itself,
    /// matching Chord's conventions for a ring with a single node.
    #[inline]
    pub fn in_open(&self, x: Id, a: Id, b: Id) -> bool {
        if a == b {
            x != a
        } else {
            let d_ab = self.distance(a, b);
            let d_ax = self.distance(a, x);
            d_ax > 0 && d_ax < d_ab
        }
    }

    /// Tests `x ∈ (a, b]` on the ring — the interval used by
    /// `successor` ownership: key `k` belongs to the first node `n` with
    /// `k ∈ (predecessor(n), n]`.
    #[inline]
    pub fn in_open_closed(&self, x: Id, a: Id, b: Id) -> bool {
        if a == b {
            true // a single node owns the whole ring
        } else {
            let d_ab = self.distance(a, b);
            let d_ax = self.distance(a, x);
            d_ax > 0 && d_ax <= d_ab
        }
    }

    /// Tests `x ∈ [a, b)` on the ring.
    #[inline]
    pub fn in_closed_open(&self, x: Id, a: Id, b: Id) -> bool {
        x == a || self.in_open(x, a, b)
    }
}

impl Default for IdSpace {
    /// The default 32-bit space used throughout the experiments.
    fn default() -> Self {
        IdSpace::new(32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sp() -> IdSpace {
        IdSpace::new(6) // the paper's Figure 2.1 uses m = 6
    }

    #[test]
    fn space_size_and_mask() {
        let s = sp();
        assert_eq!(s.size(), 64);
        assert_eq!(s.mask(), 63);
        assert_eq!(s.id(130), Id(2));
    }

    #[test]
    fn add_wraps_around() {
        let s = sp();
        assert_eq!(s.add(Id(60), 10), Id(6));
        assert_eq!(s.add(Id(0), 63), Id(63));
        assert_eq!(s.add(Id(63), 1), Id(0));
    }

    #[test]
    fn finger_starts_double() {
        let s = sp();
        let n = Id(8);
        assert_eq!(s.finger_start(n, 1), Id(9));
        assert_eq!(s.finger_start(n, 2), Id(10));
        assert_eq!(s.finger_start(n, 3), Id(12));
        assert_eq!(s.finger_start(n, 6), Id(40));
    }

    #[test]
    fn distance_is_clockwise() {
        let s = sp();
        assert_eq!(s.distance(Id(10), Id(20)), 10);
        assert_eq!(s.distance(Id(60), Id(4)), 8);
        assert_eq!(s.distance(Id(5), Id(5)), 0);
    }

    #[test]
    fn open_interval_wraps() {
        let s = sp();
        assert!(s.in_open(Id(25), Id(21), Id(32)));
        assert!(!s.in_open(Id(21), Id(21), Id(32)));
        assert!(!s.in_open(Id(32), Id(21), Id(32)));
        // wrap-around interval (56, 8)
        assert!(s.in_open(Id(60), Id(56), Id(8)));
        assert!(s.in_open(Id(2), Id(56), Id(8)));
        assert!(!s.in_open(Id(10), Id(56), Id(8)));
    }

    #[test]
    fn open_closed_matches_paper_example() {
        // "node N32 would be responsible for all keys in the interval (21, 32]"
        let s = sp();
        assert!(s.in_open_closed(Id(22), Id(21), Id(32)));
        assert!(s.in_open_closed(Id(32), Id(21), Id(32)));
        assert!(!s.in_open_closed(Id(21), Id(21), Id(32)));
        assert!(!s.in_open_closed(Id(33), Id(21), Id(32)));
    }

    #[test]
    fn single_node_owns_everything() {
        let s = sp();
        assert!(s.in_open_closed(Id(5), Id(40), Id(40)));
        assert!(s.in_open_closed(Id(40), Id(40), Id(40)));
    }

    #[test]
    fn closed_open_interval() {
        let s = sp();
        assert!(s.in_closed_open(Id(21), Id(21), Id(32)));
        assert!(!s.in_closed_open(Id(32), Id(21), Id(32)));
    }
}
