//! Runs one experiment over real TCP loopback sockets and checks the
//! delivered notification set and metrics against an in-memory simulator
//! run of the same seed.
//!
//! ```text
//! tcp_cluster [--alg A] [--nodes N] [--queries Q] [--tuples T] [--seed S]
//!             [--clients C] [--payload-size B]
//! ```
//!
//! Without `--clients`, the command stream is applied in-process and only
//! the engine's node-to-node traffic crosses sockets. With `--clients C`,
//! the commands additionally arrive over C concurrent client connections
//! into one server event loop (true multi-client mode), and the outcome is
//! checked against a sequential in-memory run of the same command list.
//!
//! With `--payload-size B`, the equivalence check is replaced by the
//! loopback throughput harness: wide tuples carrying a `B`-byte string
//! payload are streamed through the real reactor and only the throughput
//! summary is printed (the default workload's tuples are all-`Int`, so
//! stress payloads need the harness's own catalog).
//!
//! Every socket run ends with a throughput summary: frames sent/received,
//! wire bytes, syscalls, frames per flush, pool hit rate, wall time, and
//! messages per second.
//!
//! Exits nonzero (with a description of the first divergence) if the socket
//! run and the simulator run disagree.

use std::time::Duration;

use cq_engine::{Algorithm, SocketStats};
use cq_sim::cluster::{compare, run_multi_client, run_throughput, ClusterConfig, ThroughputConfig};

fn parse<T: std::str::FromStr>(flag: &str, v: Option<&String>) -> T {
    v.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} expects a value");
        std::process::exit(2);
    })
}

/// Prints the per-run socket throughput summary.
fn print_summary(messages: u64, wall: Duration, s: &SocketStats) {
    let secs = wall.as_secs_f64().max(1e-9);
    println!(
        "socket summary: {} frames out / {} in, {} bytes written / {} read",
        s.frames_sent, s.frames_received, s.bytes_written, s.bytes_read
    );
    println!(
        "  {} write syscalls ({:.1} frames/flush, {:.0} bytes/syscall), \
         {} read syscalls, {} blocked writes",
        s.write_syscalls,
        s.frames_per_flush(),
        s.bytes_per_syscall(),
        s.read_syscalls,
        s.blocked_writes
    );
    println!(
        "  pool hit rate {:.1}% ({} hits / {} misses), wall {:.3}s, {:.0} msgs/sec",
        s.pool_hit_rate() * 100.0,
        s.pool_hits,
        s.pool_misses,
        secs,
        messages as f64 / secs
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ClusterConfig::default();
    let mut clients: Option<usize> = None;
    let mut payload_size: Option<usize> = None;
    let mut nodes_set = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--alg" => {
                let name: String = parse("--alg", iter.next());
                cfg.algorithm = Algorithm::ALL
                    .into_iter()
                    .find(|a| a.to_string().eq_ignore_ascii_case(&name))
                    .unwrap_or_else(|| {
                        eprintln!("unknown algorithm {name} (expected SAI/DAI-Q/DAI-T/DAI-V)");
                        std::process::exit(2);
                    });
            }
            "--nodes" => {
                cfg.nodes = parse("--nodes", iter.next());
                nodes_set = true;
            }
            "--queries" => cfg.queries = parse("--queries", iter.next()),
            "--tuples" => cfg.tuples = parse("--tuples", iter.next()),
            "--seed" => cfg.seed = parse("--seed", iter.next()),
            "--clients" => clients = Some(parse("--clients", iter.next())),
            "--payload-size" => payload_size = Some(parse("--payload-size", iter.next())),
            other => {
                eprintln!("unknown flag {other}");
                eprintln!(
                    "usage: tcp_cluster [--alg A] [--nodes N] [--queries Q] \
                     [--tuples T] [--seed S] [--clients C] [--payload-size B]"
                );
                std::process::exit(2);
            }
        }
    }
    if let Some(payload) = payload_size {
        let tcfg = ThroughputConfig {
            nodes: if nodes_set {
                cfg.nodes
            } else {
                ThroughputConfig::default().nodes
            },
            payload,
            tuples: cfg.tuples.max(ThroughputConfig::default().tuples),
            seed: cfg.seed,
        };
        println!(
            "tcp_cluster throughput: {} nodes, {} tuples, {}-byte payloads, seed {}",
            tcfg.nodes, tcfg.tuples, tcfg.payload, tcfg.seed
        );
        let report = run_throughput(&tcfg);
        println!(
            "moved {} messages / {} wire bytes in {:.3}s ({:.0} msgs/sec, {:.2} MB/s)",
            report.messages,
            report.wire_bytes,
            report.wall.as_secs_f64(),
            report.msgs_per_sec(),
            report.mb_per_sec()
        );
        print_summary(report.messages, report.wall, &report.socket);
        return;
    }
    println!(
        "tcp_cluster: {} over {} nodes, {} queries, {} tuples, seed {}",
        cfg.algorithm, cfg.nodes, cfg.queries, cfg.tuples, cfg.seed
    );
    if let Some(clients) = clients {
        match run_multi_client(&cfg, clients) {
            Ok(report) => {
                println!(
                    "multi-client run agrees with the sequential baseline: \
                     {} commands over {} connections, {} wire bytes, \
                     {} backpressure events",
                    report.commands,
                    report.clients,
                    report.wire_bytes,
                    report.server_backpressure_events
                );
            }
            Err(divergence) => {
                eprintln!("MISMATCH: {divergence}");
                std::process::exit(1);
            }
        }
        return;
    }
    match compare(&cfg) {
        Ok(report) => {
            println!(
                "sim and tcp runs agree; tcp moved {} wire bytes",
                report.wire_bytes
            );
            print_summary(report.messages, report.wall, &report.socket);
        }
        Err(divergence) => {
            eprintln!("MISMATCH: {divergence}");
            std::process::exit(1);
        }
    }
}
