//! One benchmark per reproduced figure/table: times a `Scale::Quick` run of
//! each experiment end to end (workload generation + network simulation +
//! metric collection). The experiment *output* for EXPERIMENTS.md comes from
//! the `experiments` binary; these benches track the cost of regenerating
//! each figure and catch performance regressions in the simulator.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use cq_bench::{experiments, Scale};

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    for (id, f) in experiments::all() {
        group.bench_function(id, |b| b.iter(|| black_box(f(Scale::Quick).len())));
    }
    group.finish();
}

criterion_group! {
    name = benches;
    // short windows keep `cargo bench --workspace` minutes-scale;
    // trends matter more than microsecond precision here
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_figures
}
criterion_main!(benches);
