//! Regenerates the paper's evaluation figures and Table 4.1.
//!
//! ```text
//! experiments [--full] [--csv] [ids...]
//!
//!   --full     paper-approaching scale (default: quick)
//!   --csv      also print CSV blocks after each table
//!   ids        e01..e16, t01 (default: all)
//! ```

use std::time::Instant;

use cq_sim::experiments::{all, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let csv = args.iter().any(|a| a == "--csv");
    let ids: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let scale = if full { Scale::Full } else { Scale::Quick };

    let registry = all();
    let selected: Vec<_> = if ids.is_empty() {
        registry
    } else {
        registry
            .into_iter()
            .filter(|(id, _)| ids.iter().any(|want| want.as_str() == *id))
            .collect()
    };
    if selected.is_empty() {
        eprintln!("no experiment matches; known ids: e01..e16, t01, a01");
        std::process::exit(2);
    }

    println!(
        "# Continuous equi-join experiments — scale: {}",
        if full { "full" } else { "quick" }
    );
    for (id, f) in selected {
        let start = Instant::now();
        let report = f(scale);
        let elapsed = start.elapsed();
        println!("{}", report.render());
        if csv {
            println!("```csv\n{}```", report.to_csv());
        }
        println!("[{} finished in {:.2?}]\n", id, elapsed);
    }
}
