//! End-to-end socket suite: a quick experiment over real TCP loopback
//! sockets must deliver exactly what the in-memory simulator delivers at
//! the same seed, for every algorithm.

use cq_engine::Algorithm;
use cq_sim::cluster::{compare, run_multi_client, run_once, ClusterConfig};

#[test]
fn tcp_loopback_matches_simulator() {
    for algorithm in [Algorithm::Sai, Algorithm::DaiT] {
        let cfg = ClusterConfig {
            algorithm,
            nodes: 24,
            queries: 8,
            tuples: 60,
            seed: 11,
        };
        compare(&cfg).unwrap_or_else(|d| panic!("{algorithm}: {d}"));
    }
}

#[test]
fn tcp_runs_deliver_notifications() {
    let cfg = ClusterConfig {
        nodes: 16,
        queries: 6,
        tuples: 50,
        seed: 3,
        ..ClusterConfig::default()
    };
    let run = run_once(&cfg, true);
    assert!(
        !run.delivered.is_empty(),
        "the socket run should produce notifications"
    );
    assert!(run.wire_bytes > 0, "frames crossed real sockets");
}

#[test]
fn multi_client_event_loop_matches_sequential_run() {
    // One server event loop, eight client connections concurrently in
    // flight: frames interleave and arrive out of global order, the server
    // reassembles by sequence number, and the outcome must equal a
    // sequential in-memory run of the same command list. The completion
    // exchange pushes an oversized frame through a tiny SO_SNDBUF, so the
    // run also proves the partial-write backpressure path.
    let cfg = ClusterConfig {
        nodes: 24,
        queries: 8,
        tuples: 60,
        seed: 11,
        ..ClusterConfig::default()
    };
    let report = run_multi_client(&cfg, 8).expect("multi-client run matches the baseline");
    assert_eq!(report.clients, 8);
    assert_eq!(report.commands, 68);
    assert!(report.wire_bytes > 0, "engine frames crossed real sockets");
    assert!(
        report.server_backpressure_events > 0,
        "the completion exchange must exercise write backpressure"
    );
}

#[test]
fn tcp_rejects_fault_configs() {
    use cq_engine::{EngineConfig, FaultConfig, Network};
    use cq_workload::{Workload, WorkloadConfig};

    let workload = Workload::new(WorkloadConfig::default());
    let cfg = EngineConfig::new(Algorithm::DaiT)
        .with_nodes(8)
        .with_fault(FaultConfig {
            loss_rate: 0.1,
            ..FaultConfig::default()
        });
    let mut net = Network::new(cfg, workload.catalog().clone());
    let err = net.enable_tcp_transport().expect_err("pipe configs refuse");
    assert!(err.to_string().contains("perfect delivery"), "{err}");
}
