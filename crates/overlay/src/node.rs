//! Per-node Chord state: identifier, successor list, predecessor and the
//! finger table (the paper's Section 2.2).

use crate::id::Id;

/// A stable handle to a node slot inside a [`crate::ring::Ring`].
///
/// Handles are never reused: a node that fails or leaves keeps its slot (and
/// its key), so it can later rejoin with the same identifier — which is what
/// enables the offline-notification delivery of Section 4.6.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeHandle(pub(crate) u32);

impl NodeHandle {
    /// Zero-based index of the slot (useful for indexing per-node metric
    /// arrays in the simulation harness).
    #[inline]
    pub fn index(&self) -> usize {
        self.0 as usize
    }

    /// Builds a handle from a slot index. Only meaningful for indices
    /// obtained from the same [`crate::ring::Ring`]; exposed for higher
    /// layers that store handles in index-keyed structures.
    #[inline]
    pub fn from_index(index: usize) -> NodeHandle {
        NodeHandle(index as u32)
    }
}

/// The Chord state a single node maintains.
#[derive(Clone, Debug)]
pub struct Node {
    /// `Key(n)` — e.g. derived from the node's public key / IP address.
    pub(crate) key: String,
    /// `id(n) = Hash(Key(n))`.
    pub(crate) id: Id,
    /// Successor list of size `r` (first entry is *the* successor).
    pub(crate) successors: Vec<NodeHandle>,
    /// Predecessor pointer, if known.
    pub(crate) predecessor: Option<NodeHandle>,
    /// Finger table: entry `j-1` points at `successor(id + 2^(j-1))`.
    pub(crate) fingers: Vec<Option<NodeHandle>>,
    /// Whether the node currently participates in the ring.
    pub(crate) alive: bool,
    /// Round-robin cursor for incremental `fix_fingers`.
    pub(crate) next_finger: u32,
}

impl Node {
    pub(crate) fn new(key: String, id: Id, m: u32) -> Self {
        Node {
            key,
            id,
            successors: Vec::new(),
            predecessor: None,
            fingers: vec![None; m as usize],
            alive: true,
            next_finger: 0,
        }
    }

    /// The node's identifier on the ring.
    #[inline]
    pub fn id(&self) -> Id {
        self.id
    }

    /// The node's stable key (`Key(n)`).
    #[inline]
    pub fn key(&self) -> &str {
        &self.key
    }

    /// Whether the node is currently part of the ring.
    #[inline]
    pub fn is_alive(&self) -> bool {
        self.alive
    }

    /// The node's immediate successor, if it knows one.
    #[inline]
    pub fn successor(&self) -> Option<NodeHandle> {
        self.successors.first().copied()
    }

    /// The full successor list.
    #[inline]
    pub fn successor_list(&self) -> &[NodeHandle] {
        &self.successors
    }

    /// The predecessor pointer.
    #[inline]
    pub fn predecessor(&self) -> Option<NodeHandle> {
        self.predecessor
    }

    /// The finger table (entry `j-1` targets `id + 2^(j-1)`).
    #[inline]
    pub fn fingers(&self) -> &[Option<NodeHandle>] {
        &self.fingers
    }
}
