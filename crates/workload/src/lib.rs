//! # cq-workload — synthetic workload generation
//!
//! Reproduces the experimental set-up of the paper's Chapter 5: synthetic
//! relational schemas, tuple streams with uniform or Zipf-skewed attribute
//! values, continuous-query mixes over random join attributes, and the knobs
//! the experiments sweep (number of queries, tuple rate, *bos* ratio — the
//! bias between the two joined relations' arrival rates, see DESIGN.md).

#![warn(missing_docs)]

pub mod generator;
pub mod zipf;

pub use generator::{Workload, WorkloadConfig};
pub use zipf::Zipf;
