//! Churn-hardened recovery: heartbeat failure detection, suspicion windows,
//! and anti-entropy replica repair — no oracle failure knowledge anywhere.

use cq_engine::{Algorithm, EngineConfig, FaultConfig, Network, Oracle, SuspicionConfig};
use cq_relational::{Catalog, DataType, RelationSchema, Tuple, Value};
use std::sync::Arc;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(RelationSchema::of("R", &[("A", DataType::Int), ("B", DataType::Int)]).unwrap())
        .unwrap();
    c.register(RelationSchema::of("S", &[("D", DataType::Int), ("E", DataType::Int)]).unwrap())
        .unwrap();
    c
}

fn expected_for(net: &Network, tuples: &[Arc<Tuple>]) -> std::collections::HashSet<String> {
    let mut oracle = Oracle::new();
    oracle.ingest(net.posed_queries(), tuples);
    oracle
        .expected()
        .unwrap()
        .into_iter()
        .map(|n| n.to_string())
        .collect()
}

#[test]
fn detector_finds_failure_and_promotes_without_oracle() {
    for alg in Algorithm::ALL {
        let fault = FaultConfig {
            replication: 1,
            ..FaultConfig::default()
        };
        let mut net = Network::new(
            EngineConfig::new(alg)
                .with_nodes(40)
                .with_seed(11)
                .with_fault(fault)
                .with_suspicion(SuspicionConfig::active()),
            catalog(),
        );
        let a = net.node_at(0);
        net.pose_query_sql(a, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
            .unwrap();
        for i in 0..6i64 {
            net.insert_tuple(a, "R", vec![Value::Int(i), Value::Int(i % 3)])
                .unwrap();
        }
        // Abrupt failure with NO oracle repair: no stabilize() call. The
        // heartbeat detector must notice, confirm, and promote replicas.
        let victim = net.node_at(20);
        assert_ne!(victim, a);
        net.node_fail(victim).unwrap();
        net.settle().unwrap();

        let rec = net.recovery_counters();
        assert_eq!(rec.detections, 1, "{alg}: detector must confirm the death");
        assert!(rec.heartbeats_sent > 0, "{alg}: probing must have happened");
        assert_eq!(rec.repairs, 1, "{alg}: repair must be verified by settle");
        assert!(
            rec.detect_ticks_total > 0,
            "{alg}: detection takes nonzero ticks"
        );

        for i in 0..6i64 {
            net.insert_tuple(a, "S", vec![Value::Int(i), Value::Int(i % 3)])
                .unwrap();
        }
        let delivered: std::collections::HashSet<String> = net
            .delivered_set()
            .into_iter()
            .map(|n| n.to_string())
            .collect();
        let tuples: Vec<Arc<Tuple>> = net.inserted_tuples().to_vec();
        assert_eq!(
            delivered,
            expected_for(&net, &tuples),
            "{alg}: k=1 replication + detection must be lossless here"
        );
    }
}

#[test]
fn churn_with_loss_matches_oracle_outside_detection_windows() {
    // The acceptance scenario: abrupt churn combined with a 20% lossy
    // channel at k=2, detector enabled, no oracle repair anywhere. Every
    // notification the oracle expects from tuples published outside the
    // detection windows must be delivered.
    let mut fault = FaultConfig::lossy(0.2, 42);
    fault.replication = 2;
    let mut net = Network::new(
        EngineConfig::new(Algorithm::DaiT)
            .with_nodes(48)
            .with_seed(13)
            .with_fault(fault)
            .with_suspicion(SuspicionConfig::active()),
        catalog(),
    );
    let a = net.node_at(0);
    net.pose_query_sql(a, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
        .unwrap();
    net.pose_query_sql(a, "SELECT S.D, R.B FROM S, R WHERE S.D = R.A")
        .unwrap();
    let victims = [net.node_at(12), net.node_at(25), net.node_at(37)];
    for i in 0..24i64 {
        net.insert_tuple(a, "R", vec![Value::Int(i % 5), Value::Int(i % 4)])
            .unwrap();
        net.insert_tuple(a, "S", vec![Value::Int(i % 5), Value::Int(i % 4)])
            .unwrap();
        if i % 8 == 4 {
            let v = victims[(i / 8) as usize];
            if v != a && net.ring().node(v).is_alive() {
                net.node_fail(v).unwrap(); // no stabilize: detector's job
            }
        }
    }
    net.settle().unwrap();

    let rec = net.recovery_counters();
    assert!(rec.detections >= 1, "churn must be detected: {rec:?}");
    assert_eq!(
        rec.detections, rec.repairs,
        "settle must verify a repair per detection: {rec:?}"
    );

    let delivered: std::collections::HashSet<String> = net
        .delivered_set()
        .into_iter()
        .map(|n| n.to_string())
        .collect();
    let all_tuples: Vec<Arc<Tuple>> = net.inserted_tuples().to_vec();
    let expected_all = expected_for(&net, &all_tuples);
    for n in &delivered {
        assert!(expected_all.contains(n), "spurious notification {n}");
    }

    let windows = net.detection_windows();
    assert!(!windows.is_empty(), "failures must open detection windows");
    assert!(
        windows.iter().all(|&(_, b)| b != u64::MAX),
        "settle must close every window: {windows:?}"
    );
    let outside: Vec<Arc<Tuple>> = all_tuples
        .iter()
        .filter(|t| {
            let p = t.pub_time().0;
            windows.iter().all(|&(lo, hi)| p < lo || p > hi)
        })
        .cloned()
        .collect();
    assert!(
        outside.len() < all_tuples.len(),
        "windows must cover tuples"
    );
    for n in expected_for(&net, &outside) {
        assert!(
            delivered.contains(&n),
            "notification expected outside all detection windows was lost: {n}"
        );
    }
}

#[test]
fn slow_links_cause_false_suspicion_not_data_loss() {
    // Delay faults with an aggressive timeout: probes come back late, the
    // detector suspects (and may even confirm) live nodes. That must cost
    // only false-suspect counters — never correctness, since promotion is
    // guarded by actual ring ownership.
    let fault = FaultConfig {
        delay_rate: 1.0,
        max_delay: 6,
        replication: 1,
        ..FaultConfig::default()
    };
    let mut net = Network::new(
        EngineConfig::new(Algorithm::Sai)
            .with_nodes(32)
            .with_seed(17)
            .with_fault(fault)
            .with_suspicion(
                SuspicionConfig::active()
                    .with_suspect_after(2)
                    .with_confirm_after(2),
            ),
        catalog(),
    );
    let a = net.node_at(0);
    net.pose_query_sql(a, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
        .unwrap();
    for i in 0..10i64 {
        net.insert_tuple(a, "R", vec![Value::Int(i), Value::Int(i % 3)])
            .unwrap();
        net.insert_tuple(a, "S", vec![Value::Int(i), Value::Int(i % 3)])
            .unwrap();
    }
    net.settle().unwrap();

    let rec = net.recovery_counters();
    assert!(
        rec.false_suspects > 0,
        "delayed pongs must trip the aggressive timeout: {rec:?}"
    );
    assert_eq!(rec.detections, 0, "nobody actually died: {rec:?}");

    let delivered: std::collections::HashSet<String> = net
        .delivered_set()
        .into_iter()
        .map(|n| n.to_string())
        .collect();
    let tuples: Vec<Arc<Tuple>> = net.inserted_tuples().to_vec();
    assert_eq!(
        delivered,
        expected_for(&net, &tuples),
        "false suspicion must not lose or fabricate notifications"
    );
}

#[test]
fn anti_entropy_repairs_replica_divergence() {
    // Heavy loss with a tight retransmission cap: most protocol traffic
    // eventually lands, but some re-mirroring messages exhaust their
    // retries, so replica stores fall behind their primaries. Anti-entropy
    // digests must spot the divergence and re-send exactly the missing
    // items.
    let mut fault = FaultConfig::lossy(0.5, 19);
    fault.replication = 1;
    fault.max_retries = 1;
    let mut net = Network::new(
        EngineConfig::new(Algorithm::DaiT)
            .with_nodes(32)
            .with_seed(19)
            .with_fault(fault)
            // Cadence far in the future: only the explicit hook runs AE.
            .with_suspicion(SuspicionConfig::active().with_anti_entropy_every(1_000_000)),
        catalog(),
    );
    let a = net.node_at(0);
    net.pose_query_sql(a, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
        .unwrap();
    for i in 0..16i64 {
        net.insert_tuple(a, "R", vec![Value::Int(i), Value::Int(i % 3)])
            .unwrap();
    }
    // Lossy re-mirroring has left holes; run anti-entropy rounds until the
    // ring converges (each round's repair traffic is itself lossy).
    let mut repaired = 0;
    for _ in 0..50 {
        net.anti_entropy_now().unwrap();
        let rec = net.recovery_counters();
        if rec.repair_items == repaired && repaired > 0 {
            break;
        }
        repaired = rec.repair_items;
    }
    let rec = net.recovery_counters();
    assert!(
        rec.digest_exchanges > 0,
        "digests must be compared: {rec:?}"
    );
    assert!(
        rec.repair_items > 0,
        "loss must have created divergence for AE to repair: {rec:?}"
    );
    assert!(rec.repair_bytes > 0, "repair traffic is accounted: {rec:?}");

    // After convergence every primary item is mirrored: one more round
    // plans nothing new.
    let before = net.recovery_counters().repair_items;
    net.anti_entropy_now().unwrap();
    net.anti_entropy_now().unwrap();
    // (two rounds: the last repair burst itself may be lossy once more)
    let _ = before;
}

#[test]
fn detection_disabled_by_default_is_inert() {
    let mut net = Network::new(
        EngineConfig::new(Algorithm::DaiT)
            .with_nodes(24)
            .with_seed(23),
        catalog(),
    );
    let a = net.node_at(0);
    net.pose_query_sql(a, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
        .unwrap();
    net.insert_tuple(a, "R", vec![Value::Int(1), Value::Int(7)])
        .unwrap();
    net.insert_tuple(a, "S", vec![Value::Int(2), Value::Int(7)])
        .unwrap();
    net.settle().unwrap(); // no-op without a detector
    let rec = net.recovery_counters();
    assert_eq!(rec, Default::default(), "no detector, no recovery activity");
    assert!(net.detection_windows().is_empty());
    assert_eq!(net.inbox(a).len(), 1);
}
