#!/usr/bin/env python3
"""Splices the full-scale experiment output into EXPERIMENTS.md.

Usage: python3 scripts/assemble_experiments.py full_experiments.txt
Replaces the block between the "---" markers around <!-- RESULTS --> with the
measured tables (CSV blocks stripped — they remain available in the raw file).
"""
import re
import sys

def main() -> int:
    raw_path = sys.argv[1] if len(sys.argv) > 1 else "full_experiments.txt"
    with open(raw_path) as f:
        raw = f.read()
    # Drop the CSV blocks; keep the aligned tables and timing lines.
    raw = re.sub(r"```csv\n.*?```\n", "", raw, flags=re.S)
    # Keep everything from the first table onward.
    start = raw.find("== ")
    if start < 0:
        print("no experiment tables found in", raw_path, file=sys.stderr)
        return 1
    body = raw[start:].rstrip() + "\n"
    body = "## Measured results (full scale)\n\n```\n" + body + "```\n"

    with open("EXPERIMENTS.md") as f:
        doc = f.read()
    marker = "<!-- RESULTS -->"
    if marker not in doc:
        print("marker missing in EXPERIMENTS.md", file=sys.stderr)
        return 1
    doc = doc.replace(marker, body)
    with open("EXPERIMENTS.md", "w") as f:
        f.write(doc)
    print("spliced", raw_path, "into EXPERIMENTS.md")
    return 0

if __name__ == "__main__":
    raise SystemExit(main())
