//! Cross-crate integration: generated workloads driven through the full
//! stack (workload → parser → engine → overlay) checked against the oracle,
//! including runs with churn in the middle of the stream.

use cq_engine::{Algorithm, EngineConfig, Network, Oracle};
use cq_workload::{Workload, WorkloadConfig};

fn drive(net: &mut Network, w: &mut Workload, queries: usize, tuples: usize) {
    for _ in 0..queries {
        let poser = net.random_node();
        let sql = w.query_between(0, 1);
        net.pose_query_sql(poser, &sql).unwrap();
    }
    for _ in 0..tuples {
        let rel = w.next_stream_relation();
        let vals = w.random_tuple_values();
        let from = net.random_node();
        net.insert_tuple(from, &rel, vals).unwrap();
    }
}

fn assert_oracle(net: &Network) {
    let mut oracle = Oracle::new();
    oracle.ingest(net.posed_queries(), net.inserted_tuples());
    assert_eq!(net.delivered_set(), oracle.expected().unwrap());
}

#[test]
fn generated_workloads_match_oracle_for_all_algorithms() {
    for alg in Algorithm::ALL {
        for seed in [1u64, 2, 3] {
            let mut w = Workload::new(WorkloadConfig {
                domain: 12,
                zipf_theta: 0.9,
                filter_probability: 0.3,
                seed,
                ..WorkloadConfig::default()
            });
            let mut net = Network::new(
                EngineConfig::new(alg).with_nodes(48).with_seed(seed),
                w.catalog().clone(),
            );
            drive(&mut net, &mut w, 10, 120);
            assert!(
                !net.delivered_set().is_empty(),
                "{alg} seed {seed}: workload should produce matches"
            );
            assert_oracle(&net);
        }
    }
}

#[test]
fn t2_workloads_match_oracle_under_dai_v() {
    let mut w = Workload::new(WorkloadConfig {
        domain: 6,
        zipf_theta: 0.5,
        seed: 4,
        ..WorkloadConfig::default()
    });
    let mut net = Network::new(
        EngineConfig::new(Algorithm::DaiV)
            .with_nodes(48)
            .with_seed(4),
        w.catalog().clone(),
    );
    for _ in 0..6 {
        let poser = net.random_node();
        let sql = w.random_t2_query_sql();
        net.pose_query_sql(poser, &sql).unwrap();
    }
    for _ in 0..120 {
        let rel = w.next_stream_relation();
        let vals = w.random_tuple_values();
        let from = net.random_node();
        net.insert_tuple(from, &rel, vals).unwrap();
    }
    assert_oracle(&net);
}

#[test]
fn voluntary_churn_mid_stream_preserves_exactness() {
    // Voluntary departures transfer keys, so even with churn between
    // insertions the delivered set must be exact for every algorithm.
    for alg in Algorithm::ALL {
        let mut w = Workload::new(WorkloadConfig {
            domain: 8,
            seed: 9,
            ..WorkloadConfig::default()
        });
        let mut net = Network::new(
            EngineConfig::new(alg).with_nodes(40).with_seed(9),
            w.catalog().clone(),
        );
        drive(&mut net, &mut w, 6, 40);
        // Five nodes leave gracefully (skip subscribers so inboxes survive;
        // their notifications would otherwise be parked as offline state).
        let subscribers: Vec<_> = net
            .posed_queries()
            .iter()
            .map(|q| q.subscriber().to_string())
            .collect();
        let victims: Vec<_> = net
            .ring()
            .alive_nodes()
            .filter(|h| !subscribers.contains(&net.ring().node(*h).key().to_string()))
            .take(5)
            .collect();
        for v in victims {
            net.node_leave(v).unwrap();
        }
        net.stabilize(2).unwrap();
        // Stream continues after the churn.
        for _ in 0..40 {
            let rel = w.next_stream_relation();
            let vals = w.random_tuple_values();
            let from = net.random_node();
            net.insert_tuple(from, &rel, vals).unwrap();
        }
        assert_oracle(&net);
    }
}

#[test]
fn replication_and_jfrt_compose_with_real_workloads() {
    let mut w = Workload::new(WorkloadConfig {
        domain: 10,
        seed: 13,
        ..WorkloadConfig::default()
    });
    let mut net = Network::new(
        EngineConfig::new(Algorithm::DaiT)
            .with_nodes(64)
            .with_replication(4)
            .with_jfrt(true)
            .with_seed(13),
        w.catalog().clone(),
    );
    drive(&mut net, &mut w, 12, 150);
    assert_oracle(&net);
}
