//! Adversarial-peer framing tests against the TCP reactor, plus direct
//! `FrameConn` hardening checks: hostile peers must surface as typed
//! protocol errors (never silently misdecoded messages), malformed lengths
//! must be rejected before body bytes are buffered, and the write path must
//! survive kernel backpressure.

use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

use cq_engine::frames::{BufPool, FrameConn, SHRINK_AT, SHRINK_TO, WRITE_SEG};
use cq_engine::{Algorithm, EngineConfig, Network, TcpOptions};
use cq_relational::{Catalog, DataType, RelationSchema, Value};

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(RelationSchema::of("R", &[("A", DataType::Int), ("B", DataType::Int)]).unwrap())
        .unwrap();
    c.register(RelationSchema::of("S", &[("C", DataType::Int), ("D", DataType::Str)]).unwrap())
        .unwrap();
    c
}

/// A TCP-backed network small enough for fast adversarial runs; the short
/// stall timeout keeps any accidental deadlock from hanging the suite.
fn tcp_net() -> Network {
    let mut net = Network::new(
        EngineConfig::new(Algorithm::DaiT)
            .with_nodes(8)
            .with_seed(5),
        catalog(),
    );
    net.enable_tcp_transport_with(TcpOptions {
        stall_timeout: Duration::from_secs(5),
        ..TcpOptions::default()
    })
    .expect("perfect-delivery config accepts the TCP transport");
    net
}

/// Connects a rogue peer to a node's listener and performs the transport
/// hello: `[from u32 LE][next frame seq u64 LE]`.
fn rogue_connect(addr: SocketAddr, from: u32, start_seq: u64) -> TcpStream {
    let mut s = TcpStream::connect(addr).expect("connect to node listener");
    let mut hello = [0u8; 12];
    hello[..4].copy_from_slice(&from.to_le_bytes());
    hello[4..].copy_from_slice(&start_seq.to_le_bytes());
    s.write_all(&hello).expect("write hello");
    s
}

/// Encodes one on-stream frame: `[seq u64][len u32][body]`.
fn raw_frame(seq: u64, body: &[u8]) -> Vec<u8> {
    let mut f = Vec::with_capacity(12 + body.len());
    f.extend_from_slice(&seq.to_le_bytes());
    f.extend_from_slice(&(body.len() as u32).to_le_bytes());
    f.extend_from_slice(body);
    f
}

/// Keeps inserting tuples (each insert drives the reactor) until a typed
/// protocol error containing `needle` surfaces.
fn expect_protocol_error(net: &mut Network, needle: &str) {
    let node = net.node_at(0);
    for i in 0..100i64 {
        std::thread::sleep(Duration::from_millis(5));
        match net.insert_tuple(node, "R", vec![Value::Int(i), Value::Int(i)]) {
            Ok(_) => continue,
            Err(e) => {
                let msg = e.to_string();
                assert!(msg.contains(needle), "expected {needle:?} in: {msg}");
                return;
            }
        }
    }
    panic!("no protocol error surfaced for {needle:?}");
}

#[test]
fn zero_length_frame_is_rejected() {
    let mut net = tcp_net();
    let addr = net.tcp_local_addrs().expect("tcp enabled")[3];
    let mut rogue = rogue_connect(addr, 0xDEAD, 0);
    rogue
        .write_all(&[0u8; 12]) // seq 0, announced length 0
        .unwrap();
    expect_protocol_error(&mut net, "frame length 0 outside");
}

#[test]
fn oversized_length_is_rejected_before_any_body_arrives() {
    let mut net = tcp_net();
    let addr = net.tcp_local_addrs().expect("tcp enabled")[2];
    let mut rogue = rogue_connect(addr, 0xDEAD, 0);
    // Header only: 12 bytes announcing a body larger than MAX_FRAME. The
    // receiver must reject at header time — it can never see the body.
    let mut header = [0u8; 12];
    header[8..].copy_from_slice(&(cq_engine::wire::MAX_FRAME + 1).to_le_bytes());
    rogue.write_all(&header).unwrap();
    expect_protocol_error(&mut net, "outside (0,");
}

#[test]
fn mid_frame_disconnect_is_a_typed_error() {
    let mut net = tcp_net();
    let addr = net.tcp_local_addrs().expect("tcp enabled")[1];
    let mut rogue = rogue_connect(addr, 0xBEEF, 0);
    // A truncated frame: announce 100 bytes, deliver 10, vanish.
    let mut partial = raw_frame(0, &[7u8; 100]);
    partial.truncate(12 + 10);
    rogue.write_all(&partial).unwrap();
    rogue.shutdown(Shutdown::Both).unwrap();
    expect_protocol_error(&mut net, "closed mid-frame");
}

#[test]
fn reconnect_gap_is_detected_and_clean_reconnect_is_not() {
    let mut net = tcp_net();
    let addr = net.tcp_local_addrs().expect("tcp enabled")[4];
    // A well-behaved sender: two complete frames, then a clean close at a
    // frame boundary.
    let mut peer = rogue_connect(addr, 0xFEED, 0);
    peer.write_all(&raw_frame(0, &[1, 2, 3])).unwrap();
    peer.write_all(&raw_frame(1, &[4, 5, 6])).unwrap();
    peer.shutdown(Shutdown::Both).unwrap();
    // Drive the reactor so the frames and the EOF are consumed.
    let node = net.node_at(0);
    for i in 0..10i64 {
        std::thread::sleep(Duration::from_millis(5));
        net.insert_tuple(node, "R", vec![Value::Int(i), Value::Int(i)])
            .expect("clean close at a frame boundary is not an error");
    }
    // Clean reconnect: the hello announces exactly the next sequence
    // number — accepted.
    let mut peer = rogue_connect(addr, 0xFEED, 2);
    peer.write_all(&raw_frame(2, &[9])).unwrap();
    peer.shutdown(Shutdown::Both).unwrap();
    for i in 0..10i64 {
        std::thread::sleep(Duration::from_millis(5));
        net.insert_tuple(node, "R", vec![Value::Int(100 + i), Value::Int(i)])
            .expect("a seamless reconnect is not an error");
    }
    // Gap reconnect: frames 3 and 4 died buffered in a "broken" connection;
    // the hello announcing 5 where 3 is expected must surface, not silently
    // re-pair (the old backend decoded the wrong message here).
    let _peer = rogue_connect(addr, 0xFEED, 5);
    expect_protocol_error(&mut net, "were lost");
}

#[test]
fn replayed_stream_is_detected() {
    let mut net = tcp_net();
    let addr = net.tcp_local_addrs().expect("tcp enabled")[5];
    let mut peer = rogue_connect(addr, 0xCAFE, 0);
    peer.write_all(&raw_frame(0, &[1])).unwrap();
    peer.shutdown(Shutdown::Both).unwrap();
    let node = net.node_at(0);
    for i in 0..10i64 {
        std::thread::sleep(Duration::from_millis(5));
        net.insert_tuple(node, "R", vec![Value::Int(i), Value::Int(i)])
            .expect("clean close is not an error");
    }
    // A "reconnect" that rewinds to an already-consumed sequence number is
    // a replay, not a resume.
    let _peer = rogue_connect(addr, 0xCAFE, 0);
    expect_protocol_error(&mut net, "replayed");
}

#[test]
fn large_frames_backpressure_and_shrink_through_the_real_transport() {
    // Tiny kernel buffers + a tuple whose wire frame exceeds SHRINK_AT
    // forces the transport through partial writes (userspace backpressure)
    // and the chunked-read + shrink path — and the run must still deliver.
    let mut net = Network::new(
        EngineConfig::new(Algorithm::DaiT)
            .with_nodes(8)
            .with_seed(5),
        catalog(),
    );
    net.enable_tcp_transport_with(TcpOptions {
        send_buffer: Some(4096),
        recv_buffer: Some(4096),
        stall_timeout: Duration::from_secs(30),
        ..TcpOptions::default()
    })
    .expect("perfect-delivery config accepts the TCP transport");
    let poser = net.node_at(0);
    net.pose_query_sql(poser, "SELECT R.A, S.D FROM R, S WHERE R.B = S.C")
        .unwrap();
    let big = "x".repeat(SHRINK_AT + 1024);
    net.insert_tuple(
        net.node_at(1),
        "S",
        vec![Value::Int(7), Value::Str(big.clone())],
    )
    .unwrap();
    net.insert_tuple(net.node_at(2), "R", vec![Value::Int(1), Value::Int(7)])
        .unwrap();
    assert_eq!(net.inbox(poser).len(), 1, "the join must still fire");
    assert!(
        net.inbox(poser)[0].to_string().contains(&big[..32]),
        "the large value survived the wire"
    );
    assert!(
        net.tcp_backpressure_events() > 0,
        "a {}-byte frame through a 4 KiB SO_SNDBUF must hit backpressure",
        SHRINK_AT + 1024
    );
}

#[test]
fn frameconn_rejects_oversized_header_immediately() {
    let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let addr = listener.local_addr().unwrap();
    let mut client = TcpStream::connect(addr).unwrap();
    let (server, _) = listener.accept().unwrap();
    let mut fc = FrameConn::new(server, 1024).unwrap();
    // Announce 2000 bytes against a 1024-byte cap; send the header only.
    let mut header = [0u8; 12];
    header[8..].copy_from_slice(&2000u32.to_le_bytes());
    client.write_all(&header).unwrap();
    std::thread::sleep(Duration::from_millis(20));
    let mut out = Vec::new();
    let mut pool = BufPool::new();
    let err = fc
        .read_frames(&mut out, &mut pool)
        .expect_err("header must be judged");
    assert!(err.to_string().contains("outside (0, 1024]"), "{err}");
    assert!(out.is_empty());
}

#[test]
fn frameconn_shrinks_after_a_large_frame() {
    let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let addr = listener.local_addr().unwrap();
    let client = TcpStream::connect(addr).unwrap();
    let (server, _) = listener.accept().unwrap();
    let mut fc = FrameConn::new(server, cq_engine::wire::MAX_FRAME).unwrap();
    let body = vec![0xABu8; SHRINK_AT + 4096];
    let writer = std::thread::spawn(move || {
        let mut client = client;
        client.write_all(&raw_frame(0, &body)).unwrap();
        client // keep the connection open
    });
    let mut out = Vec::new();
    let mut pool = BufPool::new();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while out.is_empty() {
        assert!(std::time::Instant::now() < deadline, "frame never arrived");
        assert!(
            fc.read_frames(&mut out, &mut pool).unwrap(),
            "peer stays open"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    let _client = writer.join().unwrap();
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].1.len(), 4 + SHRINK_AT + 4096);
    assert!(
        fc.read_buffer_capacity() < SHRINK_AT,
        "the reassembly buffer must release the large frame's allocation \
         (capacity {})",
        fc.read_buffer_capacity()
    );
}

#[test]
fn vectored_flush_survives_partial_writes_across_segments() {
    // Queue enough frames to seal several 32 KiB write segments, then push
    // them through a 4 KiB SO_SNDBUF at a slow reader: every flush attempt
    // short-writes somewhere in the middle of the iovec array, so the
    // flushed-cursor bookkeeping (wpos across segment boundaries) is
    // exercised hard. The peer must receive the exact queued byte stream.
    let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let addr = listener.local_addr().unwrap();
    let client = TcpStream::connect(addr).unwrap();
    let (server, _) = listener.accept().unwrap();
    cq_poll::set_send_buffer(&server, 4096).unwrap();
    let mut fc = FrameConn::new(server, cq_engine::wire::MAX_FRAME).unwrap();

    let mut expected = Vec::new();
    for seq in 0..200u64 {
        let body = vec![(seq & 0xFF) as u8; 997];
        let frame = raw_frame(seq, &body);
        fc.queue_frame(seq, &frame[8..]);
        expected.extend_from_slice(&frame);
    }
    assert!(
        fc.queued_segments() > 1,
        "~200 KB must seal multiple {WRITE_SEG}-byte segments \
         (got {} segments)",
        fc.queued_segments()
    );

    let total = expected.len();
    let reader = std::thread::spawn(move || {
        use std::io::Read;
        let mut client = client;
        let mut received = Vec::with_capacity(total);
        let mut chunk = [0u8; 8192];
        while received.len() < total {
            // A slow reader keeps the kernel buffer full so flushes stay
            // partial for most of the transfer.
            std::thread::sleep(Duration::from_millis(1));
            match client.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => received.extend_from_slice(&chunk[..n]),
                Err(e) => panic!("reader: {e}"),
            }
        }
        received
    });

    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while fc.wants_write() {
        assert!(std::time::Instant::now() < deadline, "flush never drained");
        fc.flush().unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(
        fc.blocked_writes() > 0,
        "200 KB through a 4 KiB kernel buffer must short-write"
    );
    drop(fc); // close so the reader's final read can observe EOF if needed
    let received = reader.join().unwrap();
    assert_eq!(received.len(), expected.len());
    assert!(
        received == expected,
        "byte stream corrupted by partial writes"
    );
}

#[test]
fn pool_buffers_are_reused_and_large_ones_shrink() {
    let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let addr = listener.local_addr().unwrap();
    let mut client = TcpStream::connect(addr).unwrap();
    let (server, _) = listener.accept().unwrap();
    let mut fc = FrameConn::new(server, cq_engine::wire::MAX_FRAME).unwrap();
    let mut pool = BufPool::new();
    let mut out = Vec::new();

    // Steady state: one frame at a time, recycled after each delivery.
    // After the first miss primes the pool, every further frame is a hit.
    for seq in 0..50u64 {
        client.write_all(&raw_frame(seq, &[7u8; 256])).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while out.is_empty() {
            assert!(std::time::Instant::now() < deadline, "frame never arrived");
            assert!(fc.read_frames(&mut out, &mut pool).unwrap());
        }
        for (_, buf) in out.drain(..) {
            pool.put(buf);
        }
    }
    let (hits, misses) = pool.counters();
    assert_eq!(hits + misses, 50, "every frame drew one pool buffer");
    assert!(
        hits >= 49,
        "steady-state frames must reuse the pooled buffer \
         ({hits} hits / {misses} misses)"
    );
    assert_eq!(pool.buffered(), 1, "the one buffer cycles through the pool");

    // A buffer that ballooned past SHRINK_AT must not be retained at full
    // capacity — the pool shrinks it on put.
    let mut big = pool.get();
    big.reserve(SHRINK_AT + 1);
    pool.put(big);
    let recycled = pool.get();
    assert!(
        recycled.capacity() <= SHRINK_TO,
        "oversized buffers must shrink to {SHRINK_TO} on put \
         (capacity {})",
        recycled.capacity()
    );
}

#[test]
fn coalesced_and_eager_flush_deliver_identically() {
    // The coalesced flush policy (buffer in enqueue, one vectored write per
    // reactor drain) must be invisible to the protocol: a run with eager
    // per-message flushes (max_coalesce_bytes: 0, PR 9's policy) and a run
    // with the default coalescing bound must deliver the same notifications
    // and count the same logical traffic and wire bytes.
    let run = |coalesce: usize| {
        let mut net = Network::new(
            EngineConfig::new(Algorithm::DaiT)
                .with_nodes(8)
                .with_seed(5)
                .with_retained_notifications(true),
            catalog(),
        );
        net.enable_tcp_transport_with(TcpOptions {
            max_coalesce_bytes: coalesce,
            ..TcpOptions::default()
        })
        .expect("perfect-delivery config accepts the TCP transport");
        let poser = net.node_at(0);
        net.pose_query_sql(poser, "SELECT R.A, S.D FROM R, S WHERE R.B = S.C")
            .unwrap();
        net.pose_query_sql(net.node_at(3), "SELECT R.B, S.C FROM R, S WHERE R.A = S.C")
            .unwrap();
        for i in 0..30i64 {
            net.insert_tuple(net.node_at(1), "R", vec![Value::Int(i), Value::Int(i % 7)])
                .unwrap();
            net.insert_tuple(
                net.node_at(2),
                "S",
                vec![Value::Int(i % 7), Value::Str(format!("s{i}"))],
            )
            .unwrap();
        }
        let m = net.metrics();
        let total = m.total_traffic();
        (
            net.delivered_set(),
            m.notifications_delivered,
            total.messages,
            total.hops,
            m.faults.total_bytes_sent(),
        )
    };
    let eager = run(0);
    let coalesced = run(TcpOptions::default().max_coalesce_bytes);
    assert!(eager.1 > 0, "the workload must deliver notifications");
    assert_eq!(eager, coalesced, "flush policy leaked into the protocol");
}

#[test]
fn frameconn_counts_write_backpressure() {
    let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
    let addr = listener.local_addr().unwrap();
    let client = TcpStream::connect(addr).unwrap();
    let (server, _) = listener.accept().unwrap();
    cq_poll::set_send_buffer(&server, 4096).unwrap();
    let mut fc = FrameConn::new(server, cq_engine::wire::MAX_FRAME).unwrap();
    // 2 MiB into a 4 KiB kernel buffer with a peer that never reads: the
    // flush must park bytes in userspace rather than block or error.
    let body = vec![0u8; 2 * 1024 * 1024];
    let frame = raw_frame(0, &body);
    fc.queue_frame(0, &frame[8..]);
    let drained = fc.flush().unwrap();
    assert!(!drained, "2 MiB cannot fit a 4 KiB kernel buffer");
    assert!(fc.blocked_writes() > 0);
    assert!(fc.wants_write());
    drop(client);
}
