//! Sim-vs-socket equivalence runs: execute the same seeded experiment on
//! the in-memory simulator transport and on real TCP loopback sockets, and
//! compare what arrived.
//!
//! The TCP backend queues envelope metadata in userspace while the message
//! payloads cross real sockets, so a socket run dispatches the identical
//! message sequence as the simulator at the same seed — the delivered
//! notification set and every transport-independent metric must match
//! exactly. [`compare`] runs both and reports the first divergence; the
//! `tcp_cluster` binary and the `socket-suite` CI test are thin wrappers
//! around it.

use std::collections::HashSet;

use cq_engine::{Algorithm, EngineConfig, Network, TrafficKind};
use cq_relational::Notification;
use cq_workload::{Workload, WorkloadConfig};

/// Shape of one equivalence experiment.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Evaluation algorithm.
    pub algorithm: Algorithm,
    /// Network size (one TCP listener per node in the socket run).
    pub nodes: usize,
    /// Continuous queries to install.
    pub queries: usize,
    /// Tuples to stream after installation.
    pub tuples: usize,
    /// Workload and engine seed.
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            algorithm: Algorithm::DaiT,
            nodes: 32,
            queries: 10,
            tuples: 80,
            seed: 7,
        }
    }
}

/// What one run produced: everything the equivalence check compares.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterRun {
    /// The distinct notifications delivered to inboxes and offline stores.
    pub delivered: HashSet<Notification>,
    /// Notifications delivered with multiplicity.
    pub notifications: u64,
    /// Total logical messages routed.
    pub messages: u64,
    /// Total overlay hops consumed.
    pub hops: u64,
    /// Per-category `(messages, hops)` in [`TrafficKind::ALL`] order.
    pub traffic: Vec<(u64, u64)>,
    /// Total wire bytes counted by the transport (zero on the default
    /// simulator path, which never serializes).
    pub wire_bytes: u64,
}

/// Executes the experiment once, over sockets when `tcp` is set.
pub fn run_once(cfg: &ClusterConfig, tcp: bool) -> ClusterRun {
    let mut workload = Workload::new(WorkloadConfig {
        seed: cfg.seed,
        ..WorkloadConfig::default()
    });
    let engine_cfg = EngineConfig::new(cfg.algorithm)
        .with_nodes(cfg.nodes)
        .with_seed(cfg.seed)
        .with_retained_notifications(true);
    let mut net = Network::new(engine_cfg, workload.catalog().clone());
    if tcp {
        net.enable_tcp_transport()
            .expect("perfect-delivery config accepts the TCP transport");
    }
    for _ in 0..cfg.queries {
        let poser = net.random_node();
        let sql = workload.query_between(0, 1);
        net.pose_query_sql(poser, &sql)
            .expect("generated queries are valid");
    }
    for _ in 0..cfg.tuples {
        let rel = workload.next_stream_relation();
        let values = workload.random_tuple_values();
        let from = net.random_node();
        net.insert_tuple(from, &rel, values)
            .expect("generated tuples are valid");
    }
    let m = net.metrics();
    let total = m.total_traffic();
    ClusterRun {
        delivered: net.delivered_set(),
        notifications: m.notifications_delivered,
        messages: total.messages,
        hops: total.hops,
        traffic: TrafficKind::ALL
            .iter()
            .map(|&k| {
                let t = m.traffic(k);
                (t.messages, t.hops)
            })
            .collect(),
        wire_bytes: m.faults.total_bytes_sent(),
    }
}

/// Runs the experiment on both transports and returns the socket run's
/// wire-byte total on success, or a description of the first divergence.
pub fn compare(cfg: &ClusterConfig) -> Result<u64, String> {
    let sim = run_once(cfg, false);
    let tcp = run_once(cfg, true);
    if sim.delivered != tcp.delivered {
        let sim_only = sim.delivered.difference(&tcp.delivered).count();
        let tcp_only = tcp.delivered.difference(&sim.delivered).count();
        return Err(format!(
            "delivered sets diverge: {} notifications only in sim, {} only in tcp",
            sim_only, tcp_only
        ));
    }
    if sim.notifications != tcp.notifications {
        return Err(format!(
            "delivery multiplicity diverges: sim {} vs tcp {}",
            sim.notifications, tcp.notifications
        ));
    }
    if (sim.messages, sim.hops) != (tcp.messages, tcp.hops) {
        return Err(format!(
            "total traffic diverges: sim {}msg/{}hops vs tcp {}msg/{}hops",
            sim.messages, sim.hops, tcp.messages, tcp.hops
        ));
    }
    if sim.traffic != tcp.traffic {
        return Err(format!(
            "per-kind traffic diverges: sim {:?} vs tcp {:?}",
            sim.traffic, tcp.traffic
        ));
    }
    if sim.wire_bytes != 0 {
        return Err(format!(
            "simulator counted wire bytes ({}) without serializing",
            sim.wire_bytes
        ));
    }
    if tcp.wire_bytes == 0 {
        return Err("tcp transport counted no wire bytes".to_string());
    }
    Ok(tcp.wire_bytes)
}
