//! E8 — Figure "Effect of window size and installed queries in total
//! evaluator filtering load" (Section 5.4).
//!
//! Sweeps the tuple-window size for two query populations and reports the
//! total evaluator-side filtering load (`TF` restricted to the value level).
//! Expected shape: load grows with both the window and the query count —
//! "when the rate of incoming tuples in a given time window increases, a
//! higher amount of installed queries will be triggered".

use cq_engine::Algorithm;
use cq_workload::WorkloadConfig;

use super::Scale;
use crate::harness::RunConfig;
use crate::parallel::run_many;
use crate::report::{fnum, Report};

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let nodes = scale.pick(128, 1024);
    let windows: Vec<usize> = scale.pick(vec![100, 200, 400], vec![500, 1000, 2000]);
    let query_pops: Vec<usize> = scale.pick(vec![20, 80], vec![1000, 4000]);
    let mut headers = vec!["window".to_string()];
    for q in &query_pops {
        for alg in Algorithm::ALL {
            headers.push(format!("{} Q={q}", alg.name()));
        }
    }
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut report = Report::new(
        "E8",
        &format!("total evaluator filtering load vs window size (N={nodes})"),
        &headers_ref,
    );
    let mut cfgs = Vec::new();
    for &w in &windows {
        for &q in &query_pops {
            for alg in Algorithm::ALL {
                cfgs.push(RunConfig {
                    algorithm: alg,
                    nodes,
                    queries: q,
                    tuples: w,
                    workload: WorkloadConfig {
                        domain: scale.pick(40, 400),
                        ..WorkloadConfig::default()
                    },
                    ..RunConfig::new(alg)
                });
            }
        }
    }
    let mut results = run_many(&cfgs).into_iter();
    for &w in &windows {
        let mut row = vec![w.to_string()];
        for _ in 0..query_pops.len() * Algorithm::ALL.len() {
            let r = results.next().expect("one result per config");
            row.push(fnum(r.total_evaluator_filtering()));
        }
        report.row(row);
    }
    report.note("paper: evaluator filtering load grows with the window and with installed queries");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_grows_with_window() {
        let r = run(Scale::Quick);
        let rows: Vec<Vec<f64>> = r
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').skip(1).map(|c| c.parse().unwrap()).collect())
            .collect();
        // SAI at Q=20: largest window ≥ smallest window.
        assert!(rows.last().unwrap()[0] >= rows[0][0]);
    }
}
