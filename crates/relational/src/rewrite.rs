//! Query rewriting — the heart of the two-phase evaluation scheme
//! (Sections 4.3.2, 4.3.3 and 4.5).
//!
//! When a tuple `t` triggers a join query `q` at the attribute level, the
//! rewriter produces a *rewritten query* `q'`: a simple select-project query
//! in which every attribute of the triggering side has been replaced by its
//! value in `t` (generalized projection). `q'` is reindexed at the value
//! level, where it either matches already-stored tuples or waits for future
//! ones.

use std::fmt;
use std::sync::Arc;

use crate::error::Result;
use crate::query::{JoinQuery, QueryKey, QueryRef, Side};
use crate::tuple::Tuple;
use crate::value::{Timestamp, Value};

/// How the rewritten query identifies matching tuples at the value level.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MatchTarget {
    /// T1 algorithms (SAI, DAI-Q, DAI-T): tuples of `DisR(q)` whose
    /// attribute `DisA(q)` equals `valDA(q, t)`.
    Attribute {
        /// `DisA(q)` — the load-distributing attribute.
        attr: String,
        /// `valDA(q, t)` — the value it must take.
        value: Value,
    },
    /// DAI-V: tuples of the other relation for which the other side of the
    /// join condition evaluates to `valJC`.
    ConditionValue {
        /// `valJC` — the value the other side's expression must produce.
        value: Value,
    },
}

impl MatchTarget {
    /// The value carried by the target (used for value-level hashing).
    pub fn value(&self) -> &Value {
        match self {
            MatchTarget::Attribute { value, .. } => value,
            MatchTarget::ConditionValue { value } => value,
        }
    }
}

/// A rewritten (select-project) query produced by a rewriter node.
#[derive(Clone, Debug)]
pub struct RewrittenQuery {
    key: String,
    query: QueryRef,
    bound_side: Side,
    bound_values: Vec<Value>,
    target: MatchTarget,
    trigger_time: Timestamp,
}

impl RewrittenQuery {
    /// Rewrites `query` for the T1 algorithms after tuple `t` (of relation
    /// `IndexR(q)`, playing `index_side`) triggered it. Returns `None` when
    /// the tuple does not trigger the query (time or filters).
    ///
    /// `index_attr` is the attribute of `t`'s relation chosen as `IndexA(q)`
    /// and `dis_attr` the load-distributing attribute `DisA(q)` on the other
    /// side.
    pub fn rewrite_attribute(
        query: &QueryRef,
        index_side: Side,
        index_attr: &str,
        dis_attr: &str,
        t: &Tuple,
    ) -> Result<Option<RewrittenQuery>> {
        if !query.triggered_by(index_side, t)? {
            return Ok(None);
        }
        let val_da = t.get(index_attr)?.clone();
        let bound_values = bound_select_values(query, index_side, t)?;
        let key = rewritten_key(query.key(), index_side, &bound_values, &val_da);
        Ok(Some(RewrittenQuery {
            key,
            query: Arc::clone(query),
            bound_side: index_side,
            bound_values,
            target: MatchTarget::Attribute {
                attr: dis_attr.to_string(),
                value: val_da,
            },
            trigger_time: t.pub_time(),
        }))
    }

    /// Rewrites `query` for DAI-V: the match target is the *value of the
    /// join-condition side* computed from `t` (`valJC(q, t)`, Section 4.5).
    pub fn rewrite_value(
        query: &QueryRef,
        side: Side,
        t: &Tuple,
    ) -> Result<Option<RewrittenQuery>> {
        if !query.triggered_by(side, t)? {
            return Ok(None);
        }
        let val_jc = query.condition(side).eval(t)?;
        let bound_values = bound_select_values(query, side, t)?;
        let key = rewritten_key(query.key(), side, &bound_values, &val_jc);
        Ok(Some(RewrittenQuery {
            key,
            query: Arc::clone(query),
            bound_side: side,
            bound_values,
            target: MatchTarget::ConditionValue { value: val_jc },
            trigger_time: t.pub_time(),
        }))
    }

    /// Reassembles a rewritten query from its already-computed parts — the
    /// wire-decoding path. The key is carried on the wire rather than
    /// recomputed, so a decoded rewriting keeps the exact identity (and
    /// dedup behavior) of the one the sender held.
    pub fn from_parts(
        key: String,
        query: QueryRef,
        bound_side: Side,
        bound_values: Vec<Value>,
        target: MatchTarget,
        trigger_time: Timestamp,
    ) -> RewrittenQuery {
        RewrittenQuery {
            key,
            query,
            bound_side,
            bound_values,
            target,
            trigger_time,
        }
    }

    /// `Key(q')` — unique per (query, bound select values, target value), so
    /// that "two rewritten queries have the same key if they are created
    /// from the same query q but by different tuples that have the same
    /// value for IndexA(q)" *and* the same projected values (Section 4.3.3).
    #[inline]
    pub fn key(&self) -> &str {
        &self.key
    }

    /// The original query.
    #[inline]
    pub fn query(&self) -> &QueryRef {
        &self.query
    }

    /// The side whose tuple was consumed by the rewrite.
    #[inline]
    pub fn bound_side(&self) -> Side {
        self.bound_side
    }

    /// The side the rewritten query still has to match.
    #[inline]
    pub fn free_side(&self) -> Side {
        self.bound_side.other()
    }

    /// The relation the rewritten query waits for (`DisR(q)`).
    #[inline]
    pub fn free_relation(&self) -> &str {
        self.query.relation(self.free_side())
    }

    /// The match target.
    #[inline]
    pub fn target(&self) -> &MatchTarget {
        &self.target
    }

    /// Publication time of the tuple that produced this rewriting.
    #[inline]
    pub fn trigger_time(&self) -> Timestamp {
        self.trigger_time
    }

    /// Select-clause values already bound from the consumed tuple
    /// (in select-list order, only the bound side's positions).
    #[inline]
    pub fn bound_values(&self) -> &[Value] {
        &self.bound_values
    }

    /// Whether a tuple of the free relation completes the join: checks
    /// relation, the free side's filters, the match target, and the time
    /// semantics (`pubT(t) >= insT(q)`) — without building the notification.
    pub fn matches(&self, t: &Tuple) -> Result<bool> {
        let free = self.free_side();
        if !self.query.triggered_by(free, t)? {
            return Ok(false);
        }
        Ok(match &self.target {
            MatchTarget::Attribute { attr, value } => t.get(attr)? == value,
            MatchTarget::ConditionValue { value } => &self.query.condition(free).eval(t)? == value,
        })
    }

    /// Tries to match a tuple of the free relation; on success produces the
    /// notification content.
    pub fn match_tuple(&self, t: &Tuple) -> Result<Option<Notification>> {
        if !self.matches(t)? {
            return Ok(None);
        }
        Ok(Some(self.notification_with(t)?))
    }

    /// Builds the notification for a tuple already known to match.
    pub fn notification_with(&self, t: &Tuple) -> Result<Notification> {
        let free = self.free_side();
        let mut values = Vec::with_capacity(self.query.select().len());
        let mut bound_iter = self.bound_values.iter();
        for item in self.query.select() {
            if item.side == self.bound_side {
                values.push(
                    bound_iter
                        .next()
                        .expect("bound values cover every bound-side select item")
                        .clone(),
                );
            } else {
                debug_assert_eq!(item.side, free);
                values.push(t.get(&item.attr)?.clone());
            }
        }
        Ok(Notification {
            query_key: self.query.key().clone(),
            subscriber: self.query.subscriber().to_string(),
            values,
        })
    }
}

impl fmt::Display for RewrittenQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.target {
            MatchTarget::Attribute { attr, value } => write!(
                f,
                "SELECT <bound> FROM {} WHERE {attr} = {value} [{}]",
                self.free_relation(),
                self.key
            ),
            MatchTarget::ConditionValue { value } => write!(
                f,
                "SELECT <bound> FROM {} WHERE {} = {value} [{}]",
                self.free_relation(),
                self.query.condition(self.free_side()),
                self.key
            ),
        }
    }
}

fn bound_select_values(query: &JoinQuery, side: Side, t: &Tuple) -> Result<Vec<Value>> {
    query
        .select()
        .iter()
        .filter(|it| it.side == side)
        .map(|it| t.get(&it.attr).cloned())
        .collect()
}

fn rewritten_key(base: &QueryKey, side: Side, bound: &[Value], target_value: &Value) -> String {
    // The bound side is part of the key: a q_L and a q_R rewriting of the
    // same query can otherwise collide when their bound select values and
    // join values coincide, and the DAI deduplication would drop one of
    // them (losing notifications).
    let mut s = String::with_capacity(base.0.len() + 16 * (bound.len() + 1));
    s.push_str(&base.0);
    s.push('/');
    s.push_str(match side {
        Side::Left => "L",
        Side::Right => "R",
    });
    for v in bound {
        s.push('+');
        v.canonical_into(&mut s);
    }
    s.push('+');
    target_value.canonical_into(&mut s);
    s
}

/// The answer sent to a query's subscriber when its `WHERE` clause is
/// satisfied (Section 3.2 / 4.6).
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Notification {
    /// Key of the satisfied query.
    pub query_key: QueryKey,
    /// Key of the node that posed the query.
    pub subscriber: String,
    /// The select-list values, in select order.
    pub values: Vec<Value>,
}

impl fmt::Display for Notification {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} -> (", self.query_key)?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, Expr};
    use crate::query::{Filter, QueryKey, QuerySpec, SelectItem};
    use crate::schema::{Catalog, RelationSchema};
    use crate::value::DataType;

    fn setup() -> (Catalog, QueryRef) {
        let mut c = Catalog::new();
        c.register(RelationSchema::of("R", &[("A", DataType::Int), ("C", DataType::Int)]).unwrap())
            .unwrap();
        c.register(RelationSchema::of("S", &[("B", DataType::Int), ("C", DataType::Int)]).unwrap())
            .unwrap();
        // The paper's Section 4.3.2 example:
        //   SELECT R.A, S.B FROM R, S WHERE R.C = S.C
        let q = Arc::new(
            JoinQuery::new(
                QuerySpec {
                    key: QueryKey::derive("n", 0),
                    subscriber: "n".into(),
                    ins_time: Timestamp(0),
                    relations: ["R".into(), "S".into()],
                    select: vec![
                        SelectItem {
                            side: Side::Left,
                            attr: "A".into(),
                        },
                        SelectItem {
                            side: Side::Right,
                            attr: "B".into(),
                        },
                    ],
                    conditions: [Expr::attr("C"), Expr::attr("C")],
                    filters: vec![],
                },
                &c,
            )
            .unwrap(),
        );
        (c, q)
    }

    fn s_tuple(c: &Catalog, b: i64, cc: i64, t: u64) -> Tuple {
        Tuple::new(
            c.get("S").unwrap().clone(),
            vec![Value::Int(b), Value::Int(cc)],
            Timestamp(t),
            0,
        )
        .unwrap()
    }

    fn r_tuple(c: &Catalog, a: i64, cc: i64, t: u64) -> Tuple {
        Tuple::new(
            c.get("R").unwrap().clone(),
            vec![Value::Int(a), Value::Int(cc)],
            Timestamp(t),
            0,
        )
        .unwrap()
    }

    #[test]
    fn paper_section_432_example() {
        // "triggered at the attribute level by a tuple S(3,4,7)… wait, our S
        // has arity 2 — use S(B=4, C=7): the rewritten query must be
        // SELECT R.A, 4 FROM R WHERE R.C = 7."
        let (c, q) = setup();
        let t = s_tuple(&c, 4, 7, 5);
        let rq = RewrittenQuery::rewrite_attribute(&q, Side::Right, "C", "C", &t)
            .unwrap()
            .unwrap();
        assert_eq!(rq.free_relation(), "R");
        assert_eq!(
            rq.target(),
            &MatchTarget::Attribute {
                attr: "C".into(),
                value: Value::Int(7)
            }
        );
        assert_eq!(rq.bound_values(), &[Value::Int(4)]);

        // A matching R tuple completes the join.
        let r = r_tuple(&c, 9, 7, 6);
        let n = rq.match_tuple(&r).unwrap().unwrap();
        assert_eq!(n.values, vec![Value::Int(9), Value::Int(4)]);

        // A non-matching value produces nothing.
        let r2 = r_tuple(&c, 9, 8, 6);
        assert!(rq.match_tuple(&r2).unwrap().is_none());
    }

    #[test]
    fn rewrite_respects_time_semantics() {
        let (c, _) = setup();
        let q = Arc::new(
            JoinQuery::new(
                QuerySpec {
                    key: QueryKey::derive("n", 1),
                    subscriber: "n".into(),
                    ins_time: Timestamp(100),
                    relations: ["R".into(), "S".into()],
                    select: vec![SelectItem {
                        side: Side::Left,
                        attr: "A".into(),
                    }],
                    conditions: [Expr::attr("C"), Expr::attr("C")],
                    filters: vec![],
                },
                &c,
            )
            .unwrap(),
        );
        let old = s_tuple(&c, 1, 2, 50);
        assert!(
            RewrittenQuery::rewrite_attribute(&q, Side::Right, "C", "C", &old)
                .unwrap()
                .is_none()
        );
        // And a stored old tuple cannot complete a match either.
        let fresh = s_tuple(&c, 1, 2, 150);
        let rq = RewrittenQuery::rewrite_attribute(&q, Side::Right, "C", "C", &fresh)
            .unwrap()
            .unwrap();
        let old_r = r_tuple(&c, 1, 2, 50);
        assert!(rq.match_tuple(&old_r).unwrap().is_none());
    }

    #[test]
    fn keys_deduplicate_same_content() {
        // Two S tuples with the same B and C values produce rewritten queries
        // with the same key (set semantics of Section 4.3.3) …
        let (c, q) = setup();
        let t1 = s_tuple(&c, 4, 7, 5);
        let t2 = s_tuple(&c, 4, 7, 9);
        let rq1 = RewrittenQuery::rewrite_attribute(&q, Side::Right, "C", "C", &t1)
            .unwrap()
            .unwrap();
        let rq2 = RewrittenQuery::rewrite_attribute(&q, Side::Right, "C", "C", &t2)
            .unwrap()
            .unwrap();
        assert_eq!(rq1.key(), rq2.key());
        // … while different select values yield different keys.
        let t3 = s_tuple(&c, 5, 7, 9);
        let rq3 = RewrittenQuery::rewrite_attribute(&q, Side::Right, "C", "C", &t3)
            .unwrap()
            .unwrap();
        assert_ne!(rq1.key(), rq3.key());
    }

    #[test]
    fn left_and_right_rewritings_never_share_keys() {
        // Regression: SELECT R.A, S.B over R.C = S.C with tuples R(3,4) and
        // S(3,4) binds the same select value (3) and the same join value (4)
        // on both sides — the keys must still differ, or DAI deduplication
        // drops one side's rewriting and loses notifications.
        let (c, q) = setup();
        let r = r_tuple(&c, 3, 4, 1);
        let s = s_tuple(&c, 3, 4, 1);
        let left = RewrittenQuery::rewrite_attribute(&q, Side::Left, "C", "C", &r)
            .unwrap()
            .unwrap();
        let right = RewrittenQuery::rewrite_attribute(&q, Side::Right, "C", "C", &s)
            .unwrap()
            .unwrap();
        assert_eq!(left.bound_values(), right.bound_values());
        assert_eq!(left.target().value(), right.target().value());
        assert_ne!(
            left.key(),
            right.key(),
            "bound side must be part of the key"
        );
    }

    #[test]
    fn dai_v_rewrite_uses_condition_value() {
        let mut c = Catalog::new();
        c.register(
            RelationSchema::of(
                "R",
                &[
                    ("A", DataType::Int),
                    ("B", DataType::Int),
                    ("C", DataType::Int),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        c.register(
            RelationSchema::of(
                "S",
                &[
                    ("D", DataType::Int),
                    ("E", DataType::Int),
                    ("F", DataType::Int),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        // The paper's T2 example: 4*R.B + R.C + 8 = 5*S.E + S.D - S.F
        let left = Expr::bin(
            BinOp::Add,
            Expr::bin(
                BinOp::Add,
                Expr::bin(BinOp::Mul, Expr::int(4), Expr::attr("B")),
                Expr::attr("C"),
            ),
            Expr::int(8),
        );
        let right = Expr::bin(
            BinOp::Sub,
            Expr::bin(
                BinOp::Add,
                Expr::bin(BinOp::Mul, Expr::int(5), Expr::attr("E")),
                Expr::attr("D"),
            ),
            Expr::attr("F"),
        );
        let q = Arc::new(
            JoinQuery::new(
                QuerySpec {
                    key: QueryKey::derive("n", 0),
                    subscriber: "n".into(),
                    ins_time: Timestamp(0),
                    relations: ["R".into(), "S".into()],
                    select: vec![
                        SelectItem {
                            side: Side::Left,
                            attr: "A".into(),
                        },
                        SelectItem {
                            side: Side::Right,
                            attr: "D".into(),
                        },
                    ],
                    conditions: [left, right],
                    filters: vec![],
                },
                &c,
            )
            .unwrap(),
        );
        // R tuple with B = 4, C = 9: valJC = 4*4 + 9 + 8 = 33.
        let r = Tuple::new(
            c.get("R").unwrap().clone(),
            vec![Value::Int(1), Value::Int(4), Value::Int(9)],
            Timestamp(1),
            0,
        )
        .unwrap();
        let rq = RewrittenQuery::rewrite_value(&q, Side::Left, &r)
            .unwrap()
            .unwrap();
        assert_eq!(rq.target().value(), &Value::Int(33));

        // S tuple with 5*E + D - F = 33 completes the join: E=6, D=5, F=2.
        let s = Tuple::new(
            c.get("S").unwrap().clone(),
            vec![Value::Int(5), Value::Int(6), Value::Int(2)],
            Timestamp(2),
            0,
        )
        .unwrap();
        let n = rq.match_tuple(&s).unwrap().unwrap();
        assert_eq!(n.values, vec![Value::Int(1), Value::Int(5)]);

        // An S tuple evaluating to a different value does not match.
        let s2 = Tuple::new(
            c.get("S").unwrap().clone(),
            vec![Value::Int(5), Value::Int(6), Value::Int(3)],
            Timestamp(2),
            0,
        )
        .unwrap();
        assert!(rq.match_tuple(&s2).unwrap().is_none());
    }

    #[test]
    fn filters_on_free_side_are_enforced_at_match_time() {
        let (c, _) = setup();
        let q = Arc::new(
            JoinQuery::new(
                QuerySpec {
                    key: QueryKey::derive("n", 2),
                    subscriber: "n".into(),
                    ins_time: Timestamp(0),
                    relations: ["R".into(), "S".into()],
                    select: vec![SelectItem {
                        side: Side::Right,
                        attr: "B".into(),
                    }],
                    conditions: [Expr::attr("C"), Expr::attr("C")],
                    filters: vec![Filter {
                        side: Side::Left,
                        attr: "A".into(),
                        value: Value::Int(9),
                    }],
                },
                &c,
            )
            .unwrap(),
        );
        let s = s_tuple(&c, 4, 7, 5);
        let rq = RewrittenQuery::rewrite_attribute(&q, Side::Right, "C", "C", &s)
            .unwrap()
            .unwrap();
        assert!(rq.match_tuple(&r_tuple(&c, 9, 7, 6)).unwrap().is_some());
        assert!(rq.match_tuple(&r_tuple(&c, 8, 7, 6)).unwrap().is_none());
    }
}
