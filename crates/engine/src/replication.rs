//! k-successor state replication (the recovery half of the robustness
//! layer, see [`crate::faults`]).
//!
//! Every index-table entry and offline-store notification a node holds as a
//! *primary* is mirrored — at insert time — onto the node's `k` first alive
//! successors, the same nodes that take over its range when it disappears
//! (Chord's successor-list invariant). Replicas are held in a separate
//! [`ReplicaStore`]: they never answer queries, never count toward storage
//! load, and never appear in [`crate::Network::delivered_set`]. When a node
//! fails abruptly, its successor finds itself the new owner of the failed
//! range during stabilization and *promotes* the matching replicas into its
//! primary tables — the same `extract_where`/insert mechanics the existing
//! `transfer_matching` churn machinery uses — then re-mirrors the promoted
//! entries onto its own successors to restore redundancy.

use cq_fasthash::FxHashSet;
use cq_overlay::Id;
use cq_relational::Notification;

use crate::tables::{
    Alqt, StoredQuery, StoredRewritten, StoredTuple, StoredValueTuple, VStore, Vlqt, Vltt,
};

/// One primary state item mirrored onto a successor via
/// [`crate::Message::Replicate`].
#[derive(Clone, Debug)]
pub enum ReplicaItem {
    /// An ALQT entry (rewriter role).
    Query(StoredQuery),
    /// A VLQT entry (evaluator role, SAI/DAI-T).
    Rewritten(StoredRewritten),
    /// A VLTT entry (evaluator role, SAI/DAI-Q).
    Tuple(StoredTuple),
    /// A DAI-V evaluator-store entry with its `(group, value)` key.
    ValueTuple {
        /// The query-group key.
        group: String,
        /// Canonical join-condition value.
        value_key: String,
        /// The stored tuple.
        entry: StoredValueTuple,
    },
    /// One offline-store notification with the subscriber identifier it is
    /// held under.
    Offline {
        /// Identifier of the subscriber's key (`Hash(Key(n))`).
        id: Id,
        /// The held notification.
        notification: Notification,
    },
}

impl ReplicaItem {
    /// The identifier that decides which node's range the item belongs to —
    /// promotion extracts items whose identifier the holder now owns.
    pub fn index_id(&self) -> Id {
        match self {
            ReplicaItem::Query(e) => e.index_id,
            ReplicaItem::Rewritten(e) => e.index_id,
            ReplicaItem::Tuple(e) => e.index_id,
            ReplicaItem::ValueTuple { entry, .. } => entry.index_id,
            ReplicaItem::Offline { id, .. } => *id,
        }
    }
}

/// Primary state promoted out of a replica store after a failure, ready to
/// be inserted into the new owner's tables.
#[derive(Debug, Default)]
pub struct PromotedState {
    /// ALQT entries.
    pub queries: Vec<StoredQuery>,
    /// VLQT entries.
    pub rewritten: Vec<StoredRewritten>,
    /// VLTT entries.
    pub tuples: Vec<StoredTuple>,
    /// DAI-V store entries with their `(group, value)` keys.
    pub value_tuples: Vec<(String, String, StoredValueTuple)>,
    /// Offline-store notifications.
    pub offline: Vec<(Id, Notification)>,
}

impl PromotedState {
    /// Total number of promoted items.
    pub fn len(&self) -> usize {
        self.queries.len()
            + self.rewritten.len()
            + self.tuples.len()
            + self.value_tuples.len()
            + self.offline.len()
    }

    /// Whether nothing was promoted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Mirrored copies of other nodes' primary state, held by a successor.
///
/// Inserts are idempotent: the ALQT/VLQT tables dedup by their own keys, and
/// the VLTT/VStore/offline parts keep explicit seen-sets (keyed by the
/// globally unique tuple sequence number or the notification itself), so
/// delayed duplicates and post-promotion re-mirroring never inflate the
/// store.
#[derive(Clone, Debug, Default)]
pub struct ReplicaStore {
    alqt: Alqt,
    vlqt: Vlqt,
    vltt: Vltt,
    vstore: VStore,
    offline: Vec<(Id, Notification)>,
    vltt_seen: FxHashSet<(u64, Box<str>)>,
    vstore_seen: FxHashSet<(u64, Box<str>)>,
    offline_seen: FxHashSet<(Id, Notification)>,
}

impl ReplicaStore {
    /// An empty store.
    pub fn new() -> Self {
        ReplicaStore::default()
    }

    /// Mirrors one item; duplicates are ignored.
    pub fn insert(&mut self, item: ReplicaItem) {
        match item {
            ReplicaItem::Query(e) => {
                self.alqt.insert(e);
            }
            ReplicaItem::Rewritten(e) => {
                self.vlqt.insert(e);
            }
            ReplicaItem::Tuple(e) => {
                if self
                    .vltt_seen
                    .insert((e.tuple.seq(), e.attr.as_str().into()))
                {
                    self.vltt.insert(e);
                }
            }
            ReplicaItem::ValueTuple {
                group,
                value_key,
                entry,
            } => {
                if self
                    .vstore_seen
                    .insert((entry.tuple.seq(), group.as_str().into()))
                {
                    self.vstore.insert(&group, &value_key, entry);
                }
            }
            ReplicaItem::Offline { id, notification } => {
                if self.offline_seen.insert((id, notification.clone())) {
                    self.offline.push((id, notification));
                }
            }
        }
    }

    /// Total mirrored items currently held.
    pub fn len(&self) -> usize {
        self.alqt.len() + self.vlqt.len() + self.vltt.len() + self.vstore.len() + self.offline.len()
    }

    /// Whether the store holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every mirrored item (the holder itself failed).
    pub fn clear(&mut self) {
        *self = ReplicaStore::default();
    }

    /// Extracts every item whose index identifier satisfies `pred` — called
    /// by the new owner of a failed range during stabilization, with
    /// `pred = |id| ring.owns(self, id)`.
    pub fn take_owned(&mut self, pred: impl Fn(Id) -> bool) -> PromotedState {
        let queries = self.alqt.extract_where(&pred);
        let rewritten = self.vlqt.extract_where(&pred);
        let tuples = self.vltt.extract_where(&pred);
        let value_tuples = self.vstore.extract_where(&pred);
        for e in &tuples {
            self.vltt_seen
                .remove(&(e.tuple.seq(), e.attr.as_str().into()));
        }
        for (group, _, e) in &value_tuples {
            self.vstore_seen
                .remove(&(e.tuple.seq(), group.as_str().into()));
        }
        let mut offline = Vec::new();
        let mut kept = Vec::new();
        for (id, n) in std::mem::take(&mut self.offline) {
            if pred(id) {
                self.offline_seen.remove(&(id, n.clone()));
                offline.push((id, n));
            } else {
                kept.push((id, n));
            }
        }
        self.offline = kept;
        PromotedState {
            queries,
            rewritten,
            tuples,
            value_tuples,
            offline,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_relational::{DataType, QueryKey, RelationSchema, Timestamp, Tuple, Value};
    use std::sync::Arc;

    fn tuple(seq: u64) -> Arc<Tuple> {
        let schema = Arc::new(
            RelationSchema::of("R", &[("A", DataType::Int), ("B", DataType::Int)]).unwrap(),
        );
        Arc::new(
            Tuple::new(
                schema,
                vec![Value::Int(1), Value::Int(7)],
                Timestamp(0),
                seq,
            )
            .unwrap(),
        )
    }

    fn notification(v: i64) -> Notification {
        Notification {
            query_key: QueryKey::derive("n", 0),
            subscriber: "n".into(),
            values: vec![Value::Int(v)],
        }
    }

    #[test]
    fn duplicate_tuple_replicas_are_ignored() {
        let mut s = ReplicaStore::new();
        let mk = || {
            ReplicaItem::Tuple(StoredTuple {
                index_id: Id(5),
                attr: "A".into(),
                tuple: tuple(3),
            })
        };
        s.insert(mk());
        s.insert(mk());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn duplicate_offline_replicas_are_ignored() {
        let mut s = ReplicaStore::new();
        s.insert(ReplicaItem::Offline {
            id: Id(9),
            notification: notification(1),
        });
        s.insert(ReplicaItem::Offline {
            id: Id(9),
            notification: notification(1),
        });
        s.insert(ReplicaItem::Offline {
            id: Id(9),
            notification: notification(2),
        });
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn take_owned_partitions_by_identifier() {
        let mut s = ReplicaStore::new();
        s.insert(ReplicaItem::Tuple(StoredTuple {
            index_id: Id(10),
            attr: "A".into(),
            tuple: tuple(1),
        }));
        s.insert(ReplicaItem::Tuple(StoredTuple {
            index_id: Id(20),
            attr: "A".into(),
            tuple: tuple(2),
        }));
        s.insert(ReplicaItem::Offline {
            id: Id(10),
            notification: notification(1),
        });
        let promoted = s.take_owned(|id| id == Id(10));
        assert_eq!(promoted.len(), 2);
        assert_eq!(promoted.tuples.len(), 1);
        assert_eq!(promoted.offline.len(), 1);
        assert_eq!(s.len(), 1, "unowned replica stays dormant");
        // a promoted item can be mirrored back in later
        s.insert(ReplicaItem::Tuple(StoredTuple {
            index_id: Id(10),
            attr: "A".into(),
            tuple: tuple(1),
        }));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn value_tuple_replicas_dedup_by_seq_and_group() {
        let mut s = ReplicaStore::new();
        let mk = |seq| ReplicaItem::ValueTuple {
            group: "g".into(),
            value_key: "v".into(),
            entry: StoredValueTuple {
                index_id: Id(3),
                side: cq_relational::Side::Left,
                tuple: tuple(seq),
            },
        };
        s.insert(mk(1));
        s.insert(mk(1));
        s.insert(mk(2));
        assert_eq!(s.len(), 2);
        let promoted = s.take_owned(|_| true);
        assert_eq!(promoted.value_tuples.len(), 2);
        assert!(s.is_empty());
    }
}
