#!/usr/bin/env bash
# Captures a perf snapshot of the quick experiment suite and the
# join-evaluation kernels, writing BENCH_6.json at the repo root so future
# PRs have a trajectory to compare against.
#
#   scripts/bench_snapshot.sh            full snapshot -> BENCH_6.json
#   scripts/bench_snapshot.sh --check    CI smoke mode: one quick-suite run,
#                                        shrunk kernel audit, output to a
#                                        temp file (the committed snapshot
#                                        is not touched), plus the
#                                        flat-allocation-slope check
#
# The snapshot records wall times (min over N runs — min, not mean, because
# a shared box only adds noise upward), kernel events/sec, and heap
# allocations per event from the counting-allocator build. The allocation
# numbers are the zero-clone guarantee: each scan kernel is measured at two
# table sizes an order of magnitude apart, and allocations/event must not
# grow with the candidate count.
set -euo pipefail
cd "$(dirname "$0")/.."

mode=full
for arg in "$@"; do
  case "$arg" in
    --check) mode=check ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

out=BENCH_6.json
runs=3
audit_args=()
if [[ $mode == check ]]; then
  out=$(mktemp --suffix=.json)
  runs=1
  audit_args=(--quick)
fi

cargo build --release -p cq-sim --bin experiments
cargo build --release -p cq-bench --features count-allocs --bin alloc_audit

best=
for ((i = 0; i < runs; i++)); do
  t0=$(date +%s%N)
  target/release/experiments --csv > /dev/null
  t1=$(date +%s%N)
  ms=$(( (t1 - t0) / 1000000 ))
  echo "quick suite run $((i + 1))/$runs: ${ms} ms" >&2
  if [[ -z $best || $ms -lt $best ]]; then best=$ms; fi
done

audit=$(target/release/alloc_audit "${audit_args[@]}")

jq -n \
  --argjson wall "$best" \
  --argjson runs "$runs" \
  --argjson audit "$audit" \
  '{
    snapshot: "BENCH_6",
    baseline: {
      quick_suite_wall_ms: 4230,
      note: "main before PR 6 (zero-clone kernels + batched delivery), same box"
    },
    quick_suite: { wall_ms_min: $wall, runs: $runs },
    alloc_audit: $audit
  }' > "$out"

echo "wrote $out (quick suite min ${best} ms over ${runs} run(s))" >&2

# Zero-clone guarantee: per-event allocations of the scan kernels must be
# flat in the table size (slope < 0.5 allocs/event between the small and
# large size), and the ALQT group scan must be allocation-free.
jq -e '
  .alloc_audit.count_allocs == false or (
    [ .alloc_audit.kernels
      | group_by(.kernel)[]
      | select(.[0].kernel | test("-scan$"))
      | (max_by(.size).allocs_per_event - min_by(.size).allocs_per_event)
    ] | all(. < 0.5)
  )
' "$out" > /dev/null || { echo "FAIL: scan-kernel allocations grow with table size" >&2; exit 1; }
jq -e '
  .alloc_audit.count_allocs == false or (
    [ .alloc_audit.kernels[] | select(.kernel == "alqt-scan") | .allocs_per_event ]
    | all(. < 0.01)
  )
' "$out" > /dev/null || { echo "FAIL: alqt-scan is not allocation-free" >&2; exit 1; }
echo "allocation-slope check passed" >&2
