//! E16 — Figure "Effect in filtering load distribution of DAI-V of
//! increasing the network size, queries or tuples" (Section 5.4).
//!
//! DAI-V's sensitivity sweeps on type-T2 workloads (the class only it can
//! evaluate). Expected shape: per-node load dilutes with N, grows with
//! queries and tuples; evaluator load is concentrated on the nodes owning
//! popular join-condition values (no attribute prefix in the identifier).

use cq_engine::Algorithm;
use cq_workload::WorkloadConfig;

use crate::harness::{run as run_once, RunConfig};
use crate::report::{fnum, Report};
use crate::stats;
use super::Scale;

fn one(nodes: usize, queries: usize, tuples: usize, domain: i64) -> (f64, f64, f64) {
    let cfg = RunConfig {
        algorithm: Algorithm::DaiV,
        nodes,
        queries,
        tuples,
        t2_queries: true,
        workload: WorkloadConfig { domain, ..WorkloadConfig::default() },
        ..RunConfig::new(Algorithm::DaiV)
    };
    let r = run_once(&cfg);
    (stats::mean(&r.filtering), stats::max(&r.filtering), stats::gini(&r.filtering))
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let base_n = scale.pick(128, 1024);
    let base_q = scale.pick(40, 2000);
    let base_t = scale.pick(200, 600);
    let domain = scale.pick(40, 400);
    let mut report = Report::new(
        "E16",
        "DAI-V (T2 queries): filtering distribution sweeps",
        &["sweep", "value", "mean", "max", "gini"],
    );
    for n in scale.pick(vec![64, 128, 256], vec![1000, 2500, 5000]) {
        let (mean, max, gini) = one(n, base_q, base_t, domain);
        report.row(vec!["N".into(), n.to_string(), fnum(mean), fnum(max), fnum(gini)]);
    }
    for q in scale.pick(vec![20, 40, 80], vec![1000, 4000, 8000]) {
        let (mean, max, gini) = one(base_n, q, base_t, domain);
        report.row(vec!["queries".into(), q.to_string(), fnum(mean), fnum(max), fnum(gini)]);
    }
    for t in scale.pick(vec![100, 200, 400], vec![500, 1000, 2000]) {
        let (mean, max, gini) = one(base_n, base_q, t, domain);
        report.row(vec!["tuples".into(), t.to_string(), fnum(mean), fnum(max), fnum(gini)]);
    }
    report.note("paper: DAI-V scales with N/queries/tuples but concentrates on hot values");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_behave_monotonically_at_the_ends() {
        let r = run(Scale::Quick);
        let rows: Vec<Vec<String>> = r
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(str::to_string).collect())
            .collect();
        let n_rows: Vec<&Vec<String>> = rows.iter().filter(|r| r[0] == "N").collect();
        let mean_small: f64 = n_rows[0][2].parse().unwrap();
        let mean_big: f64 = n_rows.last().unwrap()[2].parse().unwrap();
        assert!(mean_big <= mean_small, "mean load must dilute with N");
        let t_rows: Vec<&Vec<String>> = rows.iter().filter(|r| r[0] == "tuples").collect();
        let max_low: f64 = t_rows[0][3].parse().unwrap();
        let max_high: f64 = t_rows.last().unwrap()[3].parse().unwrap();
        assert!(max_high >= max_low, "load must grow with the tuple rate");
    }
}
