//! E11 — Figure "Total filtering and total storage load distribution
//! comparison for the two level indexing algorithms" (Section 5.4).
//!
//! Totals (TF, TS) for SAI, DAI-Q and DAI-T on the same workload. Expected
//! shape: SAI has the lowest rewriter filtering (one rewriter per query vs
//! two); DAI-Q has the highest evaluator filtering because it never stores
//! rewritten queries and therefore re-evaluates every (even duplicate)
//! arrival, where SAI and DAI-T deduplicate by rewritten-query key. DAI-T
//! trades the largest rewritten-query storage for zero rewriter↔evaluator
//! traffic after distribution (see E2/E3).

use cq_engine::Algorithm;
use cq_workload::WorkloadConfig;

use super::Scale;
use crate::harness::RunConfig;
use crate::parallel::run_many;
use crate::report::{fnum, Report};

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let nodes = scale.pick(128, 1024);
    let queries = scale.pick(60, 5000);
    let tuples = scale.pick(300, 800);
    let mut report = Report::new(
        "E11",
        &format!("TF and TS totals, two-level algorithms (N={nodes}, Q={queries}, T={tuples})"),
        &[
            "algorithm",
            "TF",
            "TF rewriter",
            "TF evaluator",
            "TS",
            "notifications",
        ],
    );
    let algs = [Algorithm::Sai, Algorithm::DaiQ, Algorithm::DaiT];
    let cfgs: Vec<RunConfig> = algs
        .into_iter()
        .map(|alg| RunConfig {
            algorithm: alg,
            nodes,
            queries,
            tuples,
            workload: WorkloadConfig {
                domain: scale.pick(40, 400),
                ..WorkloadConfig::default()
            },
            ..RunConfig::new(alg)
        })
        .collect();
    for (alg, r) in algs.into_iter().zip(run_many(&cfgs)) {
        report.row(vec![
            alg.name().to_string(),
            fnum(r.total_filtering()),
            fnum(r.rewriter_filtering.iter().sum()),
            fnum(r.evaluator_filtering.iter().sum()),
            fnum(r.total_storage()),
            r.notifications.to_string(),
        ]);
    }
    report.note(
        "one rewriter (SAI) vs two (DAI): rewriter TF doubles; DAI-Q re-evaluates duplicates",
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_algorithm_delivers_notifications() {
        // Counts carry multiplicity and may differ (SAI/DAI-T deduplicate
        // rewritten queries by key, DAI-Q re-evaluates every arrival); the
        // *set* equality is covered by the engine's oracle tests.
        let r = run(Scale::Quick);
        let counts: Vec<u64> = r
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').next_back().unwrap().parse().unwrap())
            .collect();
        assert!(
            counts.iter().all(|&c| c > 0),
            "counts {counts:?} must be positive"
        );
    }

    #[test]
    fn rewriter_load_doubles_with_double_indexing() {
        let r = run(Scale::Quick);
        let mut rewriter = std::collections::HashMap::new();
        let mut evaluator = std::collections::HashMap::new();
        for line in r.to_csv().lines().skip(1) {
            let c: Vec<&str> = line.split(',').collect();
            rewriter.insert(c[0].to_string(), c[2].parse::<f64>().unwrap());
            evaluator.insert(c[0].to_string(), c[3].parse::<f64>().unwrap());
        }
        // Two rewriters per query: DAI rewriter filtering ≈ 2× SAI's.
        assert!(rewriter["DAI-T"] > 1.5 * rewriter["SAI"]);
        assert!(
            (rewriter["DAI-T"] - rewriter["DAI-Q"]).abs() < 1e-9,
            "same rewriter work"
        );
        // DAI-Q re-evaluates duplicate rewrites: highest evaluator load.
        assert!(evaluator["DAI-Q"] >= evaluator["SAI"]);
        assert!(evaluator["DAI-Q"] >= evaluator["DAI-T"]);
    }
}
