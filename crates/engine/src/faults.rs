//! Fault injection and reliable delivery (the robustness layer).
//!
//! The paper leaves "all the handling of failures … to the underlying DHT"
//! (Section 3.2); this module is the engine's answer for growing beyond that
//! assumption. A seeded [`FaultConfig`] injects message loss, duplication
//! and delay (reordering) into the protocol-message pump, plus abrupt node
//! failures per simulated tick. A reliable-delivery layer keeps the engine
//! correct under those faults:
//!
//! * every transmitted protocol message carries a `(sender, seq)` identifier;
//! * senders keep an outstanding-ack window and retransmit on timeout with
//!   exponential backoff (all in simulated ticks);
//! * receivers keep a per-sender dedup window so duplicates and
//!   retransmissions never double-index a tuple or query and never
//!   double-deliver a notification.
//!
//! With [`FaultConfig::default`] the layer is completely inert: messages take
//! the original perfect-FIFO path and every run is byte-identical to a build
//! without this module.

use std::collections::{BTreeMap, BTreeSet};

use cq_fasthash::FxHashMap;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cq_overlay::{Id, NodeHandle};

use crate::messages::Message;

/// Fault-injection knobs. All rates are probabilities in `[0, 1]`; all
/// durations are simulated ticks (one tick ≈ one message-delivery round).
///
/// The default configuration disables everything: no faults, no replication,
/// no retries — the engine behaves exactly as before this layer existed.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultConfig {
    /// Probability that one transmission copy of a message is dropped.
    pub loss_rate: f64,
    /// Probability that a transmission is duplicated (two copies sent).
    pub duplicate_rate: f64,
    /// Probability that a transmission is delayed by extra ticks, causing
    /// reordering relative to later messages.
    pub delay_rate: f64,
    /// Maximum extra delay in ticks for a delayed transmission (the actual
    /// delay is drawn uniformly from `1..=max_delay`).
    pub max_delay: u64,
    /// Per-tick probability of one abrupt node failure while the message
    /// pump runs.
    pub failure_rate: f64,
    /// Upper bound on rate-driven abrupt failures per run.
    pub max_failures: usize,
    /// Explicit failure schedule: at each listed pump tick one pseudo-random
    /// alive node fails abruptly. Must be sorted ascending.
    pub scheduled_failures: Vec<u64>,
    /// Replication factor `k`: every index-table entry and offline-store
    /// notification is mirrored on the node's `k` first alive successors and
    /// promoted by the successor when the primary fails (`0` disables).
    pub replication: usize,
    /// Ticks before the first retransmission of an unacknowledged message;
    /// `0` disables acks and retransmissions (fire-and-forget).
    pub ack_timeout: u64,
    /// Maximum retransmission attempts per message (exponential backoff:
    /// the n-th retry waits `ack_timeout << n` ticks, capped).
    pub max_retries: u32,
    /// Route every message through the tick-based reliable pump even when
    /// all fault rates are zero (used by tests to pin the layer's
    /// transparency).
    pub reliable: bool,
    /// How abrupt failures arrive over time: the classic rate/schedule
    /// knobs above, or an empirical session-length distribution.
    pub churn: ChurnModel,
    /// RNG seed for all fault draws (independent of the engine seed, so
    /// injecting faults never perturbs protocol-level random choices).
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            loss_rate: 0.0,
            duplicate_rate: 0.0,
            delay_rate: 0.0,
            max_delay: 0,
            failure_rate: 0.0,
            max_failures: 0,
            scheduled_failures: Vec::new(),
            replication: 0,
            ack_timeout: 0,
            max_retries: 0,
            reliable: false,
            churn: ChurnModel::Rate,
            seed: 0,
        }
    }
}

/// How abrupt node failures are generated while the pump runs.
///
/// [`ChurnModel::Rate`] is the PR 2 behavior: `failure_rate` per tick plus
/// the explicit `scheduled_failures` list. [`ChurnModel::Empirical`] samples
/// one session length per node slot from a fitted distribution at pipe
/// construction — the trace-driven shape measurement studies report for
/// peer-to-peer populations — and fails each node when its session expires.
#[derive(Clone, Debug, PartialEq)]
pub enum ChurnModel {
    /// Rate-driven and scheduled failures (`failure_rate`,
    /// `scheduled_failures`, `max_failures`).
    Rate,
    /// Session-length churn: every node draws one session length (in pump
    /// ticks) from `session` when the pipe is built and fails abruptly when
    /// it expires, up to `max_events` failures per run.
    Empirical {
        /// The fitted session-length distribution.
        session: SessionDist,
        /// Upper bound on session-expiry failures per run.
        max_events: usize,
    },
}

impl ChurnModel {
    /// Whether this model generates failures on its own (and therefore
    /// needs the tick pump).
    pub fn is_active(&self) -> bool {
        matches!(self, ChurnModel::Empirical { max_events, .. } if *max_events > 0)
    }
}

/// Session-length distributions with published fits for peer uptime traces.
/// Sampled with hand-rolled inverse-transform / Box–Muller draws so the
/// vendored minimal `rand` suffices.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SessionDist {
    /// Log-normal: `exp(mu + sigma * Z)` with `Z ~ N(0, 1)`.
    LogNormal {
        /// Mean of the underlying normal (log-ticks).
        mu: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
    },
    /// Weibull with the usual shape/scale parameterization; shape < 1 gives
    /// the heavy-tailed sessions measurement studies observe.
    Weibull {
        /// Shape parameter `k`.
        shape: f64,
        /// Scale parameter `lambda` (ticks).
        scale: f64,
    },
}

impl SessionDist {
    /// Draws one session length in ticks (always >= 1).
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        let len = match *self {
            SessionDist::LogNormal { mu, sigma } => {
                // Box–Muller: two uniforms -> one standard normal.
                let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
                let u2: f64 = rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                (mu + sigma * z).exp()
            }
            SessionDist::Weibull { shape, scale } => {
                // Inverse transform: scale * (-ln(1 - U))^(1/shape).
                let u: f64 = rng.gen::<f64>().min(1.0 - f64::EPSILON);
                scale * (-(1.0 - u).ln()).powf(1.0 / shape)
            }
        };
        len.round().max(1.0).min(u64::MAX as f64) as u64
    }
}

impl FaultConfig {
    /// A lossy-but-recoverable profile: the given loss rate plus mild
    /// duplication and delay, with acks and retransmissions enabled.
    pub fn lossy(loss_rate: f64, seed: u64) -> Self {
        FaultConfig {
            loss_rate,
            duplicate_rate: 0.05,
            delay_rate: 0.2,
            max_delay: 3,
            ack_timeout: 2,
            max_retries: 16,
            seed,
            ..FaultConfig::default()
        }
    }

    /// Whether message delivery must go through the tick-based reliable
    /// pump (any delivery perturbation, in-pump failures, or the explicit
    /// `reliable` pin).
    pub fn perturbs_delivery(&self) -> bool {
        self.reliable
            || self.loss_rate > 0.0
            || self.duplicate_rate > 0.0
            || self.delay_rate > 0.0
            || self.failure_rate > 0.0
            || !self.scheduled_failures.is_empty()
            || self.churn.is_active()
    }

    /// Whether any part of the robustness layer is active (fault pump or
    /// replication).
    pub fn is_active(&self) -> bool {
        self.perturbs_delivery() || self.replication > 0
    }

    /// Whether acks + retransmissions are enabled.
    pub fn retries_enabled(&self) -> bool {
        self.ack_timeout > 0
    }
}

/// A message identifier: `(sender slot, per-sender sequence number)`.
pub type MsgId = (u32, u64);

/// Per-sender receive-side dedup window: a low-water mark plus the set of
/// out-of-order sequence numbers seen above it. Memory stays proportional to
/// the reordering window, not to the total message count.
#[derive(Clone, Debug, Default)]
pub struct DedupWindow {
    /// Every sequence number `< floor` has been seen.
    floor: u64,
    /// Seen sequence numbers `>= floor` (sparse, above the water mark).
    above: BTreeSet<u64>,
}

impl DedupWindow {
    /// Records `seq`; returns `true` if it was seen before (a duplicate).
    pub fn check_and_record(&mut self, seq: u64) -> bool {
        if seq < self.floor || self.above.contains(&seq) {
            return true;
        }
        self.above.insert(seq);
        while self.above.remove(&self.floor) {
            self.floor += 1;
        }
        false
    }

    /// Number of out-of-order entries currently buffered above the mark.
    pub fn pending(&self) -> usize {
        self.above.len()
    }
}

/// A message a sender still awaits an ack for.
#[derive(Clone, Debug)]
pub(crate) struct Outstanding {
    /// The sending node (retransmissions originate here).
    pub from: NodeHandle,
    /// The identifier the message targets; retransmissions of routed
    /// messages re-resolve the owner so they survive ownership changes.
    pub target: Id,
    /// Whether retransmission re-routes by `target` (`true`) or re-sends to
    /// the original receiver only (`false`, for node-addressed messages such
    /// as replicas and direct notifications).
    pub reroute: bool,
    /// The last receiver the message was sent to.
    pub to: NodeHandle,
    /// The payload, kept for retransmission.
    pub msg: Message,
    /// Retransmission attempts so far.
    pub attempt: u32,
}

/// One scheduled arrival at a node.
#[derive(Clone, Debug)]
pub(crate) enum Delivery {
    /// A data message copy.
    Data {
        /// Reliable-delivery identifier.
        id: MsgId,
        /// Receiving node.
        to: NodeHandle,
        /// The payload carried by this copy.
        msg: Message,
    },
    /// An acknowledgement for `id`, returning to the sender.
    Ack {
        /// The acknowledged message.
        id: MsgId,
        /// The original sender (receiver of this ack).
        to: NodeHandle,
    },
}

impl Delivery {
    /// Whether this copy carries a heartbeat probe (ping or pong). Probes
    /// are fire-and-forget and excluded from [`FaultPipe::busy`].
    pub fn is_probe(&self) -> bool {
        matches!(
            self,
            Delivery::Data {
                msg: Message::Ping { .. } | Message::Pong { .. },
                ..
            }
        )
    }
}

/// The runtime state of the fault-injection + reliable-delivery layer.
/// Owned by the network when [`FaultConfig::perturbs_delivery`] is true.
#[derive(Debug)]
pub(crate) struct FaultPipe {
    /// The configuration (rates, timeouts, schedule).
    pub cfg: FaultConfig,
    /// Dedicated RNG for fault draws.
    pub rng: StdRng,
    /// Current simulated tick (monotonic across pumps).
    pub tick: u64,
    /// Per-sender-slot next sequence number.
    pub next_seq: Vec<u64>,
    /// Deliveries scheduled per tick, in deterministic insertion order.
    pub in_flight: BTreeMap<u64, Vec<Delivery>>,
    /// Retransmission checks scheduled per tick.
    pub retry_at: BTreeMap<u64, Vec<MsgId>>,
    /// Unacknowledged messages by identifier.
    pub outstanding: FxHashMap<MsgId, Outstanding>,
    /// Per-receiver-slot, per-sender-slot dedup windows.
    pub dedup: Vec<FxHashMap<u32, DedupWindow>>,
    /// Index into `cfg.scheduled_failures` already consumed.
    pub sched_idx: usize,
    /// Rate-driven failures injected so far.
    pub failures_injected: usize,
    /// Empirical-churn session expiries: pump tick -> node slots whose
    /// sessions end there (sampled once at construction).
    pub session_ends: BTreeMap<u64, Vec<u32>>,
    /// Session-expiry failures injected so far.
    pub churn_events: usize,
    /// Scheduled deliveries that are *not* heartbeat probes. [`busy`]
    /// counts only these, so in-flight pings and pongs never keep the
    /// pump spinning on their own — probe traffic progresses passively
    /// on ticks real protocol work (or `Network::settle`) forces.
    ///
    /// [`busy`]: FaultPipe::busy
    pub nonprobe_in_flight: usize,
}

impl FaultPipe {
    /// A fresh pipe for `slots` node slots. Under [`ChurnModel::Empirical`]
    /// every slot draws its session length here, before any fault draw, so
    /// the schedule is a pure function of the seed and the slot count.
    pub fn new(cfg: FaultConfig, slots: usize) -> Self {
        let seed = cfg.seed;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut session_ends: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
        if let ChurnModel::Empirical {
            session,
            max_events,
        } = &cfg.churn
        {
            if *max_events > 0 {
                for slot in 0..slots {
                    let end = 1 + session.sample(&mut rng);
                    session_ends.entry(end).or_default().push(slot as u32);
                }
            }
        }
        FaultPipe {
            cfg,
            rng,
            tick: 0,
            next_seq: vec![0; slots],
            in_flight: BTreeMap::new(),
            retry_at: BTreeMap::new(),
            outstanding: FxHashMap::default(),
            dedup: (0..slots).map(|_| FxHashMap::default()).collect(),
            sched_idx: 0,
            failures_injected: 0,
            session_ends,
            churn_events: 0,
            nonprobe_in_flight: 0,
        }
    }

    /// Allocates the next sequence number for a sender.
    pub fn alloc_seq(&mut self, sender: NodeHandle) -> MsgId {
        let slot = sender.index();
        if slot >= self.next_seq.len() {
            self.next_seq.resize(slot + 1, 0);
        }
        let seq = self.next_seq[slot];
        self.next_seq[slot] += 1;
        (slot as u32, seq)
    }

    /// Records a data arrival `(sender, seq)` at receiver `to`; returns
    /// `true` when it is a duplicate that must be suppressed.
    pub fn record_arrival(&mut self, id: MsgId, to: NodeHandle) -> bool {
        let slot = to.index();
        if slot >= self.dedup.len() {
            self.dedup.resize_with(slot + 1, FxHashMap::default);
        }
        self.dedup[slot]
            .entry(id.0)
            .or_default()
            .check_and_record(id.1)
    }

    /// Opens an ack window for a fresh send: the message is retransmitted
    /// until acknowledged or the retry budget runs out.
    pub fn open_window(
        &mut self,
        id: MsgId,
        from: &NodeHandle,
        target: Id,
        reroute: bool,
        to: &NodeHandle,
        msg: &Message,
    ) {
        self.outstanding.insert(
            id,
            Outstanding {
                from: *from,
                target,
                reroute,
                to: *to,
                msg: msg.clone(),
                attempt: 0,
            },
        );
    }

    /// Removes and returns the outstanding entry for `id`, if any.
    pub fn take_outstanding(&mut self, id: MsgId) -> Option<Outstanding> {
        self.outstanding.remove(&id)
    }

    /// Puts an outstanding entry back (the retry check keeps the window
    /// open until an ack arrives).
    pub fn reopen_window(&mut self, id: MsgId, o: Outstanding) {
        self.outstanding.insert(id, o);
    }

    /// Schedules a delivery at an absolute tick.
    pub fn schedule(&mut self, at: u64, delivery: Delivery) {
        if !delivery.is_probe() {
            self.nonprobe_in_flight += 1;
        }
        self.in_flight.entry(at).or_default().push(delivery);
    }

    /// Accounts for deliveries just removed from `in_flight` (the pump
    /// calls this with each tick's batch before handing copies out).
    pub fn note_removed(&mut self, deliveries: &[Delivery]) {
        let nonprobe = deliveries.iter().filter(|d| !d.is_probe()).count();
        self.nonprobe_in_flight -= nonprobe;
    }

    /// Schedules a retransmission check for `id` at an absolute tick.
    pub fn schedule_retry(&mut self, at: u64, id: MsgId) {
        self.retry_at.entry(at).or_default().push(id);
    }

    /// Whether any non-probe deliveries or retransmission checks remain.
    /// In-flight heartbeat probes deliberately do not count: a probe reply
    /// schedules the next probe, so counting them would keep the pump
    /// spinning forever once detection is enabled.
    pub fn busy(&self) -> bool {
        self.nonprobe_in_flight > 0 || !self.retry_at.is_empty()
    }

    /// The backoff delay before the n-th retransmission:
    /// `ack_timeout << attempt`, with the shift capped so ticks stay sane.
    pub fn backoff(&self, attempt: u32) -> u64 {
        self.cfg.ack_timeout << attempt.min(6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_inert() {
        let cfg = FaultConfig::default();
        assert!(!cfg.perturbs_delivery());
        assert!(!cfg.is_active());
        assert!(!cfg.retries_enabled());
    }

    #[test]
    fn lossy_profile_enables_retries() {
        let cfg = FaultConfig::lossy(0.2, 7);
        assert!(cfg.perturbs_delivery());
        assert!(cfg.retries_enabled());
        assert_eq!(cfg.loss_rate, 0.2);
        assert_eq!(cfg.seed, 7);
    }

    #[test]
    fn replication_alone_activates_without_perturbing() {
        let cfg = FaultConfig {
            replication: 2,
            ..FaultConfig::default()
        };
        assert!(!cfg.perturbs_delivery());
        assert!(cfg.is_active());
    }

    #[test]
    fn dedup_window_detects_duplicates_and_advances_floor() {
        let mut w = DedupWindow::default();
        assert!(!w.check_and_record(0));
        assert!(!w.check_and_record(1));
        assert!(w.check_and_record(0), "retransmission of 0 is a duplicate");
        // out of order: 3 before 2
        assert!(!w.check_and_record(3));
        assert_eq!(w.pending(), 1, "3 buffered above the water mark");
        assert!(!w.check_and_record(2));
        assert_eq!(w.pending(), 0, "floor advanced past 3");
        assert!(w.check_and_record(2));
        assert!(w.check_and_record(3));
    }

    #[test]
    fn seq_allocation_is_per_sender() {
        let mut pipe = FaultPipe::new(FaultConfig::default(), 2);
        let a = NodeHandle::from_index(0);
        let b = NodeHandle::from_index(1);
        assert_eq!(pipe.alloc_seq(a), (0, 0));
        assert_eq!(pipe.alloc_seq(a), (0, 1));
        assert_eq!(pipe.alloc_seq(b), (1, 0));
    }

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let pipe = FaultPipe::new(
            FaultConfig {
                ack_timeout: 2,
                ..FaultConfig::default()
            },
            1,
        );
        assert_eq!(pipe.backoff(0), 2);
        assert_eq!(pipe.backoff(1), 4);
        assert_eq!(pipe.backoff(3), 16);
        assert_eq!(pipe.backoff(60), 2 << 6, "shift capped");
    }
}
