//! The paper's illustrative figures (2.1, 4.1–4.5) replayed as assertions:
//! identifier-circle ownership, the tuple-insertion walkthrough, the SAI
//! walkthrough, the duplicate-notification scenario that motivates the DAI
//! split, and the DAI-T walkthrough.

use cq_engine::{indexing, Algorithm, EngineConfig, Network, TrafficKind};
use cq_overlay::{IdSpace, Ring};
use cq_relational::{Catalog, DataType, RelationSchema, Value};

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(RelationSchema::of("R", &[("A", DataType::Int), ("C", DataType::Int)]).unwrap())
        .unwrap();
    c.register(RelationSchema::of("S", &[("B", DataType::Int), ("C", DataType::Int)]).unwrap())
        .unwrap();
    c
}

/// Figure 2.1: the identifier circle with m = 6 — "a key with identifier 8
/// would be stored at node N8 … N32 is responsible for (21, 32]".
#[test]
fn figure_2_1_identifier_circle() {
    let space = IdSpace::new(6);
    assert_eq!(space.size(), 64);
    // Build a ring and verify the successor rule on a concrete key.
    let ring = Ring::build(space, 10, "fig21-");
    for h in ring.alive_nodes() {
        let (pred, id) = ring.owned_range(h).unwrap();
        // every identifier in (pred, id] maps to h
        let probe = space.add(pred, 1);
        assert_eq!(ring.owner_of(probe).unwrap(), h);
        assert_eq!(ring.owner_of(id).unwrap(), h);
    }
}

/// Figure 4.1: inserting a tuple of a binary relation produces 2h = 4 index
/// messages — one attribute-level and one value-level identifier per
/// attribute.
#[test]
fn figure_4_1_tuple_insertion() {
    let mut net = Network::new(EngineConfig::new(Algorithm::Sai).with_nodes(32), catalog());
    let a = net.node_at(0);
    net.insert_tuple(a, "R", vec![Value::Int(5), Value::Int(9)])
        .unwrap();
    let t = net.metrics().traffic(TrafficKind::TupleIndex);
    assert_eq!(t.messages, 4, "2 attributes × (al-index + vl-index)");

    // The identifiers are exactly Hash(R+A_i) and Hash(R+A_i+v_i).
    let space = net.ring().space();
    let ids = indexing::tuple_index_ids(space, &net.inserted_tuples()[0], true, 1);
    assert_eq!(ids.len(), 2);
    assert_eq!(ids[0].1, indexing::aindex(space, "R", "A"));
    assert_eq!(
        ids[0].2,
        Some(indexing::vindex_attr(space, "R", "A", &Value::Int(5)))
    );
    assert_eq!(ids[1].1, indexing::aindex(space, "R", "C"));
    assert_eq!(
        ids[1].2,
        Some(indexing::vindex_attr(space, "R", "C", &Value::Int(9)))
    );
}

/// Figure 4.2: the SAI walkthrough — a query is indexed, a tuple rewrites
/// it, and notifications are created both when a tuple meets a stored
/// rewritten query (step 3) and when a rewritten query meets a stored tuple
/// (step 5).
#[test]
fn figure_4_2_sai_walkthrough() {
    let mut net = Network::new(EngineConfig::new(Algorithm::Sai).with_nodes(32), catalog());
    let poser = net.node_at(0);
    net.pose_query_sql(poser, "SELECT R.A, S.B FROM R, S WHERE R.C = S.C")
        .unwrap();

    // Step: tuple of the index relation triggers the rewriter; the rewritten
    // query travels to the evaluator and waits.
    net.insert_tuple(poser, "R", vec![Value::Int(1), Value::Int(7)])
        .unwrap();
    net.insert_tuple(poser, "S", vec![Value::Int(4), Value::Int(7)])
        .unwrap();
    // ... a later tuple meets the stored rewritten query (or stored tuple,
    // depending on which side SAI indexed) — either way one notification.
    assert_eq!(net.inbox(poser).len(), 1);

    // Step 5 direction: value arrives before the rewriting exists.
    net.insert_tuple(poser, "S", vec![Value::Int(5), Value::Int(8)])
        .unwrap();
    net.insert_tuple(poser, "R", vec![Value::Int(2), Value::Int(8)])
        .unwrap();
    assert_eq!(
        net.inbox(poser).len(),
        2,
        "both directions complete the join"
    );
}

/// Figure 4.3: the duplicate-notification hazard — with two rewriters per
/// query, a naive design would notify twice. All DAI algorithms must
/// deliver exactly one notification for one matching pair.
#[test]
fn figure_4_3_no_duplicate_notifications() {
    for alg in [Algorithm::DaiQ, Algorithm::DaiT, Algorithm::DaiV] {
        let mut net = Network::new(EngineConfig::new(alg).with_nodes(32), catalog());
        let poser = net.node_at(0);
        net.pose_query_sql(poser, "SELECT R.A, S.B FROM R, S WHERE R.C = S.C")
            .unwrap();
        net.insert_tuple(poser, "R", vec![Value::Int(1), Value::Int(7)])
            .unwrap();
        net.insert_tuple(poser, "S", vec![Value::Int(4), Value::Int(7)])
            .unwrap();
        assert_eq!(
            net.inbox(poser).len(),
            1,
            "{alg}: the Figure 4.3 scenario must yield exactly one notification"
        );
    }
}

/// Figure 4.4: the DAI-T walkthrough — once the rewritten queries for a
/// value are distributed, further matching tuples create notifications
/// *without any reindex messages* beyond tuple indexing itself.
#[test]
fn figure_4_4_dai_t_walkthrough() {
    let mut net = Network::new(EngineConfig::new(Algorithm::DaiT).with_nodes(32), catalog());
    let poser = net.node_at(0);
    net.pose_query_sql(poser, "SELECT S.B FROM R, S WHERE R.C = S.C")
        .unwrap();
    net.insert_tuple(poser, "R", vec![Value::Int(1), Value::Int(7)])
        .unwrap();
    net.insert_tuple(poser, "S", vec![Value::Int(4), Value::Int(7)])
        .unwrap();
    let reindex_before = net.metrics().traffic(TrafficKind::Reindex).messages;

    // "When similar tuples are inserted, notifications are created without
    // extra messages except the ones used to index a tuple."
    // (Select list is S.B, so repeated R tuples produce identical rewritten
    // keys; repeated S tuples with the same B do too.)
    net.insert_tuple(poser, "R", vec![Value::Int(2), Value::Int(7)])
        .unwrap();
    net.insert_tuple(poser, "S", vec![Value::Int(4), Value::Int(7)])
        .unwrap();
    let reindex_after = net.metrics().traffic(TrafficKind::Reindex).messages;
    assert_eq!(
        reindex_before, reindex_after,
        "no further reindexing for the same value"
    );
    // The notifications still flow: S(4,7) joins R tuples (content-deduped).
    assert!(!net.inbox(poser).is_empty());
}

/// Section 2.3 + Figure "moving an identifier": multisend delivers each
/// identifier to its responsible node even when identifiers cluster.
#[test]
fn multisend_clustered_identifiers() {
    let ring = Ring::build(IdSpace::new(16), 20, "fig-ms-");
    let from = ring.alive_nodes().next().unwrap();
    // Identifiers packed into one small arc of the circle.
    let base = ring.id_of(ring.alive_nodes().nth(10).unwrap());
    let ids: Vec<_> = (0..8).map(|i| ring.space().add(base, i)).collect();
    let out = ring.multisend_recursive(from, &ids).unwrap();
    for (owner, owned) in &out.deliveries {
        for id in owned {
            assert_eq!(ring.owner_of(*id).unwrap(), *owner);
        }
    }
}
