//! Error types for ring construction and routing.

use std::error::Error;
use std::fmt;

use crate::id::Id;

/// Errors produced by the overlay layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OverlayError {
    /// Two distinct keys hashed to the same identifier. The paper assumes `m`
    /// is "large enough to avoid the possibility" of this; we surface it
    /// instead of silently corrupting the ring.
    IdCollision {
        /// The contested identifier.
        id: Id,
        /// Key of the node already occupying the identifier.
        existing_key: String,
        /// Key whose insertion was rejected.
        new_key: String,
    },
    /// An operation referenced a node that is not currently part of the ring.
    NodeNotAlive,
    /// An operation referenced a node that is already part of the ring.
    NodeAlreadyAlive,
    /// The ring has no alive nodes.
    EmptyRing,
    /// Greedy routing failed to converge (broken pointers after heavy churn
    /// without stabilization).
    RoutingFailed {
        /// The identifier being looked up.
        target: Id,
        /// Hops consumed before giving up.
        hops: usize,
    },
}

impl fmt::Display for OverlayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OverlayError::IdCollision {
                id,
                existing_key,
                new_key,
            } => write!(
                f,
                "identifier collision at {id}: key {new_key:?} collides with {existing_key:?}"
            ),
            OverlayError::NodeNotAlive => write!(f, "node is not part of the ring"),
            OverlayError::NodeAlreadyAlive => write!(f, "node is already part of the ring"),
            OverlayError::EmptyRing => write!(f, "the ring has no alive nodes"),
            OverlayError::RoutingFailed { target, hops } => {
                write!(
                    f,
                    "routing toward {target} failed to converge after {hops} hops"
                )
            }
        }
    }
}

impl Error for OverlayError {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, OverlayError>;
