//! Borrow-friendly composite keys for the two-level tables.
//!
//! The tables are keyed by string pairs — `(relation, attribute)` for the
//! query/tuple tables, `(group, value)` for the DAI-V store. Keying a
//! `HashMap` by `(String, String)` forces every *lookup* to allocate two
//! fresh `String`s just to form the key. [`StrPair`] plus the [`PairQuery`]
//! trait object avoid that: the map is keyed by the owned pair, but lookups
//! pass `&(a, b) as &dyn PairQuery`, which borrows the caller's `&str`s.
//!
//! The trick is the classic `Borrow<dyn Trait>` pattern: `StrPair`
//! implements `Borrow<dyn PairQuery>`, and `Hash`/`Eq` are defined on the
//! trait object so that owned and borrowed forms hash identically.

use std::borrow::Borrow;
use std::hash::{Hash, Hasher};

/// An owned pair of interned strings used as a bucket key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StrPair {
    /// First component (relation or group).
    pub a: Box<str>,
    /// Second component (attribute or value).
    pub b: Box<str>,
}

impl StrPair {
    /// Builds an owned pair from borrowed components.
    pub fn new(a: &str, b: &str) -> Self {
        StrPair {
            a: a.into(),
            b: b.into(),
        }
    }
}

/// A borrowed view of a string pair; the lookup-side counterpart of
/// [`StrPair`].
pub trait PairQuery {
    /// First component of the pair.
    fn first(&self) -> &str;
    /// Second component of the pair.
    fn second(&self) -> &str;
}

impl PairQuery for StrPair {
    #[inline]
    fn first(&self) -> &str {
        &self.a
    }
    #[inline]
    fn second(&self) -> &str {
        &self.b
    }
}

impl PairQuery for (&str, &str) {
    #[inline]
    fn first(&self) -> &str {
        self.0
    }
    #[inline]
    fn second(&self) -> &str {
        self.1
    }
}

impl Hash for dyn PairQuery + '_ {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.first().hash(state);
        self.second().hash(state);
    }
}

impl PartialEq for dyn PairQuery + '_ {
    fn eq(&self, other: &Self) -> bool {
        self.first() == other.first() && self.second() == other.second()
    }
}

impl Eq for dyn PairQuery + '_ {}

// The map hashes owned keys through the same trait-object impl, so owned
// and borrowed forms land in the same bucket.
impl Hash for StrPair {
    fn hash<H: Hasher>(&self, state: &mut H) {
        (self as &dyn PairQuery).hash(state)
    }
}

impl<'a> Borrow<dyn PairQuery + 'a> for StrPair {
    fn borrow(&self) -> &(dyn PairQuery + 'a) {
        self
    }
}

/// Casts a borrowed pair for map lookup:
/// `map.get(lookup_key(&(relation, attr)))`.
#[inline]
pub fn lookup_key<'a>(pair: &'a (&'a str, &'a str)) -> &'a (dyn PairQuery + 'a) {
    pair
}

/// Get-or-insert for a [`StrPair`]-keyed map that only allocates the owned
/// key when the bucket does not exist yet (the `entry` API would force an
/// allocation on every call).
pub fn bucket_mut<'m, V: Default>(
    map: &'m mut cq_fasthash::FxHashMap<StrPair, V>,
    a: &str,
    b: &str,
) -> &'m mut V {
    if map.contains_key(lookup_key(&(a, b))) {
        // Invariant: present per the contains_key probe on the previous line.
        map.get_mut(lookup_key(&(a, b))).expect("checked above")
    } else {
        map.entry(StrPair::new(a, b)).or_default()
    }
}

/// Get-or-insert for a `Box<str>`-keyed second-level map, same rationale as
/// [`bucket_mut`].
pub fn str_bucket_mut<'m, V: Default>(
    map: &'m mut cq_fasthash::FxHashMap<Box<str>, V>,
    key: &str,
) -> &'m mut V {
    if map.contains_key(key) {
        // Invariant: present per the contains_key probe on the previous line.
        map.get_mut(key).expect("checked above")
    } else {
        map.entry(key.into()).or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_fasthash::FxHashMap;

    #[test]
    fn owned_and_borrowed_forms_agree() {
        let mut m: FxHashMap<StrPair, u32> = FxHashMap::default();
        m.insert(StrPair::new("R", "A"), 1);
        m.insert(StrPair::new("R", "B"), 2);
        assert_eq!(m.get(lookup_key(&("R", "A"))), Some(&1));
        assert_eq!(m.get(lookup_key(&("R", "B"))), Some(&2));
        assert_eq!(m.get(lookup_key(&("S", "A"))), None);
        // The separator property: ("RA","") must not collide with ("R","A").
        assert_eq!(m.get(lookup_key(&("RA", ""))), None);
    }

    #[test]
    fn hash_consistency_between_forms() {
        use std::hash::BuildHasher;
        let bh = cq_fasthash::FxBuildHasher::default();
        let owned = StrPair::new("Doc", "AuthorId");
        let borrowed: &dyn PairQuery = &("Doc", "AuthorId");
        assert_eq!(bh.hash_one(&owned), {
            let mut h = bh.build_hasher();
            borrowed.hash(&mut h);
            std::hash::Hasher::finish(&h)
        });
    }
}
