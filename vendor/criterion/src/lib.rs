//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no package registry, so this crate implements
//! the subset of the criterion 0.5 API used by the workspace's benches:
//! [`Criterion`], benchmark groups, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BenchmarkId`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Statistics are deliberately simple: after a warm-up window, each
//! benchmark takes `sample_size` wall-clock samples and reports the
//! `[min mean max]` per-iteration time in criterion's familiar one-line
//! format. There are no plots, no saved baselines, and no outlier analysis —
//! trends and relative comparisons are what the repository's benches are
//! for. A command-line substring filter (`cargo bench -- route`) is
//! supported.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    filters: Vec<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Skip argv[0]; remaining args act as substring filters, matching
        // criterion's CLI behaviour closely enough for interactive use.
        // Flag-like args (e.g. `--bench` passed by cargo) are ignored.
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        Criterion {
            warm_up: Duration::from_secs(3),
            measurement: Duration::from_secs(5),
            sample_size: 100,
            filters,
        }
    }
}

impl Criterion {
    /// Sets the warm-up window run before sampling starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the total measurement window split across samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let (warm_up, measurement, sample_size) =
            (self.warm_up, self.measurement, self.sample_size);
        self.run_one(name.to_string(), warm_up, measurement, sample_size, f);
        self
    }

    fn matches_filter(&self, full_name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| full_name.contains(f))
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        full_name: String,
        warm_up: Duration,
        measurement: Duration,
        sample_size: usize,
        mut f: F,
    ) {
        if !self.matches_filter(&full_name) {
            return;
        }
        let mut bencher = Bencher {
            warm_up,
            measurement,
            sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&full_name);
    }
}

/// A group of benchmarks sharing a name prefix and (optionally) an
/// overridden sample count.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id());
        let (w, m) = (self.criterion.warm_up, self.criterion.measurement);
        let s = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(full, w, m, s, f);
        self
    }

    /// Runs one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// A benchmark identifier: either a bare parameter or `name/parameter`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `group/<name>/<parameter>`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// `group/<parameter>`.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(format!("{parameter}"))
    }
}

/// Anything usable as a benchmark name within a group.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.0
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Controls how `iter_batched` amortises setup cost. The distinction only
/// affects upstream's memory strategy; here each batch is one routine call
/// either way.
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Passed to the benchmark closure; runs and times the routine.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, called in a loop.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm up, simultaneously calibrating how many iterations fit in
        // roughly one millisecond so each sample timing is meaningful.
        let warm_end = Instant::now() + self.warm_up;
        let mut iters_per_sample: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if dt < Duration::from_millis(1) && iters_per_sample < u64::MAX / 2 {
                iters_per_sample *= 2;
            }
            if Instant::now() >= warm_end {
                break;
            }
        }
        // Cap total sampled work at the measurement window.
        let per_iter = Duration::from_millis(1).as_nanos() as f64 / iters_per_sample as f64;
        let budget_iters = (self.measurement.as_nanos() as f64 / per_iter.max(1.0)) as u64;
        let max_per_sample = (budget_iters / self.sample_size as u64).max(1);
        iters_per_sample = iters_per_sample.min(max_per_sample).max(1);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let dt = t0.elapsed();
            self.samples_ns
                .push(dt.as_nanos() as f64 / iters_per_sample as f64);
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded
    /// from the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        let warm_end = Instant::now() + self.warm_up;
        while Instant::now() < warm_end {
            black_box(routine(setup()));
        }
        self.samples_ns.clear();
        let measure_end = Instant::now() + self.measurement;
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples_ns.push(t0.elapsed().as_nanos() as f64);
            if Instant::now() >= measure_end {
                break;
            }
        }
    }

    fn report(&self, name: &str) {
        if self.samples_ns.is_empty() {
            println!("{name:<40} (no samples)");
            return;
        }
        let min = self
            .samples_ns
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let max = self.samples_ns.iter().cloned().fold(0.0f64, f64::max);
        let mean = self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64;
        println!(
            "{name:<40} time:   [{} {} {}]",
            fmt_ns(min),
            fmt_ns(mean),
            fmt_ns(max)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group of benchmark functions and the shared [`Criterion`]
/// configuration they run under.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the `main` entry point running one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Criterion {
        Criterion {
            warm_up: Duration::from_millis(5),
            measurement: Duration::from_millis(10),
            sample_size: 5,
            filters: Vec::new(),
        }
    }

    #[test]
    fn iter_produces_samples() {
        let mut c = tiny();
        let mut group = c.benchmark_group("t");
        let mut ran = false;
        group.bench_function("noop", |b| {
            b.iter(|| black_box(1 + 1));
            ran = !b.samples_ns.is_empty();
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = tiny();
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![0u8; 16],
                |v| black_box(v.len()),
                BatchSize::LargeInput,
            );
            assert!(!b.samples_ns.is_empty());
        });
    }

    #[test]
    fn filters_skip_non_matching() {
        let mut c = tiny();
        c.filters = vec!["only-this".to_string()];
        let mut ran = false;
        c.bench_function("something-else", |b| {
            b.iter(|| 1);
            ran = true;
        });
        assert!(!ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("a", 3).into_benchmark_id(), "a/3");
        assert_eq!(BenchmarkId::from_parameter("x").into_benchmark_id(), "x");
    }
}
