//! Regression pin for the counts-mode accounting bug: with
//! `retain_notifications: false`, `deliver_matches` used to bump
//! `notifications_delivered` *before* checking whether the subscriber was
//! still online, so a disconnected subscriber's matches were counted both
//! as delivered and as stored offline. The two retention modes must report
//! the same accounting picture (modulo the documented asymmetry — see
//! DESIGN.md, "Fault model"): full retention counts every arrival, inbox
//! or offline store, as delivered; counts mode splits the offline portion
//! into `notifications_stored_offline` only.

use cq_engine::{Algorithm, EngineConfig, FaultConfig, Network, Oracle};
use cq_relational::{Catalog, DataType, RelationSchema, Value};

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(RelationSchema::of("R", &[("A", DataType::Int), ("B", DataType::Int)]).unwrap())
        .unwrap();
    c.register(RelationSchema::of("S", &[("D", DataType::Int), ("E", DataType::Int)]).unwrap())
        .unwrap();
    c
}

/// ef01-style workload: two subscribers, one of which disconnects halfway
/// through a lossy stream, so both the online and the offline delivery
/// arms are exercised under retransmission pressure.
fn run_mode(alg: Algorithm, retain: bool) -> Network {
    let mut net = Network::new(
        EngineConfig::new(alg)
            .with_nodes(24)
            .with_seed(42)
            .with_fault(FaultConfig::lossy(0.15, 77))
            .with_retained_notifications(retain),
        catalog(),
    );
    let a = net.node_at(0);
    let b = net.node_at(7);
    net.pose_query_sql(a, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
        .unwrap();
    net.pose_query_sql(b, "SELECT R.A FROM R, S WHERE R.B = S.E AND S.D = 2")
        .unwrap();
    let insert = |net: &mut Network, i: i64| {
        net.insert_tuple(
            net.node_at((i % 20) as usize),
            "R",
            vec![Value::Int(i), Value::Int(i % 4)],
        )
        .unwrap();
        net.insert_tuple(
            net.node_at(((i + 3) % 20) as usize),
            "S",
            vec![Value::Int(2 + i % 2), Value::Int(i % 3)],
        )
        .unwrap();
    };
    for i in 0..6 {
        insert(&mut net, i);
    }
    // `b` disconnects: its matches from the second half of the stream must
    // land in the offline store (full mode) / offline counters (counts
    // mode), never in the delivered figure of counts mode.
    net.node_leave(b).unwrap();
    net.stabilize(2).unwrap();
    for i in 6..12 {
        insert(&mut net, i);
    }
    net
}

#[test]
fn counts_mode_agrees_with_full_retention_under_faults() {
    for alg in Algorithm::ALL {
        let full = run_mode(alg, true);
        let counts = run_mode(alg, false);

        // Ground truth: full retention delivers exactly the oracle set
        // (inbox plus offline store), each notification exactly once.
        let mut oracle = Oracle::new();
        oracle.ingest(full.posed_queries(), full.inserted_tuples());
        let expected = oracle.expected().unwrap();
        assert_eq!(
            full.delivered_set(),
            expected,
            "{alg}: full retention must match the oracle under faults"
        );
        // (No `delivered == expected.len()` assertion: the counter counts
        // match *events* while the oracle set holds distinct notification
        // *contents* — the stream repeats S tuples, so events exceed set
        // size by design.)
        let fm = full.metrics();

        // The two modes draw different fault RNG sequences (counts mode
        // sends no notification messages), but exactly-once evaluation
        // means the totals agree.
        let cm = counts.metrics();
        assert!(
            cm.notifications_stored_offline > 0,
            "{alg}: the workload must exercise the offline arm"
        );
        assert_eq!(
            cm.notifications_stored_offline, fm.notifications_stored_offline,
            "{alg}: both modes must agree on the offline portion"
        );
        // The regression: offline counts used to be added to *both*
        // counters, making this left side exceed the oracle total.
        assert_eq!(
            cm.notifications_delivered + cm.notifications_stored_offline,
            fm.notifications_delivered,
            "{alg}: counts mode must split, not double-count, offline matches"
        );
    }
}
