//! End-to-end socket suite: a quick experiment over real TCP loopback
//! sockets must deliver exactly what the in-memory simulator delivers at
//! the same seed, for every algorithm.

use cq_engine::Algorithm;
use cq_sim::cluster::{compare, run_once, ClusterConfig};

#[test]
fn tcp_loopback_matches_simulator() {
    for algorithm in [Algorithm::Sai, Algorithm::DaiT] {
        let cfg = ClusterConfig {
            algorithm,
            nodes: 24,
            queries: 8,
            tuples: 60,
            seed: 11,
        };
        compare(&cfg).unwrap_or_else(|d| panic!("{algorithm}: {d}"));
    }
}

#[test]
fn tcp_runs_deliver_notifications() {
    let cfg = ClusterConfig {
        nodes: 16,
        queries: 6,
        tuples: 50,
        seed: 3,
        ..ClusterConfig::default()
    };
    let run = run_once(&cfg, true);
    assert!(
        !run.delivered.is_empty(),
        "the socket run should produce notifications"
    );
    assert!(run.wire_bytes > 0, "frames crossed real sockets");
}

#[test]
fn tcp_rejects_fault_configs() {
    use cq_engine::{EngineConfig, FaultConfig, Network};
    use cq_workload::{Workload, WorkloadConfig};

    let workload = Workload::new(WorkloadConfig::default());
    let cfg = EngineConfig::new(Algorithm::DaiT)
        .with_nodes(8)
        .with_fault(FaultConfig {
            loss_rate: 0.1,
            ..FaultConfig::default()
        });
    let mut net = Network::new(cfg, workload.catalog().clone());
    let err = net.enable_tcp_transport().expect_err("pipe configs refuse");
    assert!(err.to_string().contains("perfect delivery"), "{err}");
}
