#!/usr/bin/env bash
# Regenerates the experiment registry and diffs it against the committed
# golden files.
#
#   scripts/check_goldens.sh             quick registry vs quick_experiments.txt
#   scripts/check_goldens.sh --full      also full registry vs full_experiments.txt
#                                        (full scale takes minutes, not seconds)
#   scripts/check_goldens.sh --update    rewrite the golden file(s) in place
#
# The quick golden is stored with per-experiment timing lines stripped; the
# full golden keeps its timings for the paper writeup, so both sides are
# stripped before that diff (wall time varies per host, tables must not).
set -euo pipefail
cd "$(dirname "$0")/.."

full=0
update=0
for arg in "$@"; do
  case "$arg" in
    --full) full=1 ;;
    --update) update=1 ;;
    *)
      echo "usage: $0 [--full] [--update]" >&2
      exit 2
      ;;
  esac
done

cargo build --release --bin experiments

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "== quick registry =="
target/release/experiments --csv | grep -v "finished in" > "$tmp/quick.txt"
if [ "$update" = 1 ]; then
  cp "$tmp/quick.txt" quick_experiments.txt
  echo "updated quick_experiments.txt"
elif ! diff -u quick_experiments.txt "$tmp/quick.txt"; then
  echo >&2
  echo "quick golden drifted; regenerate via: scripts/check_goldens.sh --update" >&2
  exit 1
fi

if [ "$full" = 1 ]; then
  echo "== full registry =="
  target/release/experiments --full --csv > "$tmp/full_raw.txt"
  if [ "$update" = 1 ]; then
    cp "$tmp/full_raw.txt" full_experiments.txt
    echo "updated full_experiments.txt"
  else
    grep -v "finished in" full_experiments.txt > "$tmp/full_golden.txt"
    grep -v "finished in" "$tmp/full_raw.txt" > "$tmp/full_new.txt"
    if ! diff -u "$tmp/full_golden.txt" "$tmp/full_new.txt"; then
      echo >&2
      echo "full golden drifted; regenerate via: scripts/check_goldens.sh --full --update" >&2
      exit 1
    fi
  fi
fi

echo "goldens OK"
