//! Handler building blocks shared by the four protocol implementations.
//!
//! Everything here is a pure function of a [`NodeCtx`] (or of its
//! [`NodeCtx::split`] halves): state reads/writes go through the node
//! state, randomness through the context RNG, and sends are pushed as
//! [`Effect`]s. The helpers reproduce the paper's shared machinery — query
//! indexing (Section 4.3.1), the two-level tuple indexing of Section 4.2,
//! rewriting T1 queries on tuple arrival (Sections 4.3.2/4.4) and matching
//! rewritten queries against stored tuples (Section 4.3.3) — while the
//! per-algorithm differences stay in the [`Protocol`] impls.
//!
//! The join kernels ([`t1_tuple_arrival`], [`match_against_vltt`],
//! [`match_vlqt_candidates`]) scan their tables **in place**: candidate
//! entries are borrowed straight out of the index maps while matches,
//! metrics and effects flow into the disjoint [`EffectCtx`] sinks. No
//! candidate set is ever cloned out and no per-arrival key `String` is
//! allocated (value keys come from the tuple's cached canonical forms or
//! the reusable scratch buffer). See DESIGN.md, "Hot-path memory
//! discipline".

use std::borrow::Cow;
use std::sync::Arc;

use cq_overlay::Id;
use cq_relational::{JoinQuery, MatchTarget, QueryRef, RewrittenQuery, Side, Tuple};
use rand::Rng;

use crate::error::{EngineError, Result};
use crate::indexing;
use crate::messages::Message;
use crate::metrics::TrafficKind;
use crate::node::NodeState;
use crate::protocol::{Effect, EffectCtx, Matches, NodeCtx, Protocol};
use crate::tables::{StoredTuple, Vlqt, Vltt};
use crate::trace::TraceEvent;

/// Indexes `[T; 2]` probe results by side.
pub(crate) fn side_slot(side: Side) -> usize {
    match side {
        Side::Left => 0,
        Side::Right => 1,
    }
}

/// `IndexA(q)` for `side`: the join attribute for T1 queries, a
/// pseudo-random attribute of the side's condition for T2 (Section 4.5).
/// Always borrowed from the query: the T2 candidate set is precomputed at
/// validation time ([`JoinQuery::condition_attrs`]), so the pick costs one
/// RNG draw and zero allocations.
pub(crate) fn default_index_attr<'q>(
    ctx: &mut NodeCtx<'_>,
    query: &'q JoinQuery,
    side: Side,
) -> Cow<'q, str> {
    if let Some(attr) = query.join_attr(side) {
        return Cow::Borrowed(attr);
    }
    // T2: no single join attribute; pick pseudo-randomly among the side's
    // condition attributes (validated non-empty at construction; sorted and
    // deduplicated, matching the BTreeSet order previously collected here).
    let attrs = query.condition_attrs(side);
    let i = ctx.rng().gen_range(0..attrs.len());
    Cow::Borrowed(attrs[i].as_str())
}

/// Emits the attribute-level `IndexQuery` batch for `sides`, one message
/// per configured replica identifier (Section 4.7).
pub(crate) fn pose_at_sides(
    proto: &dyn Protocol,
    ctx: &mut NodeCtx<'_>,
    query: &QueryRef,
    sides: &[Side],
) -> Result<()> {
    let space = ctx.space();
    let k = ctx.config().replication;
    let mut targets: Vec<(Id, Message)> = Vec::new();
    for &side in sides {
        let attr = proto.index_attr(ctx, query, side);
        for id in indexing::aindex_replicas(space, query.relation(side), &attr, k) {
            targets.push((
                id,
                Message::IndexQuery {
                    query: Arc::clone(query),
                    index_side: side,
                    index_attr: attr.to_string(),
                    index_id: id,
                },
            ));
        }
    }
    ctx.push(Effect::Batch {
        kind: TrafficKind::QueryIndex,
        targets,
    });
    Ok(())
}

/// Emits the tuple-indexing batch: one attribute-level message per
/// attribute, plus a value-level message when the algorithm stores tuples
/// at the value level (Section 4.2).
pub(crate) fn publish_tuple(ctx: &mut NodeCtx<'_>, tuple: &Arc<Tuple>, value_level: bool) {
    let space = ctx.space();
    let ids = indexing::tuple_index_ids(space, tuple, value_level, ctx.config().replication);
    let mut targets: Vec<(Id, Message)> = Vec::with_capacity(ids.len() * 2);
    for (attr, ai, vi) in ids {
        targets.push((
            ai,
            Message::AlIndexTuple {
                tuple: Arc::clone(tuple),
                attr: attr.clone(),
                index_id: ai,
            },
        ));
        if let Some(vi) = vi {
            targets.push((
                vi,
                Message::VlIndexTuple {
                    tuple: Arc::clone(tuple),
                    attr,
                    index_id: vi,
                },
            ));
        }
    }
    ctx.push(Effect::Batch {
        kind: TrafficKind::TupleIndex,
        targets,
    });
}

/// Probes both candidate rewriters of `query` for their arrival statistics
/// (Section 4.3.6), returning `(left, right)` `(count, distinct)` pairs.
pub(crate) fn probe_rewriters(
    proto: &dyn Protocol,
    ctx: &mut NodeCtx<'_>,
    query: &JoinQuery,
) -> Result<((u64, usize), (u64, usize))> {
    let space = ctx.space();
    let k = ctx.config().replication;
    let mut out = [(0u64, 0usize); 2];
    for side in Side::BOTH {
        let rel = query.relation(side);
        let attr = proto.index_attr(ctx, query, side);
        // Probe the base identifier (replica 0) — the canonical rewriter.
        let id = indexing::aindex_replica(space, rel, &attr, 0, k);
        out[side_slot(side)] = ctx.probe_arrival_stats(rel, &attr, id)?;
    }
    Ok((out[0], out[1]))
}

/// T1 tuple arrival at a rewriter (Sections 4.3.2 / 4.4.2 / 4.4.3): rewrite
/// every triggered query, reindex each group's rewritten queries at the
/// value level with one `Join` message per group. `dedup_reindex` enables
/// DAI-T's rewriter memory ("a rewriter does not need to reindex the same
/// rewritten query more than once", Section 4.4.3).
///
/// The ALQT groups are scanned in place — entries scoped to other replica
/// identifiers are skipped during iteration, and the filtering work counter
/// tallies exactly the entries addressed to this replica (matching or not
/// on `index_attr`), as before.
pub(crate) fn t1_tuple_arrival(
    ctx: &mut NodeCtx<'_>,
    tuple: &Arc<Tuple>,
    attr: &str,
    index_id: Id,
    dedup_reindex: bool,
) -> Result<()> {
    let rel = tuple.relation();
    let value_key = tuple.canonical_of(attr)?;
    let (st, mut fx) = ctx.split();
    st.record_arrival(rel, attr, value_key);
    // Split the node state: the group scan borrows the ALQT shared while
    // DAI-T's dedup memory is written through the disjoint `reindexed`.
    let NodeState {
        alqt, reindexed, ..
    } = st;
    let space = fx.space();
    let mut checks = 0u64;
    for (_group, stored) in alqt.groups(rel, attr) {
        let mut items: Vec<RewrittenQuery> = Vec::new();
        let mut target: Option<Id> = None;
        for sq in stored {
            if sq.index_id != index_id {
                continue;
            }
            checks += 1;
            if sq.index_attr != attr {
                continue;
            }
            let dis_side = sq.index_side.other();
            let dis_attr = sq
                .query
                .join_attr(dis_side)
                .ok_or_else(|| EngineError::Protocol {
                    detail: format!(
                        "stored query {} has no join attribute on its \
                             distributing side (corrupted ALQT entry?)",
                        sq.query.key()
                    ),
                })?;
            let Some(rq) = RewrittenQuery::rewrite_attribute(
                &sq.query,
                sq.index_side,
                &sq.index_attr,
                dis_attr,
                tuple,
            )?
            else {
                continue;
            };
            if dedup_reindex {
                if reindexed.contains(rq.key()) {
                    continue;
                }
                reindexed.insert(rq.key().to_string());
            }
            let id = indexing::vindex_attr(
                space,
                sq.query.relation(dis_side),
                dis_attr,
                rq.target().value(),
            );
            debug_assert!(target.is_none_or(|t| t == id), "group shares one evaluator");
            target = Some(id);
            items.push(rq);
        }
        if let (Some(id), false) = (target, items.is_empty()) {
            fx.push(Effect::Send {
                id,
                msg: Message::Join {
                    items,
                    index_id: id,
                },
            });
        }
    }
    if checks > 0 {
        let node = fx.node().index();
        fx.metrics().add_rewriter_filtering(node, checks);
    }
    Ok(())
}

/// Matches one rewritten query against the VLTT (Section 4.3.3) in place,
/// accumulating notifications. Returns a typed protocol violation when the
/// rewritten query carries a value target (those never travel in plain
/// `Join` messages).
pub(crate) fn match_against_vltt(
    fx: &mut EffectCtx<'_>,
    vltt: &Vltt,
    rq: &RewrittenQuery,
    matches: &mut Matches,
) -> Result<()> {
    let MatchTarget::Attribute { attr, value } = rq.target() else {
        return Err(fx.violation(format!(
            "rewritten query {} carries a value target; T1 evaluators match attribute targets only",
            rq.key()
        )));
    };
    let mut value_key = fx.take_scratch();
    value.canonical_into(&mut value_key);
    let node = fx.node().index();
    let before = matches.len();
    let mut candidates = 0u64;
    for e in vltt.candidates(rq.free_relation(), attr, &value_key) {
        candidates += 1;
        if rq.matches(&e.tuple)? {
            matches.add(rq, &e.tuple)?;
        }
    }
    fx.restore_scratch(value_key);
    fx.metrics().add_evaluator_filtering(node, candidates);
    let (tick, produced) = (fx.tick(), matches.len() - before);
    fx.trace(|| TraceEvent::JoinEval {
        tick,
        node: node as u32,
        candidates,
        matches: produced,
    });
    Ok(())
}

/// Matches an arriving value-level tuple against the VLQT (Section 4.3.4)
/// in place, returning the accumulated matches.
pub(crate) fn match_vlqt_candidates(
    fx: &mut EffectCtx<'_>,
    vlqt: &Vlqt,
    tuple: &Arc<Tuple>,
    attr: &str,
) -> Result<Matches> {
    let rel = tuple.relation();
    let value_key = tuple.canonical_of(attr)?;
    let node = fx.node().index();
    let mut matches = fx.new_matches();
    let mut candidates = 0u64;
    for e in vlqt.candidates(rel, attr, value_key) {
        candidates += 1;
        if e.rq.matches(tuple)? {
            matches.add(&e.rq, tuple)?;
        }
    }
    fx.metrics().add_evaluator_filtering(node, candidates);
    let (tick, produced) = (fx.tick(), matches.len());
    fx.trace(|| TraceEvent::JoinEval {
        tick,
        node: node as u32,
        candidates,
        matches: produced,
    });
    Ok(matches)
}

/// Stores a value-level tuple in the VLTT, mirroring it onto successors
/// when k-successor replication is on.
pub(crate) fn store_value_tuple(
    st: &mut NodeState,
    fx: &mut EffectCtx<'_>,
    entry: StoredTuple,
) -> Result<()> {
    let (tick, node) = (fx.tick(), fx.node().index() as u32);
    fx.trace(|| TraceEvent::IndexInsert {
        tick,
        node,
        table: "vltt",
        fresh: true, // the VLTT keeps every arrival (no dedup key)
    });
    if fx.repl_k() > 0 {
        st.vltt.insert(entry.clone())?;
        fx.push(Effect::Replicate {
            item: crate::replication::ReplicaItem::Tuple(entry),
        });
    } else {
        st.vltt.insert(entry)?;
    }
    Ok(())
}
