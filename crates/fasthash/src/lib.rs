//! Fx-style hashing for simulator-internal tables.
//!
//! The engine's two-level tables, subscriber maps and per-node stats are all
//! keyed by short strings or small integers that the simulator itself
//! produces — there is no untrusted input, so SipHash's DoS resistance (the
//! default `std::collections::HashMap` hasher) buys nothing and costs a
//! measurable fraction of every lookup. This crate provides the same
//! multiply-and-rotate hash used by `rustc-hash`/`FxHashMap` (the rustc
//! compiler's internal table hasher), hand-implemented because the build
//! environment is offline.
//!
//! Use [`FxHashMap`]/[`FxHashSet`] as drop-in replacements:
//!
//! ```
//! use cq_fasthash::FxHashMap;
//! let mut m: FxHashMap<String, u64> = FxHashMap::default();
//! m.insert("R.A".to_string(), 7);
//! assert_eq!(m.get("R.A"), Some(&7));
//! ```
//!
//! Determinism note: unlike `RandomState`, [`FxBuildHasher`] has no per-map
//! seed, so iteration order of equal-content maps is stable within a build.
//! The simulator must still not rely on map iteration order for its metric
//! vectors (it sorts or indexes explicitly) — but stability here removes a
//! whole class of accidental nondeterminism.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx hasher: `state = (state rotl 5 ^ word) * K` per word, with
/// Wang's golden-ratio constant `K`.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    state: u64,
}

const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            self.add_to_hash(u64::from_le_bytes(bytes[..8].try_into().unwrap()));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            self.add_to_hash(u64::from(u32::from_le_bytes(
                bytes[..4].try_into().unwrap(),
            )));
            bytes = &bytes[4..];
        }
        for &b in bytes {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// Zero-sized `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with the Fx hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with the Fx hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_of(&"R.AuthorId"), hash_of(&"R.AuthorId"));
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
    }

    #[test]
    fn distinguishes_close_keys() {
        assert_ne!(hash_of(&"R.A"), hash_of(&"R.B"));
        assert_ne!(hash_of(&("R", "A")), hash_of(&("RA", "")));
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<(String, String), usize> = FxHashMap::default();
        for i in 0..1000 {
            m.insert((format!("R{}", i % 7), format!("A{i}")), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&("R0".to_string(), "A0".to_string())), Some(&0));

        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..1000u64 {
            s.insert(i.wrapping_mul(0x9e3779b97f4a7c15));
        }
        assert_eq!(s.len(), 1000);
    }

    #[test]
    fn spread_is_reasonable() {
        // 4096 sequential integers into 16 buckets by the top nibble of the
        // hash: no bucket should be pathologically loaded.
        let mut buckets = [0usize; 16];
        for i in 0..4096u64 {
            buckets[(hash_of(&i) >> 60) as usize] += 1;
        }
        for &b in &buckets {
            assert!(b > 64 && b < 1024, "bucket count {b} far from uniform");
        }
    }
}
