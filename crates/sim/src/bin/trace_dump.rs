//! Converts binary trace files (`--trace-format binary`) back to the JSONL
//! the text tooling reads.
//!
//! ```text
//! trace_dump FILE...
//! ```
//!
//! Each input is a stream of length-prefixed `cq_engine::wire` frames, one
//! [`TraceEvent`] per frame; the decoded events are printed to stdout as
//! JSONL, in order, exactly as `--trace-format jsonl` would have written
//! them. Decoding errors (truncation, corruption, a version mismatch) abort
//! with a message naming the offending file and byte offset.
//!
//! [`TraceEvent`]: cq_engine::TraceEvent

use std::io::Write;

use cq_engine::wire;

fn main() {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: trace_dump FILE...");
        std::process::exit(2);
    }
    let stdout = std::io::stdout();
    let mut out = std::io::BufWriter::new(stdout.lock());
    let mut line = String::with_capacity(256);
    for file in &files {
        let bytes = std::fs::read(file).unwrap_or_else(|e| {
            eprintln!("cannot read {file}: {e}");
            std::process::exit(1);
        });
        let mut pos = 0usize;
        while pos < bytes.len() {
            let (ev, used) = wire::decode_trace_event(&bytes[pos..]).unwrap_or_else(|e| {
                eprintln!("{file}: bad frame at byte {pos}: {e}");
                std::process::exit(1);
            });
            pos += used;
            line.clear();
            ev.to_jsonl(&mut line);
            line.push('\n');
            out.write_all(line.as_bytes()).expect("write stdout");
        }
    }
    out.flush().expect("flush stdout");
}
