//! Micro-benchmarks of the allocation-sensitive hot paths: owner-only
//! routing vs path-collecting routing, the borrowed-key candidate lookups
//! of the value-level tables, and the end-to-end tuple insert they add up
//! to.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use cq_engine::tables::{StoredRewritten, StoredTuple, Vlqt, Vltt};
use cq_engine::{Algorithm, EngineConfig, Network};
use cq_overlay::{Id, IdSpace, Ring};
use cq_relational::{
    parse_query, Catalog, DataType, QueryKey, RelationSchema, RewrittenQuery, Side, Timestamp,
    Tuple, Value,
};

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(RelationSchema::of("R", &[("A", DataType::Int), ("B", DataType::Int)]).unwrap())
        .unwrap();
    c.register(RelationSchema::of("S", &[("C", DataType::Int), ("D", DataType::Int)]).unwrap())
        .unwrap();
    c
}

/// `route` allocates and returns the hop path; `route_owner` walks the same
/// fingers but only counts. The delta is the allocation overhead every
/// owner-only caller used to pay.
fn bench_route_vs_route_owner(c: &mut Criterion) {
    let ring = Ring::build(IdSpace::new(32), 1024, "bench-");
    let from = ring.alive_nodes().next().unwrap();
    let mut group = c.benchmark_group("hotpath/route");
    let mut i = 0u64;
    group.bench_function("route (path-collecting)", |b| {
        b.iter(|| {
            i = i.wrapping_add(0x9e3779b97f4a7c15);
            let target = ring.space().id(i);
            black_box(ring.route(from, target).unwrap().hops())
        })
    });
    let mut j = 0u64;
    group.bench_function("route_owner (allocation-free)", |b| {
        b.iter(|| {
            j = j.wrapping_add(0x9e3779b97f4a7c15);
            let target = ring.space().id(j);
            black_box(ring.route_owner(from, target).unwrap().1)
        })
    });
    group.finish();
}

fn stored_tuple(cat: &Catalog, a: i64, b: i64) -> StoredTuple {
    let tuple = Arc::new(
        Tuple::new(
            cat.get("R").unwrap().clone(),
            vec![Value::Int(a), Value::Int(b)],
            Timestamp(1),
            a as u64,
        )
        .unwrap(),
    );
    StoredTuple {
        index_id: Id(a as u64),
        attr: "B".to_string(),
        tuple,
    }
}

/// VLTT candidate lookup: the per-rewritten-query probe of `handle_join`.
/// Keys are borrowed `&str`s — no allocation per lookup.
fn bench_vltt_lookup(c: &mut Criterion) {
    let cat = catalog();
    let mut group = c.benchmark_group("hotpath/vltt-candidates");
    for &n in &[1_000usize, 10_000] {
        let mut vltt = Vltt::new();
        for i in 0..n as i64 {
            vltt.insert(stored_tuple(&cat, i, i % 64)).unwrap();
        }
        let mut i = 0i64;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                i += 1;
                let key = format!("i:{}", i % 64);
                black_box(vltt.candidates("R", "B", &key).count())
            })
        });
    }
    group.finish();
}

/// VLQT candidate lookup: the per-tuple probe of `handle_vl_tuple`.
fn bench_vlqt_lookup(c: &mut Criterion) {
    let cat = catalog();
    let query = Arc::new(
        parse_query("SELECT R.A, S.D FROM R, S WHERE R.B = S.C", &cat)
            .unwrap()
            .into_query(QueryKey::derive("bench", 0), "bench", Timestamp(0), &cat)
            .unwrap(),
    );
    let mut group = c.benchmark_group("hotpath/vlqt-candidates");
    for &n in &[1_000usize, 10_000] {
        let mut vlqt = Vlqt::new();
        for i in 0..n as i64 {
            let t = Tuple::new(
                cat.get("R").unwrap().clone(),
                vec![Value::Int(i), Value::Int(i % 64)],
                Timestamp(1),
                i as u64,
            )
            .unwrap();
            let rq = RewrittenQuery::rewrite_attribute(&query, Side::Left, "B", "C", &t)
                .unwrap()
                .unwrap();
            vlqt.insert(StoredRewritten {
                index_id: Id(i as u64),
                rq,
            })
            .unwrap();
        }
        let mut i = 0i64;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                i += 1;
                let key = format!("i:{}", i % 64);
                black_box(vlqt.candidates("S", "C", &key).count())
            })
        });
    }
    group.finish();
}

/// End-to-end tuple insertion — the operation the routing and table work
/// composes into; every figure sweep is dominated by this path.
fn bench_insert_e2e(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath/insert-e2e");
    for alg in [Algorithm::Sai, Algorithm::DaiT] {
        let mut net = Network::new(
            EngineConfig::new(alg).with_nodes(256).with_seed(7),
            catalog(),
        );
        let sql = "SELECT R.A, S.D FROM R, S WHERE R.B = S.C";
        for i in 0..50 {
            let poser = net.node_at(i % 256);
            net.pose_query_sql(poser, sql).unwrap();
        }
        let mut i = 0i64;
        group.bench_with_input(BenchmarkId::from_parameter(alg.name()), &alg, |b, _| {
            b.iter(|| {
                i += 1;
                let from = net.node_at((i as usize) % 256);
                let (rel, values) = if i % 2 == 0 {
                    ("R", vec![Value::Int(i), Value::Int(i % 32)])
                } else {
                    ("S", vec![Value::Int(i % 32), Value::Int(i)])
                };
                black_box(net.insert_tuple(from, rel, values).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_route_vs_route_owner, bench_vltt_lookup, bench_vlqt_lookup, bench_insert_e2e
}
criterion_main!(benches);
