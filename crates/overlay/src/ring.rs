//! The Chord ring: membership, ownership, joins, leaves, failures and
//! stabilization (the paper's Section 2.2).
//!
//! The whole overlay lives in one process: the [`Ring`] owns every node's
//! state and the routing functions walk real finger tables hop by hop, so
//! hop counts are those an actual deployment would pay.

use std::collections::BTreeMap;

use crate::error::{OverlayError, Result};
use crate::hash::hash_key;
use crate::id::{Id, IdSpace};
use crate::node::{Node, NodeHandle};

/// Default successor-list length (`r` in the paper; "in practice even small
/// values of r are enough to achieve robustness").
pub const DEFAULT_SUCCESSOR_LIST_LEN: usize = 4;

/// A simulated Chord overlay network.
#[derive(Clone, Debug)]
pub struct Ring {
    space: IdSpace,
    succ_len: usize,
    slots: Vec<Node>,
    /// Alive nodes ordered by identifier — the ground truth used to verify
    /// routing and to implement perfect pointer construction.
    by_id: BTreeMap<u64, NodeHandle>,
}

impl Ring {
    /// Creates an empty ring over the given identifier space.
    pub fn new(space: IdSpace) -> Self {
        Ring::with_successor_list(space, DEFAULT_SUCCESSOR_LIST_LEN)
    }

    /// Creates an empty ring with an explicit successor-list length `r`.
    pub fn with_successor_list(space: IdSpace, succ_len: usize) -> Self {
        assert!(succ_len >= 1, "successor list must hold at least one entry");
        Ring {
            space,
            succ_len,
            slots: Vec::new(),
            by_id: BTreeMap::new(),
        }
    }

    /// Builds a stable `n`-node network with keys `"{key_prefix}{i}"` and
    /// fully correct successor/predecessor/finger pointers — the steady state
    /// the paper's experiments assume.
    pub fn build(space: IdSpace, n: usize, key_prefix: &str) -> Self {
        let mut ring = Ring::new(space);
        let mut added = 0usize;
        let mut attempt = 0usize;
        while added < n {
            let key = format!("{key_prefix}{attempt}");
            attempt += 1;
            if ring.insert_node(&key).is_ok() {
                added += 1;
            }
        }
        ring.rebuild_pointers();
        ring
    }

    /// The identifier space of this ring.
    #[inline]
    pub fn space(&self) -> IdSpace {
        self.space
    }

    /// Number of alive nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    /// Whether the ring has no alive nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }

    /// Total number of slots ever allocated (alive + departed).
    #[inline]
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Immutable access to a node's state.
    #[inline]
    pub fn node(&self, h: NodeHandle) -> &Node {
        &self.slots[h.index()]
    }

    /// Iterates over the handles of all alive nodes in identifier order.
    pub fn alive_nodes(&self) -> impl Iterator<Item = NodeHandle> + '_ {
        self.by_id.values().copied()
    }

    /// Identifier of a node.
    #[inline]
    pub fn id_of(&self, h: NodeHandle) -> Id {
        self.slots[h.index()].id
    }

    /// Ground truth: the alive node responsible for `id`
    /// (`successor(id)` in the paper's terminology).
    pub fn owner_of(&self, id: Id) -> Result<NodeHandle> {
        if self.by_id.is_empty() {
            return Err(OverlayError::EmptyRing);
        }
        // first alive node with identifier >= id, wrapping around
        let h = self
            .by_id
            .range(id.0..)
            .next()
            .or_else(|| self.by_id.iter().next())
            .map(|(_, &h)| h)
            .expect("non-empty map");
        Ok(h)
    }

    /// The range `(pred, id]` a node is responsible for, as ground truth.
    pub fn owned_range(&self, h: NodeHandle) -> Result<(Id, Id)> {
        let node = self.node(h);
        if !node.alive {
            return Err(OverlayError::NodeNotAlive);
        }
        let id = node.id;
        let pred = self
            .by_id
            .range(..id.0)
            .next_back()
            .or_else(|| self.by_id.iter().next_back())
            .map(|(&i, _)| Id(i))
            .expect("alive node implies non-empty map");
        Ok((pred, id))
    }

    /// Whether `h` is (per ground truth) responsible for identifier `id`.
    pub fn owns(&self, h: NodeHandle, id: Id) -> bool {
        match self.owner_of(id) {
            Ok(owner) => owner == h,
            Err(_) => false,
        }
    }

    /// Inserts a brand-new node with the given key and *no* pointers set.
    /// Used by [`Ring::build`] and by [`Ring::join`].
    pub fn insert_node(&mut self, key: &str) -> Result<NodeHandle> {
        let id = hash_key(self.space, key);
        if let Some(&existing) = self.by_id.get(&id.0) {
            return Err(OverlayError::IdCollision {
                id,
                existing_key: self.node(existing).key.clone(),
                new_key: key.to_string(),
            });
        }
        let h = NodeHandle(self.slots.len() as u32);
        self.slots
            .push(Node::new(key.to_string(), id, self.space.bits()));
        self.by_id.insert(id.0, h);
        Ok(h)
    }

    /// Recomputes every alive node's successor list, predecessor and finger
    /// table from ground truth ("perfect" pointers).
    pub fn rebuild_pointers(&mut self) {
        let handles: Vec<NodeHandle> = self.by_id.values().copied().collect();
        if handles.is_empty() {
            return;
        }
        let m = self.space.bits();
        for &h in &handles {
            let id = self.id_of(h);
            let succs = self.true_successor_list(id);
            let pred = self.true_predecessor(id);
            let mut fingers = Vec::with_capacity(m as usize);
            for j in 1..=m {
                let start = self.space.finger_start(id, j);
                fingers.push(self.owner_of(start).ok());
            }
            let node = &mut self.slots[h.index()];
            node.successors = succs;
            node.predecessor = Some(pred);
            node.fingers = fingers;
        }
    }

    fn true_successor_list(&self, id: Id) -> Vec<NodeHandle> {
        let mut out = Vec::with_capacity(self.succ_len);
        let mut cur = self.space.add(id, 1);
        for _ in 0..self.succ_len.min(self.by_id.len()) {
            let h = self.owner_of(cur).expect("non-empty ring");
            out.push(h);
            cur = self.space.add(self.id_of(h), 1);
        }
        out
    }

    fn true_predecessor(&self, id: Id) -> NodeHandle {
        self.by_id
            .range(..id.0)
            .next_back()
            .or_else(|| self.by_id.iter().next_back())
            .map(|(_, &h)| h)
            .expect("non-empty ring")
    }

    /// A node joins the ring through `via` (the out-of-band contact node of
    /// Section 2.2): only its successor pointer is discovered (by routing a
    /// lookup through `via`); stabilization must propagate the rest.
    ///
    /// Returns the new handle and the number of overlay hops the join lookup
    /// consumed.
    pub fn join(&mut self, key: &str, via: NodeHandle) -> Result<(NodeHandle, usize)> {
        if !self.node(via).alive {
            return Err(OverlayError::NodeNotAlive);
        }
        let id = hash_key(self.space, key);
        // Route before inserting, so the lookup sees the pre-join ring.
        let route = self.route(via, id)?;
        let succ = route.owner;
        let hops = route.hops();
        if let Some(&existing) = self.by_id.get(&id.0) {
            return Err(OverlayError::IdCollision {
                id,
                existing_key: self.node(existing).key.clone(),
                new_key: key.to_string(),
            });
        }
        let h = NodeHandle(self.slots.len() as u32);
        let mut node = Node::new(key.to_string(), id, self.space.bits());
        node.successors = vec![succ];
        self.slots.push(node);
        self.by_id.insert(id.0, h);
        Ok((h, hops))
    }

    /// A previously departed node rejoins with its old key (and therefore its
    /// old identifier) — the Section 4.6 reconnection scenario.
    pub fn rejoin(&mut self, h: NodeHandle, via: NodeHandle) -> Result<usize> {
        if self.node(h).alive {
            return Err(OverlayError::NodeAlreadyAlive);
        }
        if !self.node(via).alive {
            return Err(OverlayError::NodeNotAlive);
        }
        let id = self.id_of(h);
        let route = self.route(via, id)?;
        let succ = route.owner;
        let hops = route.hops();
        debug_assert!(!self.by_id.contains_key(&id.0), "slot ids are unique");
        let node = &mut self.slots[h.index()];
        node.alive = true;
        node.successors = vec![succ];
        node.predecessor = None;
        node.fingers.iter_mut().for_each(|f| *f = None);
        self.by_id.insert(id.0, h);
        Ok(hops)
    }

    /// Voluntary departure: the node informs its successor and predecessor so
    /// they can splice it out immediately (Section 2.2). The caller is
    /// responsible for transferring the node's keys to its successor first
    /// (see [`Ring::owner_of`] after the call, or capture the successor with
    /// [`Node::successor`] before it).
    pub fn leave(&mut self, h: NodeHandle) -> Result<()> {
        if !self.node(h).alive {
            return Err(OverlayError::NodeNotAlive);
        }
        let id = self.id_of(h);
        self.by_id.remove(&id.0);
        let succ = self.first_alive_successor(h);
        let pred = self.node(h).predecessor.filter(|&p| self.node(p).alive);
        if let (Some(s), Some(p)) = (succ, pred) {
            if s != h && p != h {
                // predecessor adopts our successor; successor adopts our predecessor
                let pn = &mut self.slots[p.index()];
                if pn.successors.first() == Some(&h) {
                    pn.successors[0] = s;
                } else {
                    pn.successors.insert(0, s);
                    pn.successors.truncate(self.succ_len);
                }
                let sn = &mut self.slots[s.index()];
                if sn.predecessor == Some(h) {
                    sn.predecessor = Some(p);
                }
            }
        }
        self.slots[h.index()].alive = false;
        Ok(())
    }

    /// Abrupt failure: the node vanishes without telling anyone. Pointers at
    /// other nodes keep referring to it until stabilization repairs them.
    pub fn fail(&mut self, h: NodeHandle) -> Result<()> {
        if !self.node(h).alive {
            return Err(OverlayError::NodeNotAlive);
        }
        let id = self.id_of(h);
        self.by_id.remove(&id.0);
        self.slots[h.index()].alive = false;
        Ok(())
    }

    /// First alive entry of `h`'s successor list, skipping failed nodes —
    /// how Chord survives successor failures.
    pub fn first_alive_successor(&self, h: NodeHandle) -> Option<NodeHandle> {
        self.node(h)
            .successor_list()
            .iter()
            .copied()
            .find(|&s| self.node(s).alive)
    }

    /// The `k` first alive successors of `h` clockwise around the ring
    /// (ground truth, excluding `h` itself) — the replica set a node's state
    /// is mirrored onto. Returns fewer than `k` handles when fewer other
    /// nodes are alive. `h` itself may be alive or departed: a departed
    /// node's successors are the nodes that now cover its old range.
    pub fn successors_of(&self, h: NodeHandle, k: usize) -> Vec<NodeHandle> {
        let mut out = Vec::with_capacity(k);
        if k == 0 || self.by_id.is_empty() {
            return out;
        }
        let id = self.id_of(h);
        for (_, &s) in self
            .by_id
            .range(id.0 + 1..)
            .chain(self.by_id.range(..=id.0))
        {
            if s == h {
                continue;
            }
            out.push(s);
            if out.len() == k {
                break;
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Stabilization (Section 2.2): periodic algorithms every node runs.
    // ------------------------------------------------------------------

    /// One `stabilize()` round for node `h`: ask the successor for its
    /// predecessor, adopt it if it sits between us, notify the successor,
    /// and refresh the successor list from the successor's list.
    pub fn stabilize(&mut self, h: NodeHandle) {
        if !self.node(h).alive {
            return;
        }
        if self.first_alive_successor(h).is_none() {
            // The whole successor list died at once (more than `r` adjacent
            // failures). Fall back to the closest alive node we still know
            // of — fingers or predecessor; if nothing is alive we must be
            // alone and point at ourselves, as Chord's single node does.
            match self.emergency_successor(h) {
                Some(s) => self.slots[h.index()].successors = vec![s],
                None => {
                    let node = &mut self.slots[h.index()];
                    node.successors = vec![h];
                    node.predecessor = Some(h);
                    return;
                }
            }
        }
        let Some(succ) = self.first_alive_successor(h) else {
            return;
        };
        let id = self.id_of(h);
        // Adopt a recently joined node sitting between us and our successor.
        let mut new_succ = succ;
        if let Some(sp) = self.node(succ).predecessor {
            if self.node(sp).alive && sp != h {
                let sp_id = self.id_of(sp);
                if self.space.in_open(sp_id, id, self.id_of(succ)) {
                    new_succ = sp;
                }
            }
        }
        // Refresh our successor list: new_succ followed by its list.
        let mut list = Vec::with_capacity(self.succ_len);
        list.push(new_succ);
        for &s in self.node(new_succ).successor_list() {
            if list.len() >= self.succ_len {
                break;
            }
            if s != h && self.node(s).alive && !list.contains(&s) {
                list.push(s);
            }
        }
        self.slots[h.index()].successors = list;
        // notify(new_succ): "h might be your predecessor"
        let ns_id = self.id_of(new_succ);
        let adopt = match self.node(new_succ).predecessor {
            Some(p) if self.node(p).alive => self.space.in_open(id, self.id_of(p), ns_id),
            _ => true,
        };
        if adopt && new_succ != h {
            self.slots[new_succ.index()].predecessor = Some(h);
        }
    }

    /// One `fix_fingers()` step for node `h`: refresh the next finger entry
    /// (round-robin), using greedy routing through the current ring state.
    pub fn fix_finger(&mut self, h: NodeHandle) {
        if !self.node(h).alive {
            return;
        }
        let m = self.space.bits();
        let j = (self.node(h).next_finger % m) + 1; // 1-based finger index
        self.slots[h.index()].next_finger = j % m;
        let start = self.space.finger_start(self.id_of(h), j);
        if let Ok(route) = self.route(h, start) {
            self.slots[h.index()].fingers[(j - 1) as usize] = Some(route.owner);
        }
    }

    /// The closest alive node clockwise from `h` among everything `h` still
    /// knows (fingers and predecessor), used when the successor list is
    /// entirely dead.
    fn emergency_successor(&self, h: NodeHandle) -> Option<NodeHandle> {
        let id = self.id_of(h);
        let node = self.node(h);
        let mut best: Option<(u64, NodeHandle)> = None;
        let candidates = node
            .fingers
            .iter()
            .flatten()
            .copied()
            .chain(node.predecessor);
        for cand in candidates {
            if cand == h || !self.node(cand).alive {
                continue;
            }
            let d = self.space.distance(id, self.id_of(cand));
            if best.is_none_or(|(bd, _)| d < bd) {
                best = Some((d, cand));
            }
        }
        best.map(|(_, n)| n)
    }

    /// `check_predecessor()`: clear the predecessor pointer if it has failed.
    pub fn check_predecessor(&mut self, h: NodeHandle) {
        if !self.node(h).alive {
            return;
        }
        if let Some(p) = self.node(h).predecessor {
            if !self.node(p).alive {
                self.slots[h.index()].predecessor = None;
            }
        }
    }

    /// Runs `rounds` full stabilization sweeps over every alive node
    /// (stabilize + check_predecessor + a full finger refresh).
    pub fn stabilize_all(&mut self, rounds: usize) {
        let m = self.space.bits();
        for _ in 0..rounds {
            let handles: Vec<NodeHandle> = self.alive_nodes().collect();
            for &h in &handles {
                self.check_predecessor(h);
                self.stabilize(h);
            }
            for &h in &handles {
                for _ in 0..m {
                    self.fix_finger(h);
                }
            }
        }
    }
}

/// The hop-by-hop path a routed message takes. `path[0]` is the sender;
/// the final element is the responsible node (`successor(target)`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Route {
    /// Every node the message visited, starting at the sender.
    pub path: Vec<NodeHandle>,
    /// The node responsible for the target identifier.
    pub owner: NodeHandle,
}

impl Route {
    /// Number of overlay hops consumed (edges traversed).
    #[inline]
    pub fn hops(&self) -> usize {
        self.path.len().saturating_sub(1)
    }
}

impl Ring {
    /// Greedy Chord routing of the paper's `send(msg, I)`: walk finger tables
    /// from `from` until the node responsible for `target` is reached.
    /// Returns the full hop path so callers can account traffic.
    ///
    /// This is the path-materializing variant (used by tests and anything
    /// that inspects intermediate hops). The simulator's message loop only
    /// needs the destination and the hop count — use [`Ring::route_owner`]
    /// there, which walks the identical greedy path without allocating.
    pub fn route(&self, from: NodeHandle, target: Id) -> Result<Route> {
        let mut path = Vec::with_capacity(8);
        let (owner, _hops) = self.route_core(from, target, |h| path.push(h))?;
        Ok(Route { path, owner })
    }

    /// Allocation-free fast path of [`Ring::route`]: returns the node
    /// responsible for `target` and the number of overlay hops the greedy
    /// walk consumed, without materializing the path.
    ///
    /// Guaranteed to visit exactly the same nodes as `route` (both are thin
    /// wrappers over one walk), so hop accounting is bit-identical whichever
    /// variant a caller uses.
    #[inline]
    pub fn route_owner(&self, from: NodeHandle, target: Id) -> Result<(NodeHandle, usize)> {
        self.route_core(from, target, |_| ())
    }

    /// [`Ring::route`] for trace capture: appends each visited node's slot
    /// to `path` (sender first) instead of materializing an intermediate
    /// handle vector. Same greedy walk, bit-identical hop accounting.
    pub fn route_owner_path(
        &self,
        from: NodeHandle,
        target: Id,
        path: &mut Vec<u32>,
    ) -> Result<(NodeHandle, usize)> {
        self.route_core(from, target, |h| path.push(h.index() as u32))
    }

    /// The greedy walk shared by [`Ring::route`] and [`Ring::route_owner`].
    /// `visit` observes every node on the path, starting with `from`;
    /// returns the owner and the hop count (nodes visited minus one).
    fn route_core<F: FnMut(NodeHandle)>(
        &self,
        from: NodeHandle,
        target: Id,
        mut visit: F,
    ) -> Result<(NodeHandle, usize)> {
        if !self.node(from).alive {
            return Err(OverlayError::NodeNotAlive);
        }
        let mut cur = from;
        let mut hops = 0usize;
        visit(from);
        // A node knows its own range: deliver locally when we own the target.
        if self.local_owner_check(cur, target) {
            return Ok((cur, hops));
        }
        let max_hops = 4 * self.space.bits() as usize + self.by_id.len() + 8;
        loop {
            if hops + 1 > max_hops {
                return Err(OverlayError::RoutingFailed {
                    target,
                    hops: hops + 1,
                });
            }
            let Some(succ) = self.first_alive_successor(cur) else {
                return Err(OverlayError::RoutingFailed {
                    target,
                    hops: hops + 1,
                });
            };
            let cur_id = self.id_of(cur);
            if self.space.in_open_closed(target, cur_id, self.id_of(succ)) {
                visit(succ);
                return Ok((succ, hops + 1));
            }
            let next = self.closest_preceding_alive(cur, target).unwrap_or(succ);
            if next == cur {
                // no progress through fingers; fall back to the successor
                cur = succ;
            } else {
                cur = next;
            }
            visit(cur);
            hops += 1;
            // The forwarding node may itself be responsible (paper: "if
            // id(x) >= I then x processes msg").
            if self.local_owner_check(cur, target) {
                return Ok((cur, hops));
            }
        }
    }

    /// Whether `h` can tell from its own predecessor pointer that it is
    /// responsible for `target`.
    fn local_owner_check(&self, h: NodeHandle, target: Id) -> bool {
        match self.node(h).predecessor {
            Some(p) if self.node(p).alive => {
                self.space
                    .in_open_closed(target, self.id_of(p), self.id_of(h))
            }
            _ => self.by_id.len() == 1,
        }
    }

    /// Chord's `closest_preceding_finger`: the highest finger (or successor-
    /// list entry) that is alive and lies strictly between `h` and `target`.
    fn closest_preceding_alive(&self, h: NodeHandle, target: Id) -> Option<NodeHandle> {
        let id = self.id_of(h);
        let node = self.node(h);
        let mut best: Option<(u64, NodeHandle)> = None;
        let mut consider = |cand: NodeHandle, ring: &Ring| {
            if !ring.node(cand).alive {
                return;
            }
            let cid = ring.id_of(cand);
            if ring.space.in_open(cid, id, target) {
                let d = ring.space.distance(cid, target);
                if best.is_none_or(|(bd, _)| d < bd) {
                    best = Some((d, cand));
                }
            }
        };
        for f in node.fingers.iter().flatten() {
            consider(*f, self);
        }
        for s in node.successor_list() {
            consider(*s, self);
        }
        best.map(|(_, h)| h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_ring(n: usize) -> Ring {
        Ring::build(IdSpace::new(16), n, "node-")
    }

    #[test]
    fn build_creates_n_alive_nodes() {
        let ring = small_ring(50);
        assert_eq!(ring.len(), 50);
        assert_eq!(ring.alive_nodes().count(), 50);
    }

    #[test]
    fn owner_is_first_clockwise() {
        let ring = small_ring(20);
        let handles: Vec<_> = ring.alive_nodes().collect();
        for w in handles.windows(2) {
            let (a, b) = (w[0], w[1]);
            let mid = Id((ring.id_of(a).0 + ring.id_of(b).0) / 2 + 1);
            if mid != ring.id_of(a) {
                assert_eq!(ring.owner_of(mid).unwrap(), b);
            }
        }
    }

    #[test]
    fn owner_wraps_around() {
        let ring = small_ring(20);
        let first = ring.alive_nodes().next().unwrap();
        let last = ring.alive_nodes().last().unwrap();
        let behind_last = ring.space().add(ring.id_of(last), 1);
        assert_eq!(ring.owner_of(behind_last).unwrap(), first);
    }

    #[test]
    fn owned_range_covers_ring_exactly_once() {
        let ring = small_ring(13);
        let mut total = 0u64;
        for h in ring.alive_nodes() {
            let (pred, id) = ring.owned_range(h).unwrap();
            total += ring.space().distance(pred, id);
        }
        assert_eq!(total, ring.space().size());
    }

    #[test]
    fn perfect_fingers_match_definition() {
        let ring = small_ring(40);
        for h in ring.alive_nodes() {
            let node = ring.node(h);
            for j in 1..=ring.space().bits() {
                let start = ring.space().finger_start(node.id(), j);
                let expect = ring.owner_of(start).unwrap();
                assert_eq!(node.fingers()[(j - 1) as usize], Some(expect));
            }
        }
    }

    #[test]
    fn routing_reaches_true_owner_from_everywhere() {
        let ring = small_ring(64);
        let targets: Vec<Id> = (0..50)
            .map(|i| Id(i * 1301 % ring.space().size()))
            .collect();
        for from in ring.alive_nodes().take(8) {
            for &t in &targets {
                let route = ring.route(from, t).unwrap();
                assert_eq!(route.owner, ring.owner_of(t).unwrap());
            }
        }
    }

    #[test]
    fn routing_is_logarithmic() {
        let ring = Ring::build(IdSpace::new(24), 512, "n");
        let from = ring.alive_nodes().next().unwrap();
        let mut max_hops = 0;
        for i in 0..200 {
            let t = Id(i * 57_731 % ring.space().size());
            let r = ring.route(from, t).unwrap();
            max_hops = max_hops.max(r.hops());
        }
        // O(log N) with high probability; log2(512) = 9, allow slack.
        assert!(max_hops <= 2 * 9 + 2, "max hops {max_hops} not logarithmic");
    }

    #[test]
    fn self_owned_target_routes_locally() {
        let ring = small_ring(10);
        let h = ring.alive_nodes().next().unwrap();
        let route = ring.route(h, ring.id_of(h)).unwrap();
        assert_eq!(route.owner, h);
        assert_eq!(route.hops(), 0);
    }

    #[test]
    fn voluntary_leave_moves_ownership_to_successor() {
        let mut ring = small_ring(30);
        let victim = ring.alive_nodes().nth(7).unwrap();
        let id = ring.id_of(victim);
        let succ = ring.first_alive_successor(victim).unwrap();
        ring.leave(victim).unwrap();
        assert_eq!(ring.owner_of(id).unwrap(), succ);
        assert_eq!(ring.len(), 29);
        // routing still works
        let from = ring.alive_nodes().next().unwrap();
        let r = ring.route(from, id).unwrap();
        assert_eq!(r.owner, succ);
    }

    #[test]
    fn failure_is_survived_via_successor_lists() {
        let mut ring = small_ring(30);
        let victim = ring.alive_nodes().nth(11).unwrap();
        let id = ring.id_of(victim);
        ring.fail(victim).unwrap();
        // No stabilization yet: routing must still converge by skipping the
        // dead node through successor lists.
        let from = ring.alive_nodes().next().unwrap();
        let r = ring.route(from, id).unwrap();
        assert_eq!(r.owner, ring.owner_of(id).unwrap());
    }

    #[test]
    fn join_then_stabilize_integrates_node() {
        let mut ring = small_ring(20);
        let via = ring.alive_nodes().next().unwrap();
        let (h, hops) = ring.join("late-joiner-xyz", via).unwrap();
        assert!(hops <= 20);
        assert_eq!(ring.len(), 21);
        ring.stabilize_all(3);
        // the new node's pointers now agree with ground truth
        let (pred, _) = ring.owned_range(h).unwrap();
        assert_eq!(
            ring.node(h).predecessor(),
            Some(ring.owner_of(pred).unwrap())
        );
        let from = ring.alive_nodes().next().unwrap();
        let r = ring.route(from, ring.id_of(h)).unwrap();
        assert_eq!(r.owner, h);
    }

    #[test]
    fn rejoin_restores_same_identifier() {
        let mut ring = small_ring(15);
        let victim = ring.alive_nodes().nth(4).unwrap();
        let id = ring.id_of(victim);
        ring.leave(victim).unwrap();
        let via = ring.alive_nodes().next().unwrap();
        ring.rejoin(victim, via).unwrap();
        ring.stabilize_all(3);
        assert_eq!(ring.id_of(victim), id);
        assert!(ring.owns(victim, id));
    }

    #[test]
    fn stabilization_repairs_mass_failure() {
        let mut ring = Ring::build(IdSpace::new(20), 100, "n");
        let victims: Vec<_> = ring.alive_nodes().step_by(10).collect();
        for v in victims {
            ring.fail(v).unwrap();
        }
        ring.stabilize_all(4);
        // After repair, every node's successor pointer matches ground truth.
        for h in ring.alive_nodes().collect::<Vec<_>>() {
            let succ = ring.first_alive_successor(h).unwrap();
            let expect = ring.owner_of(ring.space().add(ring.id_of(h), 1)).unwrap();
            assert_eq!(succ, expect, "successor pointer not repaired");
        }
    }

    #[test]
    fn successors_of_walks_clockwise_and_skips_dead_nodes() {
        let mut ring = small_ring(12);
        let handles: Vec<_> = ring.alive_nodes().collect();
        let h = handles[3];
        assert_eq!(ring.successors_of(h, 0), vec![]);
        assert_eq!(ring.successors_of(h, 2), vec![handles[4], handles[5]]);
        // a dead successor is skipped
        ring.fail(handles[4]).unwrap();
        assert_eq!(ring.successors_of(h, 2), vec![handles[5], handles[6]]);
        // the failed node's own successors cover its old range
        assert_eq!(ring.successors_of(handles[4], 1), vec![handles[5]]);
        // wrap-around at the end of the ring, never including h itself
        let last = *handles.last().unwrap();
        let succs = ring.successors_of(last, 3);
        assert_eq!(succs[0], handles[0]);
        assert!(!succs.contains(&last));
        // k larger than the ring returns everyone else once
        assert_eq!(ring.successors_of(h, 100).len(), ring.len() - 1);
    }

    #[test]
    fn collision_is_reported() {
        let mut ring = Ring::new(IdSpace::new(16));
        ring.insert_node("a").unwrap();
        let err = ring.insert_node("a").unwrap_err();
        assert!(matches!(err, OverlayError::IdCollision { .. }));
    }
}
