//! The paper's motivating e-learning scenario (Section 3.2): an EDUTELLA-
//! style network where research papers are published as tuples and users
//! subscribe to author alerts — including the Section 4.6 offline story:
//! a subscriber disconnects, misses a publication, and receives the stored
//! notification when it reconnects.
//!
//! ```text
//! cargo run --release --example citation_alerts
//! ```

use cq_engine::{Algorithm, EngineConfig, Network};
use cq_relational::{Catalog, DataType, RelationSchema, Value};

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(
        RelationSchema::of(
            "Document",
            &[
                ("Id", DataType::Int),
                ("Title", DataType::Str),
                ("Conference", DataType::Str),
                ("AuthorId", DataType::Int),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    c.register(
        RelationSchema::of(
            "Authors",
            &[
                ("Id", DataType::Int),
                ("Name", DataType::Str),
                ("Surname", DataType::Str),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    c
}

fn main() {
    let mut net = Network::new(EngineConfig::new(Algorithm::Sai).with_nodes(100), catalog());

    // "Notify me whenever author Smith publishes a new paper" — the paper's
    // example query, verbatim.
    let alice = net.node_at(3);
    net.pose_query_sql(
        alice,
        "SELECT D.Title, D.Conference FROM Document AS D, Authors AS A \
         WHERE D.AuthorId = A.Id AND A.Surname = 'Smith'",
    )
    .unwrap();

    // Author registry entries arrive from some digital-library node.
    let library = net.node_at(41);
    net.insert_tuple(
        library,
        "Authors",
        vec![Value::Int(17), "John".into(), "Smith".into()],
    )
    .unwrap();
    net.insert_tuple(
        library,
        "Authors",
        vec![Value::Int(18), "Ada".into(), "Jones".into()],
    )
    .unwrap();

    // Papers are published as they appear.
    net.insert_tuple(
        library,
        "Document",
        vec![
            Value::Int(1),
            "P2P Joins".into(),
            "ICDE".into(),
            Value::Int(17),
        ],
    )
    .unwrap();
    net.insert_tuple(
        library,
        "Document",
        vec![
            Value::Int(2),
            "Unrelated".into(),
            "VLDB".into(),
            Value::Int(18),
        ],
    )
    .unwrap();

    println!("alice's alerts while online:");
    for n in net.inbox(alice) {
        println!("  {n}");
    }
    assert_eq!(net.inbox(alice).len(), 1, "only the Smith paper matches");

    // Alice disconnects; a new Smith paper appears meanwhile.
    net.node_leave(alice).unwrap();
    net.stabilize(2).unwrap();
    net.insert_tuple(
        library,
        "Document",
        vec![
            Value::Int(3),
            "Continuous Queries".into(),
            "ICDE".into(),
            Value::Int(17),
        ],
    )
    .unwrap();
    let held: usize = net
        .ring()
        .alive_nodes()
        .map(|h| net.node_state(h).offline_store.len())
        .sum();
    println!("alice offline — {held} notification(s) stored at her key's successor");

    // On reconnection she receives everything related to Id(alice).
    net.node_rejoin(alice).unwrap();
    println!("alice's alerts after reconnecting:");
    for n in net.inbox(alice) {
        println!("  {n}");
    }
    assert_eq!(
        net.inbox(alice).len(),
        2,
        "the missed alert was delivered on rejoin"
    );
}
