#!/usr/bin/env bash
# Captures a perf snapshot of the quick experiment suite, the
# join-evaluation kernels, and the socket hot path, writing BENCH_10.json
# at the repo root so future PRs have a trajectory to compare against.
#
#   scripts/bench_snapshot.sh            full snapshot -> BENCH_10.json
#   scripts/bench_snapshot.sh --check    CI smoke mode: one quick-suite run,
#                                        shrunk kernel audit and throughput
#                                        bench, output to a temp file (the
#                                        committed snapshot is not touched),
#                                        plus every gate below
#
# The snapshot records wall times (min over N runs — min, not mean, because
# a shared box only adds noise upward), kernel events/sec, heap allocations
# per event from the counting-allocator build, and loopback throughput at
# three payload sizes through the real TCP reactor.
#
# Gates enforced in both modes:
#   - scan-kernel allocations stay flat in the table size (slope < 0.5)
#   - the ALQT group scan is allocation-free (< 0.01 allocs/event)
#   - the socket pump is allocation-free in steady state (< 0.01
#     allocs/frame: encode-in-place write, vectored flush, pooled read)
#   - the throughput bench covers >= 3 payload sizes, every size moves
#     messages, coalesces > 1 frame per vectored flush on average, and
#     recycles inbox buffers at a >= 90% pool hit rate
set -euo pipefail
cd "$(dirname "$0")/.."

mode=full
for arg in "$@"; do
  case "$arg" in
    --check) mode=check ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

out=BENCH_10.json
runs=3
audit_args=()
socket_args=()
if [[ $mode == check ]]; then
  out=$(mktemp --suffix=.json)
  runs=1
  audit_args=(--quick)
  socket_args=(--quick)
fi

cargo build --release -p cq-sim --bin experiments
cargo build --release -p cq-bench --features count-allocs --bin alloc_audit
cargo build --release -p cq-bench --bin socket_bench

best=
for ((i = 0; i < runs; i++)); do
  t0=$(date +%s%N)
  target/release/experiments --csv > /dev/null
  t1=$(date +%s%N)
  ms=$(( (t1 - t0) / 1000000 ))
  echo "quick suite run $((i + 1))/$runs: ${ms} ms" >&2
  if [[ -z $best || $ms -lt $best ]]; then best=$ms; fi
done

audit=$(target/release/alloc_audit "${audit_args[@]}")
socket=$(target/release/socket_bench "${socket_args[@]}")

jq -n \
  --argjson wall "$best" \
  --argjson runs "$runs" \
  --argjson audit "$audit" \
  --argjson socket "$socket" \
  '{
    snapshot: "BENCH_10",
    baseline: {
      quick_suite_wall_ms: 4230,
      note: "main before PR 6 (zero-clone kernels + batched delivery), same box; PR 10 adds the socket hot-path snapshot"
    },
    quick_suite: { wall_ms_min: $wall, runs: $runs },
    alloc_audit: $audit,
    socket_bench: $socket
  }' > "$out"

echo "wrote $out (quick suite min ${best} ms over ${runs} run(s))" >&2

# Zero-clone guarantee: per-event allocations of the scan kernels must be
# flat in the table size (slope < 0.5 allocs/event between the small and
# large size), and the ALQT group scan must be allocation-free.
jq -e '
  .alloc_audit.count_allocs == false or (
    [ .alloc_audit.kernels
      | group_by(.kernel)[]
      | select(.[0].kernel | test("-scan$"))
      | (max_by(.size).allocs_per_event - min_by(.size).allocs_per_event)
    ] | all(. < 0.5)
  )
' "$out" > /dev/null || { echo "FAIL: scan-kernel allocations grow with table size" >&2; exit 1; }
jq -e '
  .alloc_audit.count_allocs == false or (
    [ .alloc_audit.kernels[] | select(.kernel == "alqt-scan") | .allocs_per_event ]
    | all(. < 0.01)
  )
' "$out" > /dev/null || { echo "FAIL: alqt-scan is not allocation-free" >&2; exit 1; }

# Zero-copy socket guarantee: the loopback frame pump (encode in place,
# vectored flush, pooled read, recycle) must be allocation-free per frame.
jq -e '
  .alloc_audit.count_allocs == false or (
    [ .alloc_audit.kernels[] | select(.kernel == "socket-pump") | .allocs_per_event ]
    | (length > 0 and all(. < 0.01))
  )
' "$out" > /dev/null || { echo "FAIL: socket-pump allocates per frame" >&2; exit 1; }

# Throughput-bench structure: >= 3 payload sizes, every size moves
# messages, coalesces > 1 frame per flush, and recycles pool buffers.
jq -e '
  .socket_bench.payloads | length >= 3
' "$out" > /dev/null || { echo "FAIL: socket_bench must cover >= 3 payload sizes" >&2; exit 1; }
jq -e '
  [ .socket_bench.payloads[] | .msgs_per_sec > 0 and .wire_bytes > 0 ] | all
' "$out" > /dev/null || { echo "FAIL: a payload size moved no traffic" >&2; exit 1; }
jq -e '
  [ .socket_bench.payloads[].frames_per_flush ] | all(. > 1)
' "$out" > /dev/null || { echo "FAIL: coalesced flushes must batch > 1 frame on average" >&2; exit 1; }
jq -e '
  [ .socket_bench.payloads[].pool_hit_rate ] | all(. >= 0.9)
' "$out" > /dev/null || { echo "FAIL: inbox pool hit rate below 90%" >&2; exit 1; }
echo "allocation-slope and socket hot-path checks passed" >&2
