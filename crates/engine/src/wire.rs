//! Length-prefixed, versioned binary codec for protocol messages and trace
//! events — the engine's on-wire format.
//!
//! The simulator passes [`Message`] values around as in-memory Rust values,
//! so "bytes sent" was previously a coarse per-variant size model. Real
//! deployments pay for every byte crossing a socket, so this module defines
//! the byte-exact frame every transport backend speaks:
//!
//! ```text
//! +----------------+-----------+------------------------+
//! | length: u32 LE | version:  | payload                |
//! | (of the rest)  | u8 (= 1)  | (tag-prefixed body)    |
//! +----------------+-----------+------------------------+
//! ```
//!
//! The length covers the version byte plus the payload, so a framed reader
//! needs exactly two reads per message: 4 bytes of length, then `length`
//! bytes of frame. [`encoded_len`] is *exact by construction*: the encoder
//! is generic over a byte sink, and the length computation runs the same
//! encoder against a counting sink — the two can never drift apart.
//!
//! Design points:
//!
//! * **Fixed-width integers, little-endian.** No varints: exactness and
//!   simplicity over compactness; the dominant payload bytes are strings
//!   and values anyway.
//! * **Decoding never panics.** Every read is bounds-checked and every
//!   malformed input — truncation, a bad tag, invalid UTF-8, an unknown
//!   version, garbage trailing a payload — returns a typed
//!   [`EngineError::Protocol`]. Recursive payloads (expressions, bundles)
//!   are depth-limited so adversarial input cannot overflow the stack.
//! * **Decoding re-validates.** Queries and tuples are rebuilt through
//!   their validating constructors against the receiver's [`Catalog`], so a
//!   frame that decodes successfully yields the same invariant-checked
//!   values the sender held.
//!
//! Version policy: the version byte is checked on every frame; a reader
//! that sees an unknown version rejects the frame (there is exactly one
//! version today). Any change to a body encoding — new variant, field, or
//! width — must bump [`VERSION`]; readers never attempt cross-version
//! decoding.

use std::sync::Arc;

use cq_overlay::Id;
use cq_relational::{
    Catalog, Expr, Filter, JoinQuery, MatchTarget, Notification, QueryKey, QueryRef, QuerySpec,
    RewrittenQuery, SelectItem, Side, Timestamp, Tuple, Value,
};

use crate::error::{EngineError, Result};
use crate::messages::{Message, ValueJoin};
use crate::replication::ReplicaItem;
use crate::tables::{StoredQuery, StoredRewritten, StoredTuple, StoredValueTuple};
use crate::trace::TraceEvent;

/// Wire-format version carried by every frame.
pub const VERSION: u8 = 1;

/// Upper bound on the framed length (version byte + payload) a reader will
/// accept — rejects absurd lengths before allocating a receive buffer.
pub const MAX_FRAME: u32 = 1 << 26;

/// Binary operator tags, mirrored from `cq_relational::BinOp`.
const BINOPS: [cq_relational::BinOp; 4] = [
    cq_relational::BinOp::Add,
    cq_relational::BinOp::Sub,
    cq_relational::BinOp::Mul,
    cq_relational::BinOp::Concat,
];

/// Maximum nesting depth accepted when decoding recursive payloads
/// (expressions and bundles).
const MAX_DEPTH: u32 = 64;

fn err(detail: impl Into<String>) -> EngineError {
    EngineError::Protocol {
        detail: detail.into(),
    }
}

// ---------------------------------------------------------------------------
// Sink abstraction: the encoder is generic over "where the bytes go", so the
// exact length comes from running the same code against a counter.
// ---------------------------------------------------------------------------

trait Sink {
    fn put(&mut self, bytes: &[u8]);
}

impl Sink for Vec<u8> {
    #[inline]
    fn put(&mut self, bytes: &[u8]) {
        self.extend_from_slice(bytes);
    }
}

struct Count(u64);

impl Sink for Count {
    #[inline]
    fn put(&mut self, bytes: &[u8]) {
        self.0 += bytes.len() as u64;
    }
}

#[inline]
fn put_u8<S: Sink>(s: &mut S, v: u8) {
    s.put(&[v]);
}

#[inline]
fn put_u32<S: Sink>(s: &mut S, v: u32) {
    s.put(&v.to_le_bytes());
}

#[inline]
fn put_u64<S: Sink>(s: &mut S, v: u64) {
    s.put(&v.to_le_bytes());
}

#[inline]
fn put_i64<S: Sink>(s: &mut S, v: i64) {
    s.put(&v.to_le_bytes());
}

#[inline]
fn put_bool<S: Sink>(s: &mut S, v: bool) {
    put_u8(s, v as u8);
}

fn put_str<S: Sink>(s: &mut S, v: &str) {
    put_u32(s, v.len() as u32);
    s.put(v.as_bytes());
}

// ---------------------------------------------------------------------------
// Bounds-checked reader.
// ---------------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(err(format!(
                "truncated frame: wanted {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn i64(&mut self) -> Result<i64> {
        Ok(self.u64()? as i64)
    }

    fn boolean(&mut self) -> Result<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(err(format!("invalid bool byte {v}"))),
        }
    }

    fn string(&mut self) -> Result<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| err("string field is not valid UTF-8"))
    }

    /// Reads a count prefix, sanity-checking it against the bytes that
    /// remain so a corrupt count cannot trigger a huge allocation (every
    /// element occupies at least one byte).
    fn count(&mut self) -> Result<usize> {
        let n = self.u32()? as usize;
        if n > self.remaining() {
            return Err(err(format!(
                "element count {n} exceeds {} remaining bytes",
                self.remaining()
            )));
        }
        Ok(n)
    }
}

// ---------------------------------------------------------------------------
// Relational building blocks.
// ---------------------------------------------------------------------------

fn put_value<S: Sink>(s: &mut S, v: &Value) {
    match v {
        Value::Int(i) => {
            put_u8(s, 0);
            put_i64(s, *i);
        }
        Value::Str(t) => {
            put_u8(s, 1);
            put_str(s, t);
        }
    }
}

fn get_value(r: &mut Reader<'_>) -> Result<Value> {
    match r.u8()? {
        0 => Ok(Value::Int(r.i64()?)),
        1 => Ok(Value::Str(r.string()?)),
        t => Err(err(format!("invalid value tag {t}"))),
    }
}

fn put_values<S: Sink>(s: &mut S, vs: &[Value]) {
    put_u32(s, vs.len() as u32);
    for v in vs {
        put_value(s, v);
    }
}

fn get_values(r: &mut Reader<'_>) -> Result<Vec<Value>> {
    let n = r.count()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_value(r)?);
    }
    Ok(out)
}

fn put_side<S: Sink>(s: &mut S, side: Side) {
    put_u8(s, matches!(side, Side::Right) as u8);
}

fn get_side(r: &mut Reader<'_>) -> Result<Side> {
    match r.u8()? {
        0 => Ok(Side::Left),
        1 => Ok(Side::Right),
        t => Err(err(format!("invalid side tag {t}"))),
    }
}

fn put_expr<S: Sink>(s: &mut S, e: &Expr) {
    match e {
        Expr::Attr(a) => {
            put_u8(s, 0);
            put_str(s, a);
        }
        Expr::Const(v) => {
            put_u8(s, 1);
            put_value(s, v);
        }
        Expr::Bin { op, lhs, rhs } => {
            put_u8(s, 2);
            put_u8(s, BINOPS.iter().position(|b| b == op).unwrap_or(0) as u8);
            put_expr(s, lhs);
            put_expr(s, rhs);
        }
    }
}

fn get_expr(r: &mut Reader<'_>, depth: u32) -> Result<Expr> {
    if depth > MAX_DEPTH {
        return Err(err("expression nesting exceeds the decoder depth limit"));
    }
    match r.u8()? {
        0 => Ok(Expr::Attr(r.string()?)),
        1 => Ok(Expr::Const(get_value(r)?)),
        2 => {
            let op = r.u8()?;
            let op = *BINOPS
                .get(op as usize)
                .ok_or_else(|| err(format!("invalid binop tag {op}")))?;
            let lhs = get_expr(r, depth + 1)?;
            let rhs = get_expr(r, depth + 1)?;
            Ok(Expr::bin(op, lhs, rhs))
        }
        t => Err(err(format!("invalid expression tag {t}"))),
    }
}

fn put_query<S: Sink>(s: &mut S, q: &JoinQuery) {
    put_str(s, &q.key().0);
    put_str(s, q.subscriber());
    put_u64(s, q.ins_time().0);
    put_str(s, q.relation(Side::Left));
    put_str(s, q.relation(Side::Right));
    put_u32(s, q.select().len() as u32);
    for item in q.select() {
        put_side(s, item.side);
        put_str(s, &item.attr);
    }
    put_expr(s, q.condition(Side::Left));
    put_expr(s, q.condition(Side::Right));
    put_u32(s, q.filters().len() as u32);
    for f in q.filters() {
        put_side(s, f.side);
        put_str(s, &f.attr);
        put_value(s, &f.value);
    }
}

fn get_query(r: &mut Reader<'_>, catalog: &Catalog) -> Result<QueryRef> {
    let key = QueryKey(r.string()?);
    let subscriber = r.string()?;
    let ins_time = Timestamp(r.u64()?);
    let relations = [r.string()?, r.string()?];
    let n = r.count()?;
    let mut select = Vec::with_capacity(n);
    for _ in 0..n {
        let side = get_side(r)?;
        let attr = r.string()?;
        select.push(SelectItem { side, attr });
    }
    let conditions = [get_expr(r, 0)?, get_expr(r, 0)?];
    let n = r.count()?;
    let mut filters = Vec::with_capacity(n);
    for _ in 0..n {
        let side = get_side(r)?;
        let attr = r.string()?;
        let value = get_value(r)?;
        filters.push(Filter { side, attr, value });
    }
    let spec = QuerySpec {
        key,
        subscriber,
        ins_time,
        relations,
        select,
        conditions,
        filters,
    };
    JoinQuery::new(spec, catalog)
        .map(Arc::new)
        .map_err(|e| err(format!("decoded query failed validation: {e}")))
}

fn put_tuple<S: Sink>(s: &mut S, t: &Tuple) {
    put_str(s, t.relation());
    put_values(s, t.values());
    put_u64(s, t.pub_time().0);
    put_u64(s, t.seq());
}

fn get_tuple(r: &mut Reader<'_>, catalog: &Catalog) -> Result<Arc<Tuple>> {
    let relation = r.string()?;
    let values = get_values(r)?;
    let pub_time = Timestamp(r.u64()?);
    let seq = r.u64()?;
    let schema = catalog
        .get(&relation)
        .map_err(|e| err(format!("decoded tuple references unknown relation: {e}")))?
        .clone();
    Tuple::new(schema, values, pub_time, seq)
        .map(Arc::new)
        .map_err(|e| err(format!("decoded tuple failed validation: {e}")))
}

fn put_rewritten<S: Sink>(s: &mut S, rq: &RewrittenQuery) {
    put_str(s, rq.key());
    put_query(s, rq.query());
    put_side(s, rq.bound_side());
    put_values(s, rq.bound_values());
    match rq.target() {
        MatchTarget::Attribute { attr, value } => {
            put_u8(s, 0);
            put_str(s, attr);
            put_value(s, value);
        }
        MatchTarget::ConditionValue { value } => {
            put_u8(s, 1);
            put_value(s, value);
        }
    }
    put_u64(s, rq.trigger_time().0);
}

fn get_rewritten(r: &mut Reader<'_>, catalog: &Catalog) -> Result<RewrittenQuery> {
    let key = r.string()?;
    let query = get_query(r, catalog)?;
    let bound_side = get_side(r)?;
    let bound_values = get_values(r)?;
    let target = match r.u8()? {
        0 => {
            let attr = r.string()?;
            let value = get_value(r)?;
            MatchTarget::Attribute { attr, value }
        }
        1 => MatchTarget::ConditionValue {
            value: get_value(r)?,
        },
        t => return Err(err(format!("invalid match-target tag {t}"))),
    };
    let trigger_time = Timestamp(r.u64()?);
    Ok(RewrittenQuery::from_parts(
        key,
        query,
        bound_side,
        bound_values,
        target,
        trigger_time,
    ))
}

fn put_rewrittens<S: Sink>(s: &mut S, items: &[RewrittenQuery]) {
    put_u32(s, items.len() as u32);
    for rq in items {
        put_rewritten(s, rq);
    }
}

fn get_rewrittens(r: &mut Reader<'_>, catalog: &Catalog) -> Result<Vec<RewrittenQuery>> {
    let n = r.count()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_rewritten(r, catalog)?);
    }
    Ok(out)
}

fn put_notification<S: Sink>(s: &mut S, n: &Notification) {
    put_str(s, &n.query_key.0);
    put_str(s, &n.subscriber);
    put_values(s, &n.values);
}

fn get_notification(r: &mut Reader<'_>) -> Result<Notification> {
    Ok(Notification {
        query_key: QueryKey(r.string()?),
        subscriber: r.string()?,
        values: get_values(r)?,
    })
}

fn put_notifications<S: Sink>(s: &mut S, ns: &[Notification]) {
    put_u32(s, ns.len() as u32);
    for n in ns {
        put_notification(s, n);
    }
}

fn get_notifications(r: &mut Reader<'_>) -> Result<Vec<Notification>> {
    let n = r.count()?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_notification(r)?);
    }
    Ok(out)
}

fn put_replica_item<S: Sink>(s: &mut S, item: &ReplicaItem) {
    match item {
        ReplicaItem::Query(e) => {
            put_u8(s, 0);
            put_u64(s, e.index_id.0);
            put_query(s, &e.query);
            put_side(s, e.index_side);
            put_str(s, &e.index_attr);
        }
        ReplicaItem::Rewritten(e) => {
            put_u8(s, 1);
            put_u64(s, e.index_id.0);
            put_rewritten(s, &e.rq);
        }
        ReplicaItem::Tuple(e) => {
            put_u8(s, 2);
            put_u64(s, e.index_id.0);
            put_str(s, &e.attr);
            put_tuple(s, &e.tuple);
        }
        ReplicaItem::ValueTuple {
            group,
            value_key,
            entry,
        } => {
            put_u8(s, 3);
            put_str(s, group);
            put_str(s, value_key);
            put_u64(s, entry.index_id.0);
            put_side(s, entry.side);
            put_tuple(s, &entry.tuple);
        }
        ReplicaItem::Offline { id, notification } => {
            put_u8(s, 4);
            put_u64(s, id.0);
            put_notification(s, notification);
        }
    }
}

fn get_replica_item(r: &mut Reader<'_>, catalog: &Catalog) -> Result<ReplicaItem> {
    match r.u8()? {
        0 => {
            let index_id = Id(r.u64()?);
            let query = get_query(r, catalog)?;
            let index_side = get_side(r)?;
            let index_attr = r.string()?;
            Ok(ReplicaItem::Query(StoredQuery {
                index_id,
                query,
                index_side,
                index_attr,
            }))
        }
        1 => {
            let index_id = Id(r.u64()?);
            let rq = get_rewritten(r, catalog)?;
            Ok(ReplicaItem::Rewritten(StoredRewritten { index_id, rq }))
        }
        2 => {
            let index_id = Id(r.u64()?);
            let attr = r.string()?;
            let tuple = get_tuple(r, catalog)?;
            Ok(ReplicaItem::Tuple(StoredTuple {
                index_id,
                attr,
                tuple,
            }))
        }
        3 => {
            let group = r.string()?;
            let value_key = r.string()?;
            let index_id = Id(r.u64()?);
            let side = get_side(r)?;
            let tuple = get_tuple(r, catalog)?;
            Ok(ReplicaItem::ValueTuple {
                group,
                value_key,
                entry: StoredValueTuple {
                    index_id,
                    side,
                    tuple,
                },
            })
        }
        4 => {
            let id = Id(r.u64()?);
            let notification = get_notification(r)?;
            Ok(ReplicaItem::Offline { id, notification })
        }
        t => Err(err(format!("invalid replica-item tag {t}"))),
    }
}

// ---------------------------------------------------------------------------
// Message bodies.
// ---------------------------------------------------------------------------

fn put_message<S: Sink>(s: &mut S, m: &Message) {
    match m {
        Message::IndexQuery {
            query,
            index_side,
            index_attr,
            index_id,
        } => {
            put_u8(s, 0);
            put_query(s, query);
            put_side(s, *index_side);
            put_str(s, index_attr);
            put_u64(s, index_id.0);
        }
        Message::AlIndexTuple {
            tuple,
            attr,
            index_id,
        } => {
            put_u8(s, 1);
            put_tuple(s, tuple);
            put_str(s, attr);
            put_u64(s, index_id.0);
        }
        Message::VlIndexTuple {
            tuple,
            attr,
            index_id,
        } => {
            put_u8(s, 2);
            put_tuple(s, tuple);
            put_str(s, attr);
            put_u64(s, index_id.0);
        }
        Message::Join { items, index_id } => {
            put_u8(s, 3);
            put_rewrittens(s, items);
            put_u64(s, index_id.0);
        }
        Message::JoinV(vj) => {
            put_u8(s, 4);
            put_str(s, &vj.group);
            put_rewrittens(s, &vj.items);
            put_tuple(s, &vj.tuple);
            put_side(s, vj.side);
            put_str(s, &vj.value_key);
            put_u64(s, vj.index_id.0);
        }
        Message::StoreNotifications {
            subscriber_id,
            notifications,
        } => {
            put_u8(s, 5);
            put_u64(s, subscriber_id.0);
            put_notifications(s, notifications);
        }
        Message::Notify { notifications } => {
            put_u8(s, 6);
            put_notifications(s, notifications);
        }
        Message::Replicate { item } => {
            put_u8(s, 7);
            put_replica_item(s, item);
        }
        Message::Ping { from, seq } => {
            put_u8(s, 8);
            put_u32(s, *from);
            put_u64(s, *seq);
        }
        Message::Pong { from, seq } => {
            put_u8(s, 9);
            put_u32(s, *from);
            put_u64(s, *seq);
        }
        Message::Bundle(members) => {
            put_u8(s, 10);
            put_u32(s, members.len() as u32);
            for m in members {
                put_message(s, m);
            }
        }
    }
}

fn get_message(r: &mut Reader<'_>, catalog: &Catalog, depth: u32) -> Result<Message> {
    if depth > MAX_DEPTH {
        return Err(err("bundle nesting exceeds the decoder depth limit"));
    }
    match r.u8()? {
        0 => {
            let query = get_query(r, catalog)?;
            let index_side = get_side(r)?;
            let index_attr = r.string()?;
            let index_id = Id(r.u64()?);
            Ok(Message::IndexQuery {
                query,
                index_side,
                index_attr,
                index_id,
            })
        }
        1 => {
            let tuple = get_tuple(r, catalog)?;
            let attr = r.string()?;
            let index_id = Id(r.u64()?);
            Ok(Message::AlIndexTuple {
                tuple,
                attr,
                index_id,
            })
        }
        2 => {
            let tuple = get_tuple(r, catalog)?;
            let attr = r.string()?;
            let index_id = Id(r.u64()?);
            Ok(Message::VlIndexTuple {
                tuple,
                attr,
                index_id,
            })
        }
        3 => {
            let items = get_rewrittens(r, catalog)?;
            let index_id = Id(r.u64()?);
            Ok(Message::Join { items, index_id })
        }
        4 => {
            let group = r.string()?;
            let items = get_rewrittens(r, catalog)?;
            let tuple = get_tuple(r, catalog)?;
            let side = get_side(r)?;
            let value_key = r.string()?;
            let index_id = Id(r.u64()?);
            Ok(Message::JoinV(ValueJoin {
                group,
                items,
                tuple,
                side,
                value_key,
                index_id,
            }))
        }
        5 => {
            let subscriber_id = Id(r.u64()?);
            let notifications = get_notifications(r)?;
            Ok(Message::StoreNotifications {
                subscriber_id,
                notifications,
            })
        }
        6 => Ok(Message::Notify {
            notifications: get_notifications(r)?,
        }),
        7 => Ok(Message::Replicate {
            item: Box::new(get_replica_item(r, catalog)?),
        }),
        8 => {
            let from = r.u32()?;
            let seq = r.u64()?;
            Ok(Message::Ping { from, seq })
        }
        9 => {
            let from = r.u32()?;
            let seq = r.u64()?;
            Ok(Message::Pong { from, seq })
        }
        10 => {
            let n = r.count()?;
            let mut members = Vec::with_capacity(n);
            for _ in 0..n {
                members.push(get_message(r, catalog, depth + 1)?);
            }
            Ok(Message::Bundle(members))
        }
        t => Err(err(format!("invalid message tag {t}"))),
    }
}

// ---------------------------------------------------------------------------
// Trace-event bodies.
// ---------------------------------------------------------------------------

/// The interned `&'static str` vocabularies trace events carry. Decoding
/// restores the static strings by table lookup; a string outside its table
/// is a protocol error (the engine never emits one).
const MESSAGE_KIND_LABELS: [&str; 11] = [
    "query",
    "al-index",
    "vl-index",
    "join",
    "join-v",
    "store-notify",
    "notify",
    "replicate",
    "ping",
    "pong",
    "bundle",
];

const TABLE_LABELS: [&str; 6] = ["alqt", "vlqt", "vltt", "vstore", "offline-store", "all"];

const REASON_LABELS: [&str; 3] = ["fail", "leave", "transfer"];

fn put_interned<S: Sink>(s: &mut S, table: &[&'static str], v: &str) {
    // Encoded as a one-byte table index; every emitted value is in its
    // table, but fall back to the raw string (index 0xff + string) so the
    // encoder stays total even for a label added without a table update.
    match table.iter().position(|t| *t == v) {
        Some(i) => put_u8(s, i as u8),
        None => {
            put_u8(s, 0xff);
            put_str(s, v);
        }
    }
}

fn get_interned(r: &mut Reader<'_>, table: &'static [&'static str]) -> Result<&'static str> {
    let i = r.u8()?;
    if i == 0xff {
        let s = r.string()?;
        return table
            .iter()
            .find(|t| **t == s)
            .copied()
            .ok_or_else(|| err(format!("unknown interned label {s:?}")));
    }
    table
        .get(i as usize)
        .copied()
        .ok_or_else(|| err(format!("interned label index {i} out of range")))
}

fn put_msg_id<S: Sink>(s: &mut S, id: crate::faults::MsgId) {
    put_u32(s, id.0);
    put_u64(s, id.1);
}

fn get_msg_id(r: &mut Reader<'_>) -> Result<crate::faults::MsgId> {
    Ok((r.u32()?, r.u64()?))
}

fn put_trace_event<S: Sink>(s: &mut S, ev: &TraceEvent) {
    put_u8(s, ev.kind_index() as u8);
    match ev {
        TraceEvent::MsgSend {
            tick,
            node,
            id,
            to,
            target,
            kind,
            path,
        } => {
            put_u64(s, *tick);
            put_u32(s, *node);
            put_msg_id(s, *id);
            put_u32(s, *to);
            put_u64(s, target.0);
            put_interned(s, &MESSAGE_KIND_LABELS, kind);
            match path {
                None => put_u8(s, 0),
                Some(p) => {
                    put_u8(s, 1);
                    put_u32(s, p.len() as u32);
                    for n in p {
                        put_u32(s, *n);
                    }
                }
            }
        }
        TraceEvent::MsgDeliver {
            tick,
            node,
            id,
            kind,
        } => {
            put_u64(s, *tick);
            put_u32(s, *node);
            put_msg_id(s, *id);
            put_interned(s, &MESSAGE_KIND_LABELS, kind);
        }
        TraceEvent::FaultDrop { tick, node, id }
        | TraceEvent::FaultDuplicate { tick, node, id }
        | TraceEvent::DedupSuppressed { tick, node, id } => {
            put_u64(s, *tick);
            put_u32(s, *node);
            put_msg_id(s, *id);
        }
        TraceEvent::FaultDelay {
            tick,
            node,
            id,
            extra,
        } => {
            put_u64(s, *tick);
            put_u32(s, *node);
            put_msg_id(s, *id);
            put_u64(s, *extra);
        }
        TraceEvent::Retransmit {
            tick,
            node,
            id,
            attempt,
        } => {
            put_u64(s, *tick);
            put_u32(s, *node);
            put_msg_id(s, *id);
            put_u32(s, *attempt);
        }
        TraceEvent::NodeFailed { tick, node } => {
            put_u64(s, *tick);
            put_u32(s, *node);
        }
        TraceEvent::IndexInsert {
            tick,
            node,
            table,
            fresh,
        } => {
            put_u64(s, *tick);
            put_u32(s, *node);
            put_interned(s, &TABLE_LABELS, table);
            put_bool(s, *fresh);
        }
        TraceEvent::IndexRemove {
            tick,
            node,
            table,
            removed,
            reason,
        } => {
            put_u64(s, *tick);
            put_u32(s, *node);
            put_interned(s, &TABLE_LABELS, table);
            put_u64(s, *removed);
            put_interned(s, &REASON_LABELS, reason);
        }
        TraceEvent::JoinEval {
            tick,
            node,
            candidates,
            matches,
        } => {
            put_u64(s, *tick);
            put_u32(s, *node);
            put_u64(s, *candidates);
            put_u64(s, *matches);
        }
        TraceEvent::NotifyDelivered {
            tick,
            node,
            count,
            offline,
        } => {
            put_u64(s, *tick);
            put_u32(s, *node);
            put_u64(s, *count);
            put_bool(s, *offline);
        }
        TraceEvent::Replicate { tick, node, to } => {
            put_u64(s, *tick);
            put_u32(s, *node);
            put_u32(s, *to);
        }
        TraceEvent::Promote { tick, node, items } => {
            put_u64(s, *tick);
            put_u32(s, *node);
            put_u64(s, *items);
        }
        TraceEvent::Phase { tick, name } => {
            put_u64(s, *tick);
            put_str(s, name);
        }
        TraceEvent::Suspect { tick, node, target }
        | TraceEvent::FalseSuspect { tick, node, target } => {
            put_u64(s, *tick);
            put_u32(s, *node);
            put_u32(s, *target);
        }
        TraceEvent::Confirm {
            tick,
            node,
            target,
            dead,
        } => {
            put_u64(s, *tick);
            put_u32(s, *node);
            put_u32(s, *target);
            put_bool(s, *dead);
        }
        TraceEvent::DigestExchange {
            tick,
            node,
            to,
            items,
            missing,
        } => {
            put_u64(s, *tick);
            put_u32(s, *node);
            put_u32(s, *to);
            put_u64(s, *items);
            put_u64(s, *missing);
        }
        TraceEvent::Repair {
            tick,
            node,
            to,
            items,
            bytes,
        } => {
            put_u64(s, *tick);
            put_u32(s, *node);
            put_u32(s, *to);
            put_u64(s, *items);
            put_u64(s, *bytes);
        }
    }
}

fn get_trace_event(r: &mut Reader<'_>) -> Result<TraceEvent> {
    let tag = r.u8()?;
    Ok(match tag {
        0 => {
            let tick = r.u64()?;
            let node = r.u32()?;
            let id = get_msg_id(r)?;
            let to = r.u32()?;
            let target = Id(r.u64()?);
            let kind = get_interned(r, &MESSAGE_KIND_LABELS)?;
            let path = match r.u8()? {
                0 => None,
                1 => {
                    let n = r.count()?;
                    let mut p = Vec::with_capacity(n);
                    for _ in 0..n {
                        p.push(r.u32()?);
                    }
                    Some(p)
                }
                t => return Err(err(format!("invalid path flag {t}"))),
            };
            TraceEvent::MsgSend {
                tick,
                node,
                id,
                to,
                target,
                kind,
                path,
            }
        }
        1 => TraceEvent::MsgDeliver {
            tick: r.u64()?,
            node: r.u32()?,
            id: get_msg_id(r)?,
            kind: get_interned(r, &MESSAGE_KIND_LABELS)?,
        },
        2 => TraceEvent::FaultDrop {
            tick: r.u64()?,
            node: r.u32()?,
            id: get_msg_id(r)?,
        },
        3 => TraceEvent::FaultDuplicate {
            tick: r.u64()?,
            node: r.u32()?,
            id: get_msg_id(r)?,
        },
        4 => TraceEvent::FaultDelay {
            tick: r.u64()?,
            node: r.u32()?,
            id: get_msg_id(r)?,
            extra: r.u64()?,
        },
        5 => TraceEvent::Retransmit {
            tick: r.u64()?,
            node: r.u32()?,
            id: get_msg_id(r)?,
            attempt: r.u32()?,
        },
        6 => TraceEvent::DedupSuppressed {
            tick: r.u64()?,
            node: r.u32()?,
            id: get_msg_id(r)?,
        },
        7 => TraceEvent::NodeFailed {
            tick: r.u64()?,
            node: r.u32()?,
        },
        8 => TraceEvent::IndexInsert {
            tick: r.u64()?,
            node: r.u32()?,
            table: get_interned(r, &TABLE_LABELS)?,
            fresh: r.boolean()?,
        },
        9 => TraceEvent::IndexRemove {
            tick: r.u64()?,
            node: r.u32()?,
            table: get_interned(r, &TABLE_LABELS)?,
            removed: r.u64()?,
            reason: get_interned(r, &REASON_LABELS)?,
        },
        10 => TraceEvent::JoinEval {
            tick: r.u64()?,
            node: r.u32()?,
            candidates: r.u64()?,
            matches: r.u64()?,
        },
        11 => TraceEvent::NotifyDelivered {
            tick: r.u64()?,
            node: r.u32()?,
            count: r.u64()?,
            offline: r.boolean()?,
        },
        12 => TraceEvent::Replicate {
            tick: r.u64()?,
            node: r.u32()?,
            to: r.u32()?,
        },
        13 => TraceEvent::Promote {
            tick: r.u64()?,
            node: r.u32()?,
            items: r.u64()?,
        },
        14 => TraceEvent::Phase {
            tick: r.u64()?,
            name: r.string()?,
        },
        15 => TraceEvent::Suspect {
            tick: r.u64()?,
            node: r.u32()?,
            target: r.u32()?,
        },
        16 => TraceEvent::Confirm {
            tick: r.u64()?,
            node: r.u32()?,
            target: r.u32()?,
            dead: r.boolean()?,
        },
        17 => TraceEvent::FalseSuspect {
            tick: r.u64()?,
            node: r.u32()?,
            target: r.u32()?,
        },
        18 => TraceEvent::DigestExchange {
            tick: r.u64()?,
            node: r.u32()?,
            to: r.u32()?,
            items: r.u64()?,
            missing: r.u64()?,
        },
        19 => TraceEvent::Repair {
            tick: r.u64()?,
            node: r.u32()?,
            to: r.u32()?,
            items: r.u64()?,
            bytes: r.u64()?,
        },
        t => return Err(err(format!("invalid trace-event tag {t}"))),
    })
}

// ---------------------------------------------------------------------------
// Framing.
// ---------------------------------------------------------------------------

/// Appends one complete frame (length prefix, version byte, body) for a
/// protocol message. Single-pass: the body is written in place and the
/// length patched afterwards.
pub fn encode_message(msg: &Message, out: &mut Vec<u8>) {
    let at = out.len();
    out.extend_from_slice(&[0u8; 4]);
    out.push(VERSION);
    put_message(out, msg);
    let framed = (out.len() - at - 4) as u32;
    out[at..at + 4].copy_from_slice(&framed.to_le_bytes());
}

/// The exact length in bytes of [`encode_message`]'s output for this
/// message — computed by running the encoder against a counting sink, so it
/// can never disagree with the real encoding.
pub fn encoded_len(msg: &Message) -> u64 {
    let mut c = Count(0);
    put_message(&mut c, msg);
    4 + 1 + c.0
}

/// Structural check of one complete codec frame: `frame` must consist of a
/// u32 LE length prefix counting *exactly* the bytes that follow. Returns
/// the body length when the shape holds, `None` otherwise. Purely framing —
/// the version byte and payload are not inspected — so the transport's
/// buffering layer can assert frame integrity without knowing the protocol
/// (its command-stream reuse in `cq-sim` carries non-protocol bodies).
pub fn frame_body_len(frame: &[u8]) -> Option<usize> {
    if frame.len() < 4 {
        return None;
    }
    let announced = u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]) as usize;
    (frame.len() - 4 == announced).then_some(announced)
}

/// Appends one complete frame for a trace event (same frame layout as
/// protocol messages; the body starts with the event's kind index).
pub fn encode_trace_event(ev: &TraceEvent, out: &mut Vec<u8>) {
    let at = out.len();
    out.extend_from_slice(&[0u8; 4]);
    out.push(VERSION);
    put_trace_event(out, ev);
    let framed = (out.len() - at - 4) as u32;
    out[at..at + 4].copy_from_slice(&framed.to_le_bytes());
}

/// The exact length in bytes of [`encode_trace_event`]'s output.
pub fn trace_encoded_len(ev: &TraceEvent) -> u64 {
    let mut c = Count(0);
    put_trace_event(&mut c, ev);
    4 + 1 + c.0
}

/// Splits one frame off the head of `buf`: validates the length prefix and
/// version byte and returns `(payload, total_bytes_consumed)`.
fn read_frame(buf: &[u8]) -> Result<(&[u8], usize)> {
    if buf.len() < 4 {
        return Err(err(format!(
            "truncated frame: {} bytes, need 4 for the length prefix",
            buf.len()
        )));
    }
    let framed = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]);
    if framed == 0 {
        return Err(err("zero-length frame"));
    }
    if framed > MAX_FRAME {
        return Err(err(format!(
            "frame length {framed} exceeds the {MAX_FRAME}-byte limit"
        )));
    }
    let total = 4 + framed as usize;
    if buf.len() < total {
        return Err(err(format!(
            "truncated frame: length prefix says {framed}, {} bytes follow",
            buf.len() - 4
        )));
    }
    let version = buf[4];
    if version != VERSION {
        return Err(err(format!(
            "unsupported wire version {version} (expected {VERSION})"
        )));
    }
    Ok((&buf[5..total], total))
}

/// Decodes one message frame from the head of `buf`, returning the message
/// and the number of bytes consumed. Tuples and queries are re-validated
/// against `catalog`; every malformed input yields
/// [`EngineError::Protocol`].
pub fn decode_message(buf: &[u8], catalog: &Catalog) -> Result<(Message, usize)> {
    let (payload, total) = read_frame(buf)?;
    let mut r = Reader::new(payload);
    let msg = get_message(&mut r, catalog, 0)?;
    if r.remaining() != 0 {
        return Err(err(format!(
            "{} garbage bytes after the message payload",
            r.remaining()
        )));
    }
    Ok((msg, total))
}

/// Decodes one trace-event frame from the head of `buf`, returning the
/// event and the number of bytes consumed.
pub fn decode_trace_event(buf: &[u8]) -> Result<(TraceEvent, usize)> {
    let (payload, total) = read_frame(buf)?;
    let mut r = Reader::new(payload);
    let ev = get_trace_event(&mut r)?;
    if r.remaining() != 0 {
        return Err(err(format!(
            "{} garbage bytes after the trace-event payload",
            r.remaining()
        )));
    }
    Ok((ev, total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_relational::{DataType, RelationSchema};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(RelationSchema::of("R", &[("A", DataType::Int), ("B", DataType::Str)]).unwrap())
            .unwrap();
        c.register(RelationSchema::of("S", &[("C", DataType::Int), ("D", DataType::Int)]).unwrap())
            .unwrap();
        c
    }

    fn query(c: &Catalog) -> QueryRef {
        Arc::new(
            JoinQuery::new(
                QuerySpec {
                    key: QueryKey::derive("n1", 0),
                    subscriber: "n1".into(),
                    ins_time: Timestamp(3),
                    relations: ["R".into(), "S".into()],
                    select: vec![
                        SelectItem {
                            side: Side::Left,
                            attr: "B".into(),
                        },
                        SelectItem {
                            side: Side::Right,
                            attr: "D".into(),
                        },
                    ],
                    conditions: [Expr::attr("A"), Expr::attr("C")],
                    filters: vec![Filter {
                        side: Side::Right,
                        attr: "D".into(),
                        value: Value::Int(9),
                    }],
                },
                c,
            )
            .unwrap(),
        )
    }

    fn tuple(c: &Catalog) -> Arc<Tuple> {
        Arc::new(
            Tuple::new(
                c.get("R").unwrap().clone(),
                vec![Value::Int(7), Value::Str("x".into())],
                Timestamp(5),
                42,
            )
            .unwrap(),
        )
    }

    fn roundtrip(msg: &Message, c: &Catalog) -> Message {
        let mut buf = Vec::new();
        encode_message(msg, &mut buf);
        assert_eq!(buf.len() as u64, encoded_len(msg), "encoded_len is exact");
        let (decoded, used) = decode_message(&buf, c).unwrap();
        assert_eq!(used, buf.len(), "frame fully consumed");
        decoded
    }

    #[test]
    fn message_round_trips_preserve_debug_form() {
        let c = catalog();
        let q = query(&c);
        let t = tuple(&c);
        let rq = RewrittenQuery::rewrite_attribute(&q, Side::Left, "A", "C", &t)
            .unwrap()
            .unwrap();
        let n = Notification {
            query_key: QueryKey::derive("n1", 0),
            subscriber: "n1".into(),
            values: vec![Value::Int(1), Value::Str("y".into())],
        };
        let msgs = vec![
            Message::IndexQuery {
                query: Arc::clone(&q),
                index_side: Side::Right,
                index_attr: "C".into(),
                index_id: Id(11),
            },
            Message::AlIndexTuple {
                tuple: Arc::clone(&t),
                attr: "A".into(),
                index_id: Id(12),
            },
            Message::VlIndexTuple {
                tuple: Arc::clone(&t),
                attr: "A".into(),
                index_id: Id(13),
            },
            Message::Join {
                items: vec![rq.clone()],
                index_id: Id(14),
            },
            Message::JoinV(ValueJoin {
                group: q.group_key(),
                items: vec![rq.clone()],
                tuple: Arc::clone(&t),
                side: Side::Left,
                value_key: "i:7".into(),
                index_id: Id(15),
            }),
            Message::StoreNotifications {
                subscriber_id: Id(16),
                notifications: vec![n.clone()],
            },
            Message::Notify {
                notifications: vec![n.clone()],
            },
            Message::Replicate {
                item: Box::new(ReplicaItem::Offline {
                    id: Id(17),
                    notification: n,
                }),
            },
            Message::Ping { from: 3, seq: 9 },
            Message::Pong { from: 4, seq: 9 },
            Message::Bundle(vec![
                Message::Ping { from: 1, seq: 2 },
                Message::Pong { from: 2, seq: 2 },
            ]),
        ];
        for msg in &msgs {
            let back = roundtrip(msg, &c);
            assert_eq!(format!("{back:?}"), format!("{msg:?}"), "{}", msg.kind());
        }
    }

    #[test]
    fn truncation_is_rejected_everywhere() {
        let c = catalog();
        let mut buf = Vec::new();
        encode_message(
            &Message::AlIndexTuple {
                tuple: tuple(&c),
                attr: "A".into(),
                index_id: Id(1),
            },
            &mut buf,
        );
        for cut in 0..buf.len() {
            let e = decode_message(&buf[..cut], &c).unwrap_err();
            assert!(matches!(e, EngineError::Protocol { .. }), "cut at {cut}");
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let c = catalog();
        let mut buf = Vec::new();
        encode_message(&Message::Ping { from: 0, seq: 0 }, &mut buf);
        buf[4] = VERSION + 1;
        let e = decode_message(&buf, &c).unwrap_err();
        assert!(e.to_string().contains("unsupported wire version"));
    }

    #[test]
    fn unknown_relation_is_a_protocol_error() {
        let c = catalog();
        let mut other = Catalog::new();
        other
            .register(RelationSchema::of("T", &[("Z", DataType::Int)]).unwrap())
            .unwrap();
        let t = Arc::new(
            Tuple::new(
                other.get("T").unwrap().clone(),
                vec![Value::Int(1)],
                Timestamp(0),
                0,
            )
            .unwrap(),
        );
        let mut buf = Vec::new();
        encode_message(
            &Message::AlIndexTuple {
                tuple: t,
                attr: "Z".into(),
                index_id: Id(1),
            },
            &mut buf,
        );
        let e = decode_message(&buf, &c).unwrap_err();
        assert!(matches!(e, EngineError::Protocol { .. }));
    }

    #[test]
    fn trace_event_round_trips() {
        let events = vec![
            TraceEvent::MsgSend {
                tick: 1,
                node: 2,
                id: (2, 7),
                to: 3,
                target: Id(99),
                kind: "al-index",
                path: Some(vec![2, 5, 3]),
            },
            TraceEvent::Phase {
                tick: 4,
                name: "measured".into(),
            },
            TraceEvent::IndexRemove {
                tick: 5,
                node: 6,
                table: "vltt",
                removed: 3,
                reason: "transfer",
            },
        ];
        for ev in &events {
            let mut buf = Vec::new();
            encode_trace_event(ev, &mut buf);
            assert_eq!(buf.len() as u64, trace_encoded_len(ev));
            let (back, used) = decode_trace_event(&buf).unwrap();
            assert_eq!(used, buf.len());
            assert_eq!(&back, ev);
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected() {
        let c = catalog();
        let mut buf = (MAX_FRAME + 1).to_le_bytes().to_vec();
        buf.push(VERSION);
        let e = decode_message(&buf, &c).unwrap_err();
        assert!(e.to_string().contains("exceeds"));
    }

    #[test]
    fn frame_body_len_judges_only_the_structure() {
        let mut frame = 3u32.to_le_bytes().to_vec();
        frame.extend_from_slice(&[9, 9, 9]);
        assert_eq!(frame_body_len(&frame), Some(3));
        frame.push(0); // trailing garbage breaks the exact-length shape
        assert_eq!(frame_body_len(&frame), None);
        assert_eq!(frame_body_len(&[1, 0]), None); // shorter than a prefix
                                                   // A real encoder frame validates too.
        let mut buf = Vec::new();
        encode_message(
            &Message::Notify {
                notifications: Vec::new(),
            },
            &mut buf,
        );
        assert_eq!(frame_body_len(&buf), Some(buf.len() - 4));
    }
}
