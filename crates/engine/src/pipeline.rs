//! Multi-way continuous joins as pipelines of two-way joins.
//!
//! The thesis lists multi-way joins as future work (Chapter 7); the authors
//! later realized them by composing two-way joins ("Continuous Multi-Way
//! Joins over Distributed Hash Tables"). This module implements that
//! composition on top of [`Network`]: a *stage* is an ordinary continuous
//! two-way join whose notifications are republished as tuples of a *derived
//! relation*, which the next stage joins against — so
//! `R ⋈ S ⋈ T = (R ⋈ S) ⋈ T` evaluates continuously, end to end, with every
//! intermediate step running the paper's distributed algorithms.
//!
//! The derived relation's schema must be registered in the catalog before
//! the network is built (its attributes correspond positionally to the
//! stage query's select list).
//!
//! ```
//! use cq_engine::{Algorithm, EngineConfig, Network, Pipeline};
//! use cq_relational::{Catalog, DataType, RelationSchema, Value};
//!
//! let mut catalog = Catalog::new();
//! for (name, attrs) in [
//!     ("R", [("A", DataType::Int), ("B", DataType::Int)]),
//!     ("S", [("C", DataType::Int), ("D", DataType::Int)]),
//!     ("T", [("E", DataType::Int), ("F", DataType::Int)]),
//!     ("RS", [("A", DataType::Int), ("D", DataType::Int)]), // derived
//! ] {
//!     catalog.register(RelationSchema::of(name, &attrs).unwrap()).unwrap();
//! }
//! let mut net = Network::new(EngineConfig::new(Algorithm::DaiT).with_nodes(32), catalog);
//! let driver = net.node_at(0);
//! let mut p = Pipeline::new(driver);
//! p.add_stage(&mut net, "SELECT R.A, S.D FROM R, S WHERE R.B = S.C", "RS").unwrap();
//! p.add_final_stage(&mut net, "SELECT RS.A, T.F FROM RS, T WHERE RS.D = T.E").unwrap();
//!
//! net.insert_tuple(driver, "R", vec![Value::Int(1), Value::Int(5)]).unwrap();
//! net.insert_tuple(driver, "S", vec![Value::Int(5), Value::Int(9)]).unwrap();
//! net.insert_tuple(driver, "T", vec![Value::Int(9), Value::Int(42)]).unwrap();
//! p.pump(&mut net).unwrap();
//! assert_eq!(p.results(&net)[0].values, vec![Value::Int(1), Value::Int(42)]);
//! ```

use std::collections::HashSet;

use cq_overlay::NodeHandle;
use cq_relational::{Notification, QueryKey};

use crate::error::{EngineError, Result};
use crate::network::Network;

/// One stage feeding a derived relation.
#[derive(Clone, Debug)]
struct Feed {
    query: QueryKey,
    derived_relation: String,
    /// Content already republished (set semantics — duplicate notification
    /// contents must not produce duplicate derived tuples).
    seen: HashSet<Notification>,
    /// How much of the driver's inbox this feed has consumed.
    cursor: usize,
}

/// A continuous multi-way join evaluated as chained two-way stages.
#[derive(Clone, Debug)]
pub struct Pipeline {
    driver: NodeHandle,
    feeds: Vec<Feed>,
    final_queries: Vec<QueryKey>,
}

impl Pipeline {
    /// Creates a pipeline whose intermediate results flow through `driver`
    /// (the node that subscribes to every stage and republishes derived
    /// tuples).
    pub fn new(driver: NodeHandle) -> Self {
        Pipeline {
            driver,
            feeds: Vec::new(),
            final_queries: Vec::new(),
        }
    }

    /// The driver node.
    pub fn driver(&self) -> NodeHandle {
        self.driver
    }

    /// Adds an intermediate stage: `sql` is posed from the driver and its
    /// notifications are republished as tuples of `derived_relation`
    /// (which must exist in the catalog with one attribute per select item,
    /// positionally typed).
    pub fn add_stage(
        &mut self,
        net: &mut Network,
        sql: &str,
        derived_relation: &str,
    ) -> Result<QueryKey> {
        let schema = net.catalog().get(derived_relation)?.clone();
        let key = net.pose_query_sql(self.driver, sql)?;
        // Validate arity up front: pose_query_sql just succeeded, so the
        // posed-query log is non-empty and its last entry is this query.
        let query = net
            .posed_queries()
            .last()
            .expect("query was just posed")
            .clone();
        if query.select().len() != schema.arity() {
            return Err(EngineError::Relational(
                cq_relational::RelationalError::SchemaMismatch {
                    relation: derived_relation.to_string(),
                    detail: format!(
                        "stage selects {} values but the derived relation has {} attributes",
                        query.select().len(),
                        schema.arity()
                    ),
                },
            ));
        }
        self.feeds.push(Feed {
            query: key.clone(),
            derived_relation: derived_relation.to_string(),
            seen: HashSet::new(),
            cursor: 0,
        });
        Ok(key)
    }

    /// Adds the final stage: an ordinary query whose notifications are the
    /// pipeline's output (read them from the driver's inbox).
    pub fn add_final_stage(&mut self, net: &mut Network, sql: &str) -> Result<QueryKey> {
        let key = net.pose_query_sql(self.driver, sql)?;
        self.final_queries.push(key.clone());
        Ok(key)
    }

    /// Propagates pending intermediate results: republishes every new
    /// notification of every feeding stage as a derived tuple, repeating
    /// until no stage produces anything new. Returns the number of derived
    /// tuples inserted.
    ///
    /// Call after each batch of base-relation insertions (the simulator is
    /// synchronous; a deployment would run this continuously at the driver).
    pub fn pump(&mut self, net: &mut Network) -> Result<usize> {
        let mut inserted = 0usize;
        loop {
            let mut progressed = false;
            for fi in 0..self.feeds.len() {
                // Collect the new derived tuples for this feed first; the
                // insertions below may extend the inbox.
                let fresh: Vec<Notification> = {
                    let feed = &self.feeds[fi];
                    net.inbox(self.driver)
                        .iter()
                        .skip(feed.cursor)
                        .filter(|n| n.query_key == feed.query)
                        .filter(|n| !feed.seen.contains(*n))
                        .cloned()
                        .collect()
                };
                self.feeds[fi].cursor = net.inbox(self.driver).len();
                for n in fresh {
                    let rel = self.feeds[fi].derived_relation.clone();
                    net.insert_tuple(self.driver, &rel, n.values.clone())?;
                    self.feeds[fi].seen.insert(n);
                    inserted += 1;
                    progressed = true;
                }
            }
            if !progressed {
                return Ok(inserted);
            }
        }
    }

    /// The pipeline's final results so far: distinct notification contents
    /// of the final-stage queries in the driver's inbox.
    pub fn results(&self, net: &Network) -> Vec<Notification> {
        let mut seen = HashSet::new();
        net.inbox(self.driver)
            .iter()
            .filter(|n| self.final_queries.contains(&n.query_key))
            .filter(|n| seen.insert((*n).clone()))
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Algorithm, EngineConfig};
    use cq_relational::{Catalog, DataType, RelationSchema, Value};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(RelationSchema::of("R", &[("A", DataType::Int), ("B", DataType::Int)]).unwrap())
            .unwrap();
        c.register(RelationSchema::of("S", &[("C", DataType::Int), ("D", DataType::Int)]).unwrap())
            .unwrap();
        c.register(RelationSchema::of("T", &[("E", DataType::Int), ("F", DataType::Int)]).unwrap())
            .unwrap();
        // Derived relation: (R.A, S.D) pairs from stage one.
        c.register(
            RelationSchema::of("RS", &[("A", DataType::Int), ("D", DataType::Int)]).unwrap(),
        )
        .unwrap();
        c
    }

    #[test]
    fn three_way_join_via_pipeline() {
        let mut net = Network::new(EngineConfig::new(Algorithm::DaiT).with_nodes(48), catalog());
        let driver = net.node_at(0);
        let mut p = Pipeline::new(driver);
        // Stage 1: R ⋈ S on B = C, emitting (A, D) into RS.
        p.add_stage(&mut net, "SELECT R.A, S.D FROM R, S WHERE R.B = S.C", "RS")
            .unwrap();
        // Stage 2: RS ⋈ T on D = E, emitting (A, F).
        p.add_final_stage(&mut net, "SELECT RS.A, T.F FROM RS, T WHERE RS.D = T.E")
            .unwrap();

        // R(1, 5) ⋈ S(5, 9) → RS(1, 9); RS(1, 9) ⋈ T(9, 42) → (1, 42).
        net.insert_tuple(driver, "R", vec![Value::Int(1), Value::Int(5)])
            .unwrap();
        net.insert_tuple(driver, "S", vec![Value::Int(5), Value::Int(9)])
            .unwrap();
        net.insert_tuple(driver, "T", vec![Value::Int(9), Value::Int(42)])
            .unwrap();
        let derived = p.pump(&mut net).unwrap();
        assert_eq!(derived, 1, "one RS tuple republished");

        let results = p.results(&net);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].values, vec![Value::Int(1), Value::Int(42)]);
    }

    #[test]
    fn pipeline_matches_brute_force_three_way_join() {
        let mut net = Network::new(EngineConfig::new(Algorithm::Sai).with_nodes(48), catalog());
        let driver = net.node_at(0);
        let mut p = Pipeline::new(driver);
        p.add_stage(&mut net, "SELECT R.A, S.D FROM R, S WHERE R.B = S.C", "RS")
            .unwrap();
        p.add_final_stage(&mut net, "SELECT RS.A, T.F FROM RS, T WHERE RS.D = T.E")
            .unwrap();

        let mut rs_data = Vec::new();
        let mut s_data = Vec::new();
        let mut t_data = Vec::new();
        let mut x = 7u64;
        let mut rnd = move |m: u64| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x % m) as i64
        };
        for _ in 0..25 {
            let (a, b) = (rnd(10), rnd(4));
            net.insert_tuple(driver, "R", vec![Value::Int(a), Value::Int(b)])
                .unwrap();
            rs_data.push((a, b));
            let (c, d) = (rnd(4), rnd(5));
            net.insert_tuple(driver, "S", vec![Value::Int(c), Value::Int(d)])
                .unwrap();
            s_data.push((c, d));
            let (e, f) = (rnd(5), rnd(10));
            net.insert_tuple(driver, "T", vec![Value::Int(e), Value::Int(f)])
                .unwrap();
            t_data.push((e, f));
            p.pump(&mut net).unwrap();
        }
        p.pump(&mut net).unwrap();

        // Brute-force three-way join with the pipeline's time semantics:
        // every base tuple was inserted after all queries, so every
        // combination is eligible.
        let mut expected = HashSet::new();
        for &(a, b) in &rs_data {
            for &(c, d) in &s_data {
                if b != c {
                    continue;
                }
                for &(e, f) in &t_data {
                    if d == e {
                        expected.insert(vec![Value::Int(a), Value::Int(f)]);
                    }
                }
            }
        }
        let got: HashSet<Vec<Value>> = p.results(&net).into_iter().map(|n| n.values).collect();
        assert_eq!(got, expected);
        assert!(!got.is_empty(), "workload should produce three-way matches");
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let mut net = Network::new(EngineConfig::new(Algorithm::DaiT).with_nodes(32), catalog());
        let driver = net.node_at(0);
        let mut p = Pipeline::new(driver);
        let err = p
            .add_stage(&mut net, "SELECT R.A FROM R, S WHERE R.B = S.C", "RS")
            .unwrap_err();
        assert!(matches!(err, EngineError::Relational(_)));
    }
}
