//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no package registry, so this crate implements
//! the subset of the proptest 1.x API used by the workspace's property
//! tests: the [`proptest!`], [`prop_assert!`], [`prop_assert_eq!`] and
//! [`prop_oneof!`] macros, integer-range / tuple / `Just` / `prop_map`
//! strategies, `prop::collection::vec`, `prop::array::uniform3` and
//! `prop::bool::ANY`.
//!
//! Differences from upstream, by design:
//! - **No shrinking.** On failure the runner panics with the case number and
//!   the `Debug` rendering of every input, which is enough to reproduce (the
//!   per-case RNG is a pure function of test name and case index).
//! - **Deterministic.** Upstream seeds from the OS by default; here every
//!   run of a test samples the same inputs, which suits a repository whose
//!   tier-1 gate must be reproducible.

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};
    use std::fmt;

    /// Runner configuration; only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// A failed property inside a test case (produced by `prop_assert!`).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// The RNG handed to strategies: seeded from the test's module path and
    /// the case index so every case is independent and reproducible.
    #[derive(Clone, Debug)]
    pub struct TestRng(StdRng);

    impl TestRng {
        pub fn for_case(test_name: &str, case: u32) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(
                h ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            ))
        }
    }

    impl RngCore for TestRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating random values of one type.
    ///
    /// Unlike upstream (value trees + shrinking), a strategy here is just a
    /// sampler. `sample` is object-safe so heterogeneous strategies can be
    /// boxed for [`Union`] (the engine behind `prop_oneof!`).
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `Strategy::prop_map` adapter.
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Weighted choice between type-erased alternatives (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u32,
    }

    impl<T> Union<T> {
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof! weights must not all be zero");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.gen_range(0..self.total);
            for (w, s) in &self.arms {
                if pick < *w {
                    return s.sample(rng);
                }
                pick -= *w;
            }
            unreachable!("weighted pick exceeded total weight")
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
    }
}

/// `prop::collection` — container strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A `Vec` whose length is drawn from `len` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = if self.len.start >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// `prop::array` — fixed-size array strategies.
pub mod array {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// An array of three independent draws from `element`.
    pub fn uniform3<S: Strategy>(element: S) -> Uniform3<S> {
        Uniform3(element)
    }

    pub struct Uniform3<S>(S);

    impl<S: Strategy> Strategy for Uniform3<S> {
        type Value = [S::Value; 3];
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            [self.0.sample(rng), self.0.sample(rng), self.0.sample(rng)]
        }
    }
}

/// `prop::bool` — boolean strategies.
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Uniform over `{false, true}`.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// The canonical instance, mirroring `proptest::bool::ANY`.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.gen::<bool>()
        }
    }
}

/// The glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Mirrors upstream's `prelude::prop` module tree.
    pub mod prop {
        pub use crate::array;
        pub use crate::bool;
        pub use crate::collection;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...)` item becomes
/// a `#[test]` that samples its arguments `config.cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        { $body }
                        Ok(())
                    })();
                if let Err(e) = outcome {
                    panic!(
                        "property failed at case {case}: {e}\n    inputs: {inputs}"
                    );
                }
            }
        }
    )*};
}

/// Weighted choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Asserts a condition inside a `proptest!` body, reporting the sampled
/// inputs on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*), l, r
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn union_respects_weights_roughly() {
        let s = prop_oneof![
            1 => Just(0u32),
            9 => Just(1u32),
        ];
        let mut rng = crate::test_runner::TestRng::for_case("weights", 0);
        let ones: usize = (0..1000).map(|_| s.sample(&mut rng) as usize).sum();
        assert!(ones > 800 && ones < 990, "ones = {ones}");
    }

    #[test]
    fn vec_strategy_len_in_range() {
        let s = prop::collection::vec(0u64..10, 2..6);
        let mut rng = crate::test_runner::TestRng::for_case("veclen", 1);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_end_to_end(
            a in 0u64..100,
            flip in prop::bool::ANY,
            xs in prop::collection::vec(-5i64..5, 1..8),
            triple in prop::array::uniform3(0i64..3),
        ) {
            prop_assert!(a < 100);
            prop_assert!(u8::from(flip) <= 1);
            prop_assert!(!xs.is_empty() && xs.len() < 8);
            for x in &xs {
                prop_assert!((-5..5).contains(x), "x out of range: {}", x);
            }
            prop_assert!(triple.iter().all(|&t| (0..3).contains(&t)));
        }

        #[test]
        fn mapped_and_tuple_strategies(
            pair in ((-3i64..3), (0u64..4)).prop_map(|(a, b)| (a * 2, b)),
        ) {
            prop_assert!(pair.0 % 2 == 0);
            prop_assert!(pair.1 < 4);
        }
    }
}
