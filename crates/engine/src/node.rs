//! Per-node protocol state: the local tables, the JFRT, observed arrival
//! statistics and the subscriber inbox.

use cq_fasthash::{FxHashMap, FxHashSet};
use cq_overlay::Id;
use cq_relational::Notification;

use crate::jfrt::Jfrt;
use crate::replication::ReplicaStore;
use crate::tables::keys::{bucket_mut, lookup_key, StrPair};
use crate::tables::{Alqt, VStore, Vlqt, Vltt};

/// Arrival statistics a rewriter keeps per `(relation, attribute)` — "each
/// node can keep track of the total number of tuples that have arrived … in
/// the last time window" and of the values seen (Section 4.3.6).
///
/// Counts are kept for the current and the previous window; probes read
/// their sum, so a burst older than two windows no longer biases the
/// index-attribute choice.
#[derive(Clone, Debug, Default)]
pub struct ArrivalStats {
    /// Tuples seen in the current window.
    pub count: u64,
    /// Tuples seen in the previous window.
    pub prev_count: u64,
    /// Distinct values observed (canonical forms; kept across windows — the
    /// domain estimate only grows more accurate).
    pub distinct: FxHashSet<Box<str>>,
}

impl ArrivalStats {
    /// The rate estimate a probe reads: current + previous window.
    pub fn windowed_count(&self) -> u64 {
        self.count + self.prev_count
    }

    /// Rolls the window: current becomes previous, current resets.
    pub fn roll(&mut self) {
        self.prev_count = self.count;
        self.count = 0;
    }
}

/// The protocol state of one network node.
#[derive(Clone, Debug, Default)]
pub struct NodeState {
    /// Attribute-level query table (rewriter role).
    pub alqt: Alqt,
    /// Value-level query table (evaluator role, SAI/DAI-T).
    pub vlqt: Vlqt,
    /// Value-level tuple table (evaluator role, SAI/DAI-Q).
    pub vltt: Vltt,
    /// DAI-V evaluator store.
    pub vstore: VStore,
    /// Join Fingers Routing Table (rewriter role, Section 4.7).
    pub jfrt: Jfrt,
    /// DAI-T rewriter memory of already-reindexed rewritten-query keys —
    /// "a rewriter does not need to reindex the same rewritten query more
    /// than once" (Section 4.4.3).
    pub reindexed: FxHashSet<String>,
    /// Notifications this node has received as a subscriber.
    pub inbox: Vec<Notification>,
    /// Notifications held for offline subscribers whose key identifier this
    /// node is responsible for (Section 4.6), with that identifier.
    pub offline_store: Vec<(Id, Notification)>,
    /// Per-(relation, attribute) arrival statistics.
    pub arrivals: FxHashMap<StrPair, ArrivalStats>,
    /// Counter for deriving this node's query keys.
    pub query_counter: u64,
    /// Mirrored copies of predecessors' primary state (k-successor
    /// replication); dormant until promoted after a failure. Excluded from
    /// [`NodeState::storage_load`] — replicas are redundancy, not load.
    pub replicas: ReplicaStore,
}

impl NodeState {
    /// Fresh, empty state.
    pub fn new() -> Self {
        NodeState::default()
    }

    /// Records an attribute-level tuple arrival for strategy statistics.
    ///
    /// `value_key` is the tuple value's canonical form; it is only copied
    /// into the distinct-value set the first time it is seen.
    pub fn record_arrival(&mut self, relation: &str, attr: &str, value_key: &str) {
        let stats = bucket_mut(&mut self.arrivals, relation, attr);
        stats.count += 1;
        if !stats.distinct.contains(value_key) {
            stats.distinct.insert(value_key.into());
        }
    }

    /// Arrival statistics for `(relation, attr)`:
    /// `(windowed count, distinct values)`.
    pub fn arrival_stats(&self, relation: &str, attr: &str) -> (u64, usize) {
        self.arrivals
            .get(lookup_key(&(relation, attr)))
            .map_or((0, 0), |s| (s.windowed_count(), s.distinct.len()))
    }

    /// Rolls every arrival-statistics window (run by the simulator when a
    /// measurement window ends).
    pub fn roll_statistics_window(&mut self) {
        for s in self.arrivals.values_mut() {
            s.roll();
        }
    }

    /// The node's storage load: every item it holds on behalf of the
    /// network (queries, rewritten queries, tuples, offline notifications).
    pub fn storage_load(&self) -> usize {
        self.alqt.len()
            + self.vlqt.len()
            + self.vltt.len()
            + self.vstore.len()
            + self.offline_store.len()
    }

    /// Storage held in the evaluator role only (value-level items), used by
    /// the E8/E9 experiments.
    pub fn evaluator_storage(&self) -> usize {
        self.vlqt.len() + self.vltt.len() + self.vstore.len()
    }

    /// Number of mirrored replica items held for other nodes (the
    /// robustness layer's redundancy overhead; not part of
    /// [`NodeState::storage_load`]).
    pub fn replica_load(&self) -> usize {
        self.replicas.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrival_stats_accumulate() {
        let mut n = NodeState::new();
        n.record_arrival("R", "B", "i:1");
        n.record_arrival("R", "B", "i:1");
        n.record_arrival("R", "B", "i:2");
        assert_eq!(n.arrival_stats("R", "B"), (3, 2));
        assert_eq!(n.arrival_stats("R", "C"), (0, 0));
    }

    #[test]
    fn arrival_window_forgets_old_bursts() {
        let mut n = NodeState::new();
        for _ in 0..10 {
            n.record_arrival("R", "B", "i:1");
        }
        n.roll_statistics_window();
        assert_eq!(
            n.arrival_stats("R", "B").0,
            10,
            "previous window still counted"
        );
        n.record_arrival("R", "B", "i:2");
        assert_eq!(n.arrival_stats("R", "B").0, 11);
        n.roll_statistics_window();
        assert_eq!(
            n.arrival_stats("R", "B").0,
            1,
            "burst two windows back forgotten"
        );
        n.roll_statistics_window();
        assert_eq!(n.arrival_stats("R", "B").0, 0);
        // distinct-value knowledge is retained
        assert_eq!(n.arrival_stats("R", "B").1, 2);
    }

    #[test]
    fn storage_load_sums_tables() {
        let n = NodeState::new();
        assert_eq!(n.storage_load(), 0);
        assert_eq!(n.evaluator_storage(), 0);
    }
}
