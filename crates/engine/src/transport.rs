//! The transport layer: message queues, multisend routing, JFRT-assisted
//! sends, the fault-injection pump with reliable delivery, and k-successor
//! replica mirroring.
//!
//! This layer moves [`Message`]s between nodes and accounts the traffic; it
//! never inspects algorithm-specific payloads. Algorithm logic lives behind
//! [`crate::protocol::Protocol`], and the message loop that ties the two
//! together is in [`crate::network::Network`].

use std::collections::VecDeque;

use cq_fasthash::FxHashMap;
use cq_overlay::{Id, NodeHandle};
use cq_relational::Notification;
use rand::Rng;

use crate::error::Result;
use crate::faults::{Delivery, FaultPipe, MsgId};
use crate::indexing;
use crate::jfrt::JfrtLookup;
use crate::messages::Message;
use crate::metrics::TrafficKind;
use crate::network::Network;
use crate::protocol::Matches;
use crate::replication::ReplicaItem;

/// One enqueued protocol message: the payload plus the transport envelope
/// the reliable-delivery layer needs (sender, resolved receiver, target
/// identifier, and whether retransmissions re-route by identifier).
pub(crate) struct Pending {
    /// Sending node (retransmissions originate here).
    pub(crate) from: NodeHandle,
    /// Resolved receiver.
    pub(crate) to: NodeHandle,
    /// The identifier the message was addressed to.
    pub(crate) target: Id,
    /// `true` for identifier-routed messages (retransmissions re-resolve the
    /// owner), `false` for node-addressed ones (direct notifications,
    /// replicas) which die with their receiver.
    pub(crate) reroute: bool,
    /// The payload.
    pub(crate) msg: Message,
}

/// Transport state owned by the network: the in-flight message queue and
/// the optional fault-injection pipe.
pub(crate) struct Transport {
    /// FIFO queue of sent-but-not-yet-handled messages.
    pub(crate) pending: VecDeque<Pending>,
    /// The fault-injection + reliable-delivery pipe; `None` when message
    /// delivery is perfect (the default), in which case `pending` is
    /// drained FIFO exactly as the original engine did.
    pub(crate) pipe: Option<Box<FaultPipe>>,
}

impl Transport {
    /// Perfect-delivery transport (`pipe` installed separately when faults
    /// are configured).
    pub(crate) fn new(pipe: Option<Box<FaultPipe>>) -> Self {
        Transport {
            pending: VecDeque::new(),
            pipe,
        }
    }
}

// The sending half: how messages leave a node. These are inherent methods
// of `Network` operating on the transport state; they touch routing, hop
// accounting and queues only — never algorithm logic.
impl Network {
    /// Sends a batch of messages from `node` using the configured multisend
    /// design, accounting traffic, and enqueues them at their owners.
    pub(crate) fn dispatch_from(
        &mut self,
        node: NodeHandle,
        targets: Vec<(Id, Message)>,
        kind: TrafficKind,
    ) -> Result<()> {
        if targets.is_empty() {
            return Ok(());
        }
        let ids: Vec<Id> = targets.iter().map(|(id, _)| *id).collect();
        let outcome = if self.config.recursive_multisend {
            self.ring.multisend_recursive(node, &ids)?
        } else {
            self.ring.multisend_iterative(node, &ids)?
        };
        self.metrics
            .record_traffic_batch(kind, targets.len() as u64, outcome.total_hops);
        let mut by_id: FxHashMap<Id, Vec<Message>> =
            FxHashMap::with_capacity_and_hasher(targets.len(), Default::default());
        for (id, msg) in targets {
            by_id.entry(id).or_default().push(msg);
        }
        for (owner, ids) in outcome.deliveries {
            for id in ids {
                for msg in by_id.remove(&id).into_iter().flatten() {
                    self.transport.pending.push_back(Pending {
                        from: node,
                        to: owner,
                        target: id,
                        reroute: true,
                        msg,
                    });
                }
            }
        }
        debug_assert!(by_id.is_empty(), "every target id must be delivered");
        Ok(())
    }

    /// Sends one message from a rewriter toward a value-level identifier,
    /// consulting the JFRT when enabled (Section 4.7).
    pub(crate) fn send_via_jfrt(&mut self, from: NodeHandle, id: Id, msg: Message) -> Result<()> {
        let owner = if self.config.use_jfrt {
            let lookup = {
                let ring = &self.ring;
                self.nodes[from.index()]
                    .jfrt
                    .lookup(id, |h, id| ring.node(h).is_alive() && ring.owns(h, id))
            };
            match lookup {
                JfrtLookup::Hit(owner) => {
                    self.metrics.record_traffic(TrafficKind::Reindex, 1);
                    owner
                }
                JfrtLookup::Miss => {
                    let (owner, hops) = self.ring.route_owner(from, id)?;
                    self.metrics.record_traffic(TrafficKind::Reindex, hops);
                    self.nodes[from.index()].jfrt.record(id, owner);
                    owner
                }
                JfrtLookup::Stale(_) => {
                    // one wasted hop to the stale node, then ordinary routing
                    let (owner, hops) = self.ring.route_owner(from, id)?;
                    self.metrics.record_traffic(TrafficKind::Reindex, hops + 1);
                    self.nodes[from.index()].jfrt.record(id, owner);
                    owner
                }
            }
        } else {
            let (owner, hops) = self.ring.route_owner(from, id)?;
            self.metrics.record_traffic(TrafficKind::Reindex, hops);
            owner
        };
        self.transport.pending.push_back(Pending {
            from,
            to: owner,
            target: id,
            reroute: true,
            msg,
        });
        Ok(())
    }

    /// Enqueues a node-addressed message (direct notification or replica):
    /// the receiver is known by handle, and retransmissions never re-route.
    pub(crate) fn push_direct(&mut self, from: NodeHandle, to: NodeHandle, msg: Message) {
        self.transport.pending.push_back(Pending {
            from,
            to,
            target: self.ring.id_of(to),
            reroute: false,
            msg,
        });
    }

    /// Mirrors one freshly inserted primary item onto `at`'s `k` first alive
    /// successors (no-op when replication is off).
    pub(crate) fn replicate(&mut self, at: NodeHandle, item: ReplicaItem) {
        let k = self.repl_k();
        if k == 0 {
            return;
        }
        for succ in self.ring.successors_of(at, k) {
            self.metrics.faults.replica_messages += 1;
            self.push_direct(
                at,
                succ,
                Message::Replicate {
                    item: Box::new(item.clone()),
                },
            );
        }
    }

    /// Processes queued protocol messages until quiescence — through the
    /// perfect FIFO queue by default, or through the fault-injection pipe
    /// when one is configured.
    pub(crate) fn process_all(&mut self) -> Result<()> {
        if self.transport.pipe.is_some() {
            let mut pipe = self.transport.pipe.take().expect("checked above");
            let result = self.pump_faulty(&mut pipe);
            self.transport.pipe = Some(pipe);
            result
        } else {
            while let Some(p) = self.transport.pending.pop_front() {
                self.dispatch(p.to, p.msg)?;
            }
            Ok(())
        }
    }

    /// The tick-based message pump used when faults are injected: sends pass
    /// through loss/duplication/delay draws, receivers dedup on `(sender,
    /// seq)`, unacknowledged messages retransmit with exponential backoff,
    /// and abrupt node failures strike between ticks.
    fn pump_faulty(&mut self, pipe: &mut FaultPipe) -> Result<()> {
        loop {
            // Fold freshly produced sends into the pipe (handlers and
            // promotions push onto `pending`).
            while let Some(p) = self.transport.pending.pop_front() {
                self.transmit(pipe, p);
            }
            if !pipe.busy() {
                return Ok(());
            }
            pipe.tick += 1;
            self.inject_failures(pipe)?;
            let now = pipe.tick;
            for delivery in pipe.in_flight.remove(&now).unwrap_or_default() {
                match delivery {
                    Delivery::Data { id, to, msg } => {
                        if !self.ring.node(to).is_alive() {
                            self.metrics.faults.messages_lost += 1;
                            continue;
                        }
                        if pipe.record_arrival(id, to) {
                            self.metrics.faults.dedup_suppressed += 1;
                        } else {
                            self.dispatch(to, msg)?;
                        }
                        // Ack every arrival (a duplicate usually means the
                        // previous ack was lost). Acks are subject to loss
                        // like any transmission.
                        if pipe.cfg.retries_enabled() {
                            if let Some(o) = pipe.outstanding.get(&id) {
                                let sender = o.from;
                                if pipe.cfg.loss_rate > 0.0
                                    && pipe.rng.gen::<f64>() < pipe.cfg.loss_rate
                                {
                                    self.metrics.faults.messages_lost += 1;
                                } else {
                                    pipe.schedule(now + 1, Delivery::Ack { id, to: sender });
                                }
                            }
                        }
                    }
                    Delivery::Ack { id, to } => {
                        // An ack addressed to a node that died in flight
                        // never closes the window; `maybe_retransmit` drops
                        // the dead sender's window on its next firing.
                        if self.ring.node(to).is_alive() {
                            pipe.outstanding.remove(&id);
                        }
                    }
                }
            }
            for id in pipe.retry_at.remove(&now).unwrap_or_default() {
                self.maybe_retransmit(pipe, id, now);
            }
        }
    }

    /// Registers one fresh send with the pipe: assigns a `(sender, seq)`
    /// identifier, opens the ack window when retries are enabled, and
    /// schedules the transmission copies through the fault draws.
    fn transmit(&mut self, pipe: &mut FaultPipe, p: Pending) {
        let id = pipe.alloc_seq(p.from);
        if pipe.cfg.retries_enabled() {
            pipe.open_window(id, &p.from, p.target, p.reroute, &p.to, &p.msg);
            pipe.schedule_retry(pipe.tick + pipe.cfg.ack_timeout, id);
        }
        self.schedule_copies(pipe, id, p.to, p.msg);
    }

    /// Draws duplication, loss and delay for one logical transmission and
    /// schedules the surviving copies.
    fn schedule_copies(&mut self, pipe: &mut FaultPipe, id: MsgId, to: NodeHandle, msg: Message) {
        let mut copies = 1u32;
        if pipe.cfg.duplicate_rate > 0.0 && pipe.rng.gen::<f64>() < pipe.cfg.duplicate_rate {
            copies = 2;
            self.metrics.faults.messages_duplicated += 1;
        }
        for _ in 0..copies {
            if pipe.cfg.loss_rate > 0.0 && pipe.rng.gen::<f64>() < pipe.cfg.loss_rate {
                self.metrics.faults.messages_lost += 1;
                continue;
            }
            let mut at = pipe.tick + 1;
            if pipe.cfg.delay_rate > 0.0
                && pipe.cfg.max_delay > 0
                && pipe.rng.gen::<f64>() < pipe.cfg.delay_rate
            {
                at += pipe.rng.gen_range(1..=pipe.cfg.max_delay);
            }
            pipe.schedule(
                at,
                Delivery::Data {
                    id,
                    to,
                    msg: msg.clone(),
                },
            );
        }
    }

    /// A retry check fired for `id`: if the message is still unacknowledged,
    /// retransmit it (re-resolving the owner for identifier-routed messages)
    /// and schedule the next check with exponential backoff.
    fn maybe_retransmit(&mut self, pipe: &mut FaultPipe, id: MsgId, now: u64) {
        let Some(mut o) = pipe.take_outstanding(id) else {
            return; // acknowledged in the meantime
        };
        if !self.ring.node(o.from).is_alive() || o.attempt >= pipe.cfg.max_retries {
            return; // sender died, or we give up
        }
        o.attempt += 1;
        let next = now + pipe.backoff(o.attempt);
        if o.reroute {
            match self.ring.route_owner(o.from, o.target) {
                Ok((owner, hops)) => {
                    o.to = owner;
                    self.metrics.faults.retransmission_hops += hops as u64;
                }
                Err(_) => {
                    // The overlay is mid-repair; keep the window open and
                    // try again after the backoff.
                    pipe.reopen_window(id, o);
                    pipe.schedule_retry(next, id);
                    return;
                }
            }
        } else {
            if !self.ring.node(o.to).is_alive() {
                return; // node-addressed and the receiver is gone
            }
            self.metrics.faults.retransmission_hops += 1;
        }
        self.metrics.faults.retransmissions += 1;
        self.schedule_copies(pipe, id, o.to, o.msg.clone());
        pipe.reopen_window(id, o);
        pipe.schedule_retry(next, id);
    }

    /// Injects scheduled and rate-driven abrupt node failures for the
    /// current tick, then repairs pointers and promotes replicas.
    fn inject_failures(&mut self, pipe: &mut FaultPipe) -> Result<()> {
        let mut failed = false;
        while pipe.sched_idx < pipe.cfg.scheduled_failures.len()
            && pipe.cfg.scheduled_failures[pipe.sched_idx] <= pipe.tick
        {
            pipe.sched_idx += 1;
            failed |= self.fail_random_alive(pipe);
        }
        if pipe.cfg.failure_rate > 0.0
            && pipe.failures_injected < pipe.cfg.max_failures
            && pipe.rng.gen::<f64>() < pipe.cfg.failure_rate
            && self.fail_random_alive(pipe)
        {
            pipe.failures_injected += 1;
            failed = true;
        }
        if failed {
            self.ring.stabilize_all(1);
            self.promote_replicas()?;
        }
        Ok(())
    }

    /// Abruptly fails one pseudo-random alive node (never the last one).
    /// Returns whether a node was failed.
    fn fail_random_alive(&mut self, pipe: &mut FaultPipe) -> bool {
        if self.ring.len() <= 1 {
            return false;
        }
        let i = pipe.rng.gen_range(0..self.ring.len());
        let victim = self.ring.alive_nodes().nth(i).expect("index in range");
        self.fail_node_state(victim).is_ok()
    }

    /// Delivers accumulated join matches to their subscribers (Section 4.6).
    pub(crate) fn deliver_matches(&mut self, from: NodeHandle, matches: Matches) -> Result<()> {
        match matches {
            Matches::Full(notifications) => self.deliver_notifications(from, notifications),
            Matches::Counts(counts) => {
                for (subscriber, count) in counts {
                    if count == 0 {
                        continue;
                    }
                    self.metrics.notifications_delivered += count;
                    match self.subscribers.get(&subscriber) {
                        Some(&h) if self.ring.node(h).is_alive() => {
                            self.metrics.record_traffic(TrafficKind::Notify, 1);
                        }
                        _ => {
                            self.metrics.notifications_stored_offline += count;
                            let id = indexing::subscriber_id(self.ring.space(), &subscriber);
                            let (_, hops) = self.ring.route_owner(from, id)?;
                            self.metrics.record_traffic(TrafficKind::Notify, hops);
                        }
                    }
                }
                Ok(())
            }
        }
    }

    /// Full-retention delivery: every batch becomes a real protocol message
    /// ([`Message::Notify`] for online subscribers, routed
    /// [`Message::StoreNotifications`] otherwise), so the fault layer can
    /// lose, duplicate and retransmit deliveries like any other traffic.
    /// `notifications_delivered` is counted by the receiving handlers — at
    /// actual inbox/offline-store arrival — fixing the old skew where sends
    /// were counted before (or without) storage happening.
    fn deliver_notifications(
        &mut self,
        from: NodeHandle,
        notifications: Vec<Notification>,
    ) -> Result<()> {
        if notifications.is_empty() {
            return Ok(());
        }
        // Group notifications per receiver into one message.
        let mut by_subscriber: FxHashMap<String, Vec<Notification>> = FxHashMap::default();
        for n in notifications {
            by_subscriber
                .entry(n.subscriber.clone())
                .or_default()
                .push(n);
        }
        for (subscriber, batch) in by_subscriber {
            match self.subscribers.get(&subscriber) {
                Some(&h) if self.ring.node(h).is_alive() => {
                    // Online at a known IP: one direct hop.
                    self.metrics.record_traffic(TrafficKind::Notify, 1);
                    self.push_direct(
                        from,
                        h,
                        Message::Notify {
                            notifications: batch,
                        },
                    );
                }
                _ => {
                    // Offline: route toward Successor(Id(n)) and store there.
                    let id = indexing::subscriber_id(self.ring.space(), &subscriber);
                    let (owner, hops) = self.ring.route_owner(from, id)?;
                    self.metrics.record_traffic(TrafficKind::Notify, hops);
                    self.transport.pending.push_back(Pending {
                        from,
                        to: owner,
                        target: id,
                        reroute: true,
                        msg: Message::StoreNotifications {
                            subscriber_id: id,
                            notifications: batch,
                        },
                    });
                }
            }
        }
        Ok(())
    }
}
