//! # cq-relational — data model and query language
//!
//! The relational substrate of the continuous equi-join system (the paper's
//! Chapter 3 plus the rewriting machinery of Chapter 4):
//!
//! * schemas, catalogs, typed tuples with publication times,
//! * the expression language of join conditions (arithmetic + string),
//! * continuous two-way equi-join queries with T1/T2 classification,
//! * an SQL parser for the supported subset,
//! * query rewriting (generalized projection) producing the select-project
//!   queries that are reindexed at the value level, and the notifications
//!   they emit.
//!
//! ```
//! use cq_relational::{parse_query, Catalog, DataType, QueryKey, RelationSchema, Timestamp};
//!
//! let mut catalog = Catalog::new();
//! catalog.register(RelationSchema::of("Document", &[
//!     ("Id", DataType::Int), ("Title", DataType::Str),
//!     ("Conference", DataType::Str), ("AuthorId", DataType::Int),
//! ]).unwrap()).unwrap();
//! catalog.register(RelationSchema::of("Authors", &[
//!     ("Id", DataType::Int), ("Name", DataType::Str), ("Surname", DataType::Str),
//! ]).unwrap()).unwrap();
//!
//! // The paper's e-learning example query (Section 3.2).
//! let parsed = parse_query(
//!     "SELECT D.Title, D.Conference FROM Document AS D, Authors AS A \
//!      WHERE D.AuthorId = A.Id AND A.Surname = 'Smith'",
//!     &catalog,
//! ).unwrap();
//! let query = parsed.into_query(QueryKey::derive("node-1", 0), "node-1",
//!                               Timestamp(0), &catalog).unwrap();
//! assert_eq!(query.relation(cq_relational::Side::Left), "Document");
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod expr;
pub mod parser;
pub mod query;
pub mod rewrite;
pub mod schema;
pub mod tuple;
pub mod value;

pub use error::{RelationalError, Result};
pub use expr::{BinOp, Expr};
pub use parser::{parse_query, ParsedQuery};
pub use query::{Filter, JoinQuery, QueryKey, QueryRef, QuerySpec, QueryType, SelectItem, Side};
pub use rewrite::{MatchTarget, Notification, RewrittenQuery};
pub use schema::{Attribute, Catalog, RelationSchema};
pub use tuple::Tuple;
pub use value::{DataType, Timestamp, Value};
