//! Structured, causal event tracing across overlay → engine → sim.
//!
//! The paper's evaluation is built entirely on per-message accounting
//! (hops, filtering load, storage load, notifications), yet a finished run
//! only exposes the final [`crate::metrics::Metrics`] snapshot. This module
//! adds the missing window: every interesting engine action — a message
//! send with its hop-by-hop route, a fault decision, an index mutation, a
//! join evaluation, a replica promotion — can be emitted as a typed
//! [`TraceEvent`] into a pluggable [`TraceSink`].
//!
//! Design constraints:
//!
//! * **Zero cost when off.** The network holds an `Option<Arc<dyn
//!   TraceSink>>` that defaults to `None`; every emission site is a single
//!   branch on that option and builds the event inside a closure, so the
//!   disabled path allocates nothing and the simulation output is
//!   byte-identical with tracing compiled in.
//! * **Pure observation.** Sinks receive `&TraceEvent` and can never touch
//!   engine state, the RNG, or the metrics — enabling a sink cannot change
//!   a run's results, only record them.
//! * **Causality.** Every event carries the simulated tick (the network's
//!   logical clock) and the emitting node slot. Message events additionally
//!   carry a `(sender, seq)` [`MsgId`], so a delivered notification can be
//!   traced back through evaluator → rewriter → publisher hop by hop.
//!
//! Three sinks ship with the engine: [`NoopSink`] (explicit no-op),
//! [`RingBufferSink`] (bounded in-memory buffer, used by trace-driven
//! tests), and [`JsonlSink`] (streams one JSON object per line to a file;
//! [`TraceEvent::parse_jsonl`] round-trips it). [`SummarySink`] aggregates
//! per-kind counts and per-node hop histograms into a [`TraceSummary`],
//! and [`TeeSink`] fans one event stream into several sinks.

use std::collections::VecDeque;
use std::fs::File;
use std::io::Write as _;
use std::path::Path;
use std::sync::{Arc, Mutex};

use cq_fasthash::FxHashMap;
use cq_overlay::Id;

pub use crate::faults::MsgId;

/// One traced engine action. Every variant carries `tick` (the network's
/// logical clock when the event happened) and `node` (the slot of the node
/// the action is attributed to).
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A protocol message left `node` toward `to` (resolved receiver).
    /// `path`, when captured, is the hop-by-hop overlay route starting at
    /// the sender (`path.len() - 1` hops); multisend batch members share
    /// their fan-out tree and carry no individual path.
    MsgSend {
        /// Logical clock at emission.
        tick: u64,
        /// Sending node slot.
        node: u32,
        /// `(sender, seq)` message identifier.
        id: MsgId,
        /// Resolved receiver slot.
        to: u32,
        /// The identifier the message is addressed to.
        target: Id,
        /// Message kind label ([`crate::messages::Message::kind`]).
        kind: &'static str,
        /// Hop-by-hop route, sender first (unicast sends only).
        path: Option<Vec<u32>>,
    },
    /// A protocol message was handed to its receiver's handler.
    MsgDeliver {
        /// Logical clock at delivery.
        tick: u64,
        /// Receiving node slot.
        node: u32,
        /// `(sender, seq)` message identifier.
        id: MsgId,
        /// Message kind label.
        kind: &'static str,
    },
    /// The fault layer dropped one transmission copy (a loss draw, a lost
    /// ack, or a receiver that died in flight).
    FaultDrop {
        /// Logical clock.
        tick: u64,
        /// Intended receiver slot.
        node: u32,
        /// The affected message.
        id: MsgId,
    },
    /// The fault layer duplicated a transmission (two copies sent).
    FaultDuplicate {
        /// Logical clock.
        tick: u64,
        /// Intended receiver slot.
        node: u32,
        /// The affected message.
        id: MsgId,
    },
    /// The fault layer delayed a transmission copy by `extra` pump ticks.
    FaultDelay {
        /// Logical clock.
        tick: u64,
        /// Intended receiver slot.
        node: u32,
        /// The affected message.
        id: MsgId,
        /// Extra delay in pump ticks.
        extra: u64,
    },
    /// The reliable-delivery layer retransmitted an unacknowledged message.
    Retransmit {
        /// Logical clock.
        tick: u64,
        /// Original sender slot (retransmissions originate here).
        node: u32,
        /// The retransmitted message.
        id: MsgId,
        /// Retransmission attempt number (1-based).
        attempt: u32,
    },
    /// A receiver's dedup window suppressed a duplicate arrival.
    DedupSuppressed {
        /// Logical clock.
        tick: u64,
        /// Receiving node slot.
        node: u32,
        /// The suppressed message.
        id: MsgId,
    },
    /// A node failed abruptly (fault injection or scripted churn).
    NodeFailed {
        /// Logical clock.
        tick: u64,
        /// The victim's slot.
        node: u32,
    },
    /// An entry was inserted into one of a node's index tables.
    IndexInsert {
        /// Logical clock.
        tick: u64,
        /// Owning node slot.
        node: u32,
        /// Table name: `"alqt"`, `"vlqt"`, `"vltt"` or `"vstore"`.
        table: &'static str,
        /// `false` when the insert was a dedup hit (entry already present).
        fresh: bool,
    },
    /// Entries left one of a node's index tables (a failure wiped them, or
    /// churn transferred them to a new owner).
    IndexRemove {
        /// Logical clock.
        tick: u64,
        /// The node the entries left.
        node: u32,
        /// Table name (or `"offline-store"` / `"all"` for transfers).
        table: &'static str,
        /// Number of entries removed.
        removed: u64,
        /// Why: `"fail"`, `"leave"` or `"transfer"`.
        reason: &'static str,
    },
    /// An evaluator matched rewritten queries against stored candidates.
    JoinEval {
        /// Logical clock.
        tick: u64,
        /// Evaluator node slot.
        node: u32,
        /// Candidate pairs checked (the filtering load of this evaluation).
        candidates: u64,
        /// Pairs that actually matched (notifications produced).
        matches: u64,
    },
    /// Notifications arrived at a subscriber inbox (`offline == false`) or
    /// an offline successor store (`offline == true`). In counts mode
    /// (retention off) the event is emitted at the accounting site instead,
    /// since no message is materialized.
    NotifyDelivered {
        /// Logical clock.
        tick: u64,
        /// Receiving node slot.
        node: u32,
        /// Notifications in the batch.
        count: u64,
        /// Whether they went to an offline store rather than an inbox.
        offline: bool,
    },
    /// A primary item was mirrored onto a successor (k-successor
    /// replication).
    Replicate {
        /// Logical clock.
        tick: u64,
        /// The primary's slot.
        node: u32,
        /// The successor receiving the mirror.
        to: u32,
    },
    /// A node promoted replicas into its primary tables after a failure.
    Promote {
        /// Logical clock.
        tick: u64,
        /// The promoting node's slot.
        node: u32,
        /// Entries promoted.
        items: u64,
    },
    /// A named simulation phase began (emitted by the sim harness so traces
    /// can be segmented into warm-up / install / measured stream).
    Phase {
        /// Logical clock at the phase boundary.
        tick: u64,
        /// Phase name.
        name: String,
    },
    /// A watcher's probe to `target` timed out: the target is now suspected
    /// (failure detection, `engine::recovery`).
    Suspect {
        /// Logical clock.
        tick: u64,
        /// The watching node's slot.
        node: u32,
        /// The suspected node's slot.
        target: u32,
    },
    /// A suspicion aged past the confirmation timeout: the watcher declared
    /// `target` dead and triggered stabilization + replica promotion.
    Confirm {
        /// Logical clock.
        tick: u64,
        /// The watching node's slot.
        node: u32,
        /// The declared-dead node's slot.
        target: u32,
        /// Whether the target really was dead (`false` marks a false
        /// confirmation of a slow-but-alive node).
        dead: bool,
    },
    /// A suspected node answered a probe after all (or was found alive at
    /// confirmation time): the suspicion was false.
    FalseSuspect {
        /// Logical clock.
        tick: u64,
        /// The watching node's slot.
        node: u32,
        /// The wrongly suspected node's slot.
        target: u32,
    },
    /// An anti-entropy round compared a primary's per-range digest with one
    /// of its successors' replica stores.
    DigestExchange {
        /// Logical clock.
        tick: u64,
        /// The primary's slot.
        node: u32,
        /// The successor whose replica store was compared.
        to: u32,
        /// Entries in the primary's range digest.
        items: u64,
        /// Entries the successor's store was missing.
        missing: u64,
    },
    /// Anti-entropy re-mirrored missing replica items onto a successor.
    Repair {
        /// Logical clock.
        tick: u64,
        /// The primary's slot.
        node: u32,
        /// The successor receiving the re-mirrored items.
        to: u32,
        /// Items re-mirrored.
        items: u64,
        /// Approximate wire bytes of the re-mirrored items.
        bytes: u64,
    },
}

impl TraceEvent {
    /// Short stable label of the event kind (the `"ev"` field in JSONL).
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::MsgSend { .. } => "msg-send",
            TraceEvent::MsgDeliver { .. } => "msg-deliver",
            TraceEvent::FaultDrop { .. } => "fault-drop",
            TraceEvent::FaultDuplicate { .. } => "fault-dup",
            TraceEvent::FaultDelay { .. } => "fault-delay",
            TraceEvent::Retransmit { .. } => "retransmit",
            TraceEvent::DedupSuppressed { .. } => "dedup",
            TraceEvent::NodeFailed { .. } => "node-fail",
            TraceEvent::IndexInsert { .. } => "index-insert",
            TraceEvent::IndexRemove { .. } => "index-remove",
            TraceEvent::JoinEval { .. } => "join-eval",
            TraceEvent::NotifyDelivered { .. } => "notify",
            TraceEvent::Replicate { .. } => "replicate",
            TraceEvent::Promote { .. } => "promote",
            TraceEvent::Phase { .. } => "phase",
            TraceEvent::Suspect { .. } => "suspect",
            TraceEvent::Confirm { .. } => "confirm",
            TraceEvent::FalseSuspect { .. } => "false-suspect",
            TraceEvent::DigestExchange { .. } => "digest-exchange",
            TraceEvent::Repair { .. } => "repair",
        }
    }

    /// Index of this event's kind in [`TraceEvent::KINDS`] — a direct
    /// discriminant map so per-event summary accounting never does string
    /// comparisons.
    pub fn kind_index(&self) -> usize {
        match self {
            TraceEvent::MsgSend { .. } => 0,
            TraceEvent::MsgDeliver { .. } => 1,
            TraceEvent::FaultDrop { .. } => 2,
            TraceEvent::FaultDuplicate { .. } => 3,
            TraceEvent::FaultDelay { .. } => 4,
            TraceEvent::Retransmit { .. } => 5,
            TraceEvent::DedupSuppressed { .. } => 6,
            TraceEvent::NodeFailed { .. } => 7,
            TraceEvent::IndexInsert { .. } => 8,
            TraceEvent::IndexRemove { .. } => 9,
            TraceEvent::JoinEval { .. } => 10,
            TraceEvent::NotifyDelivered { .. } => 11,
            TraceEvent::Replicate { .. } => 12,
            TraceEvent::Promote { .. } => 13,
            TraceEvent::Phase { .. } => 14,
            TraceEvent::Suspect { .. } => 15,
            TraceEvent::Confirm { .. } => 16,
            TraceEvent::FalseSuspect { .. } => 17,
            TraceEvent::DigestExchange { .. } => 18,
            TraceEvent::Repair { .. } => 19,
        }
    }

    /// All kind labels, in a stable order (used by summaries).
    pub const KINDS: [&'static str; 20] = [
        "msg-send",
        "msg-deliver",
        "fault-drop",
        "fault-dup",
        "fault-delay",
        "retransmit",
        "dedup",
        "node-fail",
        "index-insert",
        "index-remove",
        "join-eval",
        "notify",
        "replicate",
        "promote",
        "phase",
        "suspect",
        "confirm",
        "false-suspect",
        "digest-exchange",
        "repair",
    ];

    /// The logical clock the event carries.
    pub fn tick(&self) -> u64 {
        match self {
            TraceEvent::MsgSend { tick, .. }
            | TraceEvent::MsgDeliver { tick, .. }
            | TraceEvent::FaultDrop { tick, .. }
            | TraceEvent::FaultDuplicate { tick, .. }
            | TraceEvent::FaultDelay { tick, .. }
            | TraceEvent::Retransmit { tick, .. }
            | TraceEvent::DedupSuppressed { tick, .. }
            | TraceEvent::NodeFailed { tick, .. }
            | TraceEvent::IndexInsert { tick, .. }
            | TraceEvent::IndexRemove { tick, .. }
            | TraceEvent::JoinEval { tick, .. }
            | TraceEvent::NotifyDelivered { tick, .. }
            | TraceEvent::Replicate { tick, .. }
            | TraceEvent::Promote { tick, .. }
            | TraceEvent::Phase { tick, .. }
            | TraceEvent::Suspect { tick, .. }
            | TraceEvent::Confirm { tick, .. }
            | TraceEvent::FalseSuspect { tick, .. }
            | TraceEvent::DigestExchange { tick, .. }
            | TraceEvent::Repair { tick, .. } => *tick,
        }
    }

    /// The node slot the event is attributed to (`u32::MAX` for [`Phase`],
    /// which is network-wide).
    ///
    /// [`Phase`]: TraceEvent::Phase
    pub fn node(&self) -> u32 {
        match self {
            TraceEvent::MsgSend { node, .. }
            | TraceEvent::MsgDeliver { node, .. }
            | TraceEvent::FaultDrop { node, .. }
            | TraceEvent::FaultDuplicate { node, .. }
            | TraceEvent::FaultDelay { node, .. }
            | TraceEvent::Retransmit { node, .. }
            | TraceEvent::DedupSuppressed { node, .. }
            | TraceEvent::NodeFailed { node, .. }
            | TraceEvent::IndexInsert { node, .. }
            | TraceEvent::IndexRemove { node, .. }
            | TraceEvent::JoinEval { node, .. }
            | TraceEvent::NotifyDelivered { node, .. }
            | TraceEvent::Replicate { node, .. }
            | TraceEvent::Promote { node, .. }
            | TraceEvent::Suspect { node, .. }
            | TraceEvent::Confirm { node, .. }
            | TraceEvent::FalseSuspect { node, .. }
            | TraceEvent::DigestExchange { node, .. }
            | TraceEvent::Repair { node, .. } => *node,
            TraceEvent::Phase { .. } => u32::MAX,
        }
    }

    /// The `(sender, seq)` message identifier, for message-level events.
    pub fn msg_id(&self) -> Option<MsgId> {
        match self {
            TraceEvent::MsgSend { id, .. }
            | TraceEvent::MsgDeliver { id, .. }
            | TraceEvent::FaultDrop { id, .. }
            | TraceEvent::FaultDuplicate { id, .. }
            | TraceEvent::FaultDelay { id, .. }
            | TraceEvent::Retransmit { id, .. }
            | TraceEvent::DedupSuppressed { id, .. } => Some(*id),
            _ => None,
        }
    }

    /// Serializes the event as one JSON object (no trailing newline). The
    /// format is flat and hand-rolled — the workspace vendors no serde —
    /// and [`TraceEvent::parse_jsonl`] is its exact inverse.
    ///
    /// Integers are formatted manually rather than through `write!` (the
    /// `std::fmt` machinery costs ~100 ns per call), adjacent literals are
    /// pre-merged per variant, and the line is staged in a fixed stack
    /// buffer so `out` sees one `extend_from_slice` per event rather than
    /// one per field (~40% cheaper): sink `record` runs a few hundred
    /// thousand times per traced experiment, and this function is nearly
    /// all of that cost.
    pub fn append_jsonl(&self, out: &mut Vec<u8>) -> usize {
        let mut line = Scratch::new(out);
        // One flat match: each arm emits its complete line, so serializing
        // costs a single jump-table dispatch per event. Going through the
        // kind/tick/node/id helper accessors instead would re-match the
        // variant four extra times per record, and on a mixed event stream
        // those indirect branches mispredict. The arm's kind index is
        // returned so a fused sink can account the event without a second
        // dispatch.
        let kind = match self {
            TraceEvent::MsgSend {
                tick,
                node,
                id,
                to,
                target,
                kind,
                path,
            } => {
                line.head(b"{\"ev\":\"msg-send\",\"tick\":", *tick, *node);
                line.put_id(*id);
                line.lit(b",\"to\":");
                line.put_u64(*to as u64);
                line.lit(b",\"target\":");
                line.put_u64(target.0);
                line.lit(b",\"kind\":\"");
                line.put(kind.as_bytes());
                line.lit(b"\"");
                if let Some(p) = path {
                    line.lit(b",\"path\":[");
                    for (i, n) in p.iter().enumerate() {
                        if i > 0 {
                            line.lit(b",");
                        }
                        line.put_u64(*n as u64);
                    }
                    line.lit(b"]");
                }
                0
            }
            TraceEvent::MsgDeliver {
                tick,
                node,
                id,
                kind,
            } => {
                line.head(b"{\"ev\":\"msg-deliver\",\"tick\":", *tick, *node);
                line.put_id(*id);
                line.lit(b",\"kind\":\"");
                line.put(kind.as_bytes());
                line.lit(b"\"");
                1
            }
            TraceEvent::FaultDrop { tick, node, id } => {
                line.head(b"{\"ev\":\"fault-drop\",\"tick\":", *tick, *node);
                line.put_id(*id);
                2
            }
            TraceEvent::FaultDuplicate { tick, node, id } => {
                line.head(b"{\"ev\":\"fault-dup\",\"tick\":", *tick, *node);
                line.put_id(*id);
                3
            }
            TraceEvent::FaultDelay {
                tick,
                node,
                id,
                extra,
            } => {
                line.head(b"{\"ev\":\"fault-delay\",\"tick\":", *tick, *node);
                line.put_id(*id);
                line.lit(b",\"extra\":");
                line.put_u64(*extra);
                4
            }
            TraceEvent::Retransmit {
                tick,
                node,
                id,
                attempt,
            } => {
                line.head(b"{\"ev\":\"retransmit\",\"tick\":", *tick, *node);
                line.put_id(*id);
                line.lit(b",\"attempt\":");
                line.put_u64(*attempt as u64);
                5
            }
            TraceEvent::DedupSuppressed { tick, node, id } => {
                line.head(b"{\"ev\":\"dedup\",\"tick\":", *tick, *node);
                line.put_id(*id);
                6
            }
            TraceEvent::NodeFailed { tick, node } => {
                line.head(b"{\"ev\":\"node-fail\",\"tick\":", *tick, *node);
                7
            }
            TraceEvent::IndexInsert {
                tick,
                node,
                table,
                fresh,
            } => {
                line.head(b"{\"ev\":\"index-insert\",\"tick\":", *tick, *node);
                line.lit(b",\"table\":\"");
                line.put(table.as_bytes());
                // `fresh` is true for almost every insert; the default is
                // omitted to keep the common line short.
                if *fresh {
                    line.lit(b"\"");
                } else {
                    line.lit(b"\",\"fresh\":false");
                }
                8
            }
            TraceEvent::IndexRemove {
                tick,
                node,
                table,
                removed,
                reason,
            } => {
                line.head(b"{\"ev\":\"index-remove\",\"tick\":", *tick, *node);
                line.lit(b",\"table\":\"");
                line.put(table.as_bytes());
                line.lit(b"\",\"removed\":");
                line.put_u64(*removed);
                line.lit(b",\"reason\":\"");
                line.put(reason.as_bytes());
                line.lit(b"\"");
                9
            }
            TraceEvent::JoinEval {
                tick,
                node,
                candidates,
                matches,
            } => {
                line.head(b"{\"ev\":\"join-eval\",\"tick\":", *tick, *node);
                line.lit(b",\"candidates\":");
                line.put_u64(*candidates);
                line.lit(b",\"matches\":");
                line.put_u64(*matches);
                10
            }
            TraceEvent::NotifyDelivered {
                tick,
                node,
                count,
                offline,
            } => {
                line.head(b"{\"ev\":\"notify\",\"tick\":", *tick, *node);
                line.lit(b",\"count\":");
                line.put_u64(*count);
                // Inbox delivery is the overwhelmingly common case; the
                // default `offline:false` is omitted.
                if *offline {
                    line.lit(b",\"offline\":true");
                }
                11
            }
            TraceEvent::Replicate { tick, node, to } => {
                line.head(b"{\"ev\":\"replicate\",\"tick\":", *tick, *node);
                line.lit(b",\"to\":");
                line.put_u64(*to as u64);
                12
            }
            TraceEvent::Promote { tick, node, items } => {
                line.head(b"{\"ev\":\"promote\",\"tick\":", *tick, *node);
                line.lit(b",\"items\":");
                line.put_u64(*items);
                13
            }
            TraceEvent::Phase { tick, name } => {
                line.head(b"{\"ev\":\"phase\",\"tick\":", *tick, u32::MAX);
                line.lit(b",\"name\":\"");
                for c in name.chars() {
                    match c {
                        '"' => line.lit(b"\\\""),
                        '\\' => line.lit(b"\\\\"),
                        '\n' => line.lit(b"\\n"),
                        c if (c as u32) < 0x20 => {
                            use std::fmt::Write;
                            let mut esc = String::with_capacity(6);
                            let _ = write!(esc, "\\u{:04x}", c as u32);
                            line.put(esc.as_bytes());
                        }
                        c => line.put(c.encode_utf8(&mut [0u8; 4]).as_bytes()),
                    }
                }
                line.lit(b"\"");
                14
            }
            TraceEvent::Suspect { tick, node, target } => {
                line.head(b"{\"ev\":\"suspect\",\"tick\":", *tick, *node);
                line.lit(b",\"target\":");
                line.put_u64(*target as u64);
                15
            }
            TraceEvent::Confirm {
                tick,
                node,
                target,
                dead,
            } => {
                line.head(b"{\"ev\":\"confirm\",\"tick\":", *tick, *node);
                line.lit(b",\"target\":");
                line.put_u64(*target as u64);
                // Confirms of genuinely dead nodes are the common case; the
                // default `dead:true` is omitted.
                if !dead {
                    line.lit(b",\"dead\":false");
                }
                16
            }
            TraceEvent::FalseSuspect { tick, node, target } => {
                line.head(b"{\"ev\":\"false-suspect\",\"tick\":", *tick, *node);
                line.lit(b",\"target\":");
                line.put_u64(*target as u64);
                17
            }
            TraceEvent::DigestExchange {
                tick,
                node,
                to,
                items,
                missing,
            } => {
                line.head(b"{\"ev\":\"digest-exchange\",\"tick\":", *tick, *node);
                line.lit(b",\"to\":");
                line.put_u64(*to as u64);
                line.lit(b",\"items\":");
                line.put_u64(*items);
                line.lit(b",\"missing\":");
                line.put_u64(*missing);
                18
            }
            TraceEvent::Repair {
                tick,
                node,
                to,
                items,
                bytes,
            } => {
                line.head(b"{\"ev\":\"repair\",\"tick\":", *tick, *node);
                line.lit(b",\"to\":");
                line.put_u64(*to as u64);
                line.lit(b",\"items\":");
                line.put_u64(*items);
                line.lit(b",\"bytes\":");
                line.put_u64(*bytes);
                19
            }
        };
        line.lit(b"}");
        line.finish();
        kind
    }

    /// [`TraceEvent::append_jsonl`] into a `String` (convenience for tests
    /// and tooling; the sinks use the byte-level variant directly).
    pub fn to_jsonl(&self, out: &mut String) {
        let mut bytes = Vec::with_capacity(128);
        self.append_jsonl(&mut bytes);
        out.push_str(std::str::from_utf8(&bytes).expect("JSONL is ASCII or escaped UTF-8"));
    }

    /// Parses one line produced by [`TraceEvent::to_jsonl`]. Returns `None`
    /// for malformed input (including unknown event kinds).
    pub fn parse_jsonl(line: &str) -> Option<TraceEvent> {
        let ev = json_str(line, "ev")?;
        let tick = json_u64(line, "tick")?;
        let node = json_u64(line, "node")? as u32;
        let id = || -> Option<MsgId> {
            let arr = json_arr(line, "id")?;
            Some((*arr.first()? as u32, *arr.get(1)?))
        };
        Some(match ev.as_str() {
            "msg-send" => TraceEvent::MsgSend {
                tick,
                node,
                id: id()?,
                to: json_u64(line, "to")? as u32,
                target: Id(json_u64(line, "target")?),
                kind: intern_kind(&json_str(line, "kind")?)?,
                path: json_arr(line, "path").map(|v| v.into_iter().map(|n| n as u32).collect()),
            },
            "msg-deliver" => TraceEvent::MsgDeliver {
                tick,
                node,
                id: id()?,
                kind: intern_kind(&json_str(line, "kind")?)?,
            },
            "fault-drop" => TraceEvent::FaultDrop {
                tick,
                node,
                id: id()?,
            },
            "fault-dup" => TraceEvent::FaultDuplicate {
                tick,
                node,
                id: id()?,
            },
            "fault-delay" => TraceEvent::FaultDelay {
                tick,
                node,
                id: id()?,
                extra: json_u64(line, "extra")?,
            },
            "retransmit" => TraceEvent::Retransmit {
                tick,
                node,
                id: id()?,
                attempt: json_u64(line, "attempt")? as u32,
            },
            "dedup" => TraceEvent::DedupSuppressed {
                tick,
                node,
                id: id()?,
            },
            "node-fail" => TraceEvent::NodeFailed { tick, node },
            "index-insert" => TraceEvent::IndexInsert {
                tick,
                node,
                table: intern_table(&json_str(line, "table")?)?,
                fresh: json_bool(line, "fresh").unwrap_or(true),
            },
            "index-remove" => TraceEvent::IndexRemove {
                tick,
                node,
                table: intern_table(&json_str(line, "table")?)?,
                removed: json_u64(line, "removed")?,
                reason: intern_reason(&json_str(line, "reason")?)?,
            },
            "join-eval" => TraceEvent::JoinEval {
                tick,
                node,
                candidates: json_u64(line, "candidates")?,
                matches: json_u64(line, "matches")?,
            },
            "notify" => TraceEvent::NotifyDelivered {
                tick,
                node,
                count: json_u64(line, "count")?,
                offline: json_bool(line, "offline").unwrap_or(false),
            },
            "replicate" => TraceEvent::Replicate {
                tick,
                node,
                to: json_u64(line, "to")? as u32,
            },
            "promote" => TraceEvent::Promote {
                tick,
                node,
                items: json_u64(line, "items")?,
            },
            "phase" => TraceEvent::Phase {
                tick,
                name: json_str(line, "name")?,
            },
            "suspect" => TraceEvent::Suspect {
                tick,
                node,
                target: json_u64(line, "target")? as u32,
            },
            "confirm" => TraceEvent::Confirm {
                tick,
                node,
                target: json_u64(line, "target")? as u32,
                dead: json_bool(line, "dead").unwrap_or(true),
            },
            "false-suspect" => TraceEvent::FalseSuspect {
                tick,
                node,
                target: json_u64(line, "target")? as u32,
            },
            "digest-exchange" => TraceEvent::DigestExchange {
                tick,
                node,
                to: json_u64(line, "to")? as u32,
                items: json_u64(line, "items")?,
                missing: json_u64(line, "missing")?,
            },
            "repair" => TraceEvent::Repair {
                tick,
                node,
                to: json_u64(line, "to")? as u32,
                items: json_u64(line, "items")?,
                bytes: json_u64(line, "bytes")?,
            },
            _ => return None,
        })
    }
}

/// Re-interns a parsed message-kind string to the engine's static labels.
fn intern_kind(s: &str) -> Option<&'static str> {
    const KINDS: [&str; 10] = [
        "query",
        "al-index",
        "vl-index",
        "join",
        "join-v",
        "store-notify",
        "notify",
        "replicate",
        "ping",
        "pong",
    ];
    KINDS.iter().find(|k| **k == s).copied()
}

/// Re-interns a parsed table name.
fn intern_table(s: &str) -> Option<&'static str> {
    const TABLES: [&str; 6] = ["alqt", "vlqt", "vltt", "vstore", "offline-store", "all"];
    TABLES.iter().find(|k| **k == s).copied()
}

/// Re-interns a parsed removal reason.
fn intern_reason(s: &str) -> Option<&'static str> {
    const REASONS: [&str; 3] = ["fail", "leave", "transfer"];
    REASONS.iter().find(|k| **k == s).copied()
}

/// Stack staging buffer for [`TraceEvent::append_jsonl`]: fields accumulate
/// in a fixed array so the destination `Vec` sees one `extend_from_slice`
/// per event instead of one per field. The rare line that outgrows the
/// array (a very long route path, an adversarial phase name) spills through
/// the cold path and stays correct.
const SCRATCH_LEN: usize = 256;

struct Scratch<'a> {
    out: &'a mut Vec<u8>,
    buf: [u8; SCRATCH_LEN],
    n: usize,
}

impl<'a> Scratch<'a> {
    #[inline(always)]
    fn new(out: &'a mut Vec<u8>) -> Self {
        Scratch {
            out,
            buf: [0u8; SCRATCH_LEN],
            n: 0,
        }
    }

    #[inline(always)]
    fn put(&mut self, s: &[u8]) {
        if self.n + s.len() <= SCRATCH_LEN {
            self.buf[self.n..self.n + s.len()].copy_from_slice(s);
            self.n += s.len();
        } else {
            self.spill(s);
        }
    }

    /// `put` for compile-time-sized literals: the copy inlines to
    /// fixed-size stores instead of a length-dispatched `memcpy`.
    #[inline(always)]
    fn lit<const N: usize>(&mut self, s: &[u8; N]) {
        if self.n + N <= SCRATCH_LEN {
            self.buf[self.n..self.n + N].copy_from_slice(s);
            self.n += N;
        } else {
            self.spill(s);
        }
    }

    /// Overflow path: drain the staged bytes, then retry (or bypass the
    /// array entirely for a chunk that could never fit).
    #[cold]
    fn spill(&mut self, s: &[u8]) {
        self.out.extend_from_slice(&self.buf[..self.n]);
        self.n = 0;
        if s.len() <= SCRATCH_LEN {
            self.buf[..s.len()].copy_from_slice(s);
            self.n = s.len();
        } else {
            self.out.extend_from_slice(s);
        }
    }

    /// The shared line head: static `{"ev":...,"tick":` prefix, tick and
    /// `,"node":` value.
    #[inline(always)]
    fn head(&mut self, prefix: &[u8], tick: u64, node: u32) {
        self.put(prefix);
        self.put_u64(tick);
        self.lit(b",\"node\":");
        self.put_u64(node as u64);
    }

    /// The `,"id":[sender,seq]` field shared by message-level events.
    #[inline(always)]
    fn put_id(&mut self, id: MsgId) {
        self.lit(b",\"id\":[");
        self.put_u64(id.0 as u64);
        self.lit(b",");
        self.put_u64(id.1);
        self.lit(b"]");
    }

    /// Appends `v` in decimal without going through `std::fmt` (the
    /// `std::fmt` machinery costs ~100 ns per call); pairs of digits come
    /// from a lookup table to halve the divide chain.
    #[inline(always)]
    fn put_u64(&mut self, mut v: u64) {
        const DIGITS2: [u8; 200] = {
            let mut t = [0u8; 200];
            let mut i = 0;
            while i < 100 {
                t[i * 2] = b'0' + (i / 10) as u8;
                t[i * 2 + 1] = b'0' + (i % 10) as u8;
                i += 1;
            }
            t
        };
        let mut tmp = [0u8; 20];
        let mut i = tmp.len();
        while v >= 100 {
            let d = ((v % 100) as usize) * 2;
            v /= 100;
            i -= 2;
            tmp[i] = DIGITS2[d];
            tmp[i + 1] = DIGITS2[d + 1];
        }
        if v >= 10 {
            let d = (v as usize) * 2;
            i -= 2;
            tmp[i] = DIGITS2[d];
            tmp[i + 1] = DIGITS2[d + 1];
        } else {
            i -= 1;
            tmp[i] = b'0' + v as u8;
        }
        self.put(&tmp[i..]);
    }

    #[inline(always)]
    fn finish(self) {
        self.out.extend_from_slice(&self.buf[..self.n]);
    }
}

// --- minimal flat-JSON field readers (inverse of `to_jsonl` only) ---

/// Locates the raw value text after `"key":`.
fn json_raw<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    Some(&line[start..])
}

fn json_u64(line: &str, key: &str) -> Option<u64> {
    let raw = json_raw(line, key)?;
    let end = raw.find(|c: char| !c.is_ascii_digit()).unwrap_or(raw.len());
    raw[..end].parse().ok()
}

fn json_bool(line: &str, key: &str) -> Option<bool> {
    let raw = json_raw(line, key)?;
    if raw.starts_with("true") {
        Some(true)
    } else if raw.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

fn json_str(line: &str, key: &str) -> Option<String> {
    let raw = json_raw(line, key)?.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = raw.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'n' => out.push('\n'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    out.push(char::from_u32(u32::from_str_radix(&hex, 16).ok()?)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
    None
}

fn json_arr(line: &str, key: &str) -> Option<Vec<u64>> {
    let raw = json_raw(line, key)?.strip_prefix('[')?;
    let end = raw.find(']')?;
    let body = &raw[..end];
    if body.is_empty() {
        return Some(Vec::new());
    }
    body.split(',').map(|n| n.trim().parse().ok()).collect()
}

/// A consumer of trace events. Implementations must be cheap and
/// side-effect-free with respect to the engine: they observe, never steer.
pub trait TraceSink: Send + Sync {
    /// Receives one event. Called synchronously on the simulation thread.
    fn record(&self, ev: &TraceEvent);
}

/// The explicit do-nothing sink (the engine's default is simply *no* sink,
/// but `NoopSink` lets call sites demand a `&dyn TraceSink` unconditionally).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn record(&self, _ev: &TraceEvent) {}
}

/// A bounded in-memory buffer keeping the most recent events. Used by
/// trace-driven tests and post-mortem inspection of small runs.
#[derive(Debug)]
pub struct RingBufferSink {
    cap: usize,
    buf: Mutex<VecDeque<TraceEvent>>,
}

impl RingBufferSink {
    /// A buffer holding at most `cap` events (older ones are dropped).
    pub fn new(cap: usize) -> Self {
        RingBufferSink {
            cap: cap.max(1),
            buf: Mutex::new(VecDeque::new()),
        }
    }

    /// Snapshot of the buffered events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.buf
            .lock()
            .expect("trace buffer")
            .iter()
            .cloned()
            .collect()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.buf.lock().expect("trace buffer").len()
    }

    /// Whether nothing has been recorded (or everything was evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl TraceSink for RingBufferSink {
    fn record(&self, ev: &TraceEvent) {
        let mut buf = self.buf.lock().expect("trace buffer");
        if buf.len() == self.cap {
            buf.pop_front();
        }
        buf.push_back(ev.clone());
    }
}

/// The shared write half of the JSONL sinks: events serialize straight into
/// one large byte buffer that is written out whenever it crosses the
/// high-water mark — no per-line intermediate, no `BufWriter` copy.
#[derive(Debug)]
struct JsonlWriter {
    file: File,
    buf: Vec<u8>,
    /// Buffered bytes that trigger the next `write(2)` — the explicit
    /// writer size, chosen per format by the sink that owns this writer.
    high_water: usize,
}

/// Bytes buffered before the next `write(2)` on JSONL traces — sized to
/// stay cache-resident rather than stream through a megabyte of cold lines.
const JSONL_BUF: usize = 1 << 18;

/// Bytes buffered before the next `write(2)` on binary traces. Wire frames
/// average tens of bytes, so a traced run emits hundreds of thousands of
/// tiny appends (the ROADMAP's "270k file writes"); a 1 MiB high-water mark
/// amortizes them to a handful of syscalls per run without an async writer.
const BINARY_BUF: usize = 1 << 20;

impl JsonlWriter {
    fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        JsonlWriter::with_capacity(path, JSONL_BUF)
    }

    /// A writer that batches appends until `high_water` bytes are buffered
    /// (plus headroom for the line or frame that crosses the mark).
    fn with_capacity(path: impl AsRef<Path>, high_water: usize) -> std::io::Result<Self> {
        Ok(JsonlWriter {
            file: File::create(path)?,
            buf: Vec::with_capacity(high_water + 512),
            high_water,
        })
    }

    /// Appends one line; returns the event's kind index so a fused sink
    /// can account it without re-matching the variant.
    #[inline]
    fn append(&mut self, ev: &TraceEvent) -> usize {
        let kind = ev.append_jsonl(&mut self.buf);
        self.buf.push(b'\n');
        if self.buf.len() >= self.high_water {
            // An I/O error mid-trace must not kill the simulation; the
            // flush() at the end of a run surfaces persistent failures.
            let _ = self.file.write_all(&self.buf);
            self.buf.clear();
        }
        kind
    }

    /// Appends one `engine::wire` frame instead of a JSONL line (the binary
    /// trace format); returns the event's kind index like `append`.
    #[inline]
    fn append_frame(&mut self, ev: &TraceEvent) -> usize {
        crate::wire::encode_trace_event(ev, &mut self.buf);
        if self.buf.len() >= self.high_water {
            let _ = self.file.write_all(&self.buf);
            self.buf.clear();
        }
        ev.kind_index()
    }

    fn flush(&mut self) -> std::io::Result<()> {
        if !self.buf.is_empty() {
            self.file.write_all(&self.buf)?;
            self.buf.clear();
        }
        self.file.flush()
    }
}

impl Drop for JsonlWriter {
    fn drop(&mut self) {
        let _ = self.flush();
    }
}

/// Streams events to a file, one JSON object per line (buffered; flushed on
/// [`JsonlSink::flush`] and on drop).
#[derive(Debug)]
pub struct JsonlSink {
    out: Mutex<JsonlWriter>,
}

impl JsonlSink {
    /// Creates (truncating) the trace file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(JsonlSink {
            out: Mutex::new(JsonlWriter::create(path)?),
        })
    }

    /// Flushes buffered lines to disk.
    pub fn flush(&self) -> std::io::Result<()> {
        self.out.lock().expect("trace writer").flush()
    }
}

impl TraceSink for JsonlSink {
    fn record(&self, ev: &TraceEvent) {
        let _ = self.out.lock().expect("trace writer").append(ev);
    }
}

/// Aggregate view of one trace: per-kind event counts and, for routed
/// sends, a per-node histogram of hop counts.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceSummary {
    /// Events seen per kind label, in [`TraceEvent::KINDS`] order.
    pub counts: Vec<(&'static str, u64)>,
    /// For each sending node slot: `hist[h]` = number of traced unicast
    /// sends whose route consumed exactly `h` overlay hops.
    pub hop_histograms: FxHashMap<u32, Vec<u64>>,
}

impl TraceSummary {
    /// Count of one event kind (0 when absent).
    pub fn count_of(&self, kind: &str) -> u64 {
        self.counts
            .iter()
            .find(|(k, _)| *k == kind)
            .map_or(0, |(_, n)| *n)
    }

    /// Total events across all kinds.
    pub fn total(&self) -> u64 {
        self.counts.iter().map(|(_, n)| n).sum()
    }
}

/// Builds a [`TraceSummary`] incrementally.
#[derive(Debug, Default)]
pub struct SummarySink {
    inner: Mutex<SummaryState>,
}

#[derive(Debug, Default)]
struct SummaryState {
    counts: [u64; TraceEvent::KINDS.len()],
    hops: FxHashMap<u32, Vec<u64>>,
}

impl SummaryState {
    fn note(&mut self, ev: &TraceEvent) {
        self.note_kind(ev.kind_index(), ev);
    }

    /// [`SummaryState::note`] with the kind index already known (the fused
    /// sink gets it from the serializer for free).
    fn note_kind(&mut self, kind: usize, ev: &TraceEvent) {
        self.counts[kind] += 1;
        if let TraceEvent::MsgSend {
            node,
            path: Some(p),
            ..
        } = ev
        {
            let hops = p.len().saturating_sub(1);
            let hist = self.hops.entry(*node).or_default();
            if hist.len() <= hops {
                hist.resize(hops + 1, 0);
            }
            hist[hops] += 1;
        }
    }

    fn to_summary(&self) -> TraceSummary {
        TraceSummary {
            counts: TraceEvent::KINDS
                .iter()
                .zip(self.counts.iter())
                .map(|(k, n)| (*k, *n))
                .collect(),
            hop_histograms: self.hops.clone(),
        }
    }
}

impl SummarySink {
    /// A fresh, empty summary sink.
    pub fn new() -> Self {
        SummarySink::default()
    }

    /// The summary accumulated so far.
    pub fn summary(&self) -> TraceSummary {
        self.inner.lock().expect("trace summary").to_summary()
    }
}

impl TraceSink for SummarySink {
    fn record(&self, ev: &TraceEvent) {
        self.inner.lock().expect("trace summary").note(ev);
    }
}

/// A [`JsonlSink`] and a [`SummarySink`] fused behind one lock — what the
/// sim harness installs for `--trace`. A [`TeeSink`] over the two separate
/// sinks is observationally identical but pays two lock round-trips and two
/// virtual dispatches per event, which is measurable at trace volumes of
/// hundreds of thousands of events per run.
#[derive(Debug)]
pub struct JsonlSummarySink {
    inner: Mutex<(JsonlWriter, SummaryState)>,
}

impl JsonlSummarySink {
    /// Creates (truncating) the trace file at `path`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(JsonlSummarySink {
            inner: Mutex::new((JsonlWriter::create(path)?, SummaryState::default())),
        })
    }

    /// Flushes buffered lines to disk.
    pub fn flush(&self) -> std::io::Result<()> {
        self.inner.lock().expect("trace writer").0.flush()
    }

    /// The summary accumulated so far.
    pub fn summary(&self) -> TraceSummary {
        self.inner.lock().expect("trace writer").1.to_summary()
    }
}

impl TraceSink for JsonlSummarySink {
    fn record(&self, ev: &TraceEvent) {
        let mut guard = self.inner.lock().expect("trace writer");
        let (out, summary) = &mut *guard;
        let kind = out.append(ev);
        summary.note_kind(kind, ev);
    }
}

/// The binary twin of [`JsonlSummarySink`]: every event is written as one
/// length-prefixed, versioned `engine::wire` frame (the exact layout
/// [`crate::wire::encode_trace_event`] produces), fused with the same
/// in-memory summary. Installed by the sim harness for
/// `--trace-format binary`; the `trace_dump` tool converts a binary stream
/// back to the JSONL the text tooling reads.
#[derive(Debug)]
pub struct BinarySummarySink {
    inner: Mutex<(JsonlWriter, SummaryState)>,
}

impl BinarySummarySink {
    /// Creates (truncating) the binary trace file at `path`. The writer is
    /// sized at `BINARY_BUF` (1 MiB) — binary frames are far smaller than
    /// JSONL lines, so the binary sink batches more events per `write(2)`.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(BinarySummarySink {
            inner: Mutex::new((
                JsonlWriter::with_capacity(path, BINARY_BUF)?,
                SummaryState::default(),
            )),
        })
    }

    /// Flushes buffered frames to disk.
    pub fn flush(&self) -> std::io::Result<()> {
        self.inner.lock().expect("trace writer").0.flush()
    }

    /// The summary accumulated so far.
    pub fn summary(&self) -> TraceSummary {
        self.inner.lock().expect("trace writer").1.to_summary()
    }
}

impl TraceSink for BinarySummarySink {
    fn record(&self, ev: &TraceEvent) {
        let mut guard = self.inner.lock().expect("trace writer");
        let (out, summary) = &mut *guard;
        let kind = out.append_frame(ev);
        summary.note_kind(kind, ev);
    }
}

/// Fans one event stream into several sinks, in order.
pub struct TeeSink {
    sinks: Vec<Arc<dyn TraceSink>>,
}

impl TeeSink {
    /// A tee over the given sinks.
    pub fn new(sinks: Vec<Arc<dyn TraceSink>>) -> Self {
        TeeSink { sinks }
    }
}

impl TraceSink for TeeSink {
    fn record(&self, ev: &TraceEvent) {
        for s in &self.sinks {
            s.record(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<TraceEvent> {
        vec![
            TraceEvent::MsgSend {
                tick: 3,
                node: 5,
                id: (5, 12),
                to: 9,
                target: Id(0xDEAD_BEEF),
                kind: "join-v",
                path: Some(vec![5, 7, 9]),
            },
            TraceEvent::MsgSend {
                tick: 3,
                node: 5,
                id: (5, 13),
                to: 2,
                target: Id(7),
                kind: "al-index",
                path: None,
            },
            TraceEvent::MsgDeliver {
                tick: 3,
                node: 9,
                id: (5, 12),
                kind: "join-v",
            },
            TraceEvent::FaultDrop {
                tick: 4,
                node: 9,
                id: (5, 12),
            },
            TraceEvent::FaultDuplicate {
                tick: 4,
                node: 9,
                id: (5, 12),
            },
            TraceEvent::FaultDelay {
                tick: 4,
                node: 9,
                id: (5, 12),
                extra: 3,
            },
            TraceEvent::Retransmit {
                tick: 6,
                node: 5,
                id: (5, 12),
                attempt: 2,
            },
            TraceEvent::DedupSuppressed {
                tick: 7,
                node: 9,
                id: (5, 12),
            },
            TraceEvent::NodeFailed { tick: 8, node: 4 },
            TraceEvent::IndexInsert {
                tick: 9,
                node: 1,
                table: "vlqt",
                fresh: true,
            },
            TraceEvent::IndexRemove {
                tick: 9,
                node: 4,
                table: "alqt",
                removed: 17,
                reason: "fail",
            },
            TraceEvent::JoinEval {
                tick: 10,
                node: 2,
                candidates: 8,
                matches: 3,
            },
            TraceEvent::NotifyDelivered {
                tick: 10,
                node: 0,
                count: 3,
                offline: false,
            },
            TraceEvent::Replicate {
                tick: 11,
                node: 2,
                to: 3,
            },
            TraceEvent::Promote {
                tick: 12,
                node: 3,
                items: 5,
            },
            TraceEvent::Phase {
                tick: 0,
                name: "install \"quoted\"\\weird".to_string(),
            },
            TraceEvent::Suspect {
                tick: 13,
                node: 6,
                target: 4,
            },
            TraceEvent::Confirm {
                tick: 15,
                node: 6,
                target: 4,
                dead: true,
            },
            TraceEvent::Confirm {
                tick: 15,
                node: 6,
                target: 7,
                dead: false,
            },
            TraceEvent::FalseSuspect {
                tick: 14,
                node: 6,
                target: 7,
            },
            TraceEvent::DigestExchange {
                tick: 16,
                node: 2,
                to: 3,
                items: 40,
                missing: 2,
            },
            TraceEvent::Repair {
                tick: 16,
                node: 2,
                to: 3,
                items: 2,
                bytes: 160,
            },
        ]
    }

    #[test]
    fn jsonl_round_trips_every_variant() {
        for ev in samples() {
            let mut line = String::new();
            ev.to_jsonl(&mut line);
            let back =
                TraceEvent::parse_jsonl(&line).unwrap_or_else(|| panic!("parse failed for {line}"));
            assert_eq!(back, ev, "round-trip mismatch for {line}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(TraceEvent::parse_jsonl(""), None);
        assert_eq!(
            TraceEvent::parse_jsonl("{\"ev\":\"nope\",\"tick\":1}"),
            None
        );
        assert_eq!(TraceEvent::parse_jsonl("not json at all"), None);
    }

    #[test]
    fn ring_buffer_keeps_most_recent() {
        let sink = RingBufferSink::new(2);
        for t in 0..5 {
            sink.record(&TraceEvent::NodeFailed { tick: t, node: 0 });
        }
        let evs = sink.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].tick(), 3);
        assert_eq!(evs[1].tick(), 4);
    }

    #[test]
    fn summary_counts_and_hop_histograms() {
        let sink = SummarySink::new();
        for ev in samples() {
            sink.record(&ev);
        }
        let s = sink.summary();
        assert_eq!(s.count_of("msg-send"), 2);
        assert_eq!(s.count_of("phase"), 1);
        assert_eq!(s.total(), samples().len() as u64);
        // Only the pathful send lands in the histogram: node 5, 2 hops.
        assert_eq!(s.hop_histograms.len(), 1);
        assert_eq!(s.hop_histograms[&5], vec![0, 0, 1]);
    }

    #[test]
    fn tee_fans_out() {
        let a = Arc::new(RingBufferSink::new(8));
        let b = Arc::new(SummarySink::new());
        let tee = TeeSink::new(vec![a.clone() as Arc<dyn TraceSink>, b.clone()]);
        tee.record(&TraceEvent::NodeFailed { tick: 1, node: 2 });
        assert_eq!(a.len(), 1);
        assert_eq!(b.summary().count_of("node-fail"), 1);
    }

    #[test]
    fn kinds_listing_is_exhaustive() {
        for ev in samples() {
            assert!(
                TraceEvent::KINDS.contains(&ev.kind()),
                "{} missing from KINDS",
                ev.kind()
            );
        }
    }
}
