//! Loopback throughput benchmark of the TCP hot path.
//!
//! Streams the wide-tuple throughput workload (`cq_sim::cluster::run_throughput`)
//! through the real nonblocking reactor at several payload sizes and prints
//! one JSON object to stdout: per payload size, messages and wire bytes
//! moved, wall time, msgs/sec, MB/s, and the socket-level counters that
//! prove the zero-copy hot path is doing its job (write syscalls, frames
//! per vectored flush, bytes per syscall, pool hit rate).
//! `scripts/bench_snapshot.sh` folds the output into `BENCH_10.json`.
//!
//! Usage: `socket_bench [--quick] [--check]`
//!
//! `--quick` shrinks the tuple count for CI. `--check` additionally
//! enforces the structural gates in-process and exits nonzero on failure:
//! every payload size must coalesce more than one frame per flush on
//! average, recycle inbox buffers at a ≥ 90% pool hit rate, and move
//! messages at a nonzero rate — the same invariants the committed
//! `BENCH_10.json` records.

use cq_sim::cluster::{run_throughput, ThroughputConfig, ThroughputReport};

/// The payload sizes measured — small (header-dominated), medium (the
/// steady-state shape), and large (payload-dominated, multiple KiB frames).
const PAYLOADS: [usize; 3] = [16, 256, 4096];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    if let Some(bad) = args.iter().find(|a| *a != "--quick" && *a != "--check") {
        eprintln!("unknown argument: {bad}");
        eprintln!("usage: socket_bench [--quick] [--check]");
        std::process::exit(2);
    }
    let tuples = if quick || check { 400 } else { 2000 };

    let reports: Vec<ThroughputReport> = PAYLOADS
        .iter()
        .map(|&payload| {
            run_throughput(&ThroughputConfig {
                payload,
                tuples,
                ..ThroughputConfig::default()
            })
        })
        .collect();

    println!("{{");
    println!("  \"payloads\": [");
    for (i, r) in reports.iter().enumerate() {
        let s = &r.socket;
        let comma = if i + 1 < reports.len() { "," } else { "" };
        println!(
            "    {{\"payload\": {}, \"tuples\": {}, \"messages\": {}, \
             \"wire_bytes\": {}, \"wall_ms\": {:.1}, \"msgs_per_sec\": {:.0}, \
             \"mb_per_sec\": {:.2}, \"frames_sent\": {}, \"frames_received\": {}, \
             \"write_syscalls\": {}, \"read_syscalls\": {}, \
             \"frames_per_flush\": {:.2}, \"bytes_per_syscall\": {:.0}, \
             \"pool_hit_rate\": {:.4}}}{}",
            r.payload,
            r.tuples,
            r.messages,
            r.wire_bytes,
            r.wall.as_secs_f64() * 1e3,
            r.msgs_per_sec(),
            r.mb_per_sec(),
            s.frames_sent,
            s.frames_received,
            s.write_syscalls,
            s.read_syscalls,
            s.frames_per_flush(),
            s.bytes_per_syscall(),
            s.pool_hit_rate(),
            comma
        );
    }
    println!("  ]");
    println!("}}");

    if check {
        let mut failures = Vec::new();
        for r in &reports {
            let s = &r.socket;
            if s.frames_per_flush() <= 1.0 {
                failures.push(format!(
                    "payload {}: {:.2} frames/flush — the coalesced flush \
                     policy must batch more than one frame per vectored write",
                    r.payload,
                    s.frames_per_flush()
                ));
            }
            if s.pool_hit_rate() < 0.9 {
                failures.push(format!(
                    "payload {}: pool hit rate {:.3} — steady-state inbox \
                     frames must recycle pooled buffers",
                    r.payload,
                    s.pool_hit_rate()
                ));
            }
            if r.msgs_per_sec() <= 0.0 || r.wire_bytes == 0 {
                failures.push(format!("payload {}: no throughput measured", r.payload));
            }
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("FAIL: {f}");
            }
            std::process::exit(1);
        }
        eprintln!(
            "socket_bench --check passed ({} payload sizes)",
            PAYLOADS.len()
        );
    }
}
