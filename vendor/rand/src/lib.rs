//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to a package
//! registry, so the workspace vendors the *subset* of the rand 0.8 API it
//! actually uses: [`RngCore`], [`Rng`] (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`].
//!
//! `StdRng` here is xoshiro256++ seeded via SplitMix64 — a different stream
//! than upstream rand's ChaCha12, but every consumer in this workspace only
//! requires a deterministic, well-mixed generator, not a specific stream.
//! Determinism across runs and platforms is what the simulation needs
//! (seeded experiments must reproduce bit-identical metric vectors), and
//! xoshiro256++ is defined purely in terms of 64-bit integer ops, so it is
//! portable and fast.

/// A source of random 64-bit words. The root trait; everything else is
/// derived from `next_u64`.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper bits of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the full value domain via
/// `Rng::gen`.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for i64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for usize {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Use the high bit: xoshiro's low bits are its weakest.
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1) — same construction
        // as upstream rand's Standard distribution for f64.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform sample from `[0, span)` by widening multiply (Lemire's method,
/// without the rejection step: the bias is < 2^-64 per unit of span, far
/// below anything a simulation statistic can observe).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64-width inclusive range.
                    return start.wrapping_add(rng.next_u64() as $t);
                }
                start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The user-facing sampling interface, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from its full domain (`bool`, `f64` in
    /// `[0, 1)`, full-width integers).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    #[inline]
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    ///
    /// Not the same stream as upstream rand's `StdRng` (ChaCha12); see the
    /// crate docs for why that is acceptable here.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.gen::<f64>();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&y));
        }
    }

    #[test]
    fn gen_range_covers_domain() {
        let mut r = StdRng::seed_from_u64(11);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn works_through_unsized_ref() {
        // Mirrors Zipf::sample's `R: Rng + ?Sized` bound.
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut r = StdRng::seed_from_u64(3);
        let dynr: &mut StdRng = &mut r;
        let x = draw(dynr);
        assert!((0.0..1.0).contains(&x));
    }
}
