//! Kernel benchmarks for the three join-evaluation hot paths this repo's
//! perf work targets: the in-place candidate scans of the value-level
//! tables, the rewriter's tuple-arrival fan-out, and the transport's
//! per-destination batch enqueue. `scripts/bench_snapshot.sh` records their
//! trajectory in `BENCH_6.json`.

use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use cq_engine::tables::{StoredRewritten, StoredTuple, Vlqt, Vltt};
use cq_engine::{Algorithm, EngineConfig, Matches, Network};
use cq_overlay::Id;
use cq_relational::{
    parse_query, Catalog, DataType, QueryKey, QueryRef, RelationSchema, RewrittenQuery, Side,
    Timestamp, Tuple, Value,
};

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(RelationSchema::of("R", &[("A", DataType::Int), ("B", DataType::Int)]).unwrap())
        .unwrap();
    c.register(RelationSchema::of("S", &[("C", DataType::Int), ("D", DataType::Int)]).unwrap())
        .unwrap();
    c
}

fn query(cat: &Catalog, n: u64) -> QueryRef {
    Arc::new(
        parse_query("SELECT R.A, S.D FROM R, S WHERE R.B = S.C", cat)
            .unwrap()
            .into_query(QueryKey::derive("bench", n), "bench", Timestamp(0), cat)
            .unwrap(),
    )
}

fn r_tuple(cat: &Catalog, a: i64, b: i64) -> Tuple {
    Tuple::new(
        cat.get("R").unwrap().clone(),
        vec![Value::Int(a), Value::Int(b)],
        Timestamp(1),
        a as u64,
    )
    .unwrap()
}

fn s_tuple(cat: &Catalog, c: i64, d: i64) -> Arc<Tuple> {
    Arc::new(
        Tuple::new(
            cat.get("S").unwrap().clone(),
            vec![Value::Int(c), Value::Int(d)],
            Timestamp(1),
            d as u64,
        )
        .unwrap(),
    )
}

/// The evaluator's VLTT scan — a rewritten query arriving at its value
/// target matched against stored tuples in place (the `match_against_vltt`
/// inner loop): iterate candidates, test, accumulate counts.
fn bench_candidate_scan_vltt(c: &mut Criterion) {
    let cat = catalog();
    let q = query(&cat, 0);
    let rq = RewrittenQuery::rewrite_attribute(&q, Side::Left, "B", "C", &r_tuple(&cat, 1, 7))
        .unwrap()
        .unwrap();
    let mut group = c.benchmark_group("kernels/candidate-scan-vltt");
    for &n in &[1_000usize, 10_000] {
        let mut vltt = Vltt::new();
        for i in 0..n as i64 {
            vltt.insert(StoredTuple {
                index_id: Id(i as u64),
                attr: "C".to_string(),
                tuple: s_tuple(&cat, 7, i),
            })
            .unwrap();
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut matches = Matches::new(false);
                for e in vltt.candidates("S", "C", "i:7") {
                    if rq.matches(&e.tuple).unwrap() {
                        matches.add(&rq, &e.tuple).unwrap();
                    }
                }
                black_box(matches.len())
            })
        });
    }
    group.finish();
}

/// The evaluator's VLQT scan — a tuple arriving at the value level matched
/// against stored rewritten queries in place (the `match_vlqt_candidates`
/// inner loop).
fn bench_candidate_scan_vlqt(c: &mut Criterion) {
    let cat = catalog();
    let tuple = s_tuple(&cat, 7, 99);
    let mut group = c.benchmark_group("kernels/candidate-scan-vlqt");
    for &n in &[1_000usize, 10_000] {
        let mut vlqt = Vlqt::new();
        for i in 0..n as u64 {
            let q = query(&cat, i);
            let rq =
                RewrittenQuery::rewrite_attribute(&q, Side::Left, "B", "C", &r_tuple(&cat, 1, 7))
                    .unwrap()
                    .unwrap();
            vlqt.insert(StoredRewritten {
                index_id: Id(i),
                rq,
            })
            .unwrap();
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut matches = Matches::new(false);
                for e in vlqt.candidates("S", "C", "i:7") {
                    if e.rq.matches(&tuple).unwrap() {
                        matches.add(&e.rq, &tuple).unwrap();
                    }
                }
                black_box(matches.len())
            })
        });
    }
    group.finish();
}

/// The rewriter's tuple-arrival fan-out, end to end: a tuple triggers every
/// installed query's group at the rewriter, is rewritten, and the rewritten
/// queries are shipped to their value-level evaluators. Scales with the
/// number of installed queries.
fn bench_rewrite_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/rewrite-fanout");
    for alg in [Algorithm::Sai, Algorithm::DaiV] {
        for &queries in &[50usize, 200] {
            let mut net = Network::new(
                EngineConfig::new(alg).with_nodes(256).with_seed(7),
                catalog(),
            );
            let sql = "SELECT R.A, S.D FROM R, S WHERE R.B = S.C";
            for i in 0..queries {
                let poser = net.node_at(i % 256);
                net.pose_query_sql(poser, sql).unwrap();
            }
            let mut i = 0i64;
            let id = format!("{}-q{}", alg.name(), queries);
            group.bench_with_input(BenchmarkId::from_parameter(id), &queries, |b, _| {
                b.iter(|| {
                    i += 1;
                    let from = net.node_at((i as usize) % 256);
                    black_box(
                        net.insert_tuple(from, "R", vec![Value::Int(i), Value::Int(i % 32)])
                            .unwrap(),
                    )
                })
            });
        }
    }
    group.finish();
}

/// Per-destination batch enqueue vs per-message enqueue: the same
/// steady-state insert workload with `batch_delivery` on and off.
fn bench_batch_enqueue(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/batch-enqueue");
    for &batch in &[true, false] {
        let mut net = Network::new(
            EngineConfig::new(Algorithm::Sai)
                .with_nodes(256)
                .with_seed(7)
                .with_batch_delivery(batch),
            catalog(),
        );
        let sql = "SELECT R.A, S.D FROM R, S WHERE R.B = S.C";
        for i in 0..100 {
            let poser = net.node_at(i % 256);
            net.pose_query_sql(poser, sql).unwrap();
        }
        let mut i = 0i64;
        let id = if batch { "bundled" } else { "per-message" };
        group.bench_with_input(BenchmarkId::from_parameter(id), &batch, |b, _| {
            b.iter(|| {
                i += 1;
                let from = net.node_at((i as usize) % 256);
                let (rel, values) = if i % 2 == 0 {
                    ("R", vec![Value::Int(i), Value::Int(i % 32)])
                } else {
                    ("S", vec![Value::Int(i % 32), Value::Int(i)])
                };
                black_box(net.insert_tuple(from, rel, values).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_candidate_scan_vltt, bench_candidate_scan_vlqt,
        bench_rewrite_fanout, bench_batch_enqueue
}
criterion_main!(benches);
