//! EF1 — Fault tolerance: notification recall under message loss and
//! abrupt node failures (robustness extension, not a paper figure).
//!
//! Sweeps message-loss rate × abrupt-failure count × replication factor
//! `k` for all four algorithms. With reliable delivery (acks +
//! retransmissions) recall must survive any loss rate; with `k`-successor
//! state replication it must also survive node failures. The report shows
//! recall against the brute-force oracle plus the robustness layer's own
//! cost: retransmission traffic, duplicate suppression and recovery
//! (replica/promotion) work.

use cq_engine::{Algorithm, FaultConfig};

use super::Scale;
use crate::harness::RunConfig;
use crate::parallel::run_many;
use crate::report::{fnum, Report};

/// The swept fault scenarios: `(loss rate, failures, replication k)`.
const SCENARIOS: [(f64, usize, usize); 5] = [
    (0.0, 0, 0), // baseline: no faults
    (0.2, 0, 0), // lossy channel, reliable delivery only
    (0.0, 2, 0), // failures without redundancy
    (0.0, 2, 2), // failures with k=2 replication
    (0.2, 2, 2), // both at once
];

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let nodes = scale.pick(32, 128);
    let queries = scale.pick(10, 40);
    let tuples = scale.pick(100, 400);
    let mut report = Report::new(
        "EF1",
        &format!("notification recall under loss and abrupt failures (N={nodes})"),
        &[
            "algorithm",
            "loss",
            "failures",
            "k",
            "recall",
            "expected",
            "lost msgs",
            "retransmits",
            "dedup",
            "promoted",
            "replica msgs",
        ],
    );
    let mut keys = Vec::new();
    let mut cfgs = Vec::new();
    for alg in Algorithm::ALL {
        for (loss, failures, k) in SCENARIOS {
            let mut fault = if loss > 0.0 {
                FaultConfig::lossy(loss, 0xFA01)
            } else {
                FaultConfig::default()
            };
            fault.replication = k;
            keys.push((alg, loss, failures, k));
            cfgs.push(RunConfig {
                nodes,
                queries,
                tuples,
                fault,
                failures,
                retain_notifications: true,
                ..RunConfig::new(alg)
            });
        }
    }
    for ((alg, loss, failures, k), r) in keys.into_iter().zip(run_many(&cfgs)) {
        report.row(vec![
            alg.to_string(),
            fnum(loss),
            failures.to_string(),
            k.to_string(),
            fnum(r.recall),
            r.expected_notifications.to_string(),
            r.faults.messages_lost.to_string(),
            r.faults.retransmissions.to_string(),
            r.faults.dedup_suppressed.to_string(),
            r.faults.replicas_promoted.to_string(),
            r.faults.replica_messages.to_string(),
        ]);
    }
    report.note("reliable delivery keeps recall at 1.0 under pure message loss");
    report.note("k-successor replication recovers state lost to abrupt failures");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_only_scenarios_reach_full_recall() {
        let r = run(Scale::Quick);
        let rows: Vec<Vec<String>> = r
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(str::to_string).collect())
            .collect();
        assert_eq!(rows.len(), 4 * SCENARIOS.len());
        for row in &rows {
            let failures: usize = row[2].parse().unwrap();
            let recall: f64 = row[4].parse().unwrap();
            if failures == 0 {
                assert!(
                    (recall - 1.0).abs() < 1e-9,
                    "{} loss={} must reach recall 1.0, got {recall}",
                    row[0],
                    row[1]
                );
            }
        }
        // Replication never hurts: for each (algorithm, loss) pair with
        // failures, recall at k=2 is at least recall at k=0.
        for w in rows.chunks(SCENARIOS.len()) {
            let k0: f64 = w[2][4].parse().unwrap();
            let k2: f64 = w[3][4].parse().unwrap();
            assert!(
                k2 >= k0 - 1e-9,
                "{}: recall k=2 ({k2}) below k=0 ({k0})",
                w[0][0]
            );
        }
    }
}
