//! Sim-vs-socket equivalence runs: execute the same seeded experiment on
//! the in-memory simulator transport and on real TCP loopback sockets, and
//! compare what arrived.
//!
//! The TCP backend queues envelope metadata in userspace while the message
//! payloads cross real sockets, so a socket run dispatches the identical
//! message sequence as the simulator at the same seed — the delivered
//! notification set and every transport-independent metric must match
//! exactly. [`compare`] runs both and reports the first divergence; the
//! `tcp_cluster` binary and the `socket-suite` CI test are thin wrappers
//! around it.
//!
//! [`run_multi_client`] is the concurrent variant: one server event loop
//! (the same [`cq_poll::Poller`] + [`FrameConn`] machinery the engine's TCP
//! backend uses) owns the network, while N client threads stream the
//! workload's commands over their own sockets concurrently. Frames arrive
//! interleaved and out of global order; the server reassembles them by
//! global sequence number and applies them in order, so the outcome is
//! deterministic — and must equal a sequential run of the same command
//! list. The server answers each client with a deliberately large
//! completion frame through a tiny `SO_SNDBUF`, forcing the write path
//! into userspace backpressure.

use std::collections::{BTreeMap, HashSet};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::time::{Duration, Instant};

use cq_engine::frames::{BufPool, FrameConn};
use cq_engine::{Algorithm, EngineConfig, Network, SocketStats, TrafficKind};
use cq_poll::{Event, Interest, Poller};
use cq_relational::{Catalog, DataType, Notification, RelationSchema, Value};
use cq_workload::{Workload, WorkloadConfig};

/// Shape of one equivalence experiment.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Evaluation algorithm.
    pub algorithm: Algorithm,
    /// Network size (one TCP listener per node in the socket run).
    pub nodes: usize,
    /// Continuous queries to install.
    pub queries: usize,
    /// Tuples to stream after installation.
    pub tuples: usize,
    /// Workload and engine seed.
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            algorithm: Algorithm::DaiT,
            nodes: 32,
            queries: 10,
            tuples: 80,
            seed: 7,
        }
    }
}

/// What one run produced: everything the equivalence check compares.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterRun {
    /// The distinct notifications delivered to inboxes and offline stores.
    pub delivered: HashSet<Notification>,
    /// Notifications delivered with multiplicity.
    pub notifications: u64,
    /// Total logical messages routed.
    pub messages: u64,
    /// Total overlay hops consumed.
    pub hops: u64,
    /// Per-category `(messages, hops)` in [`TrafficKind::ALL`] order.
    pub traffic: Vec<(u64, u64)>,
    /// Total wire bytes counted by the transport (zero on the default
    /// simulator path, which never serializes).
    pub wire_bytes: u64,
}

/// Timing and socket-level statistics of one run (everything the
/// throughput summary reports but the equivalence checks must *not*
/// compare — wall time and syscall counts are scheduling-dependent).
#[derive(Clone, Copy, Debug)]
pub struct RunStats {
    /// Wall time of the query + tuple phases.
    pub wall: Duration,
    /// Aggregate socket statistics (`None` on the in-memory transport).
    pub socket: Option<SocketStats>,
}

/// Executes the experiment once, over sockets when `tcp` is set.
pub fn run_once(cfg: &ClusterConfig, tcp: bool) -> ClusterRun {
    run_once_timed(cfg, tcp).0
}

/// [`run_once`] plus wall time and drained socket statistics.
pub fn run_once_timed(cfg: &ClusterConfig, tcp: bool) -> (ClusterRun, RunStats) {
    let mut workload = Workload::new(WorkloadConfig {
        seed: cfg.seed,
        ..WorkloadConfig::default()
    });
    let engine_cfg = EngineConfig::new(cfg.algorithm)
        .with_nodes(cfg.nodes)
        .with_seed(cfg.seed)
        .with_retained_notifications(true);
    let mut net = Network::new(engine_cfg, workload.catalog().clone());
    if tcp {
        net.enable_tcp_transport()
            .expect("perfect-delivery config accepts the TCP transport");
    }
    let start = Instant::now();
    for _ in 0..cfg.queries {
        let poser = net.random_node();
        let sql = workload.query_between(0, 1);
        net.pose_query_sql(poser, &sql)
            .expect("generated queries are valid");
    }
    for _ in 0..cfg.tuples {
        let rel = workload.next_stream_relation();
        let values = workload.random_tuple_values();
        let from = net.random_node();
        net.insert_tuple(from, &rel, values)
            .expect("generated tuples are valid");
    }
    let stats = RunStats {
        wall: start.elapsed(),
        socket: net.take_socket_stats(),
    };
    (collect_run(&net), stats)
}

/// Snapshots everything the equivalence checks compare from a finished run.
fn collect_run(net: &Network) -> ClusterRun {
    let m = net.metrics();
    let total = m.total_traffic();
    ClusterRun {
        delivered: net.delivered_set(),
        notifications: m.notifications_delivered,
        messages: total.messages,
        hops: total.hops,
        traffic: TrafficKind::ALL
            .iter()
            .map(|&k| {
                let t = m.traffic(k);
                (t.messages, t.hops)
            })
            .collect(),
        wire_bytes: m.faults.total_bytes_sent(),
    }
}

/// What an equivalence [`compare`] proved and measured: the checked
/// fields come from the socket run (the simulator run matched them
/// exactly), the stats fields describe only the socket run.
#[derive(Clone, Debug)]
pub struct CompareReport {
    /// Wire bytes counted by the TCP transport.
    pub wire_bytes: u64,
    /// Logical messages routed (identical on both transports).
    pub messages: u64,
    /// Wall time of the socket run.
    pub wall: Duration,
    /// Socket-level statistics drained from the TCP transport.
    pub socket: SocketStats,
}

/// Runs the experiment on both transports and returns the socket run's
/// report on success, or a description of the first divergence.
pub fn compare(cfg: &ClusterConfig) -> Result<CompareReport, String> {
    let sim = run_once(cfg, false);
    let (tcp, tcp_stats) = run_once_timed(cfg, true);
    if sim.delivered != tcp.delivered {
        let sim_only = sim.delivered.difference(&tcp.delivered).count();
        let tcp_only = tcp.delivered.difference(&sim.delivered).count();
        return Err(format!(
            "delivered sets diverge: {} notifications only in sim, {} only in tcp",
            sim_only, tcp_only
        ));
    }
    if sim.notifications != tcp.notifications {
        return Err(format!(
            "delivery multiplicity diverges: sim {} vs tcp {}",
            sim.notifications, tcp.notifications
        ));
    }
    if (sim.messages, sim.hops) != (tcp.messages, tcp.hops) {
        return Err(format!(
            "total traffic diverges: sim {}msg/{}hops vs tcp {}msg/{}hops",
            sim.messages, sim.hops, tcp.messages, tcp.hops
        ));
    }
    if sim.traffic != tcp.traffic {
        return Err(format!(
            "per-kind traffic diverges: sim {:?} vs tcp {:?}",
            sim.traffic, tcp.traffic
        ));
    }
    if sim.wire_bytes != 0 {
        return Err(format!(
            "simulator counted wire bytes ({}) without serializing",
            sim.wire_bytes
        ));
    }
    if tcp.wire_bytes == 0 {
        return Err("tcp transport counted no wire bytes".to_string());
    }
    let socket = tcp_stats
        .socket
        .ok_or_else(|| "tcp run produced no socket stats".to_string())?;
    if socket.frames_sent == 0 || socket.frames_received == 0 {
        return Err(format!(
            "socket stats counted no frames: {} sent, {} received",
            socket.frames_sent, socket.frames_received
        ));
    }
    Ok(CompareReport {
        wire_bytes: tcp.wire_bytes,
        messages: tcp.messages,
        wall: tcp_stats.wall,
        socket,
    })
}

// =====================================================================
// Loopback throughput harness
// =====================================================================

/// Shape of one loopback throughput run: a wide two-relation catalog
/// (six indexed `Int` attributes plus one `Str` payload column per
/// relation) streamed through the real TCP reactor. Few nodes and many
/// indexed attributes concentrate traffic on few streams, so each poll
/// drain coalesces many frames per vectored flush.
#[derive(Clone, Debug)]
pub struct ThroughputConfig {
    /// Network size (one TCP stream pair per node pair; 2 maximises
    /// per-stream coalescing).
    pub nodes: usize,
    /// Bytes of string payload carried by every tuple.
    pub payload: usize,
    /// Tuples streamed through the network.
    pub tuples: usize,
    /// Engine seed.
    pub seed: u64,
}

impl Default for ThroughputConfig {
    fn default() -> Self {
        ThroughputConfig {
            nodes: 2,
            payload: 64,
            tuples: 2000,
            seed: 7,
        }
    }
}

/// What one throughput run moved and how fast.
#[derive(Clone, Copy, Debug)]
pub struct ThroughputReport {
    /// Tuples streamed.
    pub tuples: usize,
    /// Payload bytes per tuple.
    pub payload: usize,
    /// Logical messages routed.
    pub messages: u64,
    /// Wire bytes counted by the transport.
    pub wire_bytes: u64,
    /// Wall time of the tuple-streaming phase.
    pub wall: Duration,
    /// Socket-level statistics drained from the transport.
    pub socket: SocketStats,
}

impl ThroughputReport {
    /// Logical messages per second of wall time.
    pub fn msgs_per_sec(&self) -> f64 {
        self.messages as f64 / self.wall.as_secs_f64().max(1e-9)
    }

    /// Wire megabytes per second of wall time.
    pub fn mb_per_sec(&self) -> f64 {
        self.wire_bytes as f64 / (1024.0 * 1024.0) / self.wall.as_secs_f64().max(1e-9)
    }
}

/// Streams `cfg.tuples` wide tuples through the TCP loopback reactor
/// under a handful of standing join queries and measures throughput.
/// Join keys are distinct per tuple, so the indexing and rewriting
/// traffic dominates and the notification volume stays flat.
pub fn run_throughput(cfg: &ThroughputConfig) -> ThroughputReport {
    let mut catalog = Catalog::new();
    catalog
        .register(
            RelationSchema::of(
                "R",
                &[
                    ("A", DataType::Int),
                    ("B", DataType::Int),
                    ("C", DataType::Int),
                    ("D", DataType::Int),
                    ("E", DataType::Int),
                    ("F", DataType::Int),
                    ("P", DataType::Str),
                ],
            )
            .expect("valid schema"),
        )
        .expect("fresh catalog");
    catalog
        .register(
            RelationSchema::of(
                "S",
                &[
                    ("G", DataType::Int),
                    ("H", DataType::Int),
                    ("I", DataType::Int),
                    ("J", DataType::Int),
                    ("K", DataType::Int),
                    ("L", DataType::Int),
                    ("Q", DataType::Str),
                ],
            )
            .expect("valid schema"),
        )
        .expect("fresh catalog");
    let engine_cfg = EngineConfig::new(Algorithm::DaiT)
        .with_nodes(cfg.nodes)
        .with_seed(cfg.seed)
        .with_retained_notifications(true);
    let mut net = Network::new(engine_cfg, catalog);
    net.enable_tcp_transport()
        .expect("perfect-delivery config accepts the TCP transport");
    for sql in [
        "SELECT R.A, S.H FROM R, S WHERE R.B = S.G",
        "SELECT R.C, S.J FROM R, S WHERE R.D = S.I",
        "SELECT R.E, S.L FROM R, S WHERE R.F = S.K",
        "SELECT R.B, S.I FROM R, S WHERE R.A = S.L",
    ] {
        let poser = net.random_node();
        net.pose_query_sql(poser, sql)
            .expect("throughput queries are valid");
    }
    let pad = "x".repeat(cfg.payload);
    let start = Instant::now();
    for i in 0..cfg.tuples {
        let k = 1_000_000 + 2 * i as i64;
        let (rel, base) = if i % 2 == 0 {
            ("R", k)
        } else {
            ("S", k + 1) // odd keys: never meets an R key, joins stay dry
        };
        let values = vec![
            Value::Int(base),
            Value::Int(base + 10_000_000),
            Value::Int(base + 20_000_000),
            Value::Int(base + 30_000_000),
            Value::Int(base + 40_000_000),
            Value::Int(base + 50_000_000),
            Value::Str(pad.clone()),
        ];
        let from = net.random_node();
        net.insert_tuple(from, rel, values)
            .expect("throughput tuples are valid");
    }
    let wall = start.elapsed();
    let socket = net
        .take_socket_stats()
        .expect("tcp transport reports socket stats");
    let m = net.metrics();
    ThroughputReport {
        tuples: cfg.tuples,
        payload: cfg.payload,
        messages: m.total_traffic().messages,
        wire_bytes: m.faults.total_bytes_sent(),
        wall,
        socket,
    }
}

// =====================================================================
// Multi-client concurrent harness
// =====================================================================

/// Commands are applied strictly in global sequence order however they
/// arrive, so a multi-client run is comparable against a sequential one.
enum Command {
    /// Pose a continuous query at a node.
    Query {
        /// Posing node slot.
        node: u32,
        /// The query SQL.
        sql: String,
    },
    /// Insert a streamed tuple at a node.
    Tuple {
        /// Inserting node slot.
        node: u32,
        /// Target relation.
        rel: String,
        /// The tuple values.
        values: Vec<Value>,
    },
}

/// Deterministic node spread for command `i` (a multiplicative hash — the
/// engine's own RNG must not be consulted, or the baseline and the
/// multi-client run would draw different protocol streams).
fn spread(i: usize, nodes: usize) -> u32 {
    (((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) as usize % nodes) as u32
}

/// Generates the experiment's command list from the seeded workload.
fn command_list(cfg: &ClusterConfig) -> (Workload, Vec<Command>) {
    let mut workload = Workload::new(WorkloadConfig {
        seed: cfg.seed,
        ..WorkloadConfig::default()
    });
    let mut cmds = Vec::with_capacity(cfg.queries + cfg.tuples);
    for i in 0..cfg.queries {
        cmds.push(Command::Query {
            node: spread(i, cfg.nodes),
            sql: workload.query_between(0, 1),
        });
    }
    for i in 0..cfg.tuples {
        cmds.push(Command::Tuple {
            node: spread(cfg.queries + i, cfg.nodes),
            rel: workload.next_stream_relation(),
            values: workload.random_tuple_values(),
        });
    }
    (workload, cmds)
}

impl Command {
    /// Serializes the command as a length-prefixed frame body (the shape
    /// [`FrameConn::queue_frame`] expects).
    fn encode(&self) -> Vec<u8> {
        let mut body = Vec::new();
        match self {
            Command::Query { node, sql } => {
                body.push(0u8);
                body.extend_from_slice(&node.to_le_bytes());
                body.extend_from_slice(&(sql.len() as u32).to_le_bytes());
                body.extend_from_slice(sql.as_bytes());
            }
            Command::Tuple { node, rel, values } => {
                body.push(1u8);
                body.extend_from_slice(&node.to_le_bytes());
                body.extend_from_slice(&(rel.len() as u32).to_le_bytes());
                body.extend_from_slice(rel.as_bytes());
                body.extend_from_slice(&(values.len() as u16).to_le_bytes());
                for v in values {
                    match v {
                        Value::Int(i) => {
                            body.push(0u8);
                            body.extend_from_slice(&i.to_le_bytes());
                        }
                        Value::Str(s) => {
                            body.push(1u8);
                            body.extend_from_slice(&(s.len() as u32).to_le_bytes());
                            body.extend_from_slice(s.as_bytes());
                        }
                    }
                }
            }
        }
        let mut frame = Vec::with_capacity(4 + body.len());
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&body);
        frame
    }

    /// Decodes a command from a frame body (without the length prefix).
    fn decode(body: &[u8]) -> Result<Command, String> {
        struct Cursor<'a>(&'a [u8], usize);
        impl<'a> Cursor<'a> {
            fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
                if self.0.len() - self.1 < n {
                    return Err("truncated command frame".to_string());
                }
                let s = &self.0[self.1..self.1 + n];
                self.1 += n;
                Ok(s)
            }
            fn u8(&mut self) -> Result<u8, String> {
                Ok(self.take(1)?[0])
            }
            fn u16(&mut self) -> Result<u16, String> {
                Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
            }
            fn u32(&mut self) -> Result<u32, String> {
                Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
            }
            fn i64(&mut self) -> Result<i64, String> {
                Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
            }
            fn string(&mut self) -> Result<String, String> {
                let len = self.u32()? as usize;
                String::from_utf8(self.take(len)?.to_vec())
                    .map_err(|_| "command frame carries invalid utf-8".to_string())
            }
        }
        let mut c = Cursor(body, 0);
        let cmd = match c.u8()? {
            0 => Command::Query {
                node: c.u32()?,
                sql: c.string()?,
            },
            1 => {
                let node = c.u32()?;
                let rel = c.string()?;
                let n = c.u16()? as usize;
                let mut values = Vec::with_capacity(n);
                for _ in 0..n {
                    values.push(match c.u8()? {
                        0 => Value::Int(c.i64()?),
                        1 => Value::Str(c.string()?),
                        t => return Err(format!("unknown value tag {t}")),
                    });
                }
                Command::Tuple { node, rel, values }
            }
            t => return Err(format!("unknown command tag {t}")),
        };
        if c.1 != body.len() {
            return Err("trailing bytes after command".to_string());
        }
        Ok(cmd)
    }
}

/// Applies one command to the network.
fn apply(net: &mut Network, cmd: &Command) -> Result<(), String> {
    match cmd {
        Command::Query { node, sql } => net
            .pose_query_sql(net.node_at(*node as usize), sql)
            .map(|_| ())
            .map_err(|e| format!("pose query: {e}")),
        Command::Tuple { node, rel, values } => net
            .insert_tuple(net.node_at(*node as usize), rel, values.clone())
            .map(|_| ())
            .map_err(|e| format!("insert tuple: {e}")),
    }
}

/// What a [`run_multi_client`] run produced and proved.
#[derive(Clone, Debug)]
pub struct MultiClientReport {
    /// Concurrent client connections served by the one event loop.
    pub clients: usize,
    /// Commands shipped over the client sockets.
    pub commands: usize,
    /// Wire bytes moved by the engine's own TCP transport during the run.
    pub wire_bytes: u64,
    /// Times the harness server's completion-frame writes hit a full
    /// kernel buffer and parked bytes in userspace (the partial-write
    /// backpressure path; the report is only produced if this exercised).
    pub server_backpressure_events: u64,
}

/// Size of the completion frame the server sends each client — large
/// enough that, pushed through a [`SMALL_SNDBUF`]-byte kernel buffer at a
/// client that is deliberately not reading yet, the write *must* park
/// bytes in userspace.
const COMPLETION_LEN: usize = 512 * 1024;

/// Kernel send-buffer size applied to the server side of every client
/// connection.
const SMALL_SNDBUF: usize = 4096;

/// Wall-clock budget for the whole multi-client exchange.
const MULTI_DEADLINE: Duration = Duration::from_secs(120);

/// Runs the experiment with one server event loop and `clients` concurrent
/// client connections streaming the command list (round-robin partitioned,
/// so frames genuinely interleave), applies commands in global order, and
/// checks the outcome against a sequential in-memory run of the same
/// commands. The completion exchange forces write backpressure on the
/// server; the report carries the observed event count.
pub fn run_multi_client(cfg: &ClusterConfig, clients: usize) -> Result<MultiClientReport, String> {
    assert!(clients > 0, "at least one client");
    let (workload, cmds) = command_list(cfg);
    let engine_cfg = || {
        EngineConfig::new(cfg.algorithm)
            .with_nodes(cfg.nodes)
            .with_seed(cfg.seed)
            .with_retained_notifications(true)
    };

    // Baseline: the same commands, applied sequentially, in-memory.
    let mut baseline_net = Network::new(engine_cfg(), workload.catalog().clone());
    for cmd in &cmds {
        apply(&mut baseline_net, cmd)?;
    }
    let baseline = collect_run(&baseline_net);

    // Concurrent run: the server's network itself runs over TCP loopback.
    let mut net = Network::new(engine_cfg(), workload.catalog().clone());
    net.enable_tcp_transport()
        .map_err(|e| format!("enable tcp transport: {e}"))?;

    let listener =
        TcpListener::bind(("127.0.0.1", 0)).map_err(|e| format!("bind harness listener: {e}"))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| format!("nonblocking listener: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;

    // Round-robin partition: client `c` carries global sequences c, c+N, …
    let mut parts: Vec<Vec<(u64, Vec<u8>)>> = vec![Vec::new(); clients];
    for (i, cmd) in cmds.iter().enumerate() {
        parts[i % clients].push((i as u64, cmd.encode()));
    }
    let handles: Vec<_> = parts
        .into_iter()
        .map(|part| std::thread::spawn(move || client_thread(addr, part)))
        .collect();

    let total = cmds.len();
    let result = serve_multi(&mut net, &listener, clients, total);
    let mut client_errors = Vec::new();
    for (i, h) in handles.into_iter().enumerate() {
        match h.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => client_errors.push(format!("client {i}: {e}")),
            Err(_) => client_errors.push(format!("client {i}: panicked")),
        }
    }
    let backpressure = result?;
    if !client_errors.is_empty() {
        return Err(client_errors.join("; "));
    }

    let run = collect_run(&net);
    if run.delivered != baseline.delivered {
        let base_only = baseline.delivered.difference(&run.delivered).count();
        let multi_only = run.delivered.difference(&baseline.delivered).count();
        return Err(format!(
            "delivered sets diverge: {base_only} notifications only in the sequential baseline, \
             {multi_only} only in the multi-client run"
        ));
    }
    if run.notifications != baseline.notifications {
        return Err(format!(
            "delivery multiplicity diverges: baseline {} vs multi-client {}",
            baseline.notifications, run.notifications
        ));
    }
    if (run.messages, run.hops) != (baseline.messages, baseline.hops) {
        return Err(format!(
            "traffic diverges: baseline {}msg/{}hops vs multi-client {}msg/{}hops",
            baseline.messages, baseline.hops, run.messages, run.hops
        ));
    }
    if run.traffic != baseline.traffic {
        return Err(format!(
            "per-kind traffic diverges: baseline {:?} vs multi-client {:?}",
            baseline.traffic, run.traffic
        ));
    }
    if run.wire_bytes == 0 {
        return Err("engine tcp transport counted no wire bytes".to_string());
    }
    if backpressure == 0 {
        return Err("completion exchange never hit write backpressure".to_string());
    }
    Ok(MultiClientReport {
        clients,
        commands: total,
        wire_bytes: run.wire_bytes,
        server_backpressure_events: backpressure,
    })
}

/// One harness-server connection.
struct HarnessConn {
    fc: FrameConn,
    /// The client finished sending (clean EOF observed).
    eof: bool,
    /// The completion frame has been queued.
    done_queued: bool,
}

/// The server event loop: accept `clients` connections, reassemble command
/// frames, apply them in global order, then push the oversized completion
/// frames. Returns the total backpressure events observed on the harness
/// connections.
fn serve_multi(
    net: &mut Network,
    listener: &TcpListener,
    clients: usize,
    total: usize,
) -> Result<u64, String> {
    let mut poller = Poller::new().map_err(|e| format!("harness poller: {e}"))?;
    poller
        .register(listener, 0, Interest::READ)
        .map_err(|e| format!("register listener: {e}"))?;
    let completion = {
        let body = vec![0u8; COMPLETION_LEN];
        let mut frame = Vec::with_capacity(4 + body.len());
        frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
        frame.extend_from_slice(&body);
        frame
    };
    let mut conns: Vec<HarnessConn> = Vec::with_capacity(clients);
    let mut events: Vec<Event> = Vec::new();
    let mut raw = Vec::new();
    let mut pool = BufPool::new();
    let mut pending: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    let mut next_apply = 0u64;
    let mut applied = 0usize;
    let deadline = Instant::now() + MULTI_DEADLINE;
    loop {
        let finished = applied == total
            && conns.len() == clients
            && conns.iter().all(|c| c.done_queued && !c.fc.wants_write());
        if finished {
            return Ok(conns.iter().map(|c| c.fc.blocked_writes()).sum());
        }
        if Instant::now() > deadline {
            return Err(format!(
                "multi-client exchange timed out: {applied}/{total} commands applied, \
                 {} connections",
                conns.len()
            ));
        }
        poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .map_err(|e| format!("harness wait: {e}"))?;
        for ev in events.drain(..) {
            if ev.token == 0 {
                // Accept every pending client; tiny SO_SNDBUF on the server
                // side so the completion frame cannot fit in the kernel.
                loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            cq_poll::set_send_buffer(&stream, SMALL_SNDBUF)
                                .map_err(|e| format!("shrink sndbuf: {e}"))?;
                            let fc = FrameConn::new(stream, cq_engine::wire::MAX_FRAME)
                                .map_err(|e| format!("accept: {e}"))?;
                            let token = 1 + conns.len() as u64;
                            poller
                                .register(fc.stream(), token, Interest::READ)
                                .map_err(|e| format!("register conn: {e}"))?;
                            conns.push(HarnessConn {
                                fc,
                                eof: false,
                                done_queued: false,
                            });
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                        Err(e) => return Err(format!("accept: {e}")),
                    }
                }
                continue;
            }
            let idx = ev.token as usize - 1;
            let conn = &mut conns[idx];
            if ev.readable && !conn.eof {
                raw.clear();
                match conn.fc.read_frames(&mut raw, &mut pool) {
                    Ok(true) => {}
                    Ok(false) => {
                        conn.eof = true;
                        // Mask read interest: a half-closed socket would
                        // otherwise level-trigger forever.
                        poller
                            .modify(
                                conn.fc.stream(),
                                ev.token,
                                Interest {
                                    readable: false,
                                    writable: conn.fc.wants_write(),
                                },
                            )
                            .map_err(|e| format!("mask conn: {e}"))?;
                    }
                    Err(e) => return Err(format!("client frames: {e}")),
                }
                for (seq, frame) in raw.drain(..) {
                    pending.insert(seq, frame);
                }
            }
            if ev.writable && conn.fc.wants_write() {
                let drained = conn.fc.flush().map_err(|e| format!("flush: {e}"))?;
                if drained {
                    poller
                        .modify(
                            conn.fc.stream(),
                            ev.token,
                            Interest {
                                readable: !conn.eof,
                                writable: false,
                            },
                        )
                        .map_err(|e| format!("unmask write: {e}"))?;
                }
            }
        }
        // Apply every command whose global order has arrived; the frame
        // buffers go back to the pool once decoded.
        while let Some(frame) = pending.remove(&next_apply) {
            let cmd = Command::decode(&frame[4..]);
            pool.put(frame);
            apply(net, &cmd?)?;
            next_apply += 1;
            applied += 1;
        }
        // Everything applied: answer each finished client with the
        // oversized completion frame (this is where backpressure bites).
        if applied == total {
            for (idx, conn) in conns.iter_mut().enumerate() {
                if conn.eof && !conn.done_queued {
                    conn.done_queued = true;
                    conn.fc.queue_frame(0, &completion);
                    let _ = conn.fc.flush().map_err(|e| format!("completion: {e}"))?;
                    poller
                        .modify(
                            conn.fc.stream(),
                            1 + idx as u64,
                            Interest {
                                readable: false,
                                writable: conn.fc.wants_write(),
                            },
                        )
                        .map_err(|e| format!("arm write: {e}"))?;
                }
            }
        }
    }
}

/// One client: stream the assigned command frames, half-close, hold off
/// reading briefly (so the server's completion write is guaranteed to meet
/// a full pipe), then consume the completion frame.
fn client_thread(
    addr: std::net::SocketAddr,
    part: Vec<(u64, Vec<u8>)>,
) -> Result<(), std::io::Error> {
    // The client reads at full speed once it starts; backpressure is
    // guaranteed by COMPLETION_LEN dwarfing the server's SO_SNDBUF while
    // this thread is still in its pre-read sleep.
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    let mut buf = Vec::new();
    for (seq, frame) in &part {
        buf.extend_from_slice(&seq.to_le_bytes());
        buf.extend_from_slice(frame);
    }
    stream.write_all(&buf)?;
    stream.shutdown(Shutdown::Write)?;
    std::thread::sleep(Duration::from_millis(100));
    let mut header = [0u8; 12];
    stream.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header[8..12].try_into().expect("4 bytes")) as usize;
    if len != COMPLETION_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("completion frame announces {len} bytes"),
        ));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    Ok(())
}
