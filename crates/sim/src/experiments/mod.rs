//! One module per reproduced figure/table (ids from DESIGN.md).
//!
//! Every experiment exposes `run(scale) -> Report`. `Scale::Quick` finishes
//! in milliseconds-to-seconds (used by tests and criterion benches);
//! `Scale::Full` approaches the paper's set-up (used by the
//! `experiments` binary that fills EXPERIMENTS.md).

pub mod a01_dai_v_keyed;
pub mod e01_multisend;
pub mod e02_traffic_jfrt;
pub mod e03_query_scaling;
pub mod e04_strategy;
pub mod e05_bos_ratio;
pub mod e06_replication_filter;
pub mod e07_replication_storage;
pub mod e08_window_filter;
pub mod e09_window_storage;
pub mod e10_load_distribution;
pub mod e11_totals;
pub mod e12_tuple_rate;
pub mod e13_query_count;
pub mod e14_network_size;
pub mod e15_top_loaded;
pub mod e16_dai_v;
pub mod ef01_faults;
pub mod ef02_churn;
pub mod t01_comparison;

use crate::report::Report;

/// An experiment entry point: builds its report at the given scale.
pub type ExperimentFn = fn(Scale) -> Report;

/// How big an experiment run should be.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Milliseconds-to-seconds versions for tests and benches.
    Quick,
    /// Paper-approaching versions for the experiments binary.
    Full,
}

impl Scale {
    /// Selects a parameter by scale.
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// The registry of all experiments, in paper order.
pub fn all() -> Vec<(&'static str, ExperimentFn)> {
    vec![
        ("e01", e01_multisend::run as ExperimentFn),
        ("e02", e02_traffic_jfrt::run),
        ("e03", e03_query_scaling::run),
        ("e04", e04_strategy::run),
        ("e05", e05_bos_ratio::run),
        ("e06", e06_replication_filter::run),
        ("e07", e07_replication_storage::run),
        ("e08", e08_window_filter::run),
        ("e09", e09_window_storage::run),
        ("e10", e10_load_distribution::run),
        ("e11", e11_totals::run),
        ("e12", e12_tuple_rate::run),
        ("e13", e13_query_count::run),
        ("e14", e14_network_size::run),
        ("e15", e15_top_loaded::run),
        ("e16", e16_dai_v::run),
        ("t01", t01_comparison::run),
        ("a01", a01_dai_v_keyed::run),
        ("ef01", ef01_faults::run),
        ("ef02", ef02_churn::run),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_figure_and_table() {
        // 16 experiment figures + Table 4.1 + the keyed-DAI-V ablation +
        // the fault-tolerance and churn-recovery extensions.
        assert_eq!(all().len(), 20);
    }

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
    }
}
