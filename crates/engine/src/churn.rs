//! Churn: voluntary leaves, abrupt failures, rejoins with key transfer, and
//! replica promotion during stabilization (Sections 2.2, 4.6).
//!
//! These are state-layer operations on [`Network`]: they move table entries
//! between nodes when ring ownership changes, independent of which
//! evaluation algorithm produced the entries.

use cq_overlay::{Id, NodeHandle};

use crate::error::{EngineError, Result};
use crate::network::Network;
use crate::replication::ReplicaItem;
use crate::trace::TraceEvent;

impl Network {
    /// Voluntary departure: the node transfers every key it holds to its
    /// successor, then leaves the ring. Replica duty moves with the range:
    /// the successor also inherits the mirrored copies this node held for
    /// its predecessors. (Dropping them — the old behavior — silently
    /// reduced those primaries' redundancy below `k` until their next
    /// re-mirroring, so one further failure in that window lost state.)
    pub fn node_leave(&mut self, h: NodeHandle) -> Result<()> {
        let succ = self
            .ring
            .first_alive_successor(h)
            .ok_or(EngineError::UnknownNode)?;
        self.ring.leave(h)?;
        if succ != h {
            self.transfer_all(h, succ)?;
            let inherited = self.nodes[h.index()].replicas.drain_items();
            let store = &mut self.nodes[succ.index()].replicas;
            for item in inherited {
                store.insert(item)?;
            }
        } else {
            // Last node standing: nobody is left to hold replicas for.
            self.nodes[h.index()].replicas.clear();
        }
        Ok(())
    }

    /// Abrupt failure: the node's primary keys and replica holdings are
    /// lost (best-effort semantics, Section 3.2 — "we leave all the handling
    /// of failures … to the underlying DHT"). With k-successor replication
    /// enabled, the lost range is recovered from the successors' replica
    /// stores during the next [`Network::stabilize`].
    pub fn node_fail(&mut self, h: NodeHandle) -> Result<()> {
        self.fail_node_state(h)
    }

    /// Ring-level failure plus primary/replica state loss at the victim.
    pub(crate) fn fail_node_state(&mut self, h: NodeHandle) -> Result<()> {
        self.ring.fail(h)?;
        let node = h.index() as u32;
        let tick = self.trace_tick();
        self.trace(|| TraceEvent::NodeFailed { tick, node });
        let tracing = self.trace_on();
        let st = &mut self.nodes[h.index()];
        let wiped: [(&'static str, u64); 4] = [
            ("alqt", st.alqt.len() as u64),
            ("vlqt", st.vlqt.len() as u64),
            ("vltt", st.vltt.len() as u64),
            ("vstore", st.vstore.len() as u64),
        ];
        st.alqt.drain_all();
        st.vlqt.drain_all();
        st.vltt.drain_all();
        st.vstore.drain_all();
        let offline = st.offline_store.len() as u64;
        st.offline_store.clear();
        st.replicas.clear();
        if tracing {
            for (table, removed) in wiped {
                if removed > 0 {
                    self.trace(|| TraceEvent::IndexRemove {
                        tick,
                        node,
                        table,
                        removed,
                        reason: "fail",
                    });
                }
            }
            if offline > 0 {
                self.trace(|| TraceEvent::IndexRemove {
                    tick,
                    node,
                    table: "offline-store",
                    removed: offline,
                    reason: "fail",
                });
            }
        }
        self.metrics.faults.nodes_failed += 1;
        self.note_failure(h.index() as u32);
        Ok(())
    }

    /// Runs stabilization rounds over the whole ring, then promotes any
    /// replicas whose primary owner has disappeared (when k-successor
    /// replication is on) and processes the resulting re-mirroring traffic.
    pub fn stabilize(&mut self, rounds: usize) -> Result<()> {
        self.ring.stabilize_all(rounds);
        if self.repl_k() > 0 {
            self.promote_replicas()?;
        }
        self.process_all()
    }

    /// Every alive node extracts the replica entries whose identifier it now
    /// owns (its predecessor failed) and promotes them into its primary
    /// tables, then re-mirrors them onto its own successors to restore
    /// k-fold redundancy.
    pub(crate) fn promote_replicas(&mut self) -> Result<()> {
        let k = self.repl_k();
        if k == 0 {
            return Ok(());
        }
        let handles: Vec<NodeHandle> = self.ring.alive_nodes().collect();
        for h in handles {
            let promoted = {
                let ring = &self.ring;
                self.nodes[h.index()]
                    .replicas
                    .take_owned(|id| ring.owns(h, id))
            };
            if promoted.is_empty() {
                continue;
            }
            self.metrics.faults.replicas_promoted += promoted.len() as u64;
            let (tick, node, items) = (self.trace_tick(), h.index() as u32, promoted.len() as u64);
            self.trace(|| TraceEvent::Promote { tick, node, items });
            let mut items: Vec<ReplicaItem> = Vec::with_capacity(promoted.len());
            {
                let st = &mut self.nodes[h.index()];
                for e in promoted.queries {
                    st.alqt.insert(e.clone());
                    items.push(ReplicaItem::Query(e));
                }
                for e in promoted.rewritten {
                    st.vlqt.insert(e.clone())?;
                    items.push(ReplicaItem::Rewritten(e));
                }
                for e in promoted.tuples {
                    st.vltt.insert(e.clone())?;
                    items.push(ReplicaItem::Tuple(e));
                }
                for (group, value_key, e) in promoted.value_tuples {
                    st.vstore.insert(&group, &value_key, e.clone());
                    items.push(ReplicaItem::ValueTuple {
                        group,
                        value_key,
                        entry: e,
                    });
                }
                for (id, n) in promoted.offline {
                    st.offline_store.push((id, n.clone()));
                    items.push(ReplicaItem::Offline {
                        id,
                        notification: n,
                    });
                }
            }
            for item in items {
                self.replicate(h, item);
            }
        }
        Ok(())
    }

    /// A departed node rejoins with its old key: it takes back the key range
    /// `(pred, id]` from its successor — including any notifications stored
    /// for it while it was offline (Section 4.6).
    pub fn node_rejoin(&mut self, h: NodeHandle) -> Result<()> {
        let via = self
            .ring
            .alive_nodes()
            .next()
            .ok_or(EngineError::UnknownNode)?;
        self.ring.rejoin(h, via)?;
        self.ring.stabilize_all(2);
        let (pred, id) = self.ring.owned_range(h)?;
        let succ = self
            .ring
            .first_alive_successor(h)
            .ok_or(EngineError::UnknownNode)?;
        if succ != h {
            let space = self.ring.space();
            let in_range = move |x: Id| space.in_open_closed(x, pred, id);
            self.transfer_matching(succ, h, in_range)?;
        }
        // Missed notifications addressed to us move into the inbox.
        let me = self.ring.node(h).key().to_string();
        let st = &mut self.nodes[h.index()];
        let mut kept = Vec::new();
        for (nid, n) in std::mem::take(&mut st.offline_store) {
            if n.subscriber == me {
                st.inbox.push(n);
            } else {
                kept.push((nid, n));
            }
        }
        st.offline_store = kept;
        self.subscribers.insert(me, h);
        Ok(())
    }

    fn transfer_all(&mut self, from: NodeHandle, to: NodeHandle) -> Result<()> {
        self.transfer_matching(from, to, |_| true)
    }

    fn transfer_matching(
        &mut self,
        from: NodeHandle,
        to: NodeHandle,
        pred: impl Fn(Id) -> bool + Copy,
    ) -> Result<()> {
        debug_assert_ne!(from, to);
        let (a, b) = (from.index(), to.index());
        let mut moved = 0u64;
        {
            // Split the borrow: `from` and `to` are distinct slots.
            let (src, dst) = if a < b {
                let (l, r) = self.nodes.split_at_mut(b);
                (&mut l[a], &mut r[0])
            } else {
                let (l, r) = self.nodes.split_at_mut(a);
                (&mut r[0], &mut l[b])
            };
            for e in src.alqt.extract_where(&pred) {
                moved += 1;
                dst.alqt.insert(e);
            }
            for e in src.vlqt.extract_where(&pred) {
                moved += 1;
                dst.vlqt.insert(e)?;
            }
            for e in src.vltt.extract_where(&pred) {
                moved += 1;
                dst.vltt.insert(e)?;
            }
            for (group, value, e) in src.vstore.extract_where(&pred) {
                moved += 1;
                dst.vstore.insert(&group, &value, e);
            }
            let mut kept = Vec::new();
            for (id, n) in std::mem::take(&mut src.offline_store) {
                if pred(id) {
                    moved += 1;
                    dst.offline_store.push((id, n));
                } else {
                    kept.push((id, n));
                }
            }
            src.offline_store = kept;
        }
        if moved > 0 {
            let (tick, node) = (self.trace_tick(), a as u32);
            self.trace(|| TraceEvent::IndexRemove {
                tick,
                node,
                table: "all",
                removed: moved,
                reason: "transfer",
            });
        }
        Ok(())
    }
}
