//! E10 — Figure "TF and TS load distribution comparison for all algorithms"
//! (Section 5.4).
//!
//! Summarizes the per-node filtering (TF) and storage (TS) curves of the
//! four algorithms on the same workload. Expected shape: the DAI algorithms
//! distribute load over more nodes than SAI (two rewriters per query);
//! DAI-V concentrates evaluator load (identifiers built from bare values,
//! no attribute prefix) but keeps traffic lowest.

use cq_engine::Algorithm;
use cq_workload::WorkloadConfig;

use super::Scale;
use crate::harness::RunConfig;
use crate::parallel::run_many;
use crate::report::{fnum, Report};
use crate::stats::DistributionSummary;

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let nodes = scale.pick(128, 1024);
    let queries = scale.pick(60, 5000);
    let tuples = scale.pick(300, 800);
    let mut report = Report::new(
        "E10",
        &format!("TF/TS distribution, all algorithms (N={nodes}, Q={queries}, T={tuples})"),
        &[
            "algorithm",
            "TF gini",
            "TF max",
            "TF top-10%",
            "TF loaded",
            "TS gini",
            "TS max",
            "TS loaded",
        ],
    );
    let cfgs: Vec<RunConfig> = Algorithm::ALL
        .into_iter()
        .map(|alg| RunConfig {
            algorithm: alg,
            nodes,
            queries,
            tuples,
            workload: WorkloadConfig {
                domain: scale.pick(40, 400),
                ..WorkloadConfig::default()
            },
            ..RunConfig::new(alg)
        })
        .collect();
    for (alg, r) in Algorithm::ALL.into_iter().zip(run_many(&cfgs)) {
        let tf = DistributionSummary::of(&r.filtering);
        let ts = DistributionSummary::of(&r.storage);
        report.row(vec![
            alg.name().to_string(),
            fnum(tf.gini),
            fnum(tf.max),
            fnum(tf.top10),
            fnum(tf.utilization * nodes as f64),
            fnum(ts.gini),
            fnum(ts.max),
            fnum(ts.utilization * nodes as f64),
        ]);
    }
    report.note("paper: DAI algorithms spread load over more nodes than SAI; DAI-V concentrates");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dai_v_concentrates_load_on_fewer_nodes() {
        // The robust distribution claim: DAI-V hashes bare values, so far
        // fewer nodes participate and its Gini coefficient is the highest.
        let r = run(Scale::Quick);
        let rows: Vec<Vec<String>> = r
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(str::to_string).collect())
            .collect();
        let col = |name: &str, i: usize| -> f64 {
            rows.iter().find(|r| r[0] == name).unwrap()[i]
                .parse()
                .unwrap()
        };
        assert!(col("DAI-V", 4) < col("SAI", 4), "DAI-V loads fewer nodes");
        assert!(
            col("DAI-V", 1) > col("SAI", 1),
            "DAI-V filtering gini highest vs SAI"
        );
        assert!(
            col("DAI-V", 1) > col("DAI-T", 1),
            "DAI-V filtering gini highest vs DAI-T"
        );
    }
}
