//! Node-local storage: the two-level hash tables of Section 4.3.5
//! (ALQT, VLQT, VLTT) and the DAI-V evaluator store.

pub mod alqt;
pub mod keys;
pub mod vlqt;
pub mod vltt;
pub mod vstore;

pub use alqt::{Alqt, StoredQuery};
pub use vlqt::{StoredRewritten, Vlqt};
pub use vltt::{StoredTuple, Vltt};
pub use vstore::{StoredValueTuple, VStore};
