//! E3 — Figure "Effect of the number of indexed queries in network traffic"
//! (Section 5.2.2).
//!
//! Sweeps the number of installed queries and measures hops per inserted
//! tuple for each algorithm. Expected shape: traffic grows with the query
//! population (more triggerings → more rewritten queries and more delivered
//! notifications), sublinearly thanks to grouping; DAI-T grows slowest —
//! after its rewritten queries are distributed, repeated values cost no
//! reindexing and duplicate-content notifications are suppressed by key.

use cq_engine::Algorithm;
use cq_workload::WorkloadConfig;

use super::Scale;
use crate::harness::RunConfig;
use crate::parallel::run_many;
use crate::report::{fnum, Report};

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let nodes = scale.pick(128, 1024);
    let tuples = scale.pick(200, 800);
    let sweep: Vec<usize> = scale.pick(vec![20, 60, 120, 240], vec![1000, 2500, 5000, 10_000]);
    let mut report = Report::new(
        "E3",
        &format!("hops per tuple vs installed queries (N={nodes}, T={tuples})"),
        &["queries", "SAI", "DAI-Q", "DAI-T", "DAI-V"],
    );
    let mut cfgs = Vec::new();
    for &q in &sweep {
        for alg in Algorithm::ALL {
            cfgs.push(RunConfig {
                algorithm: alg,
                nodes,
                queries: q,
                tuples,
                workload: WorkloadConfig {
                    domain: scale.pick(40, 400),
                    ..WorkloadConfig::default()
                },
                ..RunConfig::new(alg)
            });
        }
    }
    let mut results = run_many(&cfgs).into_iter();
    for &q in &sweep {
        let mut row = vec![q.to_string()];
        for _ in Algorithm::ALL {
            row.push(fnum(
                results
                    .next()
                    .expect("one result per config")
                    .hops_per_tuple(),
            ));
        }
        report.row(row);
    }
    report.note("paper: traffic rises with queries; DAI-T flattest (reindex + notification dedup)");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_grows_with_queries() {
        let r = run(Scale::Quick);
        let rows: Vec<Vec<f64>> = r
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').skip(1).map(|c| c.parse().unwrap()).collect())
            .collect();
        // SAI traffic at the largest sweep point exceeds the smallest.
        assert!(rows.last().unwrap()[0] > rows[0][0]);
    }
}
