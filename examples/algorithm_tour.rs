//! Runs the same workload under all four algorithms and prints the
//! comparison the paper's Table 4.1 draws: who indexes what, who stores
//! what, and what it costs in overlay hops.
//!
//! ```text
//! cargo run --release --example algorithm_tour
//! ```

use cq_engine::{Algorithm, Oracle, TrafficKind};
use cq_sim::{run, RunConfig};
use cq_workload::WorkloadConfig;

fn main() {
    println!(
        "{:<7} {:>12} {:>12} {:>12} {:>10} {:>9} {:>8}",
        "alg", "hops/tuple", "reindex/t", "TF total", "TS total", "rewr.stor", "tup.stor"
    );
    for alg in Algorithm::ALL {
        let cfg = RunConfig {
            nodes: 128,
            queries: 40,
            tuples: 400,
            workload: WorkloadConfig {
                domain: 60,
                ..WorkloadConfig::default()
            },
            ..RunConfig::new(alg)
        };
        let r = run(&cfg);
        println!(
            "{:<7} {:>12.1} {:>12.1} {:>12.0} {:>10.0} {:>9} {:>8}",
            alg.name(),
            r.hops_per_tuple(),
            r.traffic_of(TrafficKind::Reindex).messages as f64 / 400.0,
            r.total_filtering(),
            r.total_storage(),
            r.stored_rewritten,
            r.stored_tuples,
        );
    }

    // And the ground truth: whatever the algorithm, the delivered
    // notification set is identical (shown here for one small workload —
    // exhaustively verified by the test suite's oracle comparisons).
    let mut sets = Vec::new();
    for alg in Algorithm::ALL {
        let mut catalog = cq_relational::Catalog::new();
        catalog
            .register(
                cq_relational::RelationSchema::of(
                    "R",
                    &[
                        ("A", cq_relational::DataType::Int),
                        ("B", cq_relational::DataType::Int),
                    ],
                )
                .unwrap(),
            )
            .unwrap();
        catalog
            .register(
                cq_relational::RelationSchema::of(
                    "S",
                    &[
                        ("C", cq_relational::DataType::Int),
                        ("D", cq_relational::DataType::Int),
                    ],
                )
                .unwrap(),
            )
            .unwrap();
        let mut net =
            cq_engine::Network::new(cq_engine::EngineConfig::new(alg).with_nodes(32), catalog);
        let a = net.node_at(0);
        net.pose_query_sql(a, "SELECT R.A, S.D FROM R, S WHERE R.B = S.C")
            .unwrap();
        for i in 0..10 {
            net.insert_tuple(
                a,
                "R",
                vec![
                    cq_relational::Value::Int(i),
                    cq_relational::Value::Int(i % 3),
                ],
            )
            .unwrap();
            net.insert_tuple(
                a,
                "S",
                vec![
                    cq_relational::Value::Int(i % 3),
                    cq_relational::Value::Int(100 + i),
                ],
            )
            .unwrap();
        }
        let mut oracle = Oracle::new();
        oracle.ingest(net.posed_queries(), net.inserted_tuples());
        assert_eq!(net.delivered_set(), oracle.expected().unwrap(), "{alg}");
        sets.push(net.delivered_set());
    }
    assert!(sets.windows(2).all(|w| w[0] == w[1]));
    println!(
        "\nall four algorithms delivered the identical notification set ({} items)",
        sets[0].len()
    );
}
