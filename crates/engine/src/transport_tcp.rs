//! Real-socket transport backend: a nonblocking, readiness-driven TCP
//! event loop over `std::net` loopback.
//!
//! One listener per node slot, lazily established per-`(from, to)` stream
//! pairs, and every [`crate::messages::Message`] serialized through [`crate::wire`] on send
//! and decoded back off the socket before dispatch. Unlike the original
//! blocking lockstep backend (write one frame, read one frame), every
//! socket here is **nonblocking** and owned by a single reactor:
//!
//! * a [`cq_poll::Poller`] (epoll on Linux) reports which sockets are
//!   readable or writable;
//! * each connection is a [`crate::frames::FrameConn`] with its own framed
//!   read/write buffers — partial frames reassemble across reads, and a
//!   full kernel send buffer parks the remaining bytes in userspace
//!   (**write backpressure**) until the poller reports the socket writable;
//! * [`Transport::poll`] is the explicit progress hook: it flushes
//!   backpressured writers, accepts pending connections, and drains
//!   readable sockets. [`Transport::next_delivery`] never blocks — it hands
//!   out the head envelope only once its frame has fully arrived, and the
//!   driver (`Network::process_all`) calls `poll(block = true)` whenever
//!   envelopes are outstanding but no frame is ready.
//!
//! The backend keeps a userspace FIFO of *envelopes* (sender, receiver,
//! target, trace fields) in exact enqueue order while only the message
//! payload crosses the wire; because each stream preserves order, frames
//! carry per-stream sequence numbers, and the FIFO fixes the global order,
//! a run over sockets dispatches the identical message sequence as the
//! in-memory simulator at the same seed — delivered sets and metrics match
//! by construction.
//!
//! Failure model: `enqueue` must be infallible (transport contract), so a
//! send that fails parks the error and [`Transport::next_delivery`]
//! surfaces it as a typed [`EngineError::Protocol`]; messages enqueued
//! while an error is parked are counted and the count is reported in the
//! surfaced error. Frame/envelope **misalignment is detected, never
//! repaired silently**: every stream numbers its frames, a reconnect hello
//! announces the sender's next sequence number, and any gap (frames that
//! died buffered in a broken connection) or replay surfaces as a typed
//! protocol error instead of decoding the wrong message. The
//! fault-injection pipe is a simulator construct and is never installed
//! here.

use std::collections::VecDeque;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

use cq_fasthash::FxHashMap;
use cq_poll::{Event, Interest, Poller};

use crate::error::{EngineError, Result};
use crate::faults::FaultPipe;
use crate::frames::{FrameConn, RawFrame};
use crate::transport::{Pending, Transport};
use crate::wire;

use cq_relational::Catalog;

/// Hello preamble bytes on every fresh stream: the sender's slot (u32 LE)
/// followed by the sequence number of the first frame this stream will
/// carry (u64 LE).
const HELLO_LEN: usize = 12;

/// How long one blocking [`Transport::poll`] slice waits for readiness
/// before returning to the driver.
const POLL_SLICE: Duration = Duration::from_millis(25);

/// Tuning knobs for the TCP backend — all optional; the defaults match
/// production behavior and tests override them to force specific paths
/// (tiny kernel buffers exercise backpressure, a short stall timeout makes
/// deadlock tests fast).
#[derive(Clone, Copy, Debug)]
pub struct TcpOptions {
    /// Kernel send-buffer size (`SO_SNDBUF`) applied to every outgoing
    /// stream; `None` keeps the system default. Shrinking it forces the
    /// write path into userspace backpressure.
    pub send_buffer: Option<usize>,
    /// Kernel receive-buffer size (`SO_RCVBUF`) applied to every outgoing
    /// stream; `None` keeps the system default.
    pub recv_buffer: Option<usize>,
    /// How long the transport may wait for socket progress while an
    /// envelope's frame is outstanding before the run fails with a typed
    /// stall error (a lost frame would otherwise hang the drive loop).
    pub stall_timeout: Duration,
}

impl Default for TcpOptions {
    fn default() -> Self {
        TcpOptions {
            send_buffer: None,
            recv_buffer: None,
            stall_timeout: Duration::from_secs(10),
        }
    }
}

/// The queued metadata for one in-flight message: everything [`Pending`]
/// carries except the payload, which is on the wire.
struct Envelope {
    from: cq_overlay::NodeHandle,
    to: cq_overlay::NodeHandle,
    target: cq_overlay::Id,
    reroute: bool,
    trace_id: Option<crate::faults::MsgId>,
    trace_path: Option<Vec<u32>>,
}

/// Maps an I/O failure into the transport's typed protocol error.
fn io_err(context: &str, e: io::Error) -> EngineError {
    EngineError::Protocol {
        detail: format!("tcp transport: {context}: {e}"),
    }
}

/// What role a reactor connection is playing.
enum ConnKind {
    /// Established outgoing stream: this side only writes frames (a read
    /// event can only mean the peer closed).
    Out {
        /// Sending slot.
        from: u32,
        /// Receiving slot.
        to: u32,
    },
    /// Accepted stream still reading its [`HELLO_LEN`]-byte preamble.
    Handshake {
        /// The accepting slot.
        to: u32,
        /// Hello bytes received so far.
        buf: [u8; HELLO_LEN],
        /// How many of `buf`'s bytes are filled.
        have: usize,
    },
    /// Established incoming stream delivering frames from `from` to `to`.
    In {
        /// The accepting slot.
        to: u32,
        /// The sending slot (from the hello).
        from: u32,
    },
}

/// One reactor-owned connection.
struct Conn {
    fc: FrameConn,
    kind: ConnKind,
}

/// The TCP loopback backend. See the module docs for the reactor, ordering
/// and failure model.
pub(crate) struct TcpTransport {
    /// Schemas for decoding tuples read back off the wire.
    catalog: Catalog,
    /// Backend tuning (socket buffers, stall timeout).
    opts: TcpOptions,
    /// The readiness poller driving every socket below.
    poller: Poller,
    /// One nonblocking listener per node slot, bound on `127.0.0.1:0`,
    /// registered under tokens `0..slots`.
    listeners: Vec<TcpListener>,
    /// The bound address of each slot's listener.
    addrs: Vec<SocketAddr>,
    /// Connection table; token `slots + i` maps to `conns[i]`.
    conns: Vec<Option<Conn>>,
    /// Free slots in `conns` for reuse.
    free: Vec<usize>,
    /// Established outgoing streams, keyed `(sender, receiver)`.
    out: FxHashMap<(u32, u32), usize>,
    /// Established incoming streams, keyed `(receiver, sender)`.
    incoming: FxHashMap<(u32, u32), usize>,
    /// Fully reassembled frames awaiting their envelope, per `(receiver,
    /// sender)` stream, in arrival order.
    inbox: FxHashMap<(u32, u32), VecDeque<Vec<u8>>>,
    /// Next frame sequence number per outgoing logical stream. Survives
    /// reconnects — the hello announces it so the receiver can detect loss.
    send_seq: FxHashMap<(u32, u32), u64>,
    /// Next expected frame sequence number per incoming logical stream.
    recv_seq: FxHashMap<(u32, u32), u64>,
    /// Envelope metadata in network-global FIFO order.
    queue: VecDeque<Envelope>,
    /// A send failure parked until the next `next_delivery` call.
    deferred: Option<EngineError>,
    /// Messages discarded while `deferred` was parked (reported in the
    /// surfaced error so a failed run says how much was lost).
    dropped_after_error: u64,
    /// Exact stream bytes written per message kind ([`crate::messages::Message::KINDS`]
    /// order): the codec frame plus its 8-byte sequence header.
    bytes_sent: [u64; 11],
    /// Reusable encode buffer.
    wbuf: Vec<u8>,
    /// Reusable poller event buffer.
    events: Vec<Event>,
    /// Reusable frame-reassembly output buffer.
    scratch: Vec<RawFrame>,
    /// Accumulated blocking wait time with zero readiness events while
    /// envelopes were outstanding (drives the stall timeout).
    stalled: Duration,
    /// Total times any connection entered write backpressure (kernel
    /// buffer full, bytes parked in userspace).
    backpressure_events: u64,
}

impl TcpTransport {
    /// Binds one nonblocking loopback listener per node slot and sets up
    /// the reactor.
    pub(crate) fn bind(slots: usize, catalog: Catalog, opts: TcpOptions) -> Result<Self> {
        let mut poller = Poller::new().map_err(|e| io_err("create poller", e))?;
        let mut listeners = Vec::with_capacity(slots);
        let mut addrs = Vec::with_capacity(slots);
        for slot in 0..slots {
            let listener = TcpListener::bind(("127.0.0.1", 0))
                .map_err(|e| io_err(&format!("bind listener for node {slot}"), e))?;
            listener
                .set_nonblocking(true)
                .map_err(|e| io_err(&format!("nonblocking listener for node {slot}"), e))?;
            poller
                .register(&listener, slot as u64, Interest::READ)
                .map_err(|e| io_err(&format!("register listener for node {slot}"), e))?;
            addrs.push(
                listener
                    .local_addr()
                    .map_err(|e| io_err(&format!("local addr for node {slot}"), e))?,
            );
            listeners.push(listener);
        }
        Ok(TcpTransport {
            catalog,
            opts,
            poller,
            listeners,
            addrs,
            conns: Vec::new(),
            free: Vec::new(),
            out: FxHashMap::default(),
            incoming: FxHashMap::default(),
            inbox: FxHashMap::default(),
            send_seq: FxHashMap::default(),
            recv_seq: FxHashMap::default(),
            queue: VecDeque::new(),
            deferred: None,
            dropped_after_error: 0,
            bytes_sent: [0; 11],
            wbuf: Vec::new(),
            events: Vec::new(),
            scratch: Vec::new(),
            stalled: Duration::ZERO,
            backpressure_events: 0,
        })
    }

    /// The bound listener addresses, indexed by node slot (tests point
    /// adversarial peers at these).
    pub(crate) fn local_addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// Total times any connection's flush parked bytes in userspace
    /// because the kernel send buffer was full.
    pub(crate) fn backpressure_events(&self) -> u64 {
        self.backpressure_events
    }

    /// The poller token of connection-table index `idx`.
    fn conn_token(&self, idx: usize) -> u64 {
        (self.listeners.len() + idx) as u64
    }

    /// Inserts a connection into the table and registers it readable.
    fn alloc_conn(&mut self, conn: Conn) -> Result<usize> {
        let idx = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.conns.len() - 1
        });
        let token = self.conn_token(idx);
        self.poller
            .register(conn.fc.stream(), token, Interest::READ)
            .map_err(|e| io_err("register connection", e))?;
        self.conns[idx] = Some(conn);
        Ok(idx)
    }

    /// Deregisters, unmaps and drops a connection. The per-stream sequence
    /// counters survive — they are what lets a reconnect prove (or
    /// disprove) that no frame was lost in between.
    fn close_conn(&mut self, idx: usize) {
        if let Some(conn) = self.conns[idx].take() {
            let _ = self.poller.deregister(conn.fc.stream());
            match conn.kind {
                ConnKind::Out { from, to } => {
                    if self.out.get(&(from, to)) == Some(&idx) {
                        self.out.remove(&(from, to));
                    }
                }
                ConnKind::In { to, from } => {
                    if self.incoming.get(&(to, from)) == Some(&idx) {
                        self.incoming.remove(&(to, from));
                    }
                }
                ConnKind::Handshake { .. } => {}
            }
            self.free.push(idx);
        }
    }

    /// Re-registers `idx` with write interest exactly when it has queued
    /// bytes (level-triggered: leaving write interest on an idle socket
    /// would spin the poller).
    fn update_interest(&mut self, idx: usize) -> Result<()> {
        let Some(conn) = self.conns[idx].as_ref() else {
            return Ok(());
        };
        let interest = if conn.fc.wants_write() {
            Interest::BOTH
        } else {
            Interest::READ
        };
        let token = self.conn_token(idx);
        self.poller
            .modify(conn.fc.stream(), token, interest)
            .map_err(|e| io_err("update interest", e))
    }

    /// Returns the table index of the live `(from → to)` outgoing stream,
    /// connecting (and queueing the hello) if none exists.
    fn ensure_out(&mut self, from: u32, to: u32) -> Result<usize> {
        if let Some(&idx) = self.out.get(&(from, to)) {
            let live = self.conns[idx].as_ref().is_some_and(|c| !c.fc.is_eof());
            if live {
                return Ok(idx);
            }
            self.close_conn(idx);
        }
        let connect = || -> io::Result<TcpStream> {
            let stream = TcpStream::connect(self.addrs[to as usize])?;
            stream.set_nodelay(true)?;
            if let Some(bytes) = self.opts.send_buffer {
                cq_poll::set_send_buffer(&stream, bytes)?;
            }
            if let Some(bytes) = self.opts.recv_buffer {
                cq_poll::set_recv_buffer(&stream, bytes)?;
            }
            Ok(stream)
        };
        let stream = connect().map_err(|e| io_err(&format!("connect {from}→{to}"), e))?;
        let mut fc = FrameConn::new(stream, wire::MAX_FRAME)
            .map_err(|e| io_err(&format!("nonblocking stream {from}→{to}"), e))?;
        let next_seq = self.send_seq.get(&(from, to)).copied().unwrap_or(0);
        let mut hello = [0u8; HELLO_LEN];
        hello[..4].copy_from_slice(&from.to_le_bytes());
        hello[4..].copy_from_slice(&next_seq.to_le_bytes());
        fc.queue_bytes(&hello);
        let idx = self.alloc_conn(Conn {
            fc,
            kind: ConnKind::Out { from, to },
        })?;
        self.out.insert((from, to), idx);
        Ok(idx)
    }

    /// Queues one frame on the `(from → to)` stream and flushes as much as
    /// the kernel accepts; a full kernel buffer leaves the rest parked for
    /// the next writable event.
    fn send_frame(&mut self, from: u32, to: u32, frame: &[u8]) -> Result<()> {
        let idx = self.ensure_out(from, to)?;
        let seq = self.send_seq.entry((from, to)).or_insert(0);
        let frame_seq = *seq;
        *seq += 1;
        // Invariant: ensure_out returned a live table entry.
        let conn = self.conns[idx].as_mut().expect("live outgoing conn");
        conn.fc.queue_frame(frame_seq, frame);
        match conn.fc.flush() {
            Ok(true) => {}
            Ok(false) => self.backpressure_events += 1,
            Err(e) => {
                self.close_conn(idx);
                return Err(io_err(&format!("write {from}→{to}"), e));
            }
        }
        self.update_interest(idx)
    }

    /// Parks a transport error for [`Transport::next_delivery`] to surface
    /// (only the first error is kept; later ones add to the drop count
    /// through [`Transport::enqueue`]'s guard).
    fn defer(&mut self, e: EngineError) {
        if self.deferred.is_none() {
            self.deferred = Some(e);
        }
    }

    /// Takes the parked error, folding in how many messages were discarded
    /// while it waited.
    fn take_deferred(&mut self) -> Option<EngineError> {
        let e = self.deferred.take()?;
        let dropped = std::mem::take(&mut self.dropped_after_error);
        if dropped == 0 {
            return Some(e);
        }
        Some(match e {
            EngineError::Protocol { detail } => EngineError::Protocol {
                detail: format!(
                    "{detail} ({dropped} subsequent message(s) discarded while the error was pending)"
                ),
            },
            other => other,
        })
    }

    // ==================================================================
    // Reactor event handling
    // ==================================================================

    /// Accepts every pending connection on `slot`'s listener and starts
    /// their hello handshakes.
    fn accept_ready(&mut self, slot: usize) -> Result<()> {
        loop {
            match self.listeners[slot].accept() {
                Ok((stream, _)) => {
                    let fc = FrameConn::new(stream, wire::MAX_FRAME)
                        .map_err(|e| io_err(&format!("accept at node {slot}"), e))?;
                    self.alloc_conn(Conn {
                        fc,
                        kind: ConnKind::Handshake {
                            to: slot as u32,
                            buf: [0; HELLO_LEN],
                            have: 0,
                        },
                    })?;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(io_err(&format!("accept at node {slot}"), e)),
            }
        }
    }

    /// Advances a handshake connection: buffers hello bytes and, once all
    /// [`HELLO_LEN`] arrived, validates the announced sequence number
    /// against the logical stream's expectation and promotes the
    /// connection to [`ConnKind::In`].
    fn read_handshake(&mut self, idx: usize) -> Result<()> {
        // Phase 1: pull bytes (at most HELLO_LEN in total, so frames queued
        // behind the hello are never consumed here).
        let (to, from, announced) = {
            let Some(conn) = self.conns[idx].as_mut() else {
                return Ok(());
            };
            let ConnKind::Handshake { to, buf, have } = &mut conn.kind else {
                return Ok(());
            };
            loop {
                if *have == HELLO_LEN {
                    break;
                }
                match conn.fc.stream().read(&mut buf[*have..]) {
                    Ok(0) => {
                        // Closed before identifying itself: an aborted
                        // connect, not a protocol peer. Drop quietly.
                        self.close_conn(idx);
                        return Ok(());
                    }
                    Ok(n) => *have += n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => {
                        let to = *to;
                        self.close_conn(idx);
                        return Err(io_err(&format!("read hello at node {to}"), e));
                    }
                }
            }
            let from = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes"));
            let announced = u64::from_le_bytes(buf[4..].try_into().expect("8 bytes"));
            (*to, from, announced)
        };
        // Phase 2: validate the announced next-frame sequence number.
        let pair = (to, from);
        let expected = self.recv_seq.get(&pair).copied().unwrap_or(0);
        if announced != expected {
            self.close_conn(idx);
            let detail = if announced > expected {
                format!(
                    "stream {from}→{to}: reconnect announces next frame #{announced} but #{expected} was expected — {} frame(s) were lost in a broken connection",
                    announced - expected
                )
            } else {
                format!(
                    "stream {from}→{to}: hello announces next frame #{announced} but #{expected} was already received — replayed or duplicated stream"
                )
            };
            return Err(EngineError::Protocol { detail });
        }
        // Promote; a stale predecessor for the pair (sender reconnected) is
        // dropped — its frames were all consumed or the hello check above
        // would have caught the gap.
        if let Some(conn) = self.conns[idx].as_mut() {
            conn.kind = ConnKind::In { to, from };
        }
        if let Some(old) = self.incoming.insert(pair, idx) {
            if old != idx {
                self.close_conn(old);
            }
        }
        // Frames may already sit behind the hello in the kernel buffer.
        self.read_established(idx)
    }

    /// Drains an established incoming stream: reassembled frames are
    /// sequence-checked and appended to the pair's inbox.
    fn read_established(&mut self, idx: usize) -> Result<()> {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        let (read_res, pair) = {
            // Invariant: callers pass a live In connection.
            let conn = self.conns[idx].as_mut().expect("live incoming conn");
            let ConnKind::In { to, from } = conn.kind else {
                unreachable!("read_established on a non-In connection")
            };
            (conn.fc.read_frames(&mut scratch), (to, from))
        };
        let mut seq_error = None;
        for (seq, frame) in scratch.drain(..) {
            if seq_error.is_some() {
                continue;
            }
            let expected = self.recv_seq.entry(pair).or_insert(0);
            if seq != *expected {
                seq_error = Some(EngineError::Protocol {
                    detail: format!(
                        "stream {}→{}: frame #{seq} arrived where #{expected} was expected — envelope/frame misalignment",
                        pair.1, pair.0
                    ),
                });
                continue;
            }
            *expected += 1;
            self.inbox.entry(pair).or_default().push_back(frame);
        }
        self.scratch = scratch;
        if let Some(e) = seq_error {
            self.close_conn(idx);
            return Err(e);
        }
        match read_res {
            Ok(true) => Ok(()),
            Ok(false) => {
                // Clean EOF at a frame boundary: the sender may reconnect;
                // the retained recv_seq will vet its hello.
                self.close_conn(idx);
                Ok(())
            }
            Err(e) => {
                let context = format!("read {}→{}", pair.1, pair.0);
                self.close_conn(idx);
                Err(io_err(&context, e))
            }
        }
    }

    /// Handles a readable event on an outgoing stream — the receiver never
    /// writes, so readable means the peer closed (tolerated: the next send
    /// reconnects and the hello check vouches for continuity) or is
    /// violating the protocol.
    fn read_out(&mut self, idx: usize) -> Result<()> {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        let read_res = {
            // Invariant: callers pass a live Out connection.
            let conn = self.conns[idx].as_mut().expect("live outgoing conn");
            conn.fc.read_frames(&mut scratch)
        };
        let unexpected = !scratch.is_empty();
        scratch.clear();
        self.scratch = scratch;
        if unexpected {
            self.close_conn(idx);
            return Err(EngineError::Protocol {
                detail: "received frames on a send-only stream".to_string(),
            });
        }
        match read_res {
            Ok(true) => Ok(()),
            Ok(false) | Err(_) => {
                self.close_conn(idx);
                Ok(())
            }
        }
    }

    /// Dispatches one readiness event.
    fn handle_event(&mut self, ev: Event) -> Result<()> {
        let slots = self.listeners.len();
        if (ev.token as usize) < slots {
            return self.accept_ready(ev.token as usize);
        }
        let idx = ev.token as usize - slots;
        if self.conns.get(idx).is_none_or(Option::is_none) {
            return Ok(()); // closed earlier in this batch
        }
        if ev.writable {
            // Invariant: checked non-None above.
            let conn = self.conns[idx].as_mut().expect("live conn");
            if conn.fc.wants_write() {
                match conn.fc.flush() {
                    Ok(true) => self.update_interest(idx)?,
                    Ok(false) => self.backpressure_events += 1,
                    Err(e) => {
                        let context = match conn.kind {
                            ConnKind::Out { from, to } => format!("write {from}→{to}"),
                            _ => "write".to_string(),
                        };
                        self.close_conn(idx);
                        return Err(io_err(&context, e));
                    }
                }
            } else if !ev.readable {
                // Writable with nothing queued: drop the stale interest.
                self.update_interest(idx)?;
            }
        }
        if ev.readable {
            if self.conns.get(idx).is_none_or(Option::is_none) {
                return Ok(());
            }
            // Invariant: checked non-None above.
            match self.conns[idx].as_ref().expect("live conn").kind {
                ConnKind::Handshake { .. } => self.read_handshake(idx)?,
                ConnKind::In { .. } => self.read_established(idx)?,
                ConnKind::Out { .. } => self.read_out(idx)?,
            }
        }
        Ok(())
    }

    /// One reactor turn: flush backpressured writers, wait for readiness
    /// (up to [`POLL_SLICE`] when `block`), and service every event. Tracks
    /// consecutive empty blocking waits so a frame lost to a broken stream
    /// fails the run with a typed stall error instead of hanging it.
    fn poll_reactor(&mut self, block: bool) -> Result<()> {
        if self.deferred.is_some() {
            return Ok(()); // next_delivery surfaces it first
        }
        for idx in 0..self.conns.len() {
            let wants = self.conns[idx].as_ref().is_some_and(|c| c.fc.wants_write());
            if !wants {
                continue;
            }
            // Invariant: checked live just above.
            let conn = self.conns[idx].as_mut().expect("live conn");
            match conn.fc.flush() {
                Ok(true) => self.update_interest(idx)?,
                Ok(false) => {}
                Err(e) => {
                    self.close_conn(idx);
                    return Err(io_err("flush", e));
                }
            }
        }
        let timeout = if block {
            Some(POLL_SLICE)
        } else {
            Some(Duration::ZERO)
        };
        self.events.clear();
        let n = self
            .poller
            .wait(&mut self.events, timeout)
            .map_err(|e| io_err("poller wait", e))?;
        let events = std::mem::take(&mut self.events);
        let mut result = Ok(());
        for ev in &events {
            result = self.handle_event(*ev);
            if result.is_err() {
                break;
            }
        }
        self.events = events;
        result?;
        if n > 0 {
            self.stalled = Duration::ZERO;
        } else if block && !self.queue.is_empty() {
            self.stalled += POLL_SLICE;
            if self.stalled >= self.opts.stall_timeout {
                let head = self
                    .queue
                    .front()
                    .map(|e| format!("{}→{}", e.from.index(), e.to.index()))
                    .unwrap_or_default();
                return Err(EngineError::Protocol {
                    detail: format!(
                        "tcp transport stalled: no socket progress for {:?} while waiting for the frame of envelope {head} ({} envelopes outstanding)",
                        self.opts.stall_timeout,
                        self.queue.len()
                    ),
                });
            }
        }
        Ok(())
    }
}

impl Transport for TcpTransport {
    fn enqueue(&mut self, p: Pending) {
        if self.deferred.is_some() {
            // The transport already failed; the error surfaces first and
            // reports how many messages were discarded behind it.
            self.dropped_after_error += 1;
            return;
        }
        let Pending {
            from,
            to,
            target,
            reroute,
            msg,
            trace_id,
            trace_path,
        } = p;
        let mut wbuf = std::mem::take(&mut self.wbuf);
        wbuf.clear();
        wire::encode_message(&msg, &mut wbuf);
        // Exact stream cost: codec frame plus the 8-byte sequence header.
        self.bytes_sent[msg.kind_index()] += wbuf.len() as u64 + 8;
        let res = self.send_frame(from.index() as u32, to.index() as u32, &wbuf);
        self.wbuf = wbuf;
        match res {
            Ok(()) => self.queue.push_back(Envelope {
                from,
                to,
                target,
                reroute,
                trace_id,
                trace_path,
            }),
            Err(e) => self.defer(e),
        }
    }

    fn next_delivery(&mut self) -> Result<Option<Pending>> {
        if let Some(e) = self.take_deferred() {
            return Err(e);
        }
        let Some(env) = self.queue.front() else {
            return Ok(None);
        };
        let pair = (env.to.index() as u32, env.from.index() as u32);
        let Some(frame) = self.inbox.get_mut(&pair).and_then(VecDeque::pop_front) else {
            // The head envelope's frame is still in flight; the driver
            // calls `poll(block = true)` and retries.
            return Ok(None);
        };
        // Invariant: peeked non-empty above.
        let env = self.queue.pop_front().expect("peeked above");
        let (msg, _) = wire::decode_message(&frame, &self.catalog)?;
        Ok(Some(Pending {
            from: env.from,
            to: env.to,
            target: env.target,
            reroute: env.reroute,
            msg,
            trace_id: env.trace_id,
            trace_path: env.trace_path,
        }))
    }

    fn poll(&mut self, block: bool) -> Result<()> {
        self.poll_reactor(block)
    }

    fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.deferred.is_none()
    }

    fn take_pipe(&mut self) -> Option<Box<FaultPipe>> {
        None
    }

    fn restore_pipe(&mut self, _pipe: Box<FaultPipe>) {
        unreachable!("the TCP transport never hands out a fault pipe");
    }

    fn has_pipe(&self) -> bool {
        false
    }

    fn take_wire_bytes(&mut self) -> Option<[u64; 11]> {
        Some(std::mem::take(&mut self.bytes_sent))
    }
}
