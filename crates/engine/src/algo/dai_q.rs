//! DAI-Q — double-attribute indexing, query side (Section 4.4.2).
//!
//! Queries are indexed on *both* sides; evaluators store tuples only.
//! Rewritten queries are evaluated on arrival and discarded, so every
//! match is produced by the tuple that was already stored.

use std::borrow::Cow;
use std::sync::Arc;

use cq_overlay::Id;
use cq_relational::{JoinQuery, QueryRef, QueryType, RewrittenQuery, Side, Tuple};

use super::common;
use crate::config::Algorithm;
use crate::error::{EngineError, Result};
use crate::protocol::{Effect, NodeCtx, Protocol};
use crate::tables::StoredTuple;

/// The DAI-Q protocol (Section 4.4.2).
#[derive(Clone, Copy, Debug, Default)]
pub struct DaiQProtocol;

impl Protocol for DaiQProtocol {
    fn name(&self) -> &'static str {
        "DAI-Q"
    }

    fn validate_query(&self, query: &JoinQuery) -> Result<()> {
        if query.query_type() == QueryType::T2 {
            return Err(EngineError::UnsupportedByAlgorithm {
                algorithm: Algorithm::DaiQ,
                detail: "type-T2 queries require DAI-V (Section 4.5)".to_string(),
            });
        }
        Ok(())
    }

    fn index_attr<'q>(
        &self,
        ctx: &mut NodeCtx<'_>,
        query: &'q JoinQuery,
        side: Side,
    ) -> Cow<'q, str> {
        common::default_index_attr(ctx, query, side)
    }

    fn on_pose_query(&self, ctx: &mut NodeCtx<'_>, query: &QueryRef) -> Result<()> {
        common::pose_at_sides(self, ctx, query, &Side::BOTH)
    }

    fn on_publish_tuple(&self, ctx: &mut NodeCtx<'_>, tuple: &Arc<Tuple>) -> Result<()> {
        common::publish_tuple(ctx, tuple, true);
        Ok(())
    }

    fn on_tuple_arrival(
        &self,
        ctx: &mut NodeCtx<'_>,
        tuple: Arc<Tuple>,
        attr: String,
        index_id: Id,
    ) -> Result<()> {
        common::t1_tuple_arrival(ctx, &tuple, &attr, index_id, false)
    }

    fn on_value_tuple(
        &self,
        ctx: &mut NodeCtx<'_>,
        tuple: Arc<Tuple>,
        attr: String,
        index_id: Id,
    ) -> Result<()> {
        // Store only — matching happens when rewritten queries arrive.
        let _ = tuple.canonical_of(&attr)?;
        let (st, mut fx) = ctx.split();
        common::store_value_tuple(
            st,
            &mut fx,
            StoredTuple {
                index_id,
                attr,
                tuple,
            },
        )?;
        Ok(())
    }

    fn on_rewritten_query(
        &self,
        ctx: &mut NodeCtx<'_>,
        items: Vec<RewrittenQuery>,
        index_id: Id,
    ) -> Result<()> {
        let _ = index_id; // evaluate, never store
        let (st, mut fx) = ctx.split();
        let mut matches = fx.new_matches();
        for rq in items {
            common::match_against_vltt(&mut fx, &st.vltt, &rq, &mut matches)?;
        }
        fx.push(Effect::Deliver { matches });
        Ok(())
    }
}
