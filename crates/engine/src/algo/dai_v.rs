//! DAI-V — double-attribute indexing at the value of the join condition
//! (Section 4.5). The only algorithm that evaluates type-T2 queries.
//!
//! Tuples are indexed at the attribute level only; on arrival at a
//! rewriter, each triggered query is rewritten to a *value* target and
//! shipped — together with the triggering tuple — in a combined `JoinV`
//! message to `Hash(valJC)`, where the evaluator matches against stored
//! tuples of the other side and then stores the tuple.

use std::borrow::Cow;
use std::sync::Arc;

use cq_overlay::Id;
use cq_relational::{JoinQuery, QueryRef, RewrittenQuery, Side, Tuple};

use super::common;
use crate::error::Result;
use crate::indexing;
use crate::messages::{Message, ValueJoin};
use crate::protocol::{Effect, NodeCtx, Protocol};
use crate::replication::ReplicaItem;
use crate::tables::StoredValueTuple;
use crate::trace::TraceEvent;

/// The DAI-V protocol (Section 4.5).
#[derive(Clone, Copy, Debug, Default)]
pub struct DaiVProtocol;

impl Protocol for DaiVProtocol {
    fn name(&self) -> &'static str {
        "DAI-V"
    }

    fn validate_query(&self, _query: &JoinQuery) -> Result<()> {
        // DAI-V evaluates both T1 and T2 queries.
        Ok(())
    }

    fn index_attr<'q>(
        &self,
        ctx: &mut NodeCtx<'_>,
        query: &'q JoinQuery,
        side: Side,
    ) -> Cow<'q, str> {
        common::default_index_attr(ctx, query, side)
    }

    fn on_pose_query(&self, ctx: &mut NodeCtx<'_>, query: &QueryRef) -> Result<()> {
        common::pose_at_sides(self, ctx, query, &Side::BOTH)
    }

    fn on_publish_tuple(&self, ctx: &mut NodeCtx<'_>, tuple: &Arc<Tuple>) -> Result<()> {
        // Attribute level only — the value-level identifier of a tuple is
        // not knowable without the query's join condition.
        common::publish_tuple(ctx, tuple, false);
        Ok(())
    }

    fn on_tuple_arrival(
        &self,
        ctx: &mut NodeCtx<'_>,
        tuple: Arc<Tuple>,
        attr: String,
        index_id: Id,
    ) -> Result<()> {
        // In-place rewriter scan: record arrival statistics, then walk the
        // ALQT groups directly — entries scoped to other replica
        // identifiers are skipped during iteration and the group key is
        // borrowed, only turned into an owned `String` when a message is
        // actually emitted for the group.
        let rel = tuple.relation();
        let value_key = tuple.canonical_of(&attr)?;
        let (st, mut fx) = ctx.split();
        st.record_arrival(rel, &attr, value_key);
        let space = fx.space();
        let keyed = fx.config().dai_v_keyed;
        let mut checks = 0u64;
        for (group, stored) in st.alqt.groups(rel, &attr) {
            if keyed {
                // Section 4.5's keyed extension: one evaluator — and one
                // message — per (query, valJC); no grouping possible.
                for sq in stored {
                    if sq.index_id != index_id {
                        continue;
                    }
                    checks += 1;
                    if sq.index_attr != attr {
                        continue;
                    }
                    let Some(rq) = RewrittenQuery::rewrite_value(&sq.query, sq.index_side, &tuple)?
                    else {
                        continue;
                    };
                    let val = rq.target().value().clone();
                    let qkey = sq.query.key().0.clone();
                    let id = indexing::vindex_value_keyed(space, &qkey, &val);
                    let msg = Message::JoinV(ValueJoin {
                        // matching is scoped per query under this variant
                        group: format!("K|{qkey}"),
                        items: vec![rq],
                        tuple: Arc::clone(&tuple),
                        side: sq.index_side,
                        value_key: val.canonical(),
                        index_id: id,
                    });
                    fx.push(Effect::Send { id, msg });
                }
            } else {
                // One message per (group, valJC): rewritten queries + tuple.
                let mut items: Vec<RewrittenQuery> = Vec::new();
                let mut side = None;
                let mut val = None;
                for sq in stored {
                    if sq.index_id != index_id {
                        continue;
                    }
                    checks += 1;
                    if sq.index_attr != attr {
                        continue; // stored under a different attribute bucket
                    }
                    if let Some(rq) =
                        RewrittenQuery::rewrite_value(&sq.query, sq.index_side, &tuple)?
                    {
                        side = Some(sq.index_side);
                        val = Some(rq.target().value().clone());
                        items.push(rq);
                    }
                }
                if let (Some(side), Some(val)) = (side, val) {
                    let id = indexing::vindex_value(space, &val);
                    let msg = Message::JoinV(ValueJoin {
                        group: group.to_string(),
                        items,
                        tuple: Arc::clone(&tuple),
                        side,
                        value_key: val.canonical(),
                        index_id: id,
                    });
                    fx.push(Effect::Send { id, msg });
                }
            }
        }
        if checks > 0 {
            let node = fx.node().index();
            fx.metrics().add_rewriter_filtering(node, checks);
        }
        Ok(())
    }

    fn on_join_message(&self, ctx: &mut NodeCtx<'_>, join: ValueJoin) -> Result<()> {
        let ValueJoin {
            group,
            items,
            tuple,
            side,
            value_key,
            index_id,
        } = join;
        // Match the rewritten queries against stored tuples of the other
        // side, then store the triggering tuple. Rewritten queries are not
        // stored.
        let other = side.other();
        let (st, mut fx) = ctx.split();
        let node = fx.node().index();
        let mut matches = fx.new_matches();
        let mut checked = 0u64;
        for rq in &items {
            // Scan the store in place per rewritten query — the candidate
            // list is identical for each, but iterating (rather than
            // cloning it out once) keeps the filtering-work accounting
            // per-rq, as the paper counts it.
            let mut count = 0u64;
            for e in st.vstore.candidates(&group, &value_key, other) {
                count += 1;
                if rq.matches(&e.tuple)? {
                    matches.add(rq, &e.tuple)?;
                }
            }
            fx.metrics().add_evaluator_filtering(node, count);
            checked += count;
        }
        let (tick, produced) = (fx.tick(), matches.len());
        fx.trace(|| TraceEvent::JoinEval {
            tick,
            node: node as u32,
            candidates: checked,
            matches: produced,
        });
        fx.trace(|| TraceEvent::IndexInsert {
            tick,
            node: node as u32,
            table: "vstore",
            fresh: true, // the value store keeps every arrival
        });
        let entry = StoredValueTuple {
            index_id,
            side,
            tuple,
        };
        if fx.repl_k() > 0 {
            st.vstore.insert(&group, &value_key, entry.clone());
            fx.push(Effect::Replicate {
                item: ReplicaItem::ValueTuple {
                    group,
                    value_key,
                    entry,
                },
            });
        } else {
            st.vstore.insert(&group, &value_key, entry);
        }
        fx.push(Effect::Deliver { matches });
        Ok(())
    }
}
