//! A network-monitoring scenario (the paper's Section 1 cites monitoring as
//! a target application): correlate alert streams from two sensor feeds with
//! a type-T2 join condition — only DAI-V can evaluate these — and inspect
//! how the load spreads over the overlay.
//!
//! ```text
//! cargo run --release --example network_monitor
//! ```

use cq_engine::{Algorithm, EngineConfig, Network, TrafficKind};
use cq_relational::{Catalog, DataType, RelationSchema, Value};

fn main() {
    let mut catalog = Catalog::new();
    catalog
        .register(
            RelationSchema::of(
                "Flows",
                &[
                    ("Src", DataType::Int),
                    ("Packets", DataType::Int),
                    ("Bytes", DataType::Int),
                ],
            )
            .unwrap(),
        )
        .unwrap();
    catalog
        .register(
            RelationSchema::of(
                "Alarms",
                &[
                    ("Sensor", DataType::Int),
                    ("Level", DataType::Int),
                    ("Code", DataType::Int),
                ],
            )
            .unwrap(),
        )
        .unwrap();

    let mut net = Network::new(EngineConfig::new(Algorithm::DaiV).with_nodes(200), catalog);

    // Correlate: a flow whose weighted volume equals an alarm's weighted
    // severity — a compound (type-T2) join condition on both sides.
    let ops_console = net.node_at(0);
    net.pose_query_sql(
        ops_console,
        "SELECT Flows.Src, Alarms.Code FROM Flows, Alarms \
         WHERE 10*Flows.Packets + Flows.Bytes = 100*Alarms.Level + Alarms.Sensor",
    )
    .unwrap();

    // Two independent feeds publish from different nodes.
    let flow_probe = net.node_at(120);
    let alarm_probe = net.node_at(60);
    let mut matches_expected = 0;
    for i in 0..50i64 {
        // 10*p + b; make every 10th flow hit the alarm value 100*2 + 3 = 203.
        let (p, b) = if i % 10 == 0 {
            matches_expected += 1;
            (20, 3)
        } else {
            (i % 7, i)
        };
        net.insert_tuple(
            flow_probe,
            "Flows",
            vec![Value::Int(i), Value::Int(p), Value::Int(b)],
        )
        .unwrap();
    }
    net.insert_tuple(
        alarm_probe,
        "Alarms",
        vec![Value::Int(3), Value::Int(2), Value::Int(911)],
    )
    .unwrap();

    println!("correlated alerts: {}", net.inbox(ops_console).len());
    assert_eq!(net.inbox(ops_console).len(), matches_expected);

    // Where did the work land? DAI-V concentrates evaluation on the nodes
    // owning popular join-condition values.
    let loads: Vec<u64> = net
        .metrics()
        .loads()
        .iter()
        .map(|l| l.filtering())
        .collect();
    let busy = loads.iter().filter(|&&l| l > 0).count();
    let max = loads.iter().max().copied().unwrap_or(0);
    println!(
        "{busy} of {} nodes did filtering work (max per-node load: {max})",
        net.ring().len()
    );

    for kind in TrafficKind::ALL {
        let t = net.metrics().traffic(kind);
        if t.messages > 0 {
            println!("traffic[{kind}]: {} msgs / {} hops", t.messages, t.hops);
        }
    }
}
