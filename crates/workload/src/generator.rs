//! Schema, tuple and query generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cq_relational::{Catalog, DataType, RelationSchema, Value};

use crate::zipf::Zipf;

/// Parameters of a synthetic workload.
#[derive(Clone, Debug)]
pub struct WorkloadConfig {
    /// Number of relations in the schema (`R0`, `R1`, ...).
    pub relations: usize,
    /// Attributes per relation (`A0`, `A1`, ...), all integers.
    pub attrs_per_relation: usize,
    /// Attribute value domain: values are drawn from `0..domain`.
    pub domain: i64,
    /// Zipf skew of attribute values; `0.0` = uniform. The paper "assumes a
    /// highly skewed distribution for all attributes".
    pub zipf_theta: f64,
    /// Probability that a generated query carries an extra
    /// `attr = const` filter.
    pub filter_probability: f64,
    /// *bos* ratio: the share of tuple insertions that go to relation `R0`
    /// when streaming over the pair `(R0, R1)` — `0.5` means balanced rates,
    /// `0.9` means `R0` receives 9× the tuples of `R1` (see DESIGN.md,
    /// "Substitutions").
    pub bos_ratio: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            relations: 2,
            attrs_per_relation: 4,
            domain: 100,
            zipf_theta: 0.9,
            filter_probability: 0.0,
            bos_ratio: 0.5,
            seed: 42,
        }
    }
}

/// A seeded workload generator bound to its synthetic catalog.
#[derive(Clone, Debug)]
pub struct Workload {
    cfg: WorkloadConfig,
    catalog: Catalog,
    zipf: Zipf,
    rng: StdRng,
}

impl Workload {
    /// Builds the generator and its catalog.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (fewer than two relations,
    /// no attributes, empty domain, or ratios outside `[0, 1]`).
    pub fn new(cfg: WorkloadConfig) -> Self {
        assert!(cfg.relations >= 2, "need at least two relations to join");
        assert!(cfg.attrs_per_relation >= 1, "relations need attributes");
        assert!(cfg.domain >= 1, "domain must be non-empty");
        assert!(
            (0.0..=1.0).contains(&cfg.filter_probability),
            "filter probability in [0,1]"
        );
        assert!((0.0..=1.0).contains(&cfg.bos_ratio), "bos ratio in [0,1]");
        let mut catalog = Catalog::new();
        for r in 0..cfg.relations {
            let attrs: Vec<(String, DataType)> = (0..cfg.attrs_per_relation)
                .map(|a| (format!("A{a}"), DataType::Int))
                .collect();
            let attrs_ref: Vec<(&str, DataType)> =
                attrs.iter().map(|(n, t)| (n.as_str(), *t)).collect();
            catalog
                .register(RelationSchema::of(format!("R{r}"), &attrs_ref).expect("distinct"))
                .expect("distinct relation names");
        }
        let zipf = Zipf::new(cfg.domain as usize, cfg.zipf_theta);
        let rng = StdRng::seed_from_u64(cfg.seed);
        Workload {
            cfg,
            catalog,
            zipf,
            rng,
        }
    }

    /// The configuration used.
    pub fn config(&self) -> &WorkloadConfig {
        &self.cfg
    }

    /// The synthetic catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Name of relation `i`.
    pub fn relation_name(&self, i: usize) -> String {
        format!("R{i}")
    }

    /// Draws one attribute value from the configured distribution.
    pub fn random_value(&mut self) -> Value {
        Value::Int(self.zipf.sample(&mut self.rng) as i64)
    }

    /// A full tuple for relation `rel` (values drawn independently).
    pub fn random_tuple_values(&mut self) -> Vec<Value> {
        (0..self.cfg.attrs_per_relation)
            .map(|_| self.random_value())
            .collect()
    }

    /// Which relation the next streamed tuple belongs to, honouring the
    /// *bos* ratio over the pair `(R0, R1)`.
    pub fn next_stream_relation(&mut self) -> String {
        if self.rng.gen::<f64>() < self.cfg.bos_ratio {
            "R0".to_string()
        } else {
            "R1".to_string()
        }
    }

    /// A random type-T1 equi-join query over two distinct relations,
    /// rendered in the supported SQL subset.
    pub fn random_query_sql(&mut self) -> String {
        let r1 = self.rng.gen_range(0..self.cfg.relations);
        let mut r2 = self.rng.gen_range(0..self.cfg.relations);
        while r2 == r1 {
            r2 = self.rng.gen_range(0..self.cfg.relations);
        }
        self.query_between(r1, r2)
    }

    /// A random T1 query over a *specific* relation pair — the form the
    /// focused experiments use so all queries hit the `(R0, R1)` stream.
    pub fn query_between(&mut self, r1: usize, r2: usize) -> String {
        let a = self.cfg.attrs_per_relation;
        let ja1 = self.rng.gen_range(0..a);
        let ja2 = self.rng.gen_range(0..a);
        let s1 = self.rng.gen_range(0..a);
        let s2 = self.rng.gen_range(0..a);
        let mut sql = format!(
            "SELECT R{r1}.A{s1}, R{r2}.A{s2} FROM R{r1}, R{r2} WHERE R{r1}.A{ja1} = R{r2}.A{ja2}"
        );
        if self.rng.gen::<f64>() < self.cfg.filter_probability {
            let fa = self.rng.gen_range(0..a);
            let fv = self.zipf.sample(&mut self.rng);
            sql.push_str(&format!(" AND R{r2}.A{fa} = {fv}"));
        }
        sql
    }

    /// A random type-T2 query (compound arithmetic join condition) between
    /// two relations — only DAI-V can evaluate these.
    pub fn random_t2_query_sql(&mut self) -> String {
        let r1 = 0;
        let r2 = 1;
        let a = self.cfg.attrs_per_relation;
        let (x1, y1) = (self.rng.gen_range(0..a), self.rng.gen_range(0..a));
        let (x2, y2) = (self.rng.gen_range(0..a), self.rng.gen_range(0..a));
        let (c1, c2) = (self.rng.gen_range(1..5), self.rng.gen_range(1..5));
        let k = self.rng.gen_range(0..10);
        format!(
            "SELECT R{r1}.A0, R{r2}.A0 FROM R{r1}, R{r2} \
             WHERE {c1}*R{r1}.A{x1} + R{r1}.A{y1} + {k} = {c2}*R{r2}.A{x2} + R{r2}.A{y2} + {k}"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_relational::parse_query;

    #[test]
    fn catalog_has_requested_shape() {
        let w = Workload::new(WorkloadConfig {
            relations: 3,
            attrs_per_relation: 5,
            ..Default::default()
        });
        assert_eq!(w.catalog().len(), 3);
        assert_eq!(w.catalog().get("R2").unwrap().arity(), 5);
    }

    #[test]
    fn generated_queries_parse() {
        let mut w = Workload::new(WorkloadConfig {
            relations: 4,
            ..Default::default()
        });
        for _ in 0..100 {
            let sql = w.random_query_sql();
            parse_query(&sql, w.catalog()).unwrap_or_else(|e| panic!("{sql}: {e}"));
        }
    }

    #[test]
    fn generated_t2_queries_parse_as_t2() {
        let mut w = Workload::new(WorkloadConfig::default());
        for _ in 0..50 {
            let sql = w.random_t2_query_sql();
            let p = parse_query(&sql, w.catalog()).unwrap_or_else(|e| panic!("{sql}: {e}"));
            let q = p
                .into_query(
                    cq_relational::QueryKey::derive("n", 0),
                    "n",
                    cq_relational::Timestamp(0),
                    w.catalog(),
                )
                .unwrap();
            assert_eq!(q.query_type(), cq_relational::QueryType::T2, "{sql}");
        }
    }

    #[test]
    fn filters_appear_with_probability_one() {
        let mut w = Workload::new(WorkloadConfig {
            filter_probability: 1.0,
            ..Default::default()
        });
        let sql = w.random_query_sql();
        assert!(sql.contains(" AND "), "{sql}");
    }

    #[test]
    fn bos_ratio_biases_the_stream() {
        let mut w = Workload::new(WorkloadConfig {
            bos_ratio: 0.9,
            ..Default::default()
        });
        let mut r0 = 0;
        for _ in 0..2000 {
            if w.next_stream_relation() == "R0" {
                r0 += 1;
            }
        }
        assert!(r0 > 1600, "R0 share {r0}/2000 should be ~1800");
    }

    #[test]
    fn values_respect_domain() {
        let mut w = Workload::new(WorkloadConfig {
            domain: 10,
            ..Default::default()
        });
        for _ in 0..500 {
            match w.random_value() {
                Value::Int(v) => assert!((0..10).contains(&v)),
                other => panic!("unexpected {other:?}"),
            }
        }
    }

    #[test]
    fn same_seed_same_workload() {
        let mk = || {
            let mut w = Workload::new(WorkloadConfig {
                seed: 77,
                ..Default::default()
            });
            (0..10).map(|_| w.random_query_sql()).collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }
}
