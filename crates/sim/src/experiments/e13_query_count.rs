//! E13 — Figure "Effect in filtering load distribution of increasing the
//! number of indexed queries" (Section 5.4).
//!
//! Sweeps the installed-query population and summarizes the per-node
//! filtering curve. Expected shape: more queries → more candidate checks
//! per tuple everywhere; the distribution's *shape* (gini) stays roughly
//! stable because new queries land on the same hashed rewriters/evaluators.

use cq_engine::Algorithm;
use cq_workload::WorkloadConfig;

use super::Scale;
use crate::harness::RunConfig;
use crate::parallel::run_many;
use crate::report::{fnum, Report};
use crate::stats;

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let nodes = scale.pick(128, 1024);
    let tuples = scale.pick(300, 800);
    let sweep: Vec<usize> = scale.pick(vec![20, 60, 120, 240], vec![1000, 2500, 5000, 10_000]);
    let mut report = Report::new(
        "E13",
        &format!("filtering distribution vs installed queries (N={nodes}, T={tuples})"),
        &[
            "queries",
            "SAI gini",
            "SAI TF",
            "DAI-T gini",
            "DAI-T TF",
            "DAI-V gini",
            "DAI-V TF",
        ],
    );
    let algs = [Algorithm::Sai, Algorithm::DaiT, Algorithm::DaiV];
    let mut cfgs = Vec::new();
    for &q in &sweep {
        for alg in algs {
            cfgs.push(RunConfig {
                algorithm: alg,
                nodes,
                queries: q,
                tuples,
                workload: WorkloadConfig {
                    domain: scale.pick(40, 400),
                    ..WorkloadConfig::default()
                },
                ..RunConfig::new(alg)
            });
        }
    }
    let mut results = run_many(&cfgs).into_iter();
    for &q in &sweep {
        let mut row = vec![q.to_string()];
        for _ in algs {
            let r = results.next().expect("one result per config");
            row.push(fnum(stats::gini(&r.filtering)));
            row.push(fnum(r.total_filtering()));
        }
        report.row(row);
    }
    report.note("paper: TF grows with the query population; distribution stays graceful");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_filtering_grows_with_queries() {
        let r = run(Scale::Quick);
        let rows: Vec<Vec<f64>> = r
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').skip(1).map(|c| c.parse().unwrap()).collect())
            .collect();
        assert!(rows.last().unwrap()[1] > rows[0][1], "SAI TF must grow");
    }
}
