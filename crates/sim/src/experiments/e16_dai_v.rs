//! E16 — Figure "Effect in filtering load distribution of DAI-V of
//! increasing the network size, queries or tuples" (Section 5.4).
//!
//! DAI-V's sensitivity sweeps on type-T2 workloads (the class only it can
//! evaluate). Expected shape: per-node load dilutes with N, grows with
//! queries and tuples; evaluator load is concentrated on the nodes owning
//! popular join-condition values (no attribute prefix in the identifier).

use cq_engine::Algorithm;
use cq_workload::WorkloadConfig;

use super::Scale;
use crate::harness::{RunConfig, RunResult};
use crate::parallel::run_many;
use crate::report::{fnum, Report};
use crate::stats;

fn cfg_for(nodes: usize, queries: usize, tuples: usize, domain: i64) -> RunConfig {
    RunConfig {
        algorithm: Algorithm::DaiV,
        nodes,
        queries,
        tuples,
        t2_queries: true,
        workload: WorkloadConfig {
            domain,
            ..WorkloadConfig::default()
        },
        ..RunConfig::new(Algorithm::DaiV)
    }
}

fn summarize(r: &RunResult) -> (f64, f64, f64) {
    (
        stats::mean(&r.filtering),
        stats::max(&r.filtering),
        stats::gini(&r.filtering),
    )
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let base_n = scale.pick(128, 1024);
    let base_q = scale.pick(40, 2000);
    let base_t = scale.pick(200, 600);
    let domain = scale.pick(40, 400);
    let mut report = Report::new(
        "E16",
        "DAI-V (T2 queries): filtering distribution sweeps",
        &["sweep", "value", "mean", "max", "gini"],
    );
    let n_sweep = scale.pick(vec![64, 128, 256], vec![1000, 2500, 5000]);
    let q_sweep = scale.pick(vec![20, 40, 80], vec![1000, 4000, 8000]);
    let t_sweep = scale.pick(vec![100, 200, 400], vec![500, 1000, 2000]);
    let mut cfgs = Vec::new();
    cfgs.extend(n_sweep.iter().map(|&n| cfg_for(n, base_q, base_t, domain)));
    cfgs.extend(q_sweep.iter().map(|&q| cfg_for(base_n, q, base_t, domain)));
    cfgs.extend(t_sweep.iter().map(|&t| cfg_for(base_n, base_q, t, domain)));
    let results = run_many(&cfgs);
    let mut it = results.iter();
    for &n in &n_sweep {
        let (mean, max, gini) = summarize(it.next().expect("one result per config"));
        report.row(vec![
            "N".into(),
            n.to_string(),
            fnum(mean),
            fnum(max),
            fnum(gini),
        ]);
    }
    for &q in &q_sweep {
        let (mean, max, gini) = summarize(it.next().expect("one result per config"));
        report.row(vec![
            "queries".into(),
            q.to_string(),
            fnum(mean),
            fnum(max),
            fnum(gini),
        ]);
    }
    for &t in &t_sweep {
        let (mean, max, gini) = summarize(it.next().expect("one result per config"));
        report.row(vec![
            "tuples".into(),
            t.to_string(),
            fnum(mean),
            fnum(max),
            fnum(gini),
        ]);
    }
    report.note("paper: DAI-V scales with N/queries/tuples but concentrates on hot values");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_behave_monotonically_at_the_ends() {
        let r = run(Scale::Quick);
        let rows: Vec<Vec<String>> = r
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(str::to_string).collect())
            .collect();
        let n_rows: Vec<&Vec<String>> = rows.iter().filter(|r| r[0] == "N").collect();
        let mean_small: f64 = n_rows[0][2].parse().unwrap();
        let mean_big: f64 = n_rows.last().unwrap()[2].parse().unwrap();
        assert!(mean_big <= mean_small, "mean load must dilute with N");
        let t_rows: Vec<&Vec<String>> = rows.iter().filter(|r| r[0] == "tuples").collect();
        let max_low: f64 = t_rows[0][3].parse().unwrap();
        let max_high: f64 = t_rows.last().unwrap()[3].parse().unwrap();
        assert!(max_high >= max_low, "load must grow with the tuple rate");
    }
}
