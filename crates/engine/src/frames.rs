//! Nonblocking framed connections: the per-socket buffering layer under the
//! TCP transport's event loop.
//!
//! A [`FrameConn`] owns one nonblocking `TcpStream` and two byte buffers:
//!
//! * **Read side** — bytes are pulled off the socket in bounded chunks
//!   ([`READ_CHUNK`] at a time, never `frame_len` up front) and reassembled
//!   into complete frames. The frame length is validated as soon as the
//!   header arrives — a hostile or corrupt peer announcing a zero or
//!   oversized length is rejected *before* any body byte is read or
//!   buffered, so an attacker cannot make the receiver allocate
//!   `MAX_FRAME`-sized buffers from a 12-byte header. After a genuinely
//!   large frame is consumed the buffer is shrunk back (see
//!   [`SHRINK_AT`]/[`SHRINK_TO`]), so one big message does not pin its
//!   high-water allocation for the rest of the run.
//! * **Write side** — [`FrameConn::queue_frame`] appends and
//!   [`FrameConn::flush`] writes as much as the kernel accepts. A full
//!   kernel buffer (`WouldBlock`) leaves the remainder queued in userspace —
//!   this is the transport's **backpressure** state, counted by
//!   [`FrameConn::blocked_writes`] — and the event loop re-flushes when the
//!   poller reports the socket writable again.
//!
//! On-stream layout, repeated per frame:
//!
//! ```text
//! +--------------+----------------+------------------------+
//! | seq: u64 LE  | length: u32 LE | length bytes           |
//! | (per-stream  | (of the rest)  | (e.g. a `crate::wire`  |
//! |  frame seq)  |                |  version+payload body) |
//! +--------------+----------------+------------------------+
//! ```
//!
//! The `[length][bytes]` tail is exactly a [`crate::wire`] codec frame, so a
//! reassembled frame feeds `wire::decode_message` verbatim. The leading
//! sequence number is *transport* state: the sender numbers frames per
//! logical stream, and the receiver checks contiguity, so frames lost to a
//! reconnect (or replayed by a confused peer) are detected as a typed
//! protocol error instead of silently decoding the wrong message. The
//! sequencing policy lives in the transport; `FrameConn` carries the number.
//!
//! This type is deliberately protocol-agnostic (lengths and sequence
//! numbers, never message contents), which is why the multi-client cluster
//! harness in `cq-sim` reuses it for its command streams.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Bytes pulled off the socket per `read` call — the reassembly buffer
/// grows by at most this much at a time, regardless of the announced
/// frame length.
pub const READ_CHUNK: usize = 64 * 1024;

/// Frames at least this large mark the read buffer for shrinking once
/// consumed.
pub const SHRINK_AT: usize = 256 * 1024;

/// Capacity the buffers shrink back to after servicing a large frame.
pub const SHRINK_TO: usize = 64 * 1024;

/// Per-frame header bytes: an 8-byte sequence number plus the 4-byte frame
/// length.
pub const FRAME_HEADER: usize = 12;

/// One complete frame off the wire: the stream sequence number and the
/// `[length][bytes]` payload (length prefix included, ready for
/// [`crate::wire::decode_message`]).
pub type RawFrame = (u64, Vec<u8>);

/// A nonblocking socket with framed read/write buffers. See the module
/// docs for the layout and the backpressure model.
#[derive(Debug)]
pub struct FrameConn {
    stream: TcpStream,
    /// Unparsed received bytes; `rpos` is the parse cursor.
    rbuf: Vec<u8>,
    rpos: usize,
    /// Queued outgoing bytes; `wpos` is the flushed cursor.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Largest frame length this connection accepts.
    max_frame: u32,
    /// The peer closed its write half (a clean EOF was observed).
    eof: bool,
    /// A frame ≥ [`SHRINK_AT`] was consumed; shrink at the next compaction.
    shrink_pending: bool,
    /// Times a flush stopped early because the kernel buffer was full.
    blocked_writes: u64,
}

impl FrameConn {
    /// Wraps `stream`, switching it to nonblocking mode. `max_frame` bounds
    /// the frame length accepted from the peer (use
    /// [`crate::wire::MAX_FRAME`] for protocol streams).
    pub fn new(stream: TcpStream, max_frame: u32) -> io::Result<FrameConn> {
        stream.set_nonblocking(true)?;
        Ok(FrameConn {
            stream,
            rbuf: Vec::new(),
            rpos: 0,
            wbuf: Vec::new(),
            wpos: 0,
            max_frame,
            eof: false,
            shrink_pending: false,
            blocked_writes: 0,
        })
    }

    /// The underlying socket (for addresses and socket options).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Queues raw bytes ahead of any frames — connection preambles (the
    /// transport's hello) use this. Call [`FrameConn::flush`] to send.
    pub fn queue_bytes(&mut self, bytes: &[u8]) {
        self.wbuf.extend_from_slice(bytes);
    }

    /// Queues one frame. `frame` must start with its own u32 LE length
    /// prefix counting the remaining bytes (the [`crate::wire`] encoders
    /// produce exactly this shape).
    pub fn queue_frame(&mut self, seq: u64, frame: &[u8]) {
        debug_assert!(frame.len() >= 4, "frame carries its length prefix");
        debug_assert_eq!(
            u32::from_le_bytes([frame[0], frame[1], frame[2], frame[3]]) as usize,
            frame.len() - 4,
            "frame length prefix counts the remaining bytes"
        );
        self.wbuf.extend_from_slice(&seq.to_le_bytes());
        self.wbuf.extend_from_slice(frame);
    }

    /// Whether queued bytes are waiting for the socket to become writable.
    pub fn wants_write(&self) -> bool {
        self.wpos < self.wbuf.len()
    }

    /// Bytes queued but not yet accepted by the kernel.
    pub fn queued_write_bytes(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// Times a flush hit a full kernel buffer and left bytes queued — the
    /// number of times this connection entered backpressure.
    pub fn blocked_writes(&self) -> u64 {
        self.blocked_writes
    }

    /// Whether the peer has closed its write half.
    pub fn is_eof(&self) -> bool {
        self.eof
    }

    /// Current capacity of the read-reassembly buffer (observable effect of
    /// the post-large-frame shrink).
    pub fn read_buffer_capacity(&self) -> usize {
        self.rbuf.capacity()
    }

    /// Writes as much queued data as the kernel accepts. Returns `true`
    /// when the queue drained, `false` when the socket would block and the
    /// remainder stays queued (re-flush on the next writable event).
    pub fn flush(&mut self) -> io::Result<bool> {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.blocked_writes += 1;
                    return Ok(false);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        let oversized = self.wbuf.capacity() > SHRINK_AT;
        self.wbuf.clear();
        self.wpos = 0;
        if oversized {
            self.wbuf.shrink_to(SHRINK_TO);
        }
        Ok(true)
    }

    /// Reads everything currently available (in [`READ_CHUNK`]-bounded
    /// chunks) and appends every completed frame to `out`. Returns `true`
    /// while the connection is open, `false` on a clean EOF at a frame
    /// boundary. Errors on malformed lengths — rejected as soon as the
    /// header is visible — and on an EOF that truncates a frame.
    pub fn read_frames(&mut self, out: &mut Vec<RawFrame>) -> io::Result<bool> {
        if self.eof {
            return Ok(false);
        }
        loop {
            let start = self.rbuf.len();
            self.rbuf.resize(start + READ_CHUNK, 0);
            match self.stream.read(&mut self.rbuf[start..]) {
                Ok(0) => {
                    self.rbuf.truncate(start);
                    self.parse_available(out)?;
                    self.eof = true;
                    let pending = self.rbuf.len() - self.rpos;
                    if pending > 0 {
                        return Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            format!("connection closed mid-frame ({pending} bytes of an unfinished frame buffered)"),
                        ));
                    }
                    self.compact();
                    return Ok(false);
                }
                Ok(n) => {
                    self.rbuf.truncate(start + n);
                    self.parse_available(out)?;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    self.rbuf.truncate(start);
                    self.compact();
                    return Ok(true);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {
                    self.rbuf.truncate(start);
                }
                Err(e) => {
                    self.rbuf.truncate(start);
                    return Err(e);
                }
            }
        }
    }

    /// Extracts every complete frame sitting in the reassembly buffer.
    fn parse_available(&mut self, out: &mut Vec<RawFrame>) -> io::Result<()> {
        loop {
            let avail = self.rbuf.len() - self.rpos;
            if avail < FRAME_HEADER {
                return Ok(());
            }
            let at = self.rpos;
            let seq = u64::from_le_bytes(self.rbuf[at..at + 8].try_into().expect("8 bytes"));
            let len = u32::from_le_bytes(self.rbuf[at + 8..at + 12].try_into().expect("4 bytes"));
            // Early abort: the length is judged the moment the header is
            // complete, before any body byte is read for this frame.
            if len == 0 || len > self.max_frame {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("frame length {len} outside (0, {}]", self.max_frame),
                ));
            }
            let total = FRAME_HEADER + len as usize;
            if avail < total {
                return Ok(()); // body still arriving, chunk by chunk
            }
            // The emitted frame keeps its length prefix: `[len][bytes]` is
            // exactly what `wire::decode_message` consumes.
            out.push((seq, self.rbuf[at + 8..at + total].to_vec()));
            self.rpos += total;
            if len as usize >= SHRINK_AT {
                self.shrink_pending = true;
            }
        }
    }

    /// Drops consumed bytes and releases a large frame's high-water
    /// allocation once the buffer is back to ordinary size.
    fn compact(&mut self) {
        if self.rpos == self.rbuf.len() {
            self.rbuf.clear();
        } else {
            self.rbuf.drain(..self.rpos);
        }
        self.rpos = 0;
        if self.shrink_pending && self.rbuf.len() <= SHRINK_TO {
            self.rbuf.shrink_to(SHRINK_TO);
            self.shrink_pending = false;
        }
    }
}
