//! The protocol layer: the [`Protocol`] trait algorithm implementations
//! plug into, the [`NodeCtx`] handlers run against, and the deferred
//! [`Effect`]s they emit.
//!
//! The engine is split into three layers (see `DESIGN.md`):
//!
//! 1. **Transport** (`engine::transport`) — owns sends, routing and hop
//!    accounting, the fault-injection pump, reliable delivery, and replica
//!    mirroring. Knows nothing about algorithms.
//! 2. **Protocol** (this module + [`crate::algo`]) — the four evaluation
//!    algorithms of Chapter 4, each an implementation of [`Protocol`].
//!    Handlers never touch the network directly: they receive a [`NodeCtx`]
//!    scoped to the node the message arrived at and *describe* their sends
//!    as [`Effect`]s pushed onto an outbox.
//! 3. **Orchestration** ([`crate::network`]) — dequeues messages, invokes
//!    the configured protocol's handlers, and flushes their effects back
//!    into the transport.
//!
//! Effects are flushed in push order immediately after each handler
//! returns, before the next message is dequeued — so the message order on
//! the wire is exactly what it would be if handlers sent inline.

use std::borrow::Cow;
use std::sync::Arc;

use cq_fasthash::FxHashMap;
use cq_overlay::{Id, NodeHandle, Ring};
use cq_relational::{JoinQuery, Notification, QueryRef, RewrittenQuery, Side, Tuple};
use rand::rngs::StdRng;

use crate::config::EngineConfig;
use crate::error::{EngineError, Result};
use crate::messages::{Message, ValueJoin};
use crate::metrics::{Metrics, TrafficKind};
use crate::node::NodeState;
use crate::replication::ReplicaItem;
use crate::trace::{TraceEvent, TraceSink};

/// A deferred transport action emitted by a protocol handler.
///
/// Handlers push effects onto their [`NodeCtx`] outbox in the order the
/// sends should happen; the orchestrator flushes them into the transport
/// in that same order once the handler returns.
#[derive(Debug)]
pub enum Effect {
    /// Send a batch of identifier-routed messages with the configured
    /// multisend design, accounting `kind` traffic.
    Batch {
        /// Traffic class to account the batch under.
        kind: TrafficKind,
        /// `(target identifier, message)` pairs.
        targets: Vec<(Id, Message)>,
    },
    /// Send one message toward an identifier, consulting the sender's JFRT
    /// when the optimization is enabled (Section 4.7).
    Send {
        /// The target identifier.
        id: Id,
        /// The message.
        msg: Message,
    },
    /// Mirror a freshly inserted primary item onto the node's `k` first
    /// alive successors (no-op when k-successor replication is off).
    Replicate {
        /// The item to mirror.
        item: ReplicaItem,
    },
    /// Deliver accumulated join matches to their subscribers (Section 4.6).
    Deliver {
        /// The matches.
        matches: Matches,
    },
}

/// Accumulated join matches at an evaluator (see [`NodeCtx::new_matches`]).
///
/// With notification retention on, full bodies are built; with retention
/// off only per-subscriber counts are kept (delivery traffic and counters
/// stay identical, the bodies are never materialized).
#[derive(Debug)]
pub enum Matches {
    /// Full notification bodies (retention on).
    Full(Vec<Notification>),
    /// Per-subscriber match counts (retention off).
    Counts(FxHashMap<String, u64>),
}

impl Matches {
    /// An empty accumulator; `retain` selects full bodies vs counts.
    pub fn new(retain: bool) -> Matches {
        if retain {
            Matches::Full(Vec::new())
        } else {
            Matches::Counts(FxHashMap::default())
        }
    }

    /// Total matches accumulated so far (notification bodies, or the sum of
    /// the per-subscriber counts).
    pub fn len(&self) -> u64 {
        match self {
            Matches::Full(v) => v.len() as u64,
            Matches::Counts(c) => c.values().sum(),
        }
    }

    /// Whether nothing has matched yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records that `rq` matched tuple `t`.
    pub fn add(&mut self, rq: &RewrittenQuery, t: &Tuple) -> cq_relational::Result<()> {
        match self {
            Matches::Full(v) => v.push(rq.notification_with(t)?),
            Matches::Counts(c) => {
                // avoid one String allocation per match on the hot path
                if let Some(v) = c.get_mut(rq.query().subscriber()) {
                    *v += 1;
                } else {
                    c.insert(rq.query().subscriber().to_string(), 1);
                }
            }
        }
        Ok(())
    }
}

/// Everything a protocol handler may touch while processing one message at
/// one node: the node's own state, read access to the ring, the metrics
/// sink, the engine RNG, and the effect outbox.
///
/// The full node-state slice is carried (rather than just the local state)
/// because the index-attribute strategies probe *other* nodes' arrival
/// statistics ([`NodeCtx::probe_arrival_stats`]); handlers otherwise only
/// use [`NodeCtx::state`].
pub struct NodeCtx<'a> {
    node: NodeHandle,
    config: &'a EngineConfig,
    ring: &'a Ring,
    nodes: &'a mut [NodeState],
    metrics: &'a mut Metrics,
    rng: &'a mut StdRng,
    outbox: &'a mut Vec<Effect>,
    /// A reusable string buffer for per-arrival value keys (owned by the
    /// orchestrator so its capacity survives across handler invocations).
    scratch: &'a mut String,
    /// The trace sink when tracing is on. Handlers emit through
    /// [`NodeCtx::trace`], which is a single branch when off.
    tracer: Option<&'a dyn TraceSink>,
    /// The network's logical clock, stamped onto emitted events.
    tick: u64,
}

impl<'a> NodeCtx<'a> {
    /// Assembles a context for a handler running at `node` (tracing off;
    /// see [`NodeCtx::with_trace`]).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        node: NodeHandle,
        config: &'a EngineConfig,
        ring: &'a Ring,
        nodes: &'a mut [NodeState],
        metrics: &'a mut Metrics,
        rng: &'a mut StdRng,
        outbox: &'a mut Vec<Effect>,
        scratch: &'a mut String,
    ) -> Self {
        NodeCtx {
            node,
            config,
            ring,
            nodes,
            metrics,
            rng,
            outbox,
            scratch,
            tracer: None,
            tick: 0,
        }
    }

    /// Attaches a trace sink and the logical clock value handler-emitted
    /// events should carry.
    pub fn with_trace(mut self, tracer: Option<&'a dyn TraceSink>, tick: u64) -> Self {
        self.tracer = tracer;
        self.tick = tick;
        self
    }

    /// The logical clock value events are stamped with.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Emits one trace event when tracing is on. The closure defers event
    /// construction, so the disabled path is a single branch.
    #[inline]
    pub fn trace(&self, f: impl FnOnce() -> TraceEvent) {
        if let Some(t) = self.tracer {
            t.record(&f());
        }
    }

    /// The node the current message arrived at.
    pub fn node(&self) -> NodeHandle {
        self.node
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        self.config
    }

    /// The identifier space of the ring.
    pub fn space(&self) -> cq_overlay::IdSpace {
        self.ring.space()
    }

    /// Mutable access to the local node's protocol state.
    pub fn state(&mut self) -> &mut NodeState {
        &mut self.nodes[self.node.index()]
    }

    /// The engine RNG (the single source of all protocol-level randomness,
    /// so runs stay deterministic per seed).
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// The metrics sink.
    pub fn metrics(&mut self) -> &mut Metrics {
        self.metrics
    }

    /// Queues a deferred transport action.
    pub fn push(&mut self, effect: Effect) {
        self.outbox.push(effect);
    }

    /// The configured k-successor replication factor (`0` = replication
    /// off; handlers skip cloning entries for [`Effect::Replicate`] then).
    pub fn repl_k(&self) -> usize {
        self.config.fault.replication
    }

    /// An empty match accumulator honoring the retention setting.
    pub fn new_matches(&self) -> Matches {
        Matches::new(self.config.retain_notifications)
    }

    /// Asks the rewriter responsible for `id` for its `(count, distinct)`
    /// arrival statistics of `(relation, attr)`, paying the probe traffic
    /// (Section 4.3.6: "any node can simply ask the two possible rewriter
    /// nodes before indexing a query").
    pub fn probe_arrival_stats(
        &mut self,
        relation: &str,
        attr: &str,
        id: Id,
    ) -> Result<(u64, usize)> {
        let (owner, hops) = self.ring.route_owner(self.node, id)?;
        // request hops + one direct response hop
        self.metrics.record_traffic(TrafficKind::Probe, hops + 1);
        Ok(self.nodes[owner.index()].arrival_stats(relation, attr))
    }

    /// A typed protocol-violation error (a handler received a message its
    /// algorithm never produces).
    pub fn violation(&self, detail: impl Into<String>) -> EngineError {
        EngineError::Protocol {
            detail: detail.into(),
        }
    }

    /// Splits the context into the local node's state and an [`EffectCtx`]
    /// covering everything else (metrics, RNG, outbox, tracing, scratch).
    ///
    /// This is what lets the join kernels scan table entries *in place*: the
    /// `&mut NodeState` borrow is disjoint from every sink in the
    /// `EffectCtx`, so a handler can hold shared references into one table
    /// (e.g. VLTT candidates) while accumulating matches, bumping counters,
    /// and pushing effects — no `Arc::clone`-collect needed. The borrow
    /// checker enforces the split because `nodes` and the sink fields are
    /// distinct fields of `NodeCtx`.
    pub fn split(&mut self) -> (&mut NodeState, EffectCtx<'_>) {
        (
            &mut self.nodes[self.node.index()],
            EffectCtx {
                node: self.node,
                config: self.config,
                ring: self.ring,
                metrics: &mut *self.metrics,
                rng: &mut *self.rng,
                outbox: &mut *self.outbox,
                scratch: &mut *self.scratch,
                tracer: self.tracer,
                tick: self.tick,
            },
        )
    }
}

/// The non-state half of a [`NodeCtx`] split: every sink and read-only
/// capability a kernel needs while a disjoint `&mut NodeState` (or shared
/// borrows derived from it) is live. See [`NodeCtx::split`].
pub struct EffectCtx<'a> {
    node: NodeHandle,
    config: &'a EngineConfig,
    ring: &'a Ring,
    metrics: &'a mut Metrics,
    rng: &'a mut StdRng,
    outbox: &'a mut Vec<Effect>,
    scratch: &'a mut String,
    tracer: Option<&'a dyn TraceSink>,
    tick: u64,
}

impl EffectCtx<'_> {
    /// The node the current message arrived at.
    pub fn node(&self) -> NodeHandle {
        self.node
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        self.config
    }

    /// The identifier space of the ring.
    pub fn space(&self) -> cq_overlay::IdSpace {
        self.ring.space()
    }

    /// The engine RNG.
    pub fn rng(&mut self) -> &mut StdRng {
        self.rng
    }

    /// The metrics sink.
    pub fn metrics(&mut self) -> &mut Metrics {
        self.metrics
    }

    /// Queues a deferred transport action.
    pub fn push(&mut self, effect: Effect) {
        self.outbox.push(effect);
    }

    /// The configured k-successor replication factor.
    pub fn repl_k(&self) -> usize {
        self.config.fault.replication
    }

    /// An empty match accumulator honoring the retention setting.
    pub fn new_matches(&self) -> Matches {
        Matches::new(self.config.retain_notifications)
    }

    /// The logical clock value events are stamped with.
    pub fn tick(&self) -> u64 {
        self.tick
    }

    /// Emits one trace event when tracing is on (single branch when off).
    #[inline]
    pub fn trace(&self, f: impl FnOnce() -> TraceEvent) {
        if let Some(t) = self.tracer {
            t.record(&f());
        }
    }

    /// Takes the reusable scratch buffer (cleared). Pair with
    /// [`EffectCtx::restore_scratch`] so the capacity is kept across
    /// arrivals; on error paths the buffer is simply dropped and the next
    /// taker starts from an empty one.
    pub fn take_scratch(&mut self) -> String {
        let mut s = std::mem::take(self.scratch);
        s.clear();
        s
    }

    /// Returns the scratch buffer after use.
    pub fn restore_scratch(&mut self, s: String) {
        *self.scratch = s;
    }

    /// A typed protocol-violation error.
    pub fn violation(&self, detail: impl Into<String>) -> EngineError {
        EngineError::Protocol {
            detail: detail.into(),
        }
    }
}

/// One of the paper's evaluation algorithms, expressed as a set of message
/// handlers over [`NodeCtx`].
///
/// The orchestrator ([`crate::network::Network`]) owns the message loop and
/// the storage-level messages (query indexing, notification storage,
/// replica mirroring); everything algorithm-specific goes through this
/// trait:
///
/// | event | handler | paper |
/// |---|---|---|
/// | query posed            | [`Protocol::on_pose_query`]      | 4.3.1 / 4.4.1 |
/// | tuple published        | [`Protocol::on_publish_tuple`]   | 4.2 |
/// | tuple at attr level    | [`Protocol::on_tuple_arrival`]   | 4.3.2 / 4.4 / 4.5 |
/// | tuple at value level   | [`Protocol::on_value_tuple`]     | 4.3.4 |
/// | rewritten queries      | [`Protocol::on_rewritten_query`] | 4.3.3 / 4.4.2 / 4.4.3 |
/// | combined DAI-V message | [`Protocol::on_join_message`]    | 4.5 |
///
/// Handlers receiving a message their algorithm never produces return a
/// typed [`EngineError::Protocol`] (the defaults below) instead of
/// panicking.
pub trait Protocol: Send + Sync {
    /// Short display name (e.g. `"SAI"`).
    fn name(&self) -> &'static str;

    /// Rejects query classes the algorithm cannot evaluate (e.g. type-T2
    /// queries outside DAI-V, Section 4.5). Checked at pose time, before
    /// any state changes.
    fn validate_query(&self, query: &JoinQuery) -> Result<()>;

    /// The attribute a query is indexed by on `side`: the join attribute
    /// for T1 queries, a pseudo-random attribute of the condition
    /// expression for T2 (Section 4.5). Borrowed from the query in both
    /// default cases — implementations that compute an attribute may return
    /// an owned value.
    fn index_attr<'q>(
        &self,
        ctx: &mut NodeCtx<'_>,
        query: &'q JoinQuery,
        side: Side,
    ) -> Cow<'q, str>;

    /// A query is posed at `ctx.node()`: choose the index side(s) and emit
    /// the attribute-level `IndexQuery` batch.
    fn on_pose_query(&self, ctx: &mut NodeCtx<'_>, query: &QueryRef) -> Result<()>;

    /// A tuple is published at `ctx.node()`: emit the attribute-level (and,
    /// per algorithm, value-level) tuple-indexing batch.
    fn on_publish_tuple(&self, ctx: &mut NodeCtx<'_>, tuple: &Arc<Tuple>) -> Result<()>;

    /// A tuple arrives at a rewriter (attribute level): trigger, rewrite
    /// and reindex the stored queries of the addressed replica.
    fn on_tuple_arrival(
        &self,
        ctx: &mut NodeCtx<'_>,
        tuple: Arc<Tuple>,
        attr: String,
        index_id: Id,
    ) -> Result<()>;

    /// A tuple arrives at an evaluator (value level). Only algorithms that
    /// index tuples at the value level see this message.
    fn on_value_tuple(
        &self,
        ctx: &mut NodeCtx<'_>,
        tuple: Arc<Tuple>,
        attr: String,
        index_id: Id,
    ) -> Result<()> {
        let _ = (tuple, attr, index_id);
        Err(ctx.violation(format!(
            "{} does not index tuples at the value level",
            self.name()
        )))
    }

    /// A batch of rewritten queries arrives at an evaluator.
    fn on_rewritten_query(
        &self,
        ctx: &mut NodeCtx<'_>,
        items: Vec<RewrittenQuery>,
        index_id: Id,
    ) -> Result<()> {
        let _ = (items, index_id);
        Err(ctx.violation(format!("{} does not use plain join messages", self.name())))
    }

    /// DAI-V's combined join message arrives at an evaluator.
    fn on_join_message(&self, ctx: &mut NodeCtx<'_>, join: ValueJoin) -> Result<()> {
        let _ = join;
        Err(ctx.violation(format!(
            "{} does not use combined join-v messages",
            self.name()
        )))
    }
}
