//! Data tuples.
//!
//! Each tuple carries its publication time `pubT(t)` (Section 3.2); a tuple
//! can trigger a query `q` iff `pubT(t) >= insT(q)`.

use std::fmt;
use std::sync::Arc;

use crate::error::{RelationalError, Result};
use crate::schema::RelationSchema;
use crate::value::{Timestamp, Value};

/// A relational tuple bound to its schema.
#[derive(Clone, Debug)]
pub struct Tuple {
    schema: Arc<RelationSchema>,
    values: Vec<Value>,
    /// Canonical string form of each value (`Value::canonical`), computed
    /// once at construction. Indexing and table lookups consult these forms
    /// for every attribute of every tuple they touch; caching them here
    /// removes a `format!` allocation from each of those touches.
    canonical: Vec<Box<str>>,
    pub_time: Timestamp,
    /// A network-unique sequence number assigned at insertion, used only to
    /// tell apart equal-content tuples in tests and the oracle.
    seq: u64,
}

// `canonical` is a pure function of `values`, so equality ignores it.
impl PartialEq for Tuple {
    fn eq(&self, other: &Self) -> bool {
        self.schema == other.schema
            && self.values == other.values
            && self.pub_time == other.pub_time
            && self.seq == other.seq
    }
}

impl Eq for Tuple {}

impl Tuple {
    /// Creates a tuple, validating arity and types against the schema.
    pub fn new(
        schema: Arc<RelationSchema>,
        values: Vec<Value>,
        pub_time: Timestamp,
        seq: u64,
    ) -> Result<Self> {
        if values.len() != schema.arity() {
            return Err(RelationalError::SchemaMismatch {
                relation: schema.name().to_string(),
                detail: format!("expected {} values, got {}", schema.arity(), values.len()),
            });
        }
        for (v, a) in values.iter().zip(schema.attributes()) {
            if v.data_type() != a.ty {
                return Err(RelationalError::SchemaMismatch {
                    relation: schema.name().to_string(),
                    detail: format!(
                        "attribute {} expects {}, got {}",
                        a.name,
                        a.ty,
                        v.data_type()
                    ),
                });
            }
        }
        let canonical = values
            .iter()
            .map(|v| v.canonical().into_boxed_str())
            .collect();
        Ok(Tuple {
            schema,
            values,
            canonical,
            pub_time,
            seq,
        })
    }

    /// The relation this tuple belongs to.
    #[inline]
    pub fn relation(&self) -> &str {
        self.schema.name()
    }

    /// The tuple's schema.
    #[inline]
    pub fn schema(&self) -> &Arc<RelationSchema> {
        &self.schema
    }

    /// All values in schema order.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Publication time `pubT(t)`.
    #[inline]
    pub fn pub_time(&self) -> Timestamp {
        self.pub_time
    }

    /// Network-unique sequence number.
    #[inline]
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Value of an attribute by name.
    pub fn get(&self, attr: &str) -> Result<&Value> {
        let i = self.schema.index_of(attr)?;
        Ok(&self.values[i])
    }

    /// Cached canonical form (`Value::canonical`) of the value at schema
    /// position `i`.
    #[inline]
    pub fn canonical_at(&self, i: usize) -> &str {
        &self.canonical[i]
    }

    /// Cached canonical form of an attribute's value, by name.
    pub fn canonical_of(&self, attr: &str) -> Result<&str> {
        let i = self.schema.index_of(attr)?;
        Ok(&self.canonical[i])
    }

    /// Projects the tuple onto a list of attribute names, in the given order.
    pub fn project(&self, attrs: &[String]) -> Result<Vec<Value>> {
        attrs.iter().map(|a| self.get(a).cloned()).collect()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.schema.name())?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")@{}", self.pub_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelationSchema;
    use crate::value::DataType;

    fn schema() -> Arc<RelationSchema> {
        Arc::new(RelationSchema::of("R", &[("A", DataType::Int), ("B", DataType::Str)]).unwrap())
    }

    #[test]
    fn valid_tuple_roundtrips() {
        let t = Tuple::new(
            schema(),
            vec![Value::Int(1), Value::Str("x".into())],
            Timestamp(5),
            0,
        )
        .unwrap();
        assert_eq!(t.relation(), "R");
        assert_eq!(t.get("A").unwrap(), &Value::Int(1));
        assert_eq!(t.get("B").unwrap(), &Value::Str("x".into()));
        assert_eq!(t.pub_time(), Timestamp(5));
    }

    #[test]
    fn arity_mismatch_rejected() {
        let err = Tuple::new(schema(), vec![Value::Int(1)], Timestamp(0), 0).unwrap_err();
        assert!(matches!(err, RelationalError::SchemaMismatch { .. }));
    }

    #[test]
    fn type_mismatch_rejected() {
        let err = Tuple::new(
            schema(),
            vec![Value::Str("oops".into()), Value::Str("x".into())],
            Timestamp(0),
            0,
        )
        .unwrap_err();
        assert!(matches!(err, RelationalError::SchemaMismatch { .. }));
    }

    #[test]
    fn projection_preserves_order() {
        let t = Tuple::new(
            schema(),
            vec![Value::Int(1), Value::Str("x".into())],
            Timestamp(0),
            0,
        )
        .unwrap();
        let p = t.project(&["B".to_string(), "A".to_string()]).unwrap();
        assert_eq!(p, vec![Value::Str("x".into()), Value::Int(1)]);
    }

    #[test]
    fn display_is_readable() {
        let t = Tuple::new(
            schema(),
            vec![Value::Int(1), Value::Str("x".into())],
            Timestamp(3),
            0,
        )
        .unwrap();
        assert_eq!(t.to_string(), "R(1, 'x')@t3");
    }
}
