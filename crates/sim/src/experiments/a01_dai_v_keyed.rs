//! A1 (ablation) — the keyed DAI-V variant of Section 4.5.
//!
//! The paper proposes `VIndex = Hash(Key(q) + valJC)` as a "natural
//! extension" that distributes evaluator load as well as the
//! attribute-prefixed algorithms, then rejects it: without grouping, every
//! triggered query needs its own reindex message — "approximately by a
//! factor of 250" more traffic in their 10^4-node / 10^5-query set-up.
//! This ablation reproduces the trade-off: traffic multiplies with the
//! number of co-grouped queries while the load Gini drops.

use cq_engine::{Algorithm, EngineConfig, Network, TrafficKind};
use cq_workload::{Workload, WorkloadConfig};

use super::Scale;
use crate::report::{fnum, Report};
use crate::stats;

fn run_variant(scale: Scale, keyed: bool, queries: usize) -> (f64, f64) {
    let nodes = scale.pick(128, 1024);
    let tuples = scale.pick(200, 600);
    let mut w = Workload::new(WorkloadConfig {
        domain: scale.pick(40, 400),
        seed: 21,
        ..WorkloadConfig::default()
    });
    let mut net = Network::new(
        EngineConfig::new(Algorithm::DaiV)
            .with_nodes(nodes)
            .with_dai_v_keyed(keyed)
            .with_seed(21),
        w.catalog().clone(),
    );
    // Same join condition for every query — the best case for grouping and
    // therefore the worst case for the keyed variant.
    for _ in 0..queries {
        let poser = net.random_node();
        net.pose_query_sql(poser, "SELECT R0.A0, R1.A0 FROM R0, R1 WHERE R0.A1 = R1.A1")
            .unwrap();
    }
    net.reset_metrics();
    for _ in 0..tuples {
        let rel = w.next_stream_relation();
        let vals = w.random_tuple_values();
        let from = net.random_node();
        net.insert_tuple(from, &rel, vals).unwrap();
    }
    let reindex = net.metrics().traffic(TrafficKind::Reindex).messages as f64;
    let loads: Vec<f64> = net
        .metrics()
        .loads()
        .iter()
        .map(|l| l.evaluator_filtering as f64)
        .collect();
    (reindex, stats::gini(&loads))
}

/// Runs the ablation.
pub fn run(scale: Scale) -> Report {
    let sweep: Vec<usize> = scale.pick(vec![10, 40, 160], vec![100, 500, 2500]);
    let mut report = Report::new(
        "A1",
        "ablation: DAI-V vs keyed DAI-V (Hash(Key(q)+valJC))",
        &[
            "queries",
            "reindex msgs",
            "keyed reindex",
            "traffic ×",
            "gini",
            "keyed gini",
        ],
    );
    for &q in &sweep {
        let (base_msgs, base_gini) = run_variant(scale, false, q);
        let (keyed_msgs, keyed_gini) = run_variant(scale, true, q);
        report.row(vec![
            q.to_string(),
            fnum(base_msgs),
            fnum(keyed_msgs),
            fnum(keyed_msgs / base_msgs.max(1.0)),
            fnum(base_gini),
            fnum(keyed_gini),
        ]);
    }
    report.note("paper: the keyed variant multiplied traffic ~250× at 10^5 queries; grouping wins");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyed_variant_multiplies_traffic_and_flattens_load() {
        let r = run(Scale::Quick);
        let last: Vec<f64> = r
            .to_csv()
            .lines()
            .last()
            .unwrap()
            .split(',')
            .skip(1)
            .map(|c| c.parse().unwrap())
            .collect();
        let (base, keyed, factor, gini, keyed_gini) = (last[0], last[1], last[2], last[3], last[4]);
        assert!(keyed > base, "keyed {keyed} must exceed grouped {base}");
        assert!(
            factor > 10.0,
            "traffic blow-up must be dramatic, got ×{factor}"
        );
        assert!(
            keyed_gini < gini,
            "keyed variant must distribute load better"
        );
    }
}
