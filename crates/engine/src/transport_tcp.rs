//! Real-socket transport backend: framed TCP over `std::net` loopback.
//!
//! One listener per node slot, lazily established persistent stream pairs,
//! and every [`Message`] serialized through [`crate::wire`] on send and
//! decoded back off the socket before dispatch. The backend keeps a
//! userspace FIFO of *envelopes* (sender, receiver, target, trace fields) in
//! exact enqueue order while only the message payload crosses the wire;
//! because TCP preserves per-connection order and the FIFO fixes the global
//! order, a run over sockets dispatches the identical message sequence as
//! the in-memory simulator at the same seed — delivered sets and metrics
//! match by construction.
//!
//! Failure model: `enqueue` must be infallible (transport contract), so a
//! send that fails after one reconnect attempt parks the error and
//! [`Transport::next_delivery`] surfaces it as a typed
//! [`EngineError::Protocol`]. The fault-injection pipe is a simulator
//! construct and is never installed here.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};

use cq_fasthash::FxHashMap;

use crate::error::{EngineError, Result};
use crate::faults::FaultPipe;
use crate::messages::Message;
use crate::transport::{Pending, Transport};
use crate::wire;

use cq_relational::Catalog;

/// The queued metadata for one in-flight message: everything [`Pending`]
/// carries except the payload, which is on the wire.
struct Envelope {
    from: cq_overlay::NodeHandle,
    to: cq_overlay::NodeHandle,
    target: cq_overlay::Id,
    reroute: bool,
    trace_id: Option<crate::faults::MsgId>,
    trace_path: Option<Vec<u32>>,
}

/// Maps an I/O failure into the transport's typed protocol error.
fn io_err(context: &str, e: std::io::Error) -> EngineError {
    EngineError::Protocol {
        detail: format!("tcp transport: {context}: {e}"),
    }
}

/// The TCP loopback backend. See the module docs for the ordering and
/// failure model.
pub(crate) struct TcpTransport {
    /// Schemas for decoding tuples read back off the wire.
    catalog: Catalog,
    /// One listener per node slot, bound on `127.0.0.1:0`.
    listeners: Vec<TcpListener>,
    /// The bound address of each slot's listener.
    addrs: Vec<SocketAddr>,
    /// Established outgoing streams, keyed `(sender, receiver)`.
    out: FxHashMap<(u32, u32), TcpStream>,
    /// Accepted incoming streams, keyed `(receiver, sender)`.
    incoming: FxHashMap<(u32, u32), TcpStream>,
    /// Envelope metadata in network-global FIFO order.
    queue: VecDeque<Envelope>,
    /// A send failure parked until the next `next_delivery` call.
    deferred: Option<EngineError>,
    /// Exact frame bytes written per message kind ([`Message::KINDS`] order).
    bytes_sent: [u64; 11],
    /// Reusable encode buffer.
    wbuf: Vec<u8>,
    /// Reusable decode buffer.
    rbuf: Vec<u8>,
}

impl TcpTransport {
    /// Binds one loopback listener per node slot.
    pub(crate) fn bind(slots: usize, catalog: Catalog) -> Result<Self> {
        let mut listeners = Vec::with_capacity(slots);
        let mut addrs = Vec::with_capacity(slots);
        for slot in 0..slots {
            let listener = TcpListener::bind(("127.0.0.1", 0))
                .map_err(|e| io_err(&format!("bind listener for node {slot}"), e))?;
            addrs.push(
                listener
                    .local_addr()
                    .map_err(|e| io_err(&format!("local addr for node {slot}"), e))?,
            );
            listeners.push(listener);
        }
        Ok(TcpTransport {
            catalog,
            listeners,
            addrs,
            out: FxHashMap::default(),
            incoming: FxHashMap::default(),
            queue: VecDeque::new(),
            deferred: None,
            bytes_sent: [0; 11],
            wbuf: Vec::new(),
            rbuf: Vec::new(),
        })
    }

    /// Opens a stream to `addr` and identifies the sender with a 4-byte
    /// hello so the acceptor can key the connection.
    fn connect(addr: SocketAddr, from: u32) -> std::io::Result<TcpStream> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.write_all(&from.to_le_bytes())?;
        Ok(stream)
    }

    /// Writes one frame on the `(from → to)` stream, reconnecting once if
    /// the cached stream broke.
    fn write_frame(&mut self, from: u32, to: u32, frame: &[u8]) -> std::io::Result<()> {
        if let Some(stream) = self.out.get_mut(&(from, to)) {
            if stream.write_all(frame).is_ok() {
                return Ok(());
            }
            self.out.remove(&(from, to));
        }
        let mut stream = Self::connect(self.addrs[to as usize], from)?;
        stream.write_all(frame)?;
        self.out.insert((from, to), stream);
        Ok(())
    }

    /// Accepts connections on `to`'s listener until the `(to, from)` pair
    /// is registered. Safe to block: the frame this read is for was already
    /// written, so the connection is established or in the backlog.
    fn ensure_incoming(&mut self, to: u32, from: u32) -> Result<()> {
        while !self.incoming.contains_key(&(to, from)) {
            let (mut stream, _) = self.listeners[to as usize]
                .accept()
                .map_err(|e| io_err(&format!("accept at node {to}"), e))?;
            let mut hello = [0u8; 4];
            stream
                .read_exact(&mut hello)
                .map_err(|e| io_err(&format!("read hello at node {to}"), e))?;
            self.incoming
                .insert((to, u32::from_le_bytes(hello)), stream);
        }
        Ok(())
    }

    /// Reads and decodes the next frame on the `(to, from)` stream. A read
    /// failure (the sender reconnected mid-stream) drops the stale stream
    /// and accepts its replacement once.
    fn read_message(&mut self, to: u32, from: u32) -> Result<Message> {
        let mut rbuf = std::mem::take(&mut self.rbuf);
        let mut attempts = 0;
        let res = loop {
            attempts += 1;
            if let Err(e) = self.ensure_incoming(to, from) {
                break Err(e);
            }
            // Invariant: ensure_incoming registered the pair above.
            let stream = self.incoming.get_mut(&(to, from)).expect("pair ensured");
            match read_frame(stream, &mut rbuf) {
                Ok(()) => {
                    break wire::decode_message(&rbuf, &self.catalog).map(|(msg, _)| msg);
                }
                Err(e) if attempts < 2 => {
                    self.incoming.remove(&(to, from));
                    let _ = e;
                }
                Err(e) => break Err(io_err(&format!("read frame {from}→{to}"), e)),
            }
        };
        self.rbuf = rbuf;
        res
    }
}

/// Reads one full frame (length prefix included) into `buf`.
fn read_frame(stream: &mut TcpStream, buf: &mut Vec<u8>) -> std::io::Result<()> {
    let mut prefix = [0u8; 4];
    stream.read_exact(&mut prefix)?;
    let framed = u32::from_le_bytes(prefix);
    if framed == 0 || framed > wire::MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {framed} outside (0, {}]", wire::MAX_FRAME),
        ));
    }
    buf.clear();
    buf.resize(4 + framed as usize, 0);
    buf[..4].copy_from_slice(&prefix);
    stream.read_exact(&mut buf[4..])
}

impl Transport for TcpTransport {
    fn enqueue(&mut self, p: Pending) {
        if self.deferred.is_some() {
            return; // the transport already failed; the error surfaces first
        }
        let Pending {
            from,
            to,
            target,
            reroute,
            msg,
            trace_id,
            trace_path,
        } = p;
        let mut wbuf = std::mem::take(&mut self.wbuf);
        wbuf.clear();
        wire::encode_message(&msg, &mut wbuf);
        self.bytes_sent[msg.kind_index()] += wbuf.len() as u64;
        let res = self.write_frame(from.index() as u32, to.index() as u32, &wbuf);
        self.wbuf = wbuf;
        match res {
            Ok(()) => self.queue.push_back(Envelope {
                from,
                to,
                target,
                reroute,
                trace_id,
                trace_path,
            }),
            Err(e) => {
                let context = format!("send {}→{}", from.index(), to.index());
                self.deferred = Some(io_err(&context, e));
            }
        }
    }

    fn next_delivery(&mut self) -> Result<Option<Pending>> {
        if let Some(e) = self.deferred.take() {
            return Err(e);
        }
        let Some(env) = self.queue.pop_front() else {
            return Ok(None);
        };
        let msg = self.read_message(env.to.index() as u32, env.from.index() as u32)?;
        Ok(Some(Pending {
            from: env.from,
            to: env.to,
            target: env.target,
            reroute: env.reroute,
            msg,
            trace_id: env.trace_id,
            trace_path: env.trace_path,
        }))
    }

    fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.deferred.is_none()
    }

    fn take_pipe(&mut self) -> Option<Box<FaultPipe>> {
        None
    }

    fn restore_pipe(&mut self, _pipe: Box<FaultPipe>) {
        unreachable!("the TCP transport never hands out a fault pipe");
    }

    fn has_pipe(&self) -> bool {
        false
    }

    fn take_wire_bytes(&mut self) -> Option<[u64; 11]> {
        Some(std::mem::take(&mut self.bytes_sent))
    }
}
