//! Allocation + throughput audit of the join-evaluation kernels.
//!
//! Prints one JSON object to stdout with, per kernel and table size, the
//! events measured, ns/event, events/sec and — when built with
//! `--features count-allocs` — heap allocations per event. The audit's
//! point is the *slope*: each scan kernel is measured at two table sizes an
//! order of magnitude apart, and a zero-clone kernel shows (near-)constant
//! allocations per event while a clone-collect kernel grows linearly with
//! the candidate count. `scripts/bench_snapshot.sh` folds the output into
//! `BENCH_6.json` and enforces the flat-slope check.
//!
//! Usage: `alloc_audit [--quick]` (`--quick` shrinks event counts for CI).

use std::sync::Arc;
use std::time::Instant;

use cq_bench::alloc_count;
use cq_engine::tables::{Alqt, StoredQuery, StoredRewritten, StoredTuple, Vlqt, Vltt};
use cq_engine::{Algorithm, EngineConfig, Matches, Network};
use cq_overlay::Id;
use cq_relational::{
    parse_query, Catalog, DataType, QueryKey, QueryRef, RelationSchema, RewrittenQuery, Side,
    Timestamp, Tuple, Value,
};

#[cfg(feature = "count-allocs")]
#[global_allocator]
static ALLOC: alloc_count::CountingAlloc = alloc_count::CountingAlloc;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(RelationSchema::of("R", &[("A", DataType::Int), ("B", DataType::Int)]).unwrap())
        .unwrap();
    c.register(RelationSchema::of("S", &[("C", DataType::Int), ("D", DataType::Int)]).unwrap())
        .unwrap();
    c
}

fn query(cat: &Catalog, n: u64) -> QueryRef {
    Arc::new(
        parse_query("SELECT R.A, S.D FROM R, S WHERE R.B = S.C", cat)
            .unwrap()
            .into_query(QueryKey::derive("bench", n), "bench", Timestamp(0), cat)
            .unwrap(),
    )
}

fn r_tuple(cat: &Catalog, a: i64, b: i64) -> Tuple {
    Tuple::new(
        cat.get("R").unwrap().clone(),
        vec![Value::Int(a), Value::Int(b)],
        Timestamp(1),
        a as u64,
    )
    .unwrap()
}

fn s_tuple(cat: &Catalog, c: i64, d: i64) -> Arc<Tuple> {
    Arc::new(
        Tuple::new(
            cat.get("S").unwrap().clone(),
            vec![Value::Int(c), Value::Int(d)],
            Timestamp(1),
            d as u64,
        )
        .unwrap(),
    )
}

/// One measured result row.
struct Row {
    kernel: &'static str,
    size: usize,
    events: u64,
    ns_per_event: f64,
    events_per_sec: f64,
    allocs_per_event: Option<f64>,
}

/// Times `events` iterations of `f`, counting allocations around the loop.
fn measure(kernel: &'static str, size: usize, events: u64, mut f: impl FnMut()) -> Row {
    // warm-up: fault in lazily allocated structures outside the window
    for _ in 0..events.min(100) {
        f();
    }
    let a0 = alloc_count::allocations();
    let t0 = Instant::now();
    for _ in 0..events {
        f();
    }
    let dt = t0.elapsed();
    let allocs = alloc_count::allocations() - a0;
    let ns = dt.as_nanos() as f64 / events as f64;
    Row {
        kernel,
        size,
        events,
        ns_per_event: ns,
        events_per_sec: 1e9 / ns,
        allocs_per_event: cfg!(feature = "count-allocs").then(|| allocs as f64 / events as f64),
    }
}

/// `match_against_vltt`'s inner loop: scan stored tuples under one value
/// key, test the rewritten query, accumulate counts.
fn audit_vltt_scan(cat: &Catalog, size: usize, events: u64) -> Row {
    let q = query(cat, 0);
    let rq = RewrittenQuery::rewrite_attribute(&q, Side::Left, "B", "C", &r_tuple(cat, 1, 7))
        .unwrap()
        .unwrap();
    let mut vltt = Vltt::new();
    for i in 0..size as i64 {
        vltt.insert(StoredTuple {
            index_id: Id(i as u64),
            attr: "C".to_string(),
            tuple: s_tuple(cat, 7, i),
        })
        .unwrap();
    }
    measure("vltt-scan", size, events, || {
        let mut matches = Matches::new(false);
        for e in vltt.candidates("S", "C", "i:7") {
            if rq.matches(&e.tuple).unwrap() {
                matches.add(&rq, &e.tuple).unwrap();
            }
        }
        assert_eq!(matches.len(), size as u64);
    })
}

/// `match_vlqt_candidates`' inner loop: scan stored rewritten queries under
/// one value key, test the arriving tuple.
fn audit_vlqt_scan(cat: &Catalog, size: usize, events: u64) -> Row {
    let tuple = s_tuple(cat, 7, 99);
    let mut vlqt = Vlqt::new();
    for i in 0..size as u64 {
        let q = query(cat, i);
        let rq = RewrittenQuery::rewrite_attribute(&q, Side::Left, "B", "C", &r_tuple(cat, 1, 7))
            .unwrap()
            .unwrap();
        vlqt.insert(StoredRewritten {
            index_id: Id(i),
            rq,
        })
        .unwrap();
    }
    measure("vlqt-scan", size, events, || {
        let mut matches = Matches::new(false);
        for e in vlqt.candidates("S", "C", "i:7") {
            if e.rq.matches(&tuple).unwrap() {
                matches.add(&e.rq, &tuple).unwrap();
            }
        }
        assert_eq!(matches.len(), size as u64);
    })
}

/// The rewriter's triggered-group scan (`t1_tuple_arrival` / DAI-V tuple
/// arrival): iterate ALQT groups in place with borrowed group keys,
/// filtering by index identifier and attribute. Pure iteration — must be
/// allocation-free.
fn audit_alqt_scan(cat: &Catalog, size: usize, events: u64) -> Row {
    let mut alqt = Alqt::new();
    for i in 0..size as u64 {
        alqt.insert(StoredQuery {
            index_id: Id(7),
            query: query(cat, i),
            index_side: Side::Left,
            index_attr: "B".to_string(),
        });
    }
    measure("alqt-scan", size, events, || {
        let mut checks = 0u64;
        for (group, stored) in alqt.groups("R", "B") {
            for sq in stored {
                if sq.index_id != Id(7) {
                    continue;
                }
                checks += 1;
                if sq.index_attr != "B" {
                    continue;
                }
                std::hint::black_box(group);
            }
        }
        assert_eq!(checks, size as u64);
    })
}

/// End-to-end steady-state tuple insert (routing + rewriting + matching +
/// delivery) — the trajectory number future PRs compare against. Allocations
/// here are *not* expected to be flat in the query count (each extra match
/// legitimately produces notification work); the scan kernels above isolate
/// the allocation-free parts.
fn audit_insert_e2e(size: usize, events: u64, batch: bool) -> Row {
    let mut net = Network::new(
        EngineConfig::new(Algorithm::Sai)
            .with_nodes(256)
            .with_seed(7)
            .with_batch_delivery(batch),
        catalog(),
    );
    let sql = "SELECT R.A, S.D FROM R, S WHERE R.B = S.C";
    for i in 0..size {
        let poser = net.node_at(i % 256);
        net.pose_query_sql(poser, sql).unwrap();
    }
    let mut i = 0i64;
    let kernel = if batch {
        "insert-e2e-bundled"
    } else {
        "insert-e2e-per-message"
    };
    measure(kernel, size, events, move || {
        i += 1;
        let from = net.node_at((i as usize) % 256);
        let (rel, values) = if i % 2 == 0 {
            ("R", vec![Value::Int(i), Value::Int(i % 32)])
        } else {
            ("S", vec![Value::Int(i % 32), Value::Int(i)])
        };
        net.insert_tuple(from, rel, values).unwrap();
    })
}

/// The socket hot path in isolation: one frame pumped per event through a
/// loopback [`cq_engine::frames::FrameConn`] pair — encoded in place at the write queue's
/// tail, flushed with a vectored write, read back through the pooled-buffer
/// path, and the buffer recycled. After the warm-up primes the write
/// segments, the read chunk, and the pool, the steady state must be
/// allocation-free end to end (`size` is the frame payload in bytes).
fn audit_socket_pump(size: usize, events: u64) -> Row {
    use cq_engine::frames::{BufPool, FrameConn, RawFrame};
    use std::net::{TcpListener, TcpStream};

    let listener = TcpListener::bind(("127.0.0.1", 0)).expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let client = TcpStream::connect(addr).expect("connect");
    let (server, _) = listener.accept().expect("accept");
    let mut tx = FrameConn::new(client, cq_engine::wire::MAX_FRAME).expect("tx conn");
    let mut rx = FrameConn::new(server, cq_engine::wire::MAX_FRAME).expect("rx conn");
    let payload = vec![0xA5u8; size];
    let mut pool = BufPool::new();
    let mut out: Vec<RawFrame> = Vec::new();
    let mut seq = 0u64;
    measure("socket-pump", size, events, move || {
        tx.append_frame_with(seq, |buf| {
            buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            buf.extend_from_slice(&payload);
        });
        seq += 1;
        while tx.wants_write() {
            tx.flush().expect("flush");
        }
        while out.is_empty() {
            rx.read_frames(&mut out, &mut pool).expect("read");
        }
        for (_, buf) in out.drain(..) {
            pool.put(buf);
        }
    })
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let cat = catalog();
    let (scan_events, e2e_events) = if quick { (200, 200) } else { (2_000, 5_000) };
    let rows = [
        audit_vltt_scan(&cat, 1_000, scan_events),
        audit_vltt_scan(&cat, 10_000, scan_events.max(200) / 10),
        audit_vlqt_scan(&cat, 1_000, scan_events),
        audit_vlqt_scan(&cat, 10_000, scan_events.max(200) / 10),
        audit_alqt_scan(&cat, 50, scan_events),
        audit_alqt_scan(&cat, 500, scan_events),
        audit_insert_e2e(50, e2e_events, true),
        audit_insert_e2e(50, e2e_events, false),
        audit_socket_pump(256, e2e_events),
    ];
    println!("{{");
    println!("  \"count_allocs\": {},", cfg!(feature = "count-allocs"));
    println!("  \"kernels\": [");
    for (i, r) in rows.iter().enumerate() {
        let allocs = r
            .allocs_per_event
            .map_or("null".to_string(), |a| format!("{a:.2}"));
        let comma = if i + 1 < rows.len() { "," } else { "" };
        println!(
            "    {{\"kernel\": \"{}\", \"size\": {}, \"events\": {}, \
             \"ns_per_event\": {:.1}, \"events_per_sec\": {:.0}, \
             \"allocs_per_event\": {}}}{}",
            r.kernel, r.size, r.events, r.ns_per_event, r.events_per_sec, allocs, comma
        );
    }
    println!("  ]");
    println!("}}");
}
