//! The structured tracing layer observed end to end: JSONL round-trips,
//! causal ordering invariants, and DAI-V's two-phase value-hop path
//! reconstructed event by event from the trace alone.

use std::sync::Arc;

use cq_engine::{
    Algorithm, BinarySummarySink, EngineConfig, FaultConfig, JsonlSink, Network, RingBufferSink,
    TeeSink, TraceEvent,
};
use cq_relational::{Catalog, DataType, RelationSchema, Value};

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(RelationSchema::of("R", &[("A", DataType::Int), ("B", DataType::Int)]).unwrap())
        .unwrap();
    c.register(RelationSchema::of("S", &[("D", DataType::Int), ("E", DataType::Int)]).unwrap())
        .unwrap();
    c
}

fn stream(net: &mut Network) {
    let a = net.node_at(0);
    net.pose_query_sql(a, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
        .unwrap();
    for i in 0..8i64 {
        net.insert_tuple(
            net.node_at((i % 16) as usize),
            "R",
            vec![Value::Int(i), Value::Int(i % 3)],
        )
        .unwrap();
        net.insert_tuple(
            net.node_at(((i + 5) % 16) as usize),
            "S",
            vec![Value::Int(i), Value::Int(i % 2)],
        )
        .unwrap();
    }
}

/// Stream-order invariants every trace must satisfy: a message is sent
/// before it is delivered (per `MsgId`), and notifications are only ever
/// delivered after join evaluations produced at least that many matches.
fn check_ordering(events: &[TraceEvent], context: &str) {
    let mut sent = std::collections::HashSet::new();
    let mut matches_so_far = 0u64;
    let mut delivered_so_far = 0u64;
    let mut notify_events = 0u64;
    for ev in events {
        match ev {
            TraceEvent::MsgSend { id, .. } => {
                sent.insert(*id);
            }
            TraceEvent::MsgDeliver { id, .. } => {
                assert!(sent.contains(id), "{context}: deliver of unsent {id:?}");
            }
            TraceEvent::JoinEval { matches, .. } => matches_so_far += matches,
            TraceEvent::NotifyDelivered { count, .. } => {
                delivered_so_far += count;
                notify_events += 1;
                assert!(
                    delivered_so_far <= matches_so_far,
                    "{context}: {delivered_so_far} notifications delivered but only \
                     {matches_so_far} join matches produced so far — delivery without \
                     a causal join event"
                );
            }
            _ => {}
        }
    }
    assert!(
        notify_events > 0,
        "{context}: workload must deliver matches"
    );
}

#[test]
fn ordering_invariants_hold_for_every_algorithm_under_faults() {
    for alg in Algorithm::ALL {
        let ring = Arc::new(RingBufferSink::new(1 << 20));
        let mut net = Network::new(
            EngineConfig::new(alg)
                .with_nodes(16)
                .with_seed(7)
                .with_fault(FaultConfig::lossy(0.15, 99)),
            catalog(),
        );
        net.set_tracer(ring.clone());
        stream(&mut net);
        let events = ring.events();
        assert!(
            events.iter().any(|e| e.kind() == "fault-drop"),
            "{alg}: the lossy profile must surface fault decisions in the trace"
        );
        check_ordering(&events, &format!("{alg} lossy"));
    }
}

#[test]
fn jsonl_file_round_trips_the_in_memory_event_stream() {
    let path =
        std::env::temp_dir().join(format!("cq-trace-roundtrip-{}.jsonl", std::process::id()));
    let ring = Arc::new(RingBufferSink::new(1 << 20));
    let jsonl = Arc::new(JsonlSink::create(&path).unwrap());
    let mut net = Network::new(
        EngineConfig::new(Algorithm::DaiQ)
            .with_nodes(16)
            .with_seed(7)
            .with_fault(FaultConfig::lossy(0.15, 99)),
        catalog(),
    );
    net.set_tracer(Arc::new(TeeSink::new(vec![ring.clone(), jsonl.clone()])));
    stream(&mut net);
    jsonl.flush().unwrap();

    let text = std::fs::read_to_string(&path).unwrap();
    let parsed: Vec<TraceEvent> = text
        .lines()
        .map(|line| {
            TraceEvent::parse_jsonl(line)
                .unwrap_or_else(|| panic!("unparseable trace line: {line}"))
        })
        .collect();
    std::fs::remove_file(&path).ok();

    // The file is a faithful serialization: parsing it back yields exactly
    // the events the in-memory sink saw, in order.
    assert_eq!(parsed, ring.events());
    check_ordering(&parsed, "parsed JSONL");
}

#[test]
fn binary_trace_dumps_back_to_byte_identical_jsonl() {
    // The same run streams into a JSONL sink and the buffered binary sink;
    // converting the binary file the way `trace_dump` does (decode each
    // wire frame, re-serialize with `to_jsonl`) must reproduce the JSONL
    // file byte for byte — the writer's batching is invisible on disk.
    let pid = std::process::id();
    let jsonl_path = std::env::temp_dir().join(format!("cq-trace-bin-rt-{pid}.jsonl"));
    let bin_path = std::env::temp_dir().join(format!("cq-trace-bin-rt-{pid}.trace"));
    let jsonl = Arc::new(JsonlSink::create(&jsonl_path).unwrap());
    let binary = Arc::new(BinarySummarySink::create(&bin_path).unwrap());
    let mut net = Network::new(
        EngineConfig::new(Algorithm::DaiQ)
            .with_nodes(16)
            .with_seed(7)
            .with_fault(FaultConfig::lossy(0.15, 99)),
        catalog(),
    );
    net.set_tracer(Arc::new(TeeSink::new(vec![jsonl.clone(), binary.clone()])));
    stream(&mut net);
    jsonl.flush().unwrap();
    binary.flush().unwrap();

    let expected = std::fs::read_to_string(&jsonl_path).unwrap();
    let bytes = std::fs::read(&bin_path).unwrap();
    std::fs::remove_file(&jsonl_path).ok();
    std::fs::remove_file(&bin_path).ok();
    assert!(!bytes.is_empty(), "binary trace must not be empty");

    let mut dumped = String::with_capacity(expected.len());
    let mut pos = 0usize;
    while pos < bytes.len() {
        let (ev, used) = cq_engine::wire::decode_trace_event(&bytes[pos..])
            .unwrap_or_else(|e| panic!("bad frame at byte {pos}: {e}"));
        pos += used;
        ev.to_jsonl(&mut dumped);
        dumped.push('\n');
    }
    assert!(
        dumped == expected,
        "binary round-trip diverged from the JSONL file"
    );
}

#[test]
fn dai_v_two_phase_value_hop_path_is_visible_event_by_event() {
    // DAI-V ships a tuple to its attribute rewriter first (phase 1,
    // `al-index`), which rewrites to a value target and forwards a combined
    // `join-v` message to the evaluator (phase 2). The trace must show the
    // full causal chain: al-index deliver at X → join-v send *from* X with
    // its hop path → join-v deliver at Y → join evaluation at Y → and once
    // the other side arrives, a matched evaluation followed by an online
    // notification.
    let ring = Arc::new(RingBufferSink::new(1 << 20));
    let mut net = Network::new(
        EngineConfig::new(Algorithm::DaiV)
            .with_nodes(16)
            .with_seed(7),
        catalog(),
    );
    net.set_tracer(ring.clone());
    let a = net.node_at(0);
    net.pose_query_sql(a, "SELECT R.A, S.D FROM R, S WHERE R.B = S.E")
        .unwrap();
    net.insert_tuple(net.node_at(3), "R", vec![Value::Int(1), Value::Int(7)])
        .unwrap();
    net.insert_tuple(net.node_at(9), "S", vec![Value::Int(2), Value::Int(7)])
        .unwrap();
    let events = ring.events();

    // Phase 1 → phase 2 hand-off: every join-v send originates at a node
    // that previously received an al-index message (the rewriter), and its
    // captured path starts at the rewriter and ends at the resolved
    // evaluator.
    let join_v_sends: Vec<_> = events
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e, TraceEvent::MsgSend { kind: "join-v", .. }))
        .collect();
    assert_eq!(
        join_v_sends.len(),
        2,
        "one value-hop per inserted tuple: {events:#?}"
    );
    for (pos, ev) in &join_v_sends {
        let TraceEvent::MsgSend {
            node, id, to, path, ..
        } = ev
        else {
            unreachable!()
        };
        assert!(
            events[..*pos].iter().any(
                |e| matches!(e, TraceEvent::MsgDeliver { kind: "al-index", node: n, .. } if n == node)
            ),
            "join-v sender {node} must have received an al-index message first"
        );
        assert_eq!(id.0, *node, "MsgId encodes the sending slot");
        let path = path.as_ref().expect("unicast sends capture their route");
        assert_eq!(path.first(), Some(node), "path starts at the rewriter");
        assert_eq!(path.last(), Some(to), "path ends at the evaluator");
    }

    // Delivery of a join-v is immediately followed by the evaluation it
    // triggers, on the same node (the handler runs synchronously).
    let mut evals = Vec::new();
    for (i, ev) in events.iter().enumerate() {
        if let TraceEvent::MsgDeliver {
            kind: "join-v",
            node,
            ..
        } = ev
        {
            match events.get(i + 1) {
                Some(TraceEvent::JoinEval {
                    node: n,
                    candidates,
                    matches,
                    ..
                }) => {
                    assert_eq!(n, node, "evaluation happens at the delivery node");
                    evals.push((*candidates, *matches));
                }
                other => panic!("join-v deliver not followed by JoinEval: {other:?}"),
            }
            // The evaluator stores the triggering tuple after matching.
            assert!(
                matches!(
                    events.get(i + 2),
                    Some(TraceEvent::IndexInsert {
                        table: "vstore",
                        ..
                    })
                ),
                "evaluator must store the tuple in its value store"
            );
        }
    }
    // First tuple finds an empty store; the second matches it.
    assert_eq!(evals, vec![(0, 0), (1, 1)]);

    // The match reaches the subscriber online, exactly once.
    let delivered: Vec<_> = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::NotifyDelivered { .. }))
        .collect();
    assert_eq!(
        delivered,
        vec![&TraceEvent::NotifyDelivered {
            tick: delivered.first().map(|e| e.tick()).unwrap_or_default(),
            node: a.index() as u32,
            count: 1,
            offline: false,
        }]
    );
    check_ordering(&events, "DAI-V two-phase");
}
