//! The simulated continuous-query network: Chord ring + per-node protocol
//! state + the four evaluation algorithms of Chapter 4.
//!
//! External events (posing a query, inserting a tuple) enqueue protocol
//! messages that are processed FIFO until the network is quiescent; routing
//! walks the real finger tables so hop counts are faithful.

use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

use cq_fasthash::FxHashMap;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cq_overlay::{Id, NodeHandle, Ring};
use cq_relational::{
    parse_query, Catalog, JoinQuery, Notification, QueryKey, QueryRef, QueryType, RewrittenQuery,
    Side, Timestamp, Tuple, Value,
};

use crate::config::{Algorithm, EngineConfig, IndexStrategy};
use crate::error::{EngineError, Result};
use crate::faults::{Delivery, FaultPipe, MsgId};
use crate::indexing;
use crate::jfrt::JfrtLookup;
use crate::messages::Message;
use crate::metrics::{Metrics, TrafficKind};
use crate::node::NodeState;
use crate::replication::ReplicaItem;
use crate::tables::{StoredQuery, StoredRewritten, StoredTuple, StoredValueTuple};

/// One enqueued protocol message: the payload plus the transport envelope
/// the reliable-delivery layer needs (sender, resolved receiver, target
/// identifier, and whether retransmissions re-route by identifier).
struct Pending {
    /// Sending node (retransmissions originate here).
    from: NodeHandle,
    /// Resolved receiver.
    to: NodeHandle,
    /// The identifier the message was addressed to.
    target: Id,
    /// `true` for identifier-routed messages (retransmissions re-resolve the
    /// owner), `false` for node-addressed ones (direct notifications,
    /// replicas) which die with their receiver.
    reroute: bool,
    /// The payload.
    msg: Message,
}

/// The whole simulated network.
pub struct Network {
    config: EngineConfig,
    catalog: Catalog,
    ring: Ring,
    nodes: Vec<NodeState>,
    metrics: Metrics,
    clock: Timestamp,
    seq: u64,
    rng: StdRng,
    pending: VecDeque<Pending>,
    /// The fault-injection + reliable-delivery pipe; `None` when message
    /// delivery is perfect (the default), in which case [`Network::pending`]
    /// is drained FIFO exactly as the original engine did.
    pipe: Option<Box<FaultPipe>>,
    /// `Key(n) → handle` for notification delivery.
    subscribers: FxHashMap<String, NodeHandle>,
    /// Log of every posed query (for oracles and tests).
    posed_queries: Vec<QueryRef>,
    /// Log of every inserted tuple (for oracles and tests).
    inserted_tuples: Vec<Arc<Tuple>>,
}

impl Network {
    /// Builds a stable network of `config.nodes` nodes.
    pub fn new(config: EngineConfig, catalog: Catalog) -> Self {
        let ring = Ring::build(config.space(), config.nodes, "node-");
        let slots = ring.slot_count();
        let seed = config.seed;
        let pipe = config
            .fault
            .perturbs_delivery()
            .then(|| Box::new(FaultPipe::new(config.fault.clone(), slots)));
        Network {
            config,
            catalog,
            ring,
            nodes: (0..slots).map(|_| NodeState::new()).collect(),
            metrics: Metrics::new(slots),
            clock: Timestamp(0),
            seq: 0,
            rng: StdRng::seed_from_u64(seed),
            pending: VecDeque::new(),
            pipe,
            subscribers: FxHashMap::default(),
            posed_queries: Vec::new(),
            inserted_tuples: Vec::new(),
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The schema catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The underlying Chord ring.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// Collected metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Resets load/traffic counters (e.g. after a warm-up phase).
    pub fn reset_metrics(&mut self) {
        self.metrics.reset();
    }

    /// Current logical time.
    pub fn clock(&self) -> Timestamp {
        self.clock
    }

    /// Advances the logical clock.
    pub fn advance_clock(&mut self, dt: u64) {
        self.clock = Timestamp(self.clock.0 + dt);
    }

    /// Ends a statistics time window on every node: rewriters roll their
    /// arrival counters (Section 4.3.6 keeps rates "in the last time
    /// window").
    pub fn roll_statistics_windows(&mut self) {
        for n in &mut self.nodes {
            n.roll_statistics_window();
        }
    }

    /// Number of currently alive nodes.
    pub fn alive_count(&self) -> usize {
        self.ring.len()
    }

    /// Handle of the `i`-th alive node (panics when out of range).
    pub fn node_at(&self, i: usize) -> NodeHandle {
        self.ring.alive_nodes().nth(i).expect("node index in range")
    }

    /// A pseudo-random alive node.
    pub fn random_node(&mut self) -> NodeHandle {
        let n = self.ring.len();
        let i = self.rng.gen_range(0..n);
        self.node_at(i)
    }

    /// Protocol state of a node (read-only).
    pub fn node_state(&self, h: NodeHandle) -> &NodeState {
        &self.nodes[h.index()]
    }

    /// Every query posed so far.
    pub fn posed_queries(&self) -> &[QueryRef] {
        &self.posed_queries
    }

    /// Every tuple inserted so far.
    pub fn inserted_tuples(&self) -> &[Arc<Tuple>] {
        &self.inserted_tuples
    }

    /// Notifications a node has received as a subscriber.
    pub fn inbox(&self, h: NodeHandle) -> &[Notification] {
        &self.nodes[h.index()].inbox
    }

    /// The distinct notification contents delivered anywhere in the network
    /// (inboxes plus offline stores) — the paper's set semantics.
    pub fn delivered_set(&self) -> HashSet<Notification> {
        let mut out = HashSet::new();
        for n in &self.nodes {
            out.extend(n.inbox.iter().cloned());
            out.extend(n.offline_store.iter().map(|(_, n)| n.clone()));
        }
        out
    }

    /// Per-node storage loads, indexed by node slot.
    pub fn storage_loads(&self) -> Vec<usize> {
        self.nodes.iter().map(NodeState::storage_load).collect()
    }

    // ==================================================================
    // External events
    // ==================================================================

    /// Poses a continuous query written in the supported SQL subset from
    /// `node`, returning its key.
    pub fn pose_query_sql(&mut self, node: NodeHandle, sql: &str) -> Result<QueryKey> {
        let parsed = parse_query(sql, &self.catalog)?;
        self.tick();
        let node_key = self.ring.node(node).key().to_string();
        let counter = {
            let st = &mut self.nodes[node.index()];
            let c = st.query_counter;
            st.query_counter += 1;
            c
        };
        let key = QueryKey::derive(&node_key, counter);
        let query =
            Arc::new(parsed.into_query(key.clone(), node_key, self.clock, &self.catalog)?);
        self.pose_query(node, query)?;
        Ok(key)
    }

    /// Poses an already-built continuous query from `node`.
    ///
    /// The query's `insT` is whatever the caller baked into it — unlike
    /// [`Network::pose_query_sql`], this does not advance the logical clock,
    /// so a query stamped with a past `insT` will (by the time semantics of
    /// Section 3.2) be triggered by tuples published at or after that time.
    pub fn pose_query(&mut self, node: NodeHandle, query: QueryRef) -> Result<()> {
        if !self.ring.node(node).is_alive() {
            return Err(EngineError::UnknownNode);
        }
        if query.query_type() == QueryType::T2 && self.config.algorithm != Algorithm::DaiV {
            return Err(EngineError::UnsupportedByAlgorithm {
                algorithm: self.config.algorithm,
                detail: "type-T2 queries require DAI-V (Section 4.5)".to_string(),
            });
        }
        self.subscribers
            .insert(query.subscriber().to_string(), node);
        self.posed_queries.push(Arc::clone(&query));

        // Which side(s) the query is indexed by, and under which attribute.
        let sides: Vec<Side> = if self.config.algorithm.is_double() {
            vec![Side::Left, Side::Right]
        } else {
            vec![self.choose_index_side(node, &query)?]
        };

        let space = self.ring.space();
        let k = self.config.replication;
        let mut targets: Vec<(Id, Message)> = Vec::new();
        for side in sides {
            let attr = self.pick_index_attr(&query, side);
            for id in indexing::aindex_replicas(space, query.relation(side), &attr, k) {
                targets.push((
                    id,
                    Message::IndexQuery {
                        query: Arc::clone(&query),
                        index_side: side,
                        index_attr: attr.clone(),
                        index_id: id,
                    },
                ));
            }
        }
        self.dispatch_from(node, targets, TrafficKind::QueryIndex)?;
        self.process_all()?;
        Ok(())
    }

    /// Inserts a tuple of `relation` from `node`, returning its sequence
    /// number.
    pub fn insert_tuple(
        &mut self,
        node: NodeHandle,
        relation: &str,
        values: Vec<Value>,
    ) -> Result<u64> {
        if !self.ring.node(node).is_alive() {
            return Err(EngineError::UnknownNode);
        }
        self.tick();
        let schema = self.catalog.get(relation)?.clone();
        let seq = self.seq;
        self.seq += 1;
        let tuple = Arc::new(Tuple::new(schema, values, self.clock, seq)?);
        self.inserted_tuples.push(Arc::clone(&tuple));

        let space = self.ring.space();
        let value_level = self.config.algorithm.indexes_tuples_at_value_level();
        let ids = indexing::tuple_index_ids(space, &tuple, value_level, self.config.replication);
        let mut targets: Vec<(Id, Message)> = Vec::with_capacity(ids.len() * 2);
        for (attr, ai, vi) in ids {
            targets.push((
                ai,
                Message::AlIndexTuple {
                    tuple: Arc::clone(&tuple),
                    attr: attr.clone(),
                    index_id: ai,
                },
            ));
            if let Some(vi) = vi {
                targets.push((
                    vi,
                    Message::VlIndexTuple {
                        tuple: Arc::clone(&tuple),
                        attr,
                        index_id: vi,
                    },
                ));
            }
        }
        self.dispatch_from(node, targets, TrafficKind::TupleIndex)?;
        self.process_all()?;
        Ok(seq)
    }

    /// Advances the clock by one — every external event gets a fresh
    /// timestamp, so `pubT`/`insT` comparisons are never ambiguous.
    fn tick(&mut self) {
        self.clock = Timestamp(self.clock.0 + 1);
    }

    // ==================================================================
    // Index-attribute choice (SAI, Section 4.3.6)
    // ==================================================================

    fn choose_index_side(&mut self, node: NodeHandle, query: &JoinQuery) -> Result<Side> {
        match self.config.strategy {
            IndexStrategy::Random => Ok(if self.rng.gen::<bool>() {
                Side::Left
            } else {
                Side::Right
            }),
            IndexStrategy::LowestRate => {
                let (l, r) = self.probe_rewriters(node, query)?;
                Ok(match l.0.cmp(&r.0) {
                    std::cmp::Ordering::Less => Side::Left,
                    std::cmp::Ordering::Greater => Side::Right,
                    std::cmp::Ordering::Equal => {
                        if self.rng.gen::<bool>() {
                            Side::Left
                        } else {
                            Side::Right
                        }
                    }
                })
            }
            IndexStrategy::MostDistinctValues => {
                let (l, r) = self.probe_rewriters(node, query)?;
                Ok(match l.1.cmp(&r.1) {
                    std::cmp::Ordering::Greater => Side::Left,
                    std::cmp::Ordering::Less => Side::Right,
                    std::cmp::Ordering::Equal => {
                        if self.rng.gen::<bool>() {
                            Side::Left
                        } else {
                            Side::Right
                        }
                    }
                })
            }
        }
    }

    /// Asks the two candidate rewriters for their `(count, distinct)`
    /// arrival statistics, paying the probe traffic (Section 4.3.6: "any
    /// node can simply ask the two possible rewriter nodes before indexing
    /// a query").
    fn probe_rewriters(
        &mut self,
        node: NodeHandle,
        query: &JoinQuery,
    ) -> Result<((u64, usize), (u64, usize))> {
        let space = self.ring.space();
        let mut out = [(0u64, 0usize); 2];
        for side in Side::BOTH {
            let rel = query.relation(side);
            let attr = self.pick_index_attr(query, side);
            let id = indexing::aindex_replica(space, rel, &attr, 0, self.config.replication);
            let (owner, hops) = self.ring.route_owner(node, id)?;
            // request hops + one direct response hop
            self.metrics.record_traffic(TrafficKind::Probe, hops + 1);
            out[side.idx_pub()] = self.nodes[owner.index()].arrival_stats(rel, &attr);
        }
        Ok((out[0], out[1]))
    }

    /// The attribute a query is indexed by on a given side: the join
    /// attribute for T1 queries, a pseudo-random attribute of the condition
    /// expression for T2 (Section 4.5).
    fn pick_index_attr(&mut self, query: &JoinQuery, side: Side) -> String {
        if let Some(a) = query.join_attr(side) {
            return a.to_string();
        }
        let attrs: Vec<&str> = query.condition(side).attributes().into_iter().collect();
        debug_assert!(!attrs.is_empty(), "validated at construction");
        let i = self.rng.gen_range(0..attrs.len());
        attrs[i].to_string()
    }

    // ==================================================================
    // Message transport
    // ==================================================================

    /// Sends a batch of messages from `node` using the configured multisend
    /// design, accounting traffic, and enqueues them at their owners.
    fn dispatch_from(
        &mut self,
        node: NodeHandle,
        targets: Vec<(Id, Message)>,
        kind: TrafficKind,
    ) -> Result<()> {
        if targets.is_empty() {
            return Ok(());
        }
        let ids: Vec<Id> = targets.iter().map(|(id, _)| *id).collect();
        let outcome = if self.config.recursive_multisend {
            self.ring.multisend_recursive(node, &ids)?
        } else {
            self.ring.multisend_iterative(node, &ids)?
        };
        self.metrics
            .record_traffic_batch(kind, targets.len() as u64, outcome.total_hops);
        let mut by_id: FxHashMap<Id, Vec<Message>> =
            FxHashMap::with_capacity_and_hasher(targets.len(), Default::default());
        for (id, msg) in targets {
            by_id.entry(id).or_default().push(msg);
        }
        for (owner, ids) in outcome.deliveries {
            for id in ids {
                for msg in by_id.remove(&id).into_iter().flatten() {
                    self.pending.push_back(Pending {
                        from: node,
                        to: owner,
                        target: id,
                        reroute: true,
                        msg,
                    });
                }
            }
        }
        debug_assert!(by_id.is_empty(), "every target id must be delivered");
        Ok(())
    }

    /// Sends one message from a rewriter toward a value-level identifier,
    /// consulting the JFRT when enabled (Section 4.7).
    fn send_via_jfrt(&mut self, from: NodeHandle, id: Id, msg: Message) -> Result<()> {
        let owner = if self.config.use_jfrt {
            let lookup = {
                let ring = &self.ring;
                self.nodes[from.index()]
                    .jfrt
                    .lookup(id, |h, id| ring.node(h).is_alive() && ring.owns(h, id))
            };
            match lookup {
                JfrtLookup::Hit(owner) => {
                    self.metrics.record_traffic(TrafficKind::Reindex, 1);
                    owner
                }
                JfrtLookup::Miss => {
                    let (owner, hops) = self.ring.route_owner(from, id)?;
                    self.metrics.record_traffic(TrafficKind::Reindex, hops);
                    self.nodes[from.index()].jfrt.record(id, owner);
                    owner
                }
                JfrtLookup::Stale(_) => {
                    // one wasted hop to the stale node, then ordinary routing
                    let (owner, hops) = self.ring.route_owner(from, id)?;
                    self.metrics.record_traffic(TrafficKind::Reindex, hops + 1);
                    self.nodes[from.index()].jfrt.record(id, owner);
                    owner
                }
            }
        } else {
            let (owner, hops) = self.ring.route_owner(from, id)?;
            self.metrics.record_traffic(TrafficKind::Reindex, hops);
            owner
        };
        self.pending.push_back(Pending {
            from,
            to: owner,
            target: id,
            reroute: true,
            msg,
        });
        Ok(())
    }

    /// Enqueues a node-addressed message (direct notification or replica):
    /// the receiver is known by handle, and retransmissions never re-route.
    fn push_direct(&mut self, from: NodeHandle, to: NodeHandle, msg: Message) {
        self.pending.push_back(Pending {
            from,
            to,
            target: self.ring.id_of(to),
            reroute: false,
            msg,
        });
    }

    /// Processes queued protocol messages until quiescence — through the
    /// perfect FIFO queue by default, or through the fault-injection pipe
    /// when one is configured.
    fn process_all(&mut self) -> Result<()> {
        if self.pipe.is_some() {
            let mut pipe = self.pipe.take().expect("checked above");
            let result = self.pump_faulty(&mut pipe);
            self.pipe = Some(pipe);
            result
        } else {
            while let Some(p) = self.pending.pop_front() {
                self.handle(p.to, p.msg)?;
            }
            Ok(())
        }
    }

    /// The tick-based message pump used when faults are injected: sends pass
    /// through loss/duplication/delay draws, receivers dedup on `(sender,
    /// seq)`, unacknowledged messages retransmit with exponential backoff,
    /// and abrupt node failures strike between ticks.
    fn pump_faulty(&mut self, pipe: &mut FaultPipe) -> Result<()> {
        loop {
            // Fold freshly produced sends into the pipe (handlers and
            // promotions push onto `pending`).
            while let Some(p) = self.pending.pop_front() {
                self.transmit(pipe, p);
            }
            if !pipe.busy() {
                return Ok(());
            }
            pipe.tick += 1;
            self.inject_failures(pipe)?;
            let now = pipe.tick;
            for delivery in pipe.in_flight.remove(&now).unwrap_or_default() {
                match delivery {
                    Delivery::Data { id, to, msg } => {
                        if !self.ring.node(to).is_alive() {
                            self.metrics.faults.messages_lost += 1;
                            continue;
                        }
                        if pipe.record_arrival(id, to) {
                            self.metrics.faults.dedup_suppressed += 1;
                        } else {
                            self.handle(to, msg)?;
                        }
                        // Ack every arrival (a duplicate usually means the
                        // previous ack was lost). Acks are subject to loss
                        // like any transmission.
                        if pipe.cfg.retries_enabled() {
                            if let Some(o) = pipe.outstanding.get(&id) {
                                let sender = o.from;
                                if pipe.cfg.loss_rate > 0.0
                                    && pipe.rng.gen::<f64>() < pipe.cfg.loss_rate
                                {
                                    self.metrics.faults.messages_lost += 1;
                                } else {
                                    pipe.schedule(now + 1, Delivery::Ack { id, to: sender });
                                }
                            }
                        }
                    }
                    Delivery::Ack { id, to } => {
                        // An ack addressed to a node that died in flight
                        // never closes the window; `maybe_retransmit` drops
                        // the dead sender's window on its next firing.
                        if self.ring.node(to).is_alive() {
                            pipe.outstanding.remove(&id);
                        }
                    }
                }
            }
            for id in pipe.retry_at.remove(&now).unwrap_or_default() {
                self.maybe_retransmit(pipe, id, now);
            }
        }
    }

    /// Registers one fresh send with the pipe: assigns a `(sender, seq)`
    /// identifier, opens the ack window when retries are enabled, and
    /// schedules the transmission copies through the fault draws.
    fn transmit(&mut self, pipe: &mut FaultPipe, p: Pending) {
        let id = pipe.alloc_seq(p.from);
        if pipe.cfg.retries_enabled() {
            pipe.open_window(id, &p.from, p.target, p.reroute, &p.to, &p.msg);
            pipe.schedule_retry(pipe.tick + pipe.cfg.ack_timeout, id);
        }
        self.schedule_copies(pipe, id, p.to, p.msg);
    }

    /// Draws duplication, loss and delay for one logical transmission and
    /// schedules the surviving copies.
    fn schedule_copies(&mut self, pipe: &mut FaultPipe, id: MsgId, to: NodeHandle, msg: Message) {
        let mut copies = 1u32;
        if pipe.cfg.duplicate_rate > 0.0 && pipe.rng.gen::<f64>() < pipe.cfg.duplicate_rate {
            copies = 2;
            self.metrics.faults.messages_duplicated += 1;
        }
        for _ in 0..copies {
            if pipe.cfg.loss_rate > 0.0 && pipe.rng.gen::<f64>() < pipe.cfg.loss_rate {
                self.metrics.faults.messages_lost += 1;
                continue;
            }
            let mut at = pipe.tick + 1;
            if pipe.cfg.delay_rate > 0.0
                && pipe.cfg.max_delay > 0
                && pipe.rng.gen::<f64>() < pipe.cfg.delay_rate
            {
                at += pipe.rng.gen_range(1..=pipe.cfg.max_delay);
            }
            pipe.schedule(
                at,
                Delivery::Data {
                    id,
                    to,
                    msg: msg.clone(),
                },
            );
        }
    }

    /// A retry check fired for `id`: if the message is still unacknowledged,
    /// retransmit it (re-resolving the owner for identifier-routed messages)
    /// and schedule the next check with exponential backoff.
    fn maybe_retransmit(&mut self, pipe: &mut FaultPipe, id: MsgId, now: u64) {
        let Some(mut o) = pipe.take_outstanding(id) else {
            return; // acknowledged in the meantime
        };
        if !self.ring.node(o.from).is_alive() || o.attempt >= pipe.cfg.max_retries {
            return; // sender died, or we give up
        }
        o.attempt += 1;
        let next = now + pipe.backoff(o.attempt);
        if o.reroute {
            match self.ring.route_owner(o.from, o.target) {
                Ok((owner, hops)) => {
                    o.to = owner;
                    self.metrics.faults.retransmission_hops += hops as u64;
                }
                Err(_) => {
                    // The overlay is mid-repair; keep the window open and
                    // try again after the backoff.
                    pipe.reopen_window(id, o);
                    pipe.schedule_retry(next, id);
                    return;
                }
            }
        } else {
            if !self.ring.node(o.to).is_alive() {
                return; // node-addressed and the receiver is gone
            }
            self.metrics.faults.retransmission_hops += 1;
        }
        self.metrics.faults.retransmissions += 1;
        self.schedule_copies(pipe, id, o.to, o.msg.clone());
        pipe.reopen_window(id, o);
        pipe.schedule_retry(next, id);
    }

    /// Injects scheduled and rate-driven abrupt node failures for the
    /// current tick, then repairs pointers and promotes replicas.
    fn inject_failures(&mut self, pipe: &mut FaultPipe) -> Result<()> {
        let mut failed = false;
        while pipe.sched_idx < pipe.cfg.scheduled_failures.len()
            && pipe.cfg.scheduled_failures[pipe.sched_idx] <= pipe.tick
        {
            pipe.sched_idx += 1;
            failed |= self.fail_random_alive(pipe);
        }
        if pipe.cfg.failure_rate > 0.0
            && pipe.failures_injected < pipe.cfg.max_failures
            && pipe.rng.gen::<f64>() < pipe.cfg.failure_rate
            && self.fail_random_alive(pipe)
        {
            pipe.failures_injected += 1;
            failed = true;
        }
        if failed {
            self.ring.stabilize_all(1);
            self.promote_replicas()?;
        }
        Ok(())
    }

    /// Abruptly fails one pseudo-random alive node (never the last one).
    /// Returns whether a node was failed.
    fn fail_random_alive(&mut self, pipe: &mut FaultPipe) -> bool {
        if self.ring.len() <= 1 {
            return false;
        }
        let i = pipe.rng.gen_range(0..self.ring.len());
        let victim = self.ring.alive_nodes().nth(i).expect("index in range");
        self.fail_node_state(victim).is_ok()
    }

    /// Ring-level failure plus primary/replica state loss at the victim.
    fn fail_node_state(&mut self, h: NodeHandle) -> Result<()> {
        self.ring.fail(h)?;
        let st = &mut self.nodes[h.index()];
        st.alqt.drain_all();
        st.vlqt.drain_all();
        st.vltt.drain_all();
        st.vstore.drain_all();
        st.offline_store.clear();
        st.replicas.clear();
        self.metrics.faults.nodes_failed += 1;
        Ok(())
    }

    // ==================================================================
    // Message handlers
    // ==================================================================

    fn handle(&mut self, at: NodeHandle, msg: Message) -> Result<()> {
        match msg {
            Message::IndexQuery {
                query,
                index_side,
                index_attr,
                index_id,
            } => {
                let entry = StoredQuery {
                    index_id,
                    query,
                    index_side,
                    index_attr,
                };
                if self.repl_k() > 0 {
                    if self.nodes[at.index()].alqt.insert(entry.clone()) {
                        self.replicate(at, ReplicaItem::Query(entry));
                    }
                } else {
                    self.nodes[at.index()].alqt.insert(entry);
                }
                Ok(())
            }
            Message::AlIndexTuple {
                tuple,
                attr,
                index_id,
            } => self.handle_al_tuple(at, tuple, attr, index_id),
            Message::VlIndexTuple {
                tuple,
                attr,
                index_id,
            } => self.handle_vl_tuple(at, tuple, attr, index_id),
            Message::Join { items, index_id } => self.handle_join(at, items, index_id),
            Message::JoinV {
                group,
                items,
                tuple,
                side,
                value_key,
                index_id,
            } => self.handle_join_v(at, group, items, tuple, side, value_key, index_id),
            Message::StoreNotifications {
                subscriber_id,
                notifications,
            } => {
                // Counted here — at actual offline-store arrival — not at
                // send time, so a lost message is never counted delivered.
                self.metrics.notifications_delivered += notifications.len() as u64;
                self.metrics.notifications_stored_offline += notifications.len() as u64;
                if self.repl_k() > 0 {
                    for n in &notifications {
                        self.replicate(
                            at,
                            ReplicaItem::Offline {
                                id: subscriber_id,
                                notification: n.clone(),
                            },
                        );
                    }
                }
                let store = &mut self.nodes[at.index()].offline_store;
                store.extend(notifications.into_iter().map(|n| (subscriber_id, n)));
                Ok(())
            }
            Message::Notify { notifications } => {
                // Counted here — at actual inbox arrival.
                self.metrics.notifications_delivered += notifications.len() as u64;
                self.nodes[at.index()].inbox.extend(notifications);
                Ok(())
            }
            Message::Replicate { item } => {
                self.nodes[at.index()].replicas.insert(*item);
                Ok(())
            }
        }
    }

    /// The configured k-successor replication factor.
    #[inline]
    fn repl_k(&self) -> usize {
        self.config.fault.replication
    }

    /// Mirrors one freshly inserted primary item onto `at`'s `k` first alive
    /// successors (no-op when replication is off).
    fn replicate(&mut self, at: NodeHandle, item: ReplicaItem) {
        let k = self.repl_k();
        if k == 0 {
            return;
        }
        for succ in self.ring.successors_of(at, k) {
            self.metrics.faults.replica_messages += 1;
            self.push_direct(
                at,
                succ,
                Message::Replicate {
                    item: Box::new(item.clone()),
                },
            );
        }
    }

    /// A tuple arrives at the attribute level: trigger, rewrite and reindex
    /// the stored queries (Sections 4.3.2, 4.4, 4.5).
    ///
    /// `index_id` is the (possibly replica) identifier the message was
    /// addressed to: with the Section 4.7 replication scheme, a node may
    /// host several replicas of the same rewriter role, and a tuple only
    /// triggers the queries of the replica it was routed to.
    fn handle_al_tuple(
        &mut self,
        at: NodeHandle,
        tuple: Arc<Tuple>,
        attr: String,
        index_id: Id,
    ) -> Result<()> {
        let rel = tuple.relation();
        let value_key = tuple.canonical_of(&attr)?;
        self.nodes[at.index()].record_arrival(rel, &attr, value_key);

        // Clone out the groups to decouple the borrow from the sends below,
        // keeping only the addressed replica's entries.
        let mut checks = 0u64;
        let groups: Vec<(String, Vec<StoredQuery>)> = self.nodes[at.index()]
            .alqt
            .groups(rel, &attr)
            .map(|(g, qs)| {
                let scoped: Vec<StoredQuery> = qs
                    .iter()
                    .filter(|sq| sq.index_id == index_id)
                    .cloned()
                    .collect();
                checks += scoped.len() as u64;
                (g.to_string(), scoped)
            })
            .filter(|(_, qs)| !qs.is_empty())
            .collect();
        if checks == 0 {
            return Ok(());
        }
        self.metrics.add_rewriter_filtering(at.index(), checks);

        let space = self.ring.space();
        let algorithm = self.config.algorithm;
        for (group, stored) in groups {
            if algorithm == Algorithm::DaiV {
                if self.config.dai_v_keyed {
                    // Section 4.5's keyed extension: one evaluator — and one
                    // message — per (query, valJC); no grouping possible.
                    for sq in &stored {
                        if sq.index_attr != attr {
                            continue;
                        }
                        let Some(rq) =
                            RewrittenQuery::rewrite_value(&sq.query, sq.index_side, &tuple)?
                        else {
                            continue;
                        };
                        let val = rq.target().value().clone();
                        let qkey = sq.query.key().0.clone();
                        let id = indexing::vindex_value_keyed(space, &qkey, &val);
                        let msg = Message::JoinV {
                            // matching is scoped per query under this variant
                            group: format!("K|{qkey}"),
                            items: vec![rq],
                            tuple: Arc::clone(&tuple),
                            side: sq.index_side,
                            value_key: val.canonical(),
                            index_id: id,
                        };
                        self.send_via_jfrt(at, id, msg)?;
                    }
                } else {
                    // One message per (group, valJC): rewritten queries + tuple.
                    let mut items: Vec<RewrittenQuery> = Vec::new();
                    let mut side = None;
                    let mut val = None;
                    for sq in &stored {
                        if sq.index_attr != attr {
                            continue; // stored under a different attribute bucket
                        }
                        if let Some(rq) =
                            RewrittenQuery::rewrite_value(&sq.query, sq.index_side, &tuple)?
                        {
                            side = Some(sq.index_side);
                            val = Some(rq.target().value().clone());
                            items.push(rq);
                        }
                    }
                    if let (Some(side), Some(val)) = (side, val) {
                        let id = indexing::vindex_value(space, &val);
                        let msg = Message::JoinV {
                            group: group.clone(),
                            items,
                            tuple: Arc::clone(&tuple),
                            side,
                            value_key: val.canonical(),
                            index_id: id,
                        };
                        self.send_via_jfrt(at, id, msg)?;
                    }
                }
            } else {
                // T1 algorithms: one join message per group, targeting
                // Hash(DisR + DisA + valDA) — identical for the whole group.
                let mut items: Vec<RewrittenQuery> = Vec::new();
                let mut target: Option<Id> = None;
                for sq in &stored {
                    if sq.index_attr != attr {
                        continue;
                    }
                    let dis_side = sq.index_side.other();
                    let dis_attr = sq
                        .query
                        .join_attr(dis_side)
                        .expect("T1 validated at pose time")
                        .to_string();
                    let Some(rq) = RewrittenQuery::rewrite_attribute(
                        &sq.query,
                        sq.index_side,
                        &sq.index_attr,
                        &dis_attr,
                        &tuple,
                    )?
                    else {
                        continue;
                    };
                    if algorithm == Algorithm::DaiT {
                        // Reindex each rewritten query at most once.
                        if !self.nodes[at.index()]
                            .reindexed
                            .insert(rq.key().to_string())
                        {
                            continue;
                        }
                    }
                    let id = indexing::vindex_attr(
                        space,
                        sq.query.relation(dis_side),
                        &dis_attr,
                        rq.target().value(),
                    );
                    debug_assert!(target.is_none_or(|t| t == id), "group shares one evaluator");
                    target = Some(id);
                    items.push(rq);
                }
                if let (Some(id), false) = (target, items.is_empty()) {
                    self.send_via_jfrt(
                        at,
                        id,
                        Message::Join {
                            items,
                            index_id: id,
                        },
                    )?;
                }
            }
        }
        Ok(())
    }

    /// A tuple arrives at the value level (SAI/DAI-Q/DAI-T, Section 4.3.4).
    fn handle_vl_tuple(
        &mut self,
        at: NodeHandle,
        tuple: Arc<Tuple>,
        attr: String,
        index_id: Id,
    ) -> Result<()> {
        let rel = tuple.relation();
        let value_key = tuple.canonical_of(&attr)?;
        let algorithm = self.config.algorithm;

        // SAI and DAI-T: match stored rewritten queries against the tuple.
        if matches!(algorithm, Algorithm::Sai | Algorithm::DaiT) {
            let candidates: Vec<RewrittenQuery> = self.nodes[at.index()]
                .vlqt
                .candidates(rel, &attr, value_key)
                .map(|e| e.rq.clone())
                .collect();
            self.metrics
                .add_evaluator_filtering(at.index(), candidates.len() as u64);
            let mut matches = self.new_matches();
            for rq in &candidates {
                if rq.matches(&tuple)? {
                    matches.add(rq, &tuple)?;
                }
            }
            self.deliver_matches(at, matches)?;
        }

        // SAI and DAI-Q: store the tuple for future rewritten queries.
        if matches!(algorithm, Algorithm::Sai | Algorithm::DaiQ) {
            let entry = StoredTuple {
                index_id,
                attr,
                tuple,
            };
            if self.repl_k() > 0 {
                self.nodes[at.index()].vltt.insert(entry.clone());
                self.replicate(at, ReplicaItem::Tuple(entry));
            } else {
                self.nodes[at.index()].vltt.insert(entry);
            }
        }
        Ok(())
    }

    /// A batch of rewritten queries arrives at an evaluator
    /// (SAI: Section 4.3.3; DAI-Q: 4.4.2; DAI-T: 4.4.3).
    fn handle_join(
        &mut self,
        at: NodeHandle,
        items: Vec<RewrittenQuery>,
        index_id: Id,
    ) -> Result<()> {
        let algorithm = self.config.algorithm;
        let mut matches = self.new_matches();
        for rq in items {
            match algorithm {
                Algorithm::Sai => {
                    // Store first (dedup by key); only a *new* rewritten
                    // query is evaluated against stored tuples — a duplicate
                    // "need only store the information related to tuple t".
                    let fresh = self.nodes[at.index()].vlqt.insert(StoredRewritten {
                        index_id,
                        rq: rq.clone(),
                    });
                    if fresh {
                        if self.repl_k() > 0 {
                            self.replicate(
                                at,
                                ReplicaItem::Rewritten(StoredRewritten {
                                    index_id,
                                    rq: rq.clone(),
                                }),
                            );
                        }
                        self.match_against_vltt(at, &rq, &mut matches)?;
                    }
                }
                Algorithm::DaiQ => {
                    // Evaluate, never store.
                    self.match_against_vltt(at, &rq, &mut matches)?;
                }
                Algorithm::DaiT => {
                    // Store, never evaluate (tuples will come to us).
                    let entry = StoredRewritten { index_id, rq };
                    if self.repl_k() > 0 {
                        if self.nodes[at.index()].vlqt.insert(entry.clone()) {
                            self.replicate(at, ReplicaItem::Rewritten(entry));
                        }
                    } else {
                        self.nodes[at.index()].vlqt.insert(entry);
                    }
                }
                Algorithm::DaiV => unreachable!("DAI-V uses JoinV messages"),
            }
        }
        self.deliver_matches(at, matches)?;
        Ok(())
    }

    fn match_against_vltt(
        &mut self,
        at: NodeHandle,
        rq: &RewrittenQuery,
        matches: &mut Matches,
    ) -> Result<()> {
        let cq_relational::MatchTarget::Attribute { attr, value } = rq.target() else {
            unreachable!("T1 rewritten queries carry attribute targets");
        };
        let mut value_key = String::with_capacity(24);
        value.canonical_into(&mut value_key);
        let candidates: Vec<Arc<Tuple>> = self.nodes[at.index()]
            .vltt
            .candidates(rq.free_relation(), attr, &value_key)
            .map(|e| Arc::clone(&e.tuple))
            .collect();
        self.metrics
            .add_evaluator_filtering(at.index(), candidates.len() as u64);
        for t in &candidates {
            if rq.matches(t)? {
                matches.add(rq, t)?;
            }
        }
        Ok(())
    }

    /// DAI-V's combined join message (Section 4.5): match the rewritten
    /// queries against stored tuples of the other side, then store the
    /// triggering tuple. Rewritten queries are not stored.
    #[allow(clippy::too_many_arguments)]
    fn handle_join_v(
        &mut self,
        at: NodeHandle,
        group: String,
        items: Vec<RewrittenQuery>,
        tuple: Arc<Tuple>,
        side: Side,
        value_key: String,
        index_id: Id,
    ) -> Result<()> {
        let other = side.other();
        let mut matches = self.new_matches();
        for rq in &items {
            let candidates: Vec<Arc<Tuple>> = self.nodes[at.index()]
                .vstore
                .candidates(&group, &value_key, other)
                .map(|e| Arc::clone(&e.tuple))
                .collect();
            self.metrics
                .add_evaluator_filtering(at.index(), candidates.len() as u64);
            for t in &candidates {
                if rq.matches(t)? {
                    matches.add(rq, t)?;
                }
            }
        }
        let entry = StoredValueTuple {
            index_id,
            side,
            tuple,
        };
        if self.repl_k() > 0 {
            self.nodes[at.index()]
                .vstore
                .insert(&group, &value_key, entry.clone());
            self.replicate(
                at,
                ReplicaItem::ValueTuple {
                    group,
                    value_key,
                    entry,
                },
            );
        } else {
            self.nodes[at.index()]
                .vstore
                .insert(&group, &value_key, entry);
        }
        self.deliver_matches(at, matches)?;
        Ok(())
    }

    // ==================================================================
    // Notification delivery (Section 4.6)
    // ==================================================================

    /// Collects join matches at an evaluator. With retention on, full
    /// notification bodies are built; with retention off only per-subscriber
    /// counts are kept (delivery traffic and counters stay identical, the
    /// bodies are never materialized).
    fn new_matches(&self) -> Matches {
        if self.config.retain_notifications {
            Matches::Full(Vec::new())
        } else {
            Matches::Counts(FxHashMap::default())
        }
    }

    fn deliver_matches(&mut self, from: NodeHandle, matches: Matches) -> Result<()> {
        match matches {
            Matches::Full(notifications) => self.deliver_notifications(from, notifications),
            Matches::Counts(counts) => {
                for (subscriber, count) in counts {
                    if count == 0 {
                        continue;
                    }
                    self.metrics.notifications_delivered += count;
                    match self.subscribers.get(&subscriber) {
                        Some(&h) if self.ring.node(h).is_alive() => {
                            self.metrics.record_traffic(TrafficKind::Notify, 1);
                        }
                        _ => {
                            self.metrics.notifications_stored_offline += count;
                            let id = indexing::subscriber_id(self.ring.space(), &subscriber);
                            let (_, hops) = self.ring.route_owner(from, id)?;
                            self.metrics.record_traffic(TrafficKind::Notify, hops);
                        }
                    }
                }
                Ok(())
            }
        }
    }

    /// Full-retention delivery: every batch becomes a real protocol message
    /// ([`Message::Notify`] for online subscribers, routed
    /// [`Message::StoreNotifications`] otherwise), so the fault layer can
    /// lose, duplicate and retransmit deliveries like any other traffic.
    /// `notifications_delivered` is counted by the receiving handlers — at
    /// actual inbox/offline-store arrival — fixing the old skew where sends
    /// were counted before (or without) storage happening.
    fn deliver_notifications(
        &mut self,
        from: NodeHandle,
        notifications: Vec<Notification>,
    ) -> Result<()> {
        if notifications.is_empty() {
            return Ok(());
        }
        // Group notifications per receiver into one message.
        let mut by_subscriber: FxHashMap<String, Vec<Notification>> = FxHashMap::default();
        for n in notifications {
            by_subscriber
                .entry(n.subscriber.clone())
                .or_default()
                .push(n);
        }
        for (subscriber, batch) in by_subscriber {
            match self.subscribers.get(&subscriber) {
                Some(&h) if self.ring.node(h).is_alive() => {
                    // Online at a known IP: one direct hop.
                    self.metrics.record_traffic(TrafficKind::Notify, 1);
                    self.push_direct(
                        from,
                        h,
                        Message::Notify {
                            notifications: batch,
                        },
                    );
                }
                _ => {
                    // Offline: route toward Successor(Id(n)) and store there.
                    let id = indexing::subscriber_id(self.ring.space(), &subscriber);
                    let (owner, hops) = self.ring.route_owner(from, id)?;
                    self.metrics.record_traffic(TrafficKind::Notify, hops);
                    self.pending.push_back(Pending {
                        from,
                        to: owner,
                        target: id,
                        reroute: true,
                        msg: Message::StoreNotifications {
                            subscriber_id: id,
                            notifications: batch,
                        },
                    });
                }
            }
        }
        Ok(())
    }

    // ==================================================================
    // Churn: leaves, failures, rejoins with key transfer (Sections 2.2, 4.6)
    // ==================================================================

    /// Voluntary departure: the node transfers every key it holds to its
    /// successor, then leaves the ring. Replicas the node held for others
    /// are dropped — their primaries are still alive and re-mirror on the
    /// next promotion cycle.
    pub fn node_leave(&mut self, h: NodeHandle) -> Result<()> {
        let succ = self
            .ring
            .first_alive_successor(h)
            .ok_or(EngineError::UnknownNode)?;
        self.ring.leave(h)?;
        if succ != h {
            self.transfer_all(h, succ);
        }
        self.nodes[h.index()].replicas.clear();
        Ok(())
    }

    /// Abrupt failure: the node's primary keys and replica holdings are
    /// lost (best-effort semantics, Section 3.2 — "we leave all the handling
    /// of failures … to the underlying DHT"). With k-successor replication
    /// enabled, the lost range is recovered from the successors' replica
    /// stores during the next [`Network::stabilize`].
    pub fn node_fail(&mut self, h: NodeHandle) -> Result<()> {
        self.fail_node_state(h)
    }

    /// Runs stabilization rounds over the whole ring, then promotes any
    /// replicas whose primary owner has disappeared (when k-successor
    /// replication is on) and processes the resulting re-mirroring traffic.
    pub fn stabilize(&mut self, rounds: usize) -> Result<()> {
        self.ring.stabilize_all(rounds);
        if self.repl_k() > 0 {
            self.promote_replicas()?;
        }
        self.process_all()
    }

    /// Every alive node extracts the replica entries whose identifier it now
    /// owns (its predecessor failed) and promotes them into its primary
    /// tables, then re-mirrors them onto its own successors to restore
    /// k-fold redundancy.
    fn promote_replicas(&mut self) -> Result<()> {
        let k = self.repl_k();
        if k == 0 {
            return Ok(());
        }
        let handles: Vec<NodeHandle> = self.ring.alive_nodes().collect();
        for h in handles {
            let promoted = {
                let ring = &self.ring;
                self.nodes[h.index()]
                    .replicas
                    .take_owned(|id| ring.owns(h, id))
            };
            if promoted.is_empty() {
                continue;
            }
            self.metrics.faults.replicas_promoted += promoted.len() as u64;
            let mut items: Vec<ReplicaItem> = Vec::with_capacity(promoted.len());
            {
                let st = &mut self.nodes[h.index()];
                for e in promoted.queries {
                    st.alqt.insert(e.clone());
                    items.push(ReplicaItem::Query(e));
                }
                for e in promoted.rewritten {
                    st.vlqt.insert(e.clone());
                    items.push(ReplicaItem::Rewritten(e));
                }
                for e in promoted.tuples {
                    st.vltt.insert(e.clone());
                    items.push(ReplicaItem::Tuple(e));
                }
                for (group, value_key, e) in promoted.value_tuples {
                    st.vstore.insert(&group, &value_key, e.clone());
                    items.push(ReplicaItem::ValueTuple {
                        group,
                        value_key,
                        entry: e,
                    });
                }
                for (id, n) in promoted.offline {
                    st.offline_store.push((id, n.clone()));
                    items.push(ReplicaItem::Offline {
                        id,
                        notification: n,
                    });
                }
            }
            for item in items {
                self.replicate(h, item);
            }
        }
        Ok(())
    }

    /// A departed node rejoins with its old key: it takes back the key range
    /// `(pred, id]` from its successor — including any notifications stored
    /// for it while it was offline (Section 4.6).
    pub fn node_rejoin(&mut self, h: NodeHandle) -> Result<()> {
        let via = self
            .ring
            .alive_nodes()
            .next()
            .ok_or(EngineError::UnknownNode)?;
        self.ring.rejoin(h, via)?;
        self.ring.stabilize_all(2);
        let (pred, id) = self.ring.owned_range(h)?;
        let succ = self
            .ring
            .first_alive_successor(h)
            .ok_or(EngineError::UnknownNode)?;
        if succ != h {
            let space = self.ring.space();
            let in_range = move |x: Id| space.in_open_closed(x, pred, id);
            self.transfer_matching(succ, h, in_range);
        }
        // Missed notifications addressed to us move into the inbox.
        let me = self.ring.node(h).key().to_string();
        let st = &mut self.nodes[h.index()];
        let mut kept = Vec::new();
        for (nid, n) in std::mem::take(&mut st.offline_store) {
            if n.subscriber == me {
                st.inbox.push(n);
            } else {
                kept.push((nid, n));
            }
        }
        st.offline_store = kept;
        self.subscribers.insert(me, h);
        Ok(())
    }

    fn transfer_all(&mut self, from: NodeHandle, to: NodeHandle) {
        self.transfer_matching(from, to, |_| true);
    }

    fn transfer_matching(
        &mut self,
        from: NodeHandle,
        to: NodeHandle,
        pred: impl Fn(Id) -> bool + Copy,
    ) {
        debug_assert_ne!(from, to);
        let (a, b) = (from.index(), to.index());
        // Split the borrow: `from` and `to` are distinct slots.
        let (src, dst) = if a < b {
            let (l, r) = self.nodes.split_at_mut(b);
            (&mut l[a], &mut r[0])
        } else {
            let (l, r) = self.nodes.split_at_mut(a);
            (&mut r[0], &mut l[b])
        };
        for e in src.alqt.extract_where(&pred) {
            dst.alqt.insert(e);
        }
        for e in src.vlqt.extract_where(&pred) {
            dst.vlqt.insert(e);
        }
        for e in src.vltt.extract_where(&pred) {
            dst.vltt.insert(e);
        }
        for (group, value, e) in src.vstore.extract_where(&pred) {
            dst.vstore.insert(&group, &value, e);
        }
        let mut kept = Vec::new();
        for (id, n) in std::mem::take(&mut src.offline_store) {
            if pred(id) {
                dst.offline_store.push((id, n));
            } else {
                kept.push((id, n));
            }
        }
        src.offline_store = kept;
    }
}

/// Accumulated join matches at an evaluator (see [`Network::new_matches`]).
enum Matches {
    /// Full notification bodies (retention on).
    Full(Vec<Notification>),
    /// Per-subscriber match counts (retention off).
    Counts(FxHashMap<String, u64>),
}

impl Matches {
    /// Records that `rq` matched tuple `t`.
    fn add(&mut self, rq: &RewrittenQuery, t: &Tuple) -> cq_relational::Result<()> {
        match self {
            Matches::Full(v) => v.push(rq.notification_with(t)?),
            Matches::Counts(c) => {
                // avoid one String allocation per match on the hot path
                if let Some(v) = c.get_mut(rq.query().subscriber()) {
                    *v += 1;
                } else {
                    c.insert(rq.query().subscriber().to_string(), 1);
                }
            }
        }
        Ok(())
    }
}

/// Extension trait used internally to index `[T; 2]` arrays by side.
trait SideIdx {
    fn idx_pub(self) -> usize;
}

impl SideIdx for Side {
    fn idx_pub(self) -> usize {
        match self {
            Side::Left => 0,
            Side::Right => 1,
        }
    }
}
