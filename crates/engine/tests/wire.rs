//! Property-based checks of the wire codec: encode∘decode is the identity
//! over randomized instances of every [`Message`] and [`TraceEvent`]
//! variant, `encoded_len` is byte-exact, and malformed frames — truncated,
//! bit-flipped, or version-bumped — are rejected with a typed
//! [`EngineError::Protocol`], never a panic.
//!
//! Generation is seed-driven: the strategies pick a variant index and a
//! `u64` seed, and a seeded [`StdRng`] expands them into a fully random
//! instance. That keeps the generators readable while still exercising the
//! whole variant space (every case runs each variant index explicitly).

use std::sync::Arc;

use cq_engine::wire::{
    decode_message, decode_trace_event, encode_message, encode_trace_event, encoded_len,
    trace_encoded_len, VERSION,
};
use cq_engine::{EngineError, Message, ReplicaItem, TraceEvent, ValueJoin};
use cq_overlay::Id;
use cq_relational::{
    Catalog, DataType, Expr, Filter, JoinQuery, MatchTarget, Notification, QueryKey, QueryRef,
    QuerySpec, RelationSchema, RewrittenQuery, SelectItem, Side, Timestamp, Tuple, Value,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const MESSAGE_VARIANTS: usize = 11;
const TRACE_VARIANTS: usize = 20;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(RelationSchema::of("R", &[("A", DataType::Int), ("B", DataType::Str)]).unwrap())
        .unwrap();
    c.register(RelationSchema::of("S", &[("C", DataType::Int), ("D", DataType::Int)]).unwrap())
        .unwrap();
    c
}

fn rand_name(rng: &mut StdRng) -> String {
    let len = rng.gen_range(1..8usize);
    (0..len)
        .map(|_| char::from(b'a' + rng.gen_range(0..26u8)))
        .collect()
}

fn rand_value(rng: &mut StdRng, ty: DataType) -> Value {
    match ty {
        DataType::Int => Value::Int(rng.gen_range(-1000i64..1000)),
        DataType::Str => Value::Str(rand_name(rng)),
    }
}

/// A random valid query over R ⋈ S (join condition on the Int attributes,
/// optionally through arithmetic; random select list and filters).
fn rand_query(rng: &mut StdRng, c: &Catalog) -> QueryRef {
    let subscriber = rand_name(rng);
    let cond = |rng: &mut StdRng, attr: &str| {
        if rng.gen_bool(0.5) {
            Expr::attr(attr)
        } else {
            Expr::bin(
                cq_relational::BinOp::Add,
                Expr::attr(attr),
                Expr::int(rng.gen_range(-5i64..5)),
            )
        }
    };
    let mut select = Vec::new();
    if rng.gen_bool(0.7) {
        select.push(SelectItem {
            side: Side::Left,
            attr: "B".into(),
        });
    }
    select.push(SelectItem {
        side: Side::Right,
        attr: "D".into(),
    });
    let mut filters = Vec::new();
    if rng.gen_bool(0.4) {
        filters.push(Filter {
            side: Side::Right,
            attr: "D".into(),
            value: Value::Int(rng.gen_range(-10i64..10)),
        });
    }
    let left = cond(rng, "A");
    let right = cond(rng, "C");
    Arc::new(
        JoinQuery::new(
            QuerySpec {
                key: QueryKey::derive(&subscriber, rng.gen_range(0..100)),
                subscriber,
                ins_time: Timestamp(rng.gen_range(0..1 << 40)),
                relations: ["R".into(), "S".into()],
                select,
                conditions: [left, right],
                filters,
            },
            c,
        )
        .expect("generated query is valid"),
    )
}

fn rand_tuple(rng: &mut StdRng, c: &Catalog) -> Arc<Tuple> {
    let rel = if rng.gen_bool(0.5) { "R" } else { "S" };
    let schema = c.get(rel).unwrap().clone();
    let values = schema
        .attributes()
        .iter()
        .map(|a| rand_value(rng, a.ty))
        .collect();
    Arc::new(
        Tuple::new(
            schema,
            values,
            Timestamp(rng.gen_range(0..1 << 40)),
            rng.gen(),
        )
        .unwrap(),
    )
}

fn rand_rewritten(rng: &mut StdRng, c: &Catalog) -> RewrittenQuery {
    let query = rand_query(rng, c);
    let bound_side = if rng.gen_bool(0.5) {
        Side::Left
    } else {
        Side::Right
    };
    let bound_values = (0..rng.gen_range(0..3usize))
        .map(|_| {
            let ty = if rng.gen_bool(0.5) {
                DataType::Int
            } else {
                DataType::Str
            };
            rand_value(rng, ty)
        })
        .collect();
    let target = if rng.gen_bool(0.5) {
        MatchTarget::Attribute {
            attr: rand_name(rng),
            value: rand_value(rng, DataType::Int),
        }
    } else {
        MatchTarget::ConditionValue {
            value: rand_value(rng, DataType::Int),
        }
    };
    RewrittenQuery::from_parts(
        rand_name(rng),
        query,
        bound_side,
        bound_values,
        target,
        Timestamp(rng.gen_range(0..1 << 40)),
    )
}

fn rand_notification(rng: &mut StdRng) -> Notification {
    let subscriber = rand_name(rng);
    let values = (0..rng.gen_range(0..4usize))
        .map(|_| {
            let ty = if rng.gen_bool(0.5) {
                DataType::Int
            } else {
                DataType::Str
            };
            rand_value(rng, ty)
        })
        .collect();
    Notification {
        query_key: QueryKey::derive(&subscriber, rng.gen_range(0..100)),
        subscriber,
        values,
    }
}

fn rand_replica_item(rng: &mut StdRng, c: &Catalog) -> ReplicaItem {
    use cq_engine::tables::{StoredQuery, StoredRewritten, StoredTuple, StoredValueTuple};
    match rng.gen_range(0..5u32) {
        0 => ReplicaItem::Query(StoredQuery {
            index_id: Id(rng.gen()),
            query: rand_query(rng, c),
            index_side: Side::Left,
            index_attr: rand_name(rng),
        }),
        1 => ReplicaItem::Rewritten(StoredRewritten {
            index_id: Id(rng.gen()),
            rq: rand_rewritten(rng, c),
        }),
        2 => ReplicaItem::Tuple(StoredTuple {
            index_id: Id(rng.gen()),
            attr: rand_name(rng),
            tuple: rand_tuple(rng, c),
        }),
        3 => ReplicaItem::ValueTuple {
            group: rand_name(rng),
            value_key: rand_name(rng),
            entry: StoredValueTuple {
                index_id: Id(rng.gen()),
                side: Side::Right,
                tuple: rand_tuple(rng, c),
            },
        },
        _ => ReplicaItem::Offline {
            id: Id(rng.gen()),
            notification: rand_notification(rng),
        },
    }
}

/// A random message of the given variant (`variant` ∈ `0..MESSAGE_VARIANTS`,
/// in [`Message::kind_index`] order).
fn rand_message(variant: usize, rng: &mut StdRng, c: &Catalog) -> Message {
    match variant {
        0 => Message::IndexQuery {
            query: rand_query(rng, c),
            index_side: Side::Right,
            index_attr: rand_name(rng),
            index_id: Id(rng.gen()),
        },
        1 => Message::AlIndexTuple {
            tuple: rand_tuple(rng, c),
            attr: rand_name(rng),
            index_id: Id(rng.gen()),
        },
        2 => Message::VlIndexTuple {
            tuple: rand_tuple(rng, c),
            attr: rand_name(rng),
            index_id: Id(rng.gen()),
        },
        3 => Message::Join {
            items: (0..rng.gen_range(0..3usize))
                .map(|_| rand_rewritten(rng, c))
                .collect(),
            index_id: Id(rng.gen()),
        },
        4 => Message::JoinV(ValueJoin {
            group: rand_name(rng),
            items: (0..rng.gen_range(0..3usize))
                .map(|_| rand_rewritten(rng, c))
                .collect(),
            tuple: rand_tuple(rng, c),
            side: Side::Left,
            value_key: rand_name(rng),
            index_id: Id(rng.gen()),
        }),
        5 => Message::StoreNotifications {
            subscriber_id: Id(rng.gen()),
            notifications: (0..rng.gen_range(0..4usize))
                .map(|_| rand_notification(rng))
                .collect(),
        },
        6 => Message::Notify {
            notifications: (0..rng.gen_range(1..4usize))
                .map(|_| rand_notification(rng))
                .collect(),
        },
        7 => Message::Replicate {
            item: Box::new(rand_replica_item(rng, c)),
        },
        8 => Message::Ping {
            from: rng.gen(),
            seq: rng.gen(),
        },
        9 => Message::Pong {
            from: rng.gen(),
            seq: rng.gen(),
        },
        _ => Message::Bundle(
            (0..rng.gen_range(0..4usize))
                .map(|_| {
                    let inner = rng.gen_range(0..10usize); // bundles never nest
                    rand_message(inner, rng, c)
                })
                .collect(),
        ),
    }
}

/// A random trace event of the given variant (`variant` ∈
/// `0..TRACE_VARIANTS`, in [`TraceEvent::kind_index`] order).
fn rand_trace_event(variant: usize, rng: &mut StdRng) -> TraceEvent {
    const KINDS: [&str; 10] = [
        "query",
        "al-index",
        "vl-index",
        "join",
        "join-v",
        "store-notify",
        "notify",
        "replicate",
        "ping",
        "pong",
    ];
    const TABLES: [&str; 6] = ["alqt", "vlqt", "vltt", "vstore", "offline-store", "all"];
    const REASONS: [&str; 3] = ["fail", "leave", "transfer"];
    let tick = rng.gen_range(0..1u64 << 40);
    let node = rng.gen_range(0..10_000u32);
    let id: (u32, u64) = (rng.gen_range(0..10_000), rng.gen());
    match variant {
        0 => TraceEvent::MsgSend {
            tick,
            node,
            id,
            to: rng.gen_range(0..10_000),
            target: Id(rng.gen()),
            kind: KINDS[rng.gen_range(0..KINDS.len())],
            path: if rng.gen_bool(0.5) {
                Some((0..rng.gen_range(0..6usize)).map(|_| rng.gen()).collect())
            } else {
                None
            },
        },
        1 => TraceEvent::MsgDeliver {
            tick,
            node,
            id,
            kind: KINDS[rng.gen_range(0..KINDS.len())],
        },
        2 => TraceEvent::FaultDrop { tick, node, id },
        3 => TraceEvent::FaultDuplicate { tick, node, id },
        4 => TraceEvent::FaultDelay {
            tick,
            node,
            id,
            extra: rng.gen(),
        },
        5 => TraceEvent::Retransmit {
            tick,
            node,
            id,
            attempt: rng.gen(),
        },
        6 => TraceEvent::DedupSuppressed { tick, node, id },
        7 => TraceEvent::NodeFailed { tick, node },
        8 => TraceEvent::IndexInsert {
            tick,
            node,
            table: TABLES[rng.gen_range(0..TABLES.len())],
            fresh: rng.gen_bool(0.5),
        },
        9 => TraceEvent::IndexRemove {
            tick,
            node,
            table: TABLES[rng.gen_range(0..TABLES.len())],
            removed: rng.gen(),
            reason: REASONS[rng.gen_range(0..REASONS.len())],
        },
        10 => TraceEvent::JoinEval {
            tick,
            node,
            candidates: rng.gen(),
            matches: rng.gen(),
        },
        11 => TraceEvent::NotifyDelivered {
            tick,
            node,
            count: rng.gen(),
            offline: rng.gen_bool(0.5),
        },
        12 => TraceEvent::Replicate {
            tick,
            node,
            to: rng.gen(),
        },
        13 => TraceEvent::Promote {
            tick,
            node,
            items: rng.gen(),
        },
        14 => {
            let mut name = rand_name(rng);
            if rng.gen_bool(0.3) {
                name.push('"');
                name.push('\n');
                name.push('λ');
            }
            TraceEvent::Phase { tick, name }
        }
        15 => TraceEvent::Suspect {
            tick,
            node,
            target: rng.gen(),
        },
        16 => TraceEvent::Confirm {
            tick,
            node,
            target: rng.gen(),
            dead: rng.gen_bool(0.5),
        },
        17 => TraceEvent::FalseSuspect {
            tick,
            node,
            target: rng.gen(),
        },
        18 => TraceEvent::DigestExchange {
            tick,
            node,
            to: rng.gen(),
            items: rng.gen(),
            missing: rng.gen(),
        },
        _ => TraceEvent::Repair {
            tick,
            node,
            to: rng.gen(),
            items: rng.gen(),
            bytes: rng.gen(),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// encode∘decode = id for every message variant, and `encoded_len` is
    /// byte-exact. Identity is checked through the `Debug` form (messages
    /// hold `Arc`s, so no `PartialEq`).
    #[test]
    fn message_encoding_round_trips(seed in 0u64..1 << 48) {
        let c = catalog();
        for variant in 0..MESSAGE_VARIANTS {
            let mut rng = StdRng::seed_from_u64(seed ^ ((variant as u64) << 48));
            let msg = rand_message(variant, &mut rng, &c);
            let mut buf = Vec::new();
            encode_message(&msg, &mut buf);
            prop_assert_eq!(buf.len() as u64, encoded_len(&msg), "variant {}", variant);
            let (back, used) = decode_message(&buf, &c).unwrap();
            prop_assert_eq!(used, buf.len());
            prop_assert_eq!(format!("{back:?}"), format!("{msg:?}"));
        }
    }

    /// encode∘decode = id for every trace-event variant.
    #[test]
    fn trace_event_encoding_round_trips(seed in 0u64..1 << 48) {
        for variant in 0..TRACE_VARIANTS {
            let mut rng = StdRng::seed_from_u64(seed ^ ((variant as u64) << 48));
            let ev = rand_trace_event(variant, &mut rng);
            let mut buf = Vec::new();
            encode_trace_event(&ev, &mut buf);
            prop_assert_eq!(buf.len() as u64, trace_encoded_len(&ev), "variant {}", variant);
            let (back, used) = decode_trace_event(&buf).unwrap();
            prop_assert_eq!(used, buf.len());
            prop_assert_eq!(back, ev);
        }
    }

    /// Every truncation of a valid frame is rejected with a typed
    /// `Protocol` error — no panic, no partial value.
    #[test]
    fn truncated_frames_are_rejected(seed in 0u64..1 << 48, variant in 0usize..MESSAGE_VARIANTS) {
        let c = catalog();
        let mut rng = StdRng::seed_from_u64(seed);
        let msg = rand_message(variant, &mut rng, &c);
        let mut buf = Vec::new();
        encode_message(&msg, &mut buf);
        for cut in 0..buf.len() {
            match decode_message(&buf[..cut], &c) {
                Err(EngineError::Protocol { .. }) => {}
                other => prop_assert!(false, "cut at {}: {:?}", cut, other.map(|(m, _)| m.kind())),
            }
        }
    }

    /// Corrupting any single byte of a frame either still decodes to *some*
    /// value or fails with a typed `Protocol` error — it never panics.
    #[test]
    fn corrupt_frames_never_panic(
        seed in 0u64..1 << 48,
        variant in 0usize..MESSAGE_VARIANTS,
        pos_seed in 0u64..1 << 32,
        flip in 1u32..256,
    ) {
        let c = catalog();
        let mut rng = StdRng::seed_from_u64(seed);
        let msg = rand_message(variant, &mut rng, &c);
        let mut buf = Vec::new();
        encode_message(&msg, &mut buf);
        let pos = (pos_seed as usize) % buf.len();
        buf[pos] ^= flip as u8;
        let _ = decode_message(&buf, &c); // Ok or Err(Protocol), never a panic
    }

    /// Any version byte other than the current one is rejected.
    #[test]
    fn version_mismatch_is_rejected(seed in 0u64..1 << 48, bump in 1u32..256) {
        let c = catalog();
        let mut rng = StdRng::seed_from_u64(seed);
        let msg = rand_message(0, &mut rng, &c);
        let mut buf = Vec::new();
        encode_message(&msg, &mut buf);
        buf[4] = VERSION.wrapping_add(bump as u8);
        match decode_message(&buf, &c) {
            Err(EngineError::Protocol { detail }) => {
                prop_assert!(detail.contains("unsupported wire version"), "{}", detail);
            }
            other => prop_assert!(false, "{:?}", other.map(|(m, _)| m.kind())),
        }
    }
}
