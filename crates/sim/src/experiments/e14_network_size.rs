//! E14 — Figure "Effect in filtering load distribution of increasing the
//! network size" (Section 5.4).
//!
//! Fixed workload, growing ring. Expected shape: "when the overlay network
//! grows, query processing becomes easier since new nodes relieve other
//! nodes by taking a portion of the existing workload" — mean per-node load
//! falls roughly as 1/N while total load stays flat.

use cq_engine::Algorithm;
use cq_workload::WorkloadConfig;

use super::Scale;
use crate::harness::RunConfig;
use crate::parallel::run_many;
use crate::report::{fnum, Report};
use crate::stats;

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let queries = scale.pick(60, 5000);
    let tuples = scale.pick(300, 800);
    let sizes: Vec<usize> = scale.pick(vec![64, 128, 256, 512], vec![1000, 2500, 5000]);
    let mut report = Report::new(
        "E14",
        &format!("filtering distribution vs network size (Q={queries}, T={tuples})"),
        &[
            "N",
            "SAI mean",
            "SAI loaded",
            "DAI-T mean",
            "DAI-T loaded",
            "DAI-V mean",
            "DAI-V loaded",
        ],
    );
    let algs = [Algorithm::Sai, Algorithm::DaiT, Algorithm::DaiV];
    let mut cfgs = Vec::new();
    for &n in &sizes {
        for alg in algs {
            cfgs.push(RunConfig {
                algorithm: alg,
                nodes: n,
                queries,
                tuples,
                workload: WorkloadConfig {
                    domain: scale.pick(40, 400),
                    ..WorkloadConfig::default()
                },
                ..RunConfig::new(alg)
            });
        }
    }
    let mut results = run_many(&cfgs).into_iter();
    for &n in &sizes {
        let mut row = vec![n.to_string()];
        for _ in algs {
            let r = results.next().expect("one result per config");
            // Mean over nodes that exist; "loaded" = nodes doing any work.
            row.push(fnum(stats::mean(&r.filtering)));
            row.push(r.filtering.iter().filter(|&&l| l > 0.0).count().to_string());
        }
        report.row(row);
    }
    report.note("paper: growing N dilutes per-node load (scalability)");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_load_falls_as_network_grows() {
        let r = run(Scale::Quick);
        let rows: Vec<Vec<String>> = r
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(str::to_string).collect())
            .collect();
        let first: f64 = rows[0][1].parse().unwrap();
        let last: f64 = rows.last().unwrap()[1].parse().unwrap();
        assert!(last < first, "SAI mean load {last} !< {first} as N grew");
    }
}
