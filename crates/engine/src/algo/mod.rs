//! The four evaluation algorithms of Chapter 4, as [`Protocol`]
//! implementations.
//!
//! Each algorithm is a stateless strategy object: all per-node state lives
//! in [`crate::node::NodeState`] and is reached through the
//! [`crate::protocol::NodeCtx`] a handler receives. The only place the
//! engine branches on [`Algorithm`] is the [`protocol_for`] factory below —
//! transport and orchestration code dispatch through the trait.

pub(crate) mod common;
pub mod dai_q;
pub mod dai_t;
pub mod dai_v;
pub mod sai;

use std::sync::Arc;

use crate::config::Algorithm;
use crate::protocol::Protocol;

pub use dai_q::DaiQProtocol;
pub use dai_t::DaiTProtocol;
pub use dai_v::DaiVProtocol;
pub use sai::SaiProtocol;

/// The built-in protocol implementing `algorithm` — the single point where
/// an [`Algorithm`] value is turned into behavior.
pub fn protocol_for(algorithm: Algorithm) -> Arc<dyn Protocol> {
    match algorithm {
        Algorithm::Sai => Arc::new(SaiProtocol),
        Algorithm::DaiQ => Arc::new(DaiQProtocol),
        Algorithm::DaiT => Arc::new(DaiTProtocol),
        Algorithm::DaiV => Arc::new(DaiVProtocol),
    }
}
