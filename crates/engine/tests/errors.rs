//! Error-path coverage: invalid queries, unknown relations, operations on
//! departed nodes.

use cq_engine::{Algorithm, EngineConfig, EngineError, Network};
use cq_relational::{Catalog, DataType, RelationSchema, Value};

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(RelationSchema::of("R", &[("A", DataType::Int), ("B", DataType::Int)]).unwrap())
        .unwrap();
    c.register(RelationSchema::of("S", &[("C", DataType::Int), ("D", DataType::Int)]).unwrap())
        .unwrap();
    c
}

fn net() -> Network {
    Network::new(EngineConfig::new(Algorithm::Sai).with_nodes(16), catalog())
}

#[test]
fn malformed_sql_is_a_relational_error() {
    let mut n = net();
    let a = n.node_at(0);
    let err = n.pose_query_sql(a, "SELECT FROM WHERE").unwrap_err();
    assert!(matches!(err, EngineError::Relational(_)), "{err}");
    // error display mentions the parse failure
    assert!(err.to_string().contains("parse") || err.to_string().contains("expected"));
}

#[test]
fn unknown_relation_in_query_is_reported() {
    let mut n = net();
    let a = n.node_at(0);
    let err = n
        .pose_query_sql(a, "SELECT X.A FROM X, S WHERE X.A = S.C")
        .unwrap_err();
    assert!(matches!(err, EngineError::Relational(_)));
}

#[test]
fn unknown_relation_in_tuple_is_reported() {
    let mut n = net();
    let a = n.node_at(0);
    let err = n.insert_tuple(a, "Nope", vec![Value::Int(1)]).unwrap_err();
    assert!(matches!(err, EngineError::Relational(_)));
}

#[test]
fn wrong_arity_tuple_is_reported() {
    let mut n = net();
    let a = n.node_at(0);
    let err = n.insert_tuple(a, "R", vec![Value::Int(1)]).unwrap_err();
    assert!(matches!(err, EngineError::Relational(_)));
}

#[test]
fn operations_from_departed_nodes_fail() {
    let mut n = net();
    let a = n.node_at(0);
    let b = n.node_at(1);
    n.node_leave(b).unwrap();
    assert!(matches!(
        n.insert_tuple(b, "R", vec![Value::Int(1), Value::Int(2)]),
        Err(EngineError::UnknownNode)
    ));
    assert!(matches!(
        n.pose_query_sql(b, "SELECT R.A FROM R, S WHERE R.B = S.C"),
        Err(EngineError::UnknownNode)
    ));
    // the rest of the network is unaffected
    n.insert_tuple(a, "R", vec![Value::Int(1), Value::Int(2)])
        .unwrap();
}

#[test]
fn double_leave_fails_cleanly() {
    let mut n = net();
    let b = n.node_at(1);
    n.node_leave(b).unwrap();
    assert!(n.node_leave(b).is_err());
}

#[test]
fn failed_queries_leave_no_partial_state() {
    let mut n = net();
    let a = n.node_at(0);
    // A T2 query under SAI is rejected before any message is sent.
    let before = n.metrics().total_traffic();
    let err = n
        .pose_query_sql(a, "SELECT R.A FROM R, S WHERE R.A + R.B = S.C")
        .unwrap_err();
    assert!(matches!(err, EngineError::UnsupportedByAlgorithm { .. }));
    assert_eq!(
        n.metrics().total_traffic(),
        before,
        "no traffic for rejected queries"
    );
    let stored: usize = n
        .ring()
        .alive_nodes()
        .map(|h| n.node_state(h).alqt.len())
        .sum();
    assert_eq!(stored, 0, "nothing indexed");
}

#[test]
fn error_types_render_and_chain() {
    use std::error::Error;
    let mut n = net();
    let a = n.node_at(0);
    let err = n.pose_query_sql(a, "garbage").unwrap_err();
    assert!(!err.to_string().is_empty());
    assert!(err.source().is_some(), "relational cause is preserved");
}
