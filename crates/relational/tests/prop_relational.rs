//! Property-based tests for the relational layer: the rewriting machinery
//! must agree with direct evaluation of the join condition, and displayed
//! queries must reparse to equivalent queries.

use std::sync::Arc;

use cq_relational::{
    parse_query, Catalog, DataType, Expr, JoinQuery, QueryKey, QueryRef, QuerySpec, RelationSchema,
    RewrittenQuery, SelectItem, Side, Timestamp, Tuple, Value,
};
use proptest::prelude::*;

fn catalog() -> Catalog {
    let mut c = Catalog::new();
    c.register(
        RelationSchema::of(
            "R",
            &[
                ("A", DataType::Int),
                ("B", DataType::Int),
                ("C", DataType::Int),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    c.register(
        RelationSchema::of(
            "S",
            &[
                ("D", DataType::Int),
                ("E", DataType::Int),
                ("F", DataType::Int),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    c
}

fn t1_query(c: &Catalog, ins: u64) -> QueryRef {
    Arc::new(
        JoinQuery::new(
            QuerySpec {
                key: QueryKey::derive("n", 0),
                subscriber: "n".into(),
                ins_time: Timestamp(ins),
                relations: ["R".into(), "S".into()],
                select: vec![
                    SelectItem {
                        side: Side::Left,
                        attr: "A".into(),
                    },
                    SelectItem {
                        side: Side::Right,
                        attr: "D".into(),
                    },
                ],
                conditions: [Expr::attr("B"), Expr::attr("E")],
                filters: vec![],
            },
            c,
        )
        .unwrap(),
    )
}

fn r_tuple(c: &Catalog, vals: [i64; 3], t: u64) -> Tuple {
    Tuple::new(
        c.get("R").unwrap().clone(),
        vals.into_iter().map(Value::Int).collect(),
        Timestamp(t),
        0,
    )
    .unwrap()
}

fn s_tuple(c: &Catalog, vals: [i64; 3], t: u64) -> Tuple {
    Tuple::new(
        c.get("S").unwrap().clone(),
        vals.into_iter().map(Value::Int).collect(),
        Timestamp(t),
        0,
    )
    .unwrap()
}

proptest! {
    /// For T1 queries, rewrite-then-match must agree with directly checking
    /// the join condition and the time semantics, regardless of which side
    /// is rewritten first.
    #[test]
    fn rewrite_agrees_with_direct_evaluation(
        r_vals in prop::array::uniform3(-5i64..5),
        s_vals in prop::array::uniform3(-5i64..5),
        r_time in 0u64..20,
        s_time in 0u64..20,
        ins in 0u64..20,
    ) {
        let c = catalog();
        let q = t1_query(&c, ins);
        let r = r_tuple(&c, r_vals, r_time);
        let s = s_tuple(&c, s_vals, s_time);
        let expected = r_vals[1] == s_vals[1] && r_time >= ins && s_time >= ins;

        // Rewrite on the left, match the right tuple.
        let via_left = RewrittenQuery::rewrite_attribute(&q, Side::Left, "B", "E", &r)
            .unwrap()
            .and_then(|rq| rq.match_tuple(&s).unwrap());
        // Rewrite on the right, match the left tuple.
        let via_right = RewrittenQuery::rewrite_attribute(&q, Side::Right, "E", "B", &s)
            .unwrap()
            .and_then(|rq| rq.match_tuple(&r).unwrap());

        prop_assert_eq!(via_left.is_some(), expected);
        prop_assert_eq!(via_right.is_some(), expected);
        if expected {
            // Both directions must produce the identical notification.
            prop_assert_eq!(via_left.unwrap(), via_right.unwrap());
        }
    }

    /// DAI-V rewriting must agree with the attribute rewriting for T1
    /// queries (Section 4.5: "covers queries of type T1 as well").
    #[test]
    fn value_rewrite_covers_t1(
        r_vals in prop::array::uniform3(-5i64..5),
        s_vals in prop::array::uniform3(-5i64..5),
    ) {
        let c = catalog();
        let q = t1_query(&c, 0);
        let r = r_tuple(&c, r_vals, 1);
        let s = s_tuple(&c, s_vals, 1);
        let attr = RewrittenQuery::rewrite_attribute(&q, Side::Left, "B", "E", &r)
            .unwrap()
            .and_then(|rq| rq.match_tuple(&s).unwrap());
        let value = RewrittenQuery::rewrite_value(&q, Side::Left, &r)
            .unwrap()
            .and_then(|rq| rq.match_tuple(&s).unwrap());
        prop_assert_eq!(attr, value);
    }

    /// Displaying a query and reparsing it yields the same structure
    /// (condition sides, select list sides, filters).
    #[test]
    fn display_reparses(
        sel_left in prop::bool::ANY,
        filter_val in -100i64..100,
        use_filter in prop::bool::ANY,
    ) {
        let c = catalog();
        let mut select = vec![SelectItem { side: Side::Right, attr: "D".into() }];
        if sel_left {
            select.insert(0, SelectItem { side: Side::Left, attr: "A".into() });
        }
        let filters = if use_filter {
            vec![cq_relational::Filter {
                side: Side::Left,
                attr: "C".into(),
                value: Value::Int(filter_val),
            }]
        } else {
            vec![]
        };
        let q = JoinQuery::new(
            QuerySpec {
                key: QueryKey::derive("n", 1),
                subscriber: "n".into(),
                ins_time: Timestamp(0),
                relations: ["R".into(), "S".into()],
                select,
                conditions: [Expr::attr("B"), Expr::attr("E")],
                filters,
            },
            &c,
        )
        .unwrap();
        let sql = q.to_string();
        let reparsed = parse_query(&sql, &c)
            .unwrap()
            .into_query(QueryKey::derive("n", 1), "n", Timestamp(0), &c)
            .unwrap();
        prop_assert_eq!(q, reparsed);
    }

    /// Rewritten-query keys are injective in the (select values, join value)
    /// pair and invariant in everything else.
    #[test]
    fn rewritten_keys_are_content_addressed(
        a1 in -5i64..5, b1 in -5i64..5,
        a2 in -5i64..5, b2 in -5i64..5,
        t1 in 0u64..10, t2 in 0u64..10,
    ) {
        let c = catalog();
        let q = t1_query(&c, 0);
        let r1 = r_tuple(&c, [a1, b1, 0], t1);
        let r2 = r_tuple(&c, [a2, b2, 99], t2); // C differs but is irrelevant
        let k1 = RewrittenQuery::rewrite_attribute(&q, Side::Left, "B", "E", &r1)
            .unwrap().unwrap().key().to_string();
        let k2 = RewrittenQuery::rewrite_attribute(&q, Side::Left, "B", "E", &r2)
            .unwrap().unwrap().key().to_string();
        prop_assert_eq!(k1 == k2, a1 == a2 && b1 == b2);
    }
}
