//! The orchestration layer: the simulated continuous-query network.
//!
//! [`Network`] ties the other two layers together (see `DESIGN.md` and
//! [`crate::protocol`]): external events (posing a query, inserting a
//! tuple) and dequeued protocol messages are handed to the configured
//! [`Protocol`]'s handlers, whose deferred [`Effect`]s are flushed back
//! into the transport layer (`engine::transport`) after each handler
//! returns. Messages are processed FIFO until the network is quiescent;
//! routing walks the real finger tables so hop counts are faithful.
//!
//! This module contains no algorithm-specific logic: the only messages it
//! handles inline are storage-level ones (query indexing, notification
//! storage, replica mirroring) that behave identically under every
//! algorithm.

use std::collections::HashSet;
use std::sync::Arc;

use cq_fasthash::FxHashMap;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cq_overlay::{NodeHandle, Ring};
use cq_relational::{
    parse_query, Catalog, Notification, QueryKey, QueryRef, Timestamp, Tuple, Value,
};

use crate::algo;
use crate::config::EngineConfig;
use crate::error::{EngineError, Result};
use crate::faults::FaultPipe;
use crate::messages::Message;
use crate::metrics::Metrics;
use crate::node::NodeState;
use crate::protocol::{Effect, NodeCtx, Protocol};
use crate::recovery::Recovery;
use crate::replication::ReplicaItem;
use crate::tables::StoredQuery;
use crate::trace::{TraceEvent, TraceSink};
use crate::transport::{ActiveTransport, SimTransport, Transport as _};
use crate::transport_tcp::{SocketStats, TcpOptions, TcpTransport};

/// The whole simulated network.
pub struct Network {
    pub(crate) config: EngineConfig,
    catalog: Catalog,
    pub(crate) ring: Ring,
    pub(crate) nodes: Vec<NodeState>,
    pub(crate) metrics: Metrics,
    clock: Timestamp,
    seq: u64,
    rng: StdRng,
    /// The evaluation algorithm, behind the [`Protocol`] trait. Shared so a
    /// handler invocation can borrow the network mutably alongside it.
    protocol: Arc<dyn Protocol>,
    /// Reusable effect buffer handlers push into (drained after each
    /// handler, kept allocated across invocations).
    outbox: Vec<Effect>,
    /// Reusable string buffer for per-arrival value keys, threaded into
    /// each [`NodeCtx`] so kernels build keys without allocating.
    scratch: String,
    /// The installed transport backend: the deterministic in-memory queue
    /// (with its optional fault pipe) by default, or framed TCP loopback
    /// sockets after [`Network::enable_tcp_transport`].
    pub(crate) transport: ActiveTransport,
    /// The trace sink; `None` (the default) keeps every emission site a
    /// single untaken branch, so the hot path is unchanged.
    pub(crate) tracer: Option<Arc<dyn TraceSink>>,
    /// Per-slot send counters backing trace [`MsgId`]s on the perfect
    /// delivery path (the fault pipe allocates its own when installed).
    ///
    /// [`MsgId`]: crate::faults::MsgId
    pub(crate) trace_seq: Vec<u64>,
    /// The in-protocol failure detector (`engine::recovery`); `None` (the
    /// default) leaves failure handling to oracle `stabilize` calls.
    pub(crate) recovery: Option<Box<Recovery>>,
    /// `Key(n) → handle` for notification delivery.
    pub(crate) subscribers: FxHashMap<String, NodeHandle>,
    /// Log of every posed query (for oracles and tests).
    posed_queries: Vec<QueryRef>,
    /// Log of every inserted tuple (for oracles and tests).
    inserted_tuples: Vec<Arc<Tuple>>,
}

impl Network {
    /// Builds a stable network of `config.nodes` nodes running the
    /// algorithm named by `config.algorithm`.
    pub fn new(config: EngineConfig, catalog: Catalog) -> Self {
        let protocol = algo::protocol_for(config.algorithm);
        Network::with_protocol(config, catalog, protocol)
    }

    /// Builds a network running an explicit [`Protocol`] implementation
    /// (the algorithm named in `config` is ignored for dispatch, though it
    /// still labels metrics and reports).
    pub fn with_protocol(
        config: EngineConfig,
        catalog: Catalog,
        protocol: Arc<dyn Protocol>,
    ) -> Self {
        let ring = Ring::build(config.space(), config.nodes, "node-");
        let slots = ring.slot_count();
        let seed = config.seed;
        // The detector needs the tick pump: probes, timeouts and digest
        // rounds all live in pump time, so enabling suspicion installs the
        // pipe even when no delivery fault is configured.
        let pipe = (config.fault.perturbs_delivery() || config.suspicion.enabled)
            .then(|| Box::new(FaultPipe::new(config.fault.clone(), slots)));
        let recovery = config
            .suspicion
            .enabled
            .then(|| Box::new(Recovery::new(config.suspicion)));
        Network {
            config,
            catalog,
            ring,
            nodes: (0..slots).map(|_| NodeState::new()).collect(),
            metrics: Metrics::new(slots),
            clock: Timestamp(0),
            seq: 0,
            rng: StdRng::seed_from_u64(seed),
            protocol,
            outbox: Vec::new(),
            scratch: String::with_capacity(64),
            tracer: None,
            trace_seq: Vec::new(),
            transport: ActiveTransport::Sim(SimTransport::new(pipe)),
            recovery,
            subscribers: FxHashMap::default(),
            posed_queries: Vec::new(),
            inserted_tuples: Vec::new(),
        }
    }

    /// Swaps the deterministic in-memory transport for real framed TCP
    /// sockets over `127.0.0.1` — one listener per node, every message
    /// serialized through [`crate::wire`] and read back off the socket
    /// before dispatch. Envelope order is preserved exactly, so a TCP run
    /// delivers the same notification set as a simulator run of the same
    /// seed.
    ///
    /// Incompatible with the fault-injection pipe and the failure detector
    /// (both simulate time inside the in-memory pump): enabling TCP on such
    /// a configuration is a protocol error. Call before posing queries so
    /// no envelopes are queued on the old backend.
    pub fn enable_tcp_transport(&mut self) -> Result<()> {
        self.enable_tcp_transport_with(TcpOptions::default())
    }

    /// [`Network::enable_tcp_transport`] with explicit backend tuning —
    /// tests shrink the kernel socket buffers to force the write path into
    /// userspace backpressure, or shorten the stall timeout so
    /// lost-frame scenarios fail fast.
    pub fn enable_tcp_transport_with(&mut self, opts: TcpOptions) -> Result<()> {
        if self.transport.has_pipe() || self.recovery.is_some() {
            return Err(EngineError::Protocol {
                detail: "TCP transport requires perfect delivery: disable fault injection and \
                         the suspicion detector"
                    .to_string(),
            });
        }
        if !self.transport.is_idle() {
            return Err(EngineError::Protocol {
                detail: "TCP transport must be enabled before any message is queued".to_string(),
            });
        }
        self.transport = ActiveTransport::Tcp(Box::new(TcpTransport::bind(
            self.ring.slot_count(),
            self.catalog.clone(),
            opts,
        )?));
        Ok(())
    }

    /// The loopback listener address of every node slot when the TCP
    /// backend is active (`None` on the in-memory backend). Adversarial
    /// framing tests connect rogue peers to these.
    pub fn tcp_local_addrs(&self) -> Option<&[std::net::SocketAddr]> {
        match &self.transport {
            ActiveTransport::Tcp(t) => Some(t.local_addrs()),
            ActiveTransport::Sim(_) => None,
        }
    }

    /// How many times the TCP backend's flush parked bytes in userspace
    /// because a kernel send buffer was full (0 on the in-memory backend).
    /// Observable effect of write backpressure for tests and diagnostics.
    pub fn tcp_backpressure_events(&self) -> u64 {
        match &self.transport {
            ActiveTransport::Tcp(t) => t.backpressure_events(),
            ActiveTransport::Sim(_) => 0,
        }
    }

    /// Drains the TCP backend's aggregate socket statistics — syscalls,
    /// bytes each way, frames each way, write backpressure, and the inbox
    /// buffer-pool hit rate (`None` on the in-memory backend, which never
    /// touches a socket). Take-style like wire bytes: counters reset to
    /// zero, so per-phase deltas compose by calling between phases.
    pub fn take_socket_stats(&mut self) -> Option<SocketStats> {
        match &mut self.transport {
            ActiveTransport::Tcp(t) => t.take_socket_stats(),
            ActiveTransport::Sim(_) => None,
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// The schema catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The underlying Chord ring.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// The protocol (evaluation algorithm) this network runs.
    pub fn protocol(&self) -> &dyn Protocol {
        &*self.protocol
    }

    /// Collected metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Installs a trace sink; every subsequent engine action emits typed
    /// [`TraceEvent`]s into it. Sinks observe only — installing one cannot
    /// change a run's results (see [`crate::trace`]).
    pub fn set_tracer(&mut self, tracer: Arc<dyn TraceSink>) {
        self.tracer = Some(tracer);
    }

    /// Removes the trace sink, returning emission to the zero-cost path.
    pub fn clear_tracer(&mut self) {
        self.tracer = None;
    }

    /// Emits a [`TraceEvent::Phase`] marker (no-op without a sink) so trace
    /// consumers can segment a run into named phases.
    pub fn trace_phase(&self, name: &str) {
        self.trace(|| TraceEvent::Phase {
            tick: self.clock.0,
            name: name.to_string(),
        });
    }

    /// Emits one trace event when a sink is installed. Construction is
    /// deferred behind the closure so the disabled path is a single branch.
    #[inline]
    pub(crate) fn trace(&self, f: impl FnOnce() -> TraceEvent) {
        if let Some(t) = &self.tracer {
            t.record(&f());
        }
    }

    /// Whether a trace sink is installed (sites that must gather extra data
    /// — e.g. hop paths — check this before doing the work).
    #[inline]
    pub(crate) fn trace_on(&self) -> bool {
        self.tracer.is_some()
    }

    /// The logical clock value trace events are stamped with.
    #[inline]
    pub(crate) fn trace_tick(&self) -> u64 {
        self.clock.0
    }

    /// Resets load/traffic counters (e.g. after a warm-up phase).
    pub fn reset_metrics(&mut self) {
        self.metrics.reset();
    }

    /// Current logical time.
    pub fn clock(&self) -> Timestamp {
        self.clock
    }

    /// Advances the logical clock.
    pub fn advance_clock(&mut self, dt: u64) {
        self.clock = Timestamp(self.clock.0 + dt);
    }

    /// Ends a statistics time window on every node: rewriters roll their
    /// arrival counters (Section 4.3.6 keeps rates "in the last time
    /// window").
    pub fn roll_statistics_windows(&mut self) {
        for n in &mut self.nodes {
            n.roll_statistics_window();
        }
    }

    /// Number of currently alive nodes.
    pub fn alive_count(&self) -> usize {
        self.ring.len()
    }

    /// Handle of the `i`-th alive node (panics when out of range).
    pub fn node_at(&self, i: usize) -> NodeHandle {
        self.ring.alive_nodes().nth(i).expect("node index in range")
    }

    /// A pseudo-random alive node.
    pub fn random_node(&mut self) -> NodeHandle {
        let n = self.ring.len();
        let i = self.rng.gen_range(0..n);
        self.node_at(i)
    }

    /// Protocol state of a node (read-only).
    pub fn node_state(&self, h: NodeHandle) -> &NodeState {
        &self.nodes[h.index()]
    }

    /// Every query posed so far.
    pub fn posed_queries(&self) -> &[QueryRef] {
        &self.posed_queries
    }

    /// Every tuple inserted so far.
    pub fn inserted_tuples(&self) -> &[Arc<Tuple>] {
        &self.inserted_tuples
    }

    /// Notifications a node has received as a subscriber.
    pub fn inbox(&self, h: NodeHandle) -> &[Notification] {
        &self.nodes[h.index()].inbox
    }

    /// The distinct notification contents delivered anywhere in the network
    /// (inboxes plus offline stores) — the paper's set semantics.
    pub fn delivered_set(&self) -> HashSet<Notification> {
        let mut out = HashSet::new();
        for n in &self.nodes {
            out.extend(n.inbox.iter().cloned());
            out.extend(n.offline_store.iter().map(|(_, n)| n.clone()));
        }
        out
    }

    /// Per-node storage loads, indexed by node slot.
    pub fn storage_loads(&self) -> Vec<usize> {
        self.nodes.iter().map(NodeState::storage_load).collect()
    }

    // ==================================================================
    // External events
    // ==================================================================

    /// Poses a continuous query written in the supported SQL subset from
    /// `node`, returning its key.
    pub fn pose_query_sql(&mut self, node: NodeHandle, sql: &str) -> Result<QueryKey> {
        let parsed = parse_query(sql, &self.catalog)?;
        self.tick();
        let node_key = self.ring.node(node).key().to_string();
        let counter = {
            let st = &mut self.nodes[node.index()];
            let c = st.query_counter;
            st.query_counter += 1;
            c
        };
        let key = QueryKey::derive(&node_key, counter);
        let query =
            Arc::new(parsed.into_query(key.clone(), node_key, self.clock, &self.catalog)?);
        self.pose_query(node, query)?;
        Ok(key)
    }

    /// Poses an already-built continuous query from `node`.
    ///
    /// The query's `insT` is whatever the caller baked into it — unlike
    /// [`Network::pose_query_sql`], this does not advance the logical clock,
    /// so a query stamped with a past `insT` will (by the time semantics of
    /// Section 3.2) be triggered by tuples published at or after that time.
    pub fn pose_query(&mut self, node: NodeHandle, query: QueryRef) -> Result<()> {
        if !self.ring.node(node).is_alive() {
            return Err(EngineError::UnknownNode);
        }
        self.protocol.validate_query(&query)?;
        self.subscribers
            .insert(query.subscriber().to_string(), node);
        self.posed_queries.push(Arc::clone(&query));
        self.run_protocol(node, |p, ctx| p.on_pose_query(ctx, &query))?;
        self.process_all()?;
        Ok(())
    }

    /// Inserts a tuple of `relation` from `node`, returning its sequence
    /// number.
    pub fn insert_tuple(
        &mut self,
        node: NodeHandle,
        relation: &str,
        values: Vec<Value>,
    ) -> Result<u64> {
        if !self.ring.node(node).is_alive() {
            return Err(EngineError::UnknownNode);
        }
        self.tick();
        let schema = self.catalog.get(relation)?.clone();
        let seq = self.seq;
        self.seq += 1;
        let tuple = Arc::new(Tuple::new(schema, values, self.clock, seq)?);
        self.inserted_tuples.push(Arc::clone(&tuple));
        self.run_protocol(node, |p, ctx| p.on_publish_tuple(ctx, &tuple))?;
        self.process_all()?;
        Ok(seq)
    }

    /// Advances the clock by one — every external event gets a fresh
    /// timestamp, so `pubT`/`insT` comparisons are never ambiguous.
    fn tick(&mut self) {
        self.clock = Timestamp(self.clock.0 + 1);
    }

    // ==================================================================
    // Protocol dispatch
    // ==================================================================

    /// The configured k-successor replication factor.
    #[inline]
    pub(crate) fn repl_k(&self) -> usize {
        self.config.fault.replication
    }

    /// Runs one protocol handler at `at`, then flushes the effects it
    /// pushed into the transport (in push order). Effects produced before a
    /// handler error are still flushed — mirroring inline sends, which
    /// would already have left the node when the error surfaced.
    fn run_protocol<F>(&mut self, at: NodeHandle, f: F) -> Result<()>
    where
        F: FnOnce(&dyn Protocol, &mut NodeCtx<'_>) -> Result<()>,
    {
        let protocol = Arc::clone(&self.protocol);
        let mut outbox = std::mem::take(&mut self.outbox);
        debug_assert!(outbox.is_empty(), "outbox drained after every handler");
        let result = {
            let mut ctx = NodeCtx::new(
                at,
                &self.config,
                &self.ring,
                &mut self.nodes,
                &mut self.metrics,
                &mut self.rng,
                &mut outbox,
                &mut self.scratch,
            )
            .with_trace(self.tracer.as_deref(), self.clock.0);
            f(&*protocol, &mut ctx)
        };
        let flushed = self.flush_effects(at, &mut outbox);
        outbox.clear();
        self.outbox = outbox;
        result.and(flushed)
    }

    /// Maps each deferred [`Effect`] onto its transport primitive, in push
    /// order. A transport error aborts the flush, exactly as an inline send
    /// error aborted the rest of the old handler.
    fn flush_effects(&mut self, from: NodeHandle, outbox: &mut Vec<Effect>) -> Result<()> {
        for effect in outbox.drain(..) {
            match effect {
                Effect::Batch { kind, targets } => self.dispatch_from(from, targets, kind)?,
                Effect::Send { id, msg } => self.send_via_jfrt(from, id, msg)?,
                Effect::Replicate { item } => self.replicate(from, item),
                Effect::Deliver { matches } => self.deliver_matches(from, matches)?,
            }
        }
        Ok(())
    }

    /// Handles one dequeued message at `at`: storage-level messages
    /// inline, algorithm-specific ones through the [`Protocol`] trait.
    pub(crate) fn dispatch(&mut self, at: NodeHandle, msg: Message) -> Result<()> {
        match msg {
            Message::IndexQuery {
                query,
                index_side,
                index_attr,
                index_id,
            } => {
                let entry = StoredQuery {
                    index_id,
                    query,
                    index_side,
                    index_attr,
                };
                if self.repl_k() > 0 {
                    let fresh = self.nodes[at.index()].alqt.insert(entry.clone());
                    self.trace_index_insert(at, "alqt", fresh);
                    if fresh {
                        self.replicate(at, ReplicaItem::Query(entry));
                    }
                } else {
                    let fresh = self.nodes[at.index()].alqt.insert(entry);
                    self.trace_index_insert(at, "alqt", fresh);
                }
                Ok(())
            }
            Message::AlIndexTuple {
                tuple,
                attr,
                index_id,
            } => self.run_protocol(at, |p, ctx| p.on_tuple_arrival(ctx, tuple, attr, index_id)),
            Message::VlIndexTuple {
                tuple,
                attr,
                index_id,
            } => self.run_protocol(at, |p, ctx| p.on_value_tuple(ctx, tuple, attr, index_id)),
            Message::Join { items, index_id } => {
                self.run_protocol(at, |p, ctx| p.on_rewritten_query(ctx, items, index_id))
            }
            Message::JoinV(join) => self.run_protocol(at, |p, ctx| p.on_join_message(ctx, join)),
            Message::StoreNotifications {
                subscriber_id,
                notifications,
            } => {
                // Counted here — at actual offline-store arrival — not at
                // send time, so a lost message is never counted delivered.
                self.metrics.notifications_delivered += notifications.len() as u64;
                self.metrics.notifications_stored_offline += notifications.len() as u64;
                self.trace(|| TraceEvent::NotifyDelivered {
                    tick: self.clock.0,
                    node: at.index() as u32,
                    count: notifications.len() as u64,
                    offline: true,
                });
                if self.repl_k() > 0 {
                    for n in &notifications {
                        self.replicate(
                            at,
                            ReplicaItem::Offline {
                                id: subscriber_id,
                                notification: n.clone(),
                            },
                        );
                    }
                }
                let store = &mut self.nodes[at.index()].offline_store;
                store.extend(notifications.into_iter().map(|n| (subscriber_id, n)));
                Ok(())
            }
            Message::Notify { notifications } => {
                // Counted here — at actual inbox arrival.
                self.metrics.notifications_delivered += notifications.len() as u64;
                self.trace(|| TraceEvent::NotifyDelivered {
                    tick: self.clock.0,
                    node: at.index() as u32,
                    count: notifications.len() as u64,
                    offline: false,
                });
                self.nodes[at.index()].inbox.extend(notifications);
                Ok(())
            }
            Message::Replicate { item } => self.nodes[at.index()].replicas.insert(*item),
            Message::Ping { from, seq } => {
                // Heartbeat probe: answer directly to the prober. The pong
                // is itself a probe message — fire-and-forget, never acked.
                let me = at.index() as u32;
                self.push_direct(
                    at,
                    NodeHandle::from_index(from as usize),
                    Message::Pong { from: me, seq },
                );
                Ok(())
            }
            Message::Pong { from, .. } => {
                self.on_pong(at, from);
                Ok(())
            }
            Message::Bundle(msgs) => {
                // Unwrap in order: dispatching members back-to-back is
                // exactly equivalent to popping them consecutively off the
                // queue, because each member's effects enqueue at the back —
                // behind the rest of the run in both schedules.
                for m in msgs {
                    self.dispatch(at, m)?;
                }
                Ok(())
            }
        }
    }

    /// Emits an [`TraceEvent::IndexInsert`] for a storage-level insert.
    #[inline]
    fn trace_index_insert(&self, at: NodeHandle, table: &'static str, fresh: bool) {
        self.trace(|| TraceEvent::IndexInsert {
            tick: self.clock.0,
            node: at.index() as u32,
            table,
            fresh,
        });
    }
}
