//! Real-socket transport backend: a nonblocking, readiness-driven TCP
//! event loop over `std::net` loopback.
//!
//! One listener per node slot, lazily established per-`(from, to)` stream
//! pairs, and every [`crate::messages::Message`] serialized through [`crate::wire`] on send
//! and decoded back off the socket before dispatch. Unlike the original
//! blocking lockstep backend (write one frame, read one frame), every
//! socket here is **nonblocking** and owned by a single reactor:
//!
//! * a [`cq_poll::Poller`] (epoll on Linux) reports which sockets are
//!   readable or writable;
//! * each connection is a [`crate::frames::FrameConn`] with its own framed
//!   read/write buffers — partial frames reassemble across reads, and a
//!   full kernel send buffer parks the remaining bytes in userspace
//!   (**write backpressure**) until the poller reports the socket writable;
//! * [`Transport::poll`] is the explicit progress hook: it flushes
//!   backpressured writers, accepts pending connections, and drains
//!   readable sockets. [`Transport::next_delivery`] never blocks — it hands
//!   out the head envelope only once its frame has fully arrived, and the
//!   driver (`Network::process_all`) calls `poll(block = true)` whenever
//!   envelopes are outstanding but no frame is ready.
//!
//! The backend keeps a userspace FIFO of *envelopes* (sender, receiver,
//! target, trace fields) in exact enqueue order while only the message
//! payload crosses the wire; because each stream preserves order, frames
//! carry per-stream sequence numbers, and the FIFO fixes the global order,
//! a run over sockets dispatches the identical message sequence as the
//! in-memory simulator at the same seed — delivered sets and metrics match
//! by construction.
//!
//! Failure model: `enqueue` must be infallible (transport contract), so a
//! send that fails parks the error and [`Transport::next_delivery`]
//! surfaces it as a typed [`EngineError::Protocol`]; messages enqueued
//! while an error is parked are counted and the count is reported in the
//! surfaced error. Frame/envelope **misalignment is detected, never
//! repaired silently**: every stream numbers its frames, a reconnect hello
//! announces the sender's next sequence number, and any gap (frames that
//! died buffered in a broken connection) or replay surfaces as a typed
//! protocol error instead of decoding the wrong message. The
//! fault-injection pipe is a simulator construct and is never installed
//! here.

use std::collections::VecDeque;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

use cq_fasthash::FxHashMap;
use cq_poll::{Event, Interest, Poller};

use crate::error::{EngineError, Result};
use crate::faults::FaultPipe;
use crate::frames::{BufPool, ConnCounters, FrameConn, RawFrame};
use crate::messages::Message;
use crate::transport::{Pending, Transport};
use crate::wire;

use cq_relational::Catalog;

/// Hello preamble bytes on every fresh stream: the sender's slot (u32 LE)
/// followed by the sequence number of the first frame this stream will
/// carry (u64 LE).
const HELLO_LEN: usize = 12;

/// How long one blocking [`Transport::poll`] slice waits for readiness
/// before returning to the driver.
const POLL_SLICE: Duration = Duration::from_millis(25);

/// Tuning knobs for the TCP backend — all optional; the defaults match
/// production behavior and tests override them to force specific paths
/// (tiny kernel buffers exercise backpressure, a short stall timeout makes
/// deadlock tests fast, `max_coalesce_bytes: 0` restores eager
/// flush-per-message for ordering-equivalence checks).
#[derive(Clone, Copy, Debug)]
pub struct TcpOptions {
    /// Kernel send-buffer size (`SO_SNDBUF`) applied to every outgoing
    /// stream; `None` keeps the system default. Shrinking it forces the
    /// write path into userspace backpressure.
    pub send_buffer: Option<usize>,
    /// Kernel receive-buffer size (`SO_RCVBUF`) applied to every outgoing
    /// stream; `None` keeps the system default.
    pub recv_buffer: Option<usize>,
    /// How long the transport may wait for socket progress while an
    /// envelope's frame is outstanding before the run fails with a typed
    /// stall error (a lost frame would otherwise hang the drive loop).
    pub stall_timeout: Duration,
    /// The coalesced-flush bound: `enqueue` only buffers frames, and the
    /// reactor flushes each connection once per poll — unless a
    /// connection's queued bytes reach this bound, which forces an
    /// immediate flush so userspace queueing (and therefore added latency)
    /// stays bounded. `0` disables coalescing entirely: every enqueue
    /// flushes eagerly, one syscall per frame, exactly the pre-coalescing
    /// behavior.
    pub max_coalesce_bytes: usize,
}

impl Default for TcpOptions {
    fn default() -> Self {
        TcpOptions {
            send_buffer: None,
            recv_buffer: None,
            stall_timeout: Duration::from_secs(10),
            max_coalesce_bytes: 256 * 1024,
        }
    }
}

/// Aggregate socket-path statistics, drained `take_wire_bytes`-style via
/// the transport's `take_socket_stats` hook (and surfaced as
/// [`crate::Network::take_socket_stats`]). Connection tallies fold in here when a
/// connection closes and when the stats are taken; pool counters come from
/// the shared inbox [`BufPool`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SocketStats {
    /// `writev` calls issued across all connections (including
    /// `WouldBlock` attempts).
    pub write_syscalls: u64,
    /// `read` calls issued across all connections (including `WouldBlock`
    /// probes and EOF reads).
    pub read_syscalls: u64,
    /// Bytes the kernel accepted for sending.
    pub bytes_written: u64,
    /// Bytes read off the sockets.
    pub bytes_read: u64,
    /// Frames queued for sending.
    pub frames_sent: u64,
    /// Complete frames reassembled off the wire.
    pub frames_received: u64,
    /// Times any flush parked bytes in userspace (write backpressure).
    pub blocked_writes: u64,
    /// Inbox frame buffers served from the recycling pool.
    pub pool_hits: u64,
    /// Inbox frame buffers that had to be freshly allocated.
    pub pool_misses: u64,
}

impl SocketStats {
    /// Frames sent per write syscall — > 1 means flushes genuinely
    /// coalesce (the eager-flush baseline is exactly 1 frame per write).
    pub fn frames_per_flush(&self) -> f64 {
        if self.write_syscalls == 0 {
            return 0.0;
        }
        self.frames_sent as f64 / self.write_syscalls as f64
    }

    /// Payload bytes moved per syscall, reads and writes combined.
    pub fn bytes_per_syscall(&self) -> f64 {
        let calls = self.write_syscalls + self.read_syscalls;
        if calls == 0 {
            return 0.0;
        }
        (self.bytes_written + self.bytes_read) as f64 / calls as f64
    }

    /// Fraction of inbox frame buffers served without allocating.
    pub fn pool_hit_rate(&self) -> f64 {
        let total = self.pool_hits + self.pool_misses;
        if total == 0 {
            return 0.0;
        }
        self.pool_hits as f64 / total as f64
    }

    /// Folds one connection's tallies into the aggregate.
    fn merge_conn(&mut self, c: &ConnCounters) {
        self.write_syscalls += c.write_syscalls;
        self.read_syscalls += c.read_syscalls;
        self.bytes_written += c.bytes_written;
        self.bytes_read += c.bytes_read;
        self.frames_sent += c.frames_out;
        self.frames_received += c.frames_in;
        self.blocked_writes += c.blocked_writes;
    }
}

/// The queued metadata for one in-flight message: everything [`Pending`]
/// carries except the payload, which is on the wire.
struct Envelope {
    from: cq_overlay::NodeHandle,
    to: cq_overlay::NodeHandle,
    target: cq_overlay::Id,
    reroute: bool,
    trace_id: Option<crate::faults::MsgId>,
    trace_path: Option<Vec<u32>>,
}

/// Maps an I/O failure into the transport's typed protocol error.
fn io_err(context: &str, e: io::Error) -> EngineError {
    EngineError::Protocol {
        detail: format!("tcp transport: {context}: {e}"),
    }
}

/// What role a reactor connection is playing.
enum ConnKind {
    /// Established outgoing stream: this side only writes frames (a read
    /// event can only mean the peer closed).
    Out {
        /// Sending slot.
        from: u32,
        /// Receiving slot.
        to: u32,
    },
    /// Accepted stream still reading its [`HELLO_LEN`]-byte preamble.
    Handshake {
        /// The accepting slot.
        to: u32,
        /// Hello bytes received so far.
        buf: [u8; HELLO_LEN],
        /// How many of `buf`'s bytes are filled.
        have: usize,
    },
    /// Established incoming stream delivering frames from `from` to `to`.
    In {
        /// The accepting slot.
        to: u32,
        /// The sending slot (from the hello).
        from: u32,
    },
}

/// One reactor-owned connection.
struct Conn {
    fc: FrameConn,
    kind: ConnKind,
    /// Whether the poller currently watches this socket for writability
    /// (kept in sync lazily so interest changes cost an `epoll_ctl` only
    /// when the state actually flips).
    armed_write: bool,
}

/// The TCP loopback backend. See the module docs for the reactor, ordering
/// and failure model.
pub(crate) struct TcpTransport {
    /// Schemas for decoding tuples read back off the wire.
    catalog: Catalog,
    /// Backend tuning (socket buffers, stall timeout).
    opts: TcpOptions,
    /// The readiness poller driving every socket below.
    poller: Poller,
    /// One nonblocking listener per node slot, bound on `127.0.0.1:0`,
    /// registered under tokens `0..slots`.
    listeners: Vec<TcpListener>,
    /// The bound address of each slot's listener.
    addrs: Vec<SocketAddr>,
    /// Connection table; token `slots + i` maps to `conns[i]`.
    conns: Vec<Option<Conn>>,
    /// Free slots in `conns` for reuse.
    free: Vec<usize>,
    /// Established outgoing streams, keyed `(sender, receiver)`.
    out: FxHashMap<(u32, u32), usize>,
    /// Established incoming streams, keyed `(receiver, sender)`.
    incoming: FxHashMap<(u32, u32), usize>,
    /// Fully reassembled frames awaiting their envelope, per `(receiver,
    /// sender)` stream, in arrival order.
    inbox: FxHashMap<(u32, u32), VecDeque<Vec<u8>>>,
    /// Next frame sequence number per outgoing logical stream. Survives
    /// reconnects — the hello announces it so the receiver can detect loss.
    send_seq: FxHashMap<(u32, u32), u64>,
    /// Next expected frame sequence number per incoming logical stream.
    recv_seq: FxHashMap<(u32, u32), u64>,
    /// Envelope metadata in network-global FIFO order.
    queue: VecDeque<Envelope>,
    /// A send failure parked until the next `next_delivery` call.
    deferred: Option<EngineError>,
    /// Messages discarded while `deferred` was parked (reported in the
    /// surfaced error so a failed run says how much was lost).
    dropped_after_error: u64,
    /// Exact stream bytes written per message kind ([`crate::messages::Message::KINDS`]
    /// order): the codec frame plus its 8-byte sequence header.
    bytes_sent: [u64; 11],
    /// Recycling pool for inbox frame buffers, shared across every
    /// connection: `read_frames` draws from it and `next_delivery` returns
    /// each frame after decoding, so steady-state inbox traffic allocates
    /// nothing.
    pool: BufPool,
    /// Aggregate socket statistics (closed connections fold in here; live
    /// connection tallies are folded on [`Transport::take_socket_stats`]).
    stats: SocketStats,
    /// Reusable poller event buffer.
    events: Vec<Event>,
    /// Reusable frame-reassembly output buffer.
    scratch: Vec<RawFrame>,
    /// Accumulated blocking wait time with zero readiness events while
    /// envelopes were outstanding (drives the stall timeout).
    stalled: Duration,
    /// Total times any connection entered write backpressure (kernel
    /// buffer full, bytes parked in userspace).
    backpressure_events: u64,
}

impl TcpTransport {
    /// Binds one nonblocking loopback listener per node slot and sets up
    /// the reactor.
    pub(crate) fn bind(slots: usize, catalog: Catalog, opts: TcpOptions) -> Result<Self> {
        let mut poller = Poller::new().map_err(|e| io_err("create poller", e))?;
        let mut listeners = Vec::with_capacity(slots);
        let mut addrs = Vec::with_capacity(slots);
        for slot in 0..slots {
            let listener = TcpListener::bind(("127.0.0.1", 0))
                .map_err(|e| io_err(&format!("bind listener for node {slot}"), e))?;
            listener
                .set_nonblocking(true)
                .map_err(|e| io_err(&format!("nonblocking listener for node {slot}"), e))?;
            poller
                .register(&listener, slot as u64, Interest::READ)
                .map_err(|e| io_err(&format!("register listener for node {slot}"), e))?;
            addrs.push(
                listener
                    .local_addr()
                    .map_err(|e| io_err(&format!("local addr for node {slot}"), e))?,
            );
            listeners.push(listener);
        }
        Ok(TcpTransport {
            catalog,
            opts,
            poller,
            listeners,
            addrs,
            conns: Vec::new(),
            free: Vec::new(),
            out: FxHashMap::default(),
            incoming: FxHashMap::default(),
            inbox: FxHashMap::default(),
            send_seq: FxHashMap::default(),
            recv_seq: FxHashMap::default(),
            queue: VecDeque::new(),
            deferred: None,
            dropped_after_error: 0,
            bytes_sent: [0; 11],
            pool: BufPool::new(),
            stats: SocketStats::default(),
            events: Vec::new(),
            scratch: Vec::new(),
            stalled: Duration::ZERO,
            backpressure_events: 0,
        })
    }

    /// The bound listener addresses, indexed by node slot (tests point
    /// adversarial peers at these).
    pub(crate) fn local_addrs(&self) -> &[SocketAddr] {
        &self.addrs
    }

    /// Total times any connection's flush parked bytes in userspace
    /// because the kernel send buffer was full.
    pub(crate) fn backpressure_events(&self) -> u64 {
        self.backpressure_events
    }

    /// The poller token of connection-table index `idx`.
    fn conn_token(&self, idx: usize) -> u64 {
        (self.listeners.len() + idx) as u64
    }

    /// Inserts a connection into the table and registers it readable.
    fn alloc_conn(&mut self, conn: Conn) -> Result<usize> {
        let idx = self.free.pop().unwrap_or_else(|| {
            self.conns.push(None);
            self.conns.len() - 1
        });
        let token = self.conn_token(idx);
        self.poller
            .register(conn.fc.stream(), token, Interest::READ)
            .map_err(|e| io_err("register connection", e))?;
        self.conns[idx] = Some(conn);
        Ok(idx)
    }

    /// Deregisters, unmaps and drops a connection, folding its I/O tallies
    /// into the aggregate stats. The per-stream sequence counters survive —
    /// they are what lets a reconnect prove (or disprove) that no frame was
    /// lost in between.
    fn close_conn(&mut self, idx: usize) {
        if let Some(mut conn) = self.conns[idx].take() {
            self.stats.merge_conn(&conn.fc.take_counters());
            let _ = self.poller.deregister(conn.fc.stream());
            match conn.kind {
                ConnKind::Out { from, to } => {
                    if self.out.get(&(from, to)) == Some(&idx) {
                        self.out.remove(&(from, to));
                    }
                }
                ConnKind::In { to, from } => {
                    if self.incoming.get(&(to, from)) == Some(&idx) {
                        self.incoming.remove(&(to, from));
                    }
                }
                ConnKind::Handshake { .. } => {}
            }
            self.free.push(idx);
        }
    }

    /// Arms or disarms write interest for `idx`, issuing the poller
    /// `modify` only when the state actually changes (level-triggered:
    /// leaving write interest on an idle socket would spin the poller, and
    /// re-modifying an unchanged one would cost an `epoll_ctl` per flush).
    fn set_write_interest(&mut self, idx: usize, want: bool) -> Result<()> {
        let token = self.conn_token(idx);
        let Some(conn) = self.conns[idx].as_mut() else {
            return Ok(());
        };
        if conn.armed_write == want {
            return Ok(());
        }
        conn.armed_write = want;
        let interest = if want { Interest::BOTH } else { Interest::READ };
        self.poller
            .modify(conn.fc.stream(), token, interest)
            .map_err(|e| io_err("update interest", e))
    }

    /// Flushes a connection's write queue (one vectored write per syscall)
    /// and keeps the poller's write interest in sync: armed while bytes
    /// stay parked under backpressure, disarmed once the queue drains.
    fn flush_conn(&mut self, idx: usize) -> Result<()> {
        let Some(conn) = self.conns[idx].as_mut() else {
            return Ok(());
        };
        match conn.fc.flush() {
            Ok(true) => self.set_write_interest(idx, false),
            Ok(false) => {
                self.backpressure_events += 1;
                self.set_write_interest(idx, true)
            }
            Err(e) => {
                let context = match conn.kind {
                    ConnKind::Out { from, to } => format!("write {from}→{to}"),
                    _ => "write".to_string(),
                };
                self.close_conn(idx);
                Err(io_err(&context, e))
            }
        }
    }

    /// Returns the table index of the live `(from → to)` outgoing stream,
    /// connecting (and queueing the hello) if none exists.
    fn ensure_out(&mut self, from: u32, to: u32) -> Result<usize> {
        if let Some(&idx) = self.out.get(&(from, to)) {
            let live = self.conns[idx].as_ref().is_some_and(|c| !c.fc.is_eof());
            if live {
                return Ok(idx);
            }
            self.close_conn(idx);
        }
        let connect = || -> io::Result<TcpStream> {
            let stream = TcpStream::connect(self.addrs[to as usize])?;
            stream.set_nodelay(true)?;
            if let Some(bytes) = self.opts.send_buffer {
                cq_poll::set_send_buffer(&stream, bytes)?;
            }
            if let Some(bytes) = self.opts.recv_buffer {
                cq_poll::set_recv_buffer(&stream, bytes)?;
            }
            Ok(stream)
        };
        let stream = connect().map_err(|e| io_err(&format!("connect {from}→{to}"), e))?;
        let mut fc = FrameConn::new(stream, wire::MAX_FRAME)
            .map_err(|e| io_err(&format!("nonblocking stream {from}→{to}"), e))?;
        let next_seq = self.send_seq.get(&(from, to)).copied().unwrap_or(0);
        let mut hello = [0u8; HELLO_LEN];
        hello[..4].copy_from_slice(&from.to_le_bytes());
        hello[4..].copy_from_slice(&next_seq.to_le_bytes());
        fc.queue_bytes(&hello);
        let idx = self.alloc_conn(Conn {
            fc,
            kind: ConnKind::Out { from, to },
            armed_write: false,
        })?;
        self.out.insert((from, to), idx);
        Ok(idx)
    }

    /// Encodes one message *in place* at the end of the `(from → to)`
    /// stream's write queue (no scratch buffer, no memcpy) and applies the
    /// coalesced flush policy: the frame normally just buffers — the
    /// reactor flushes once per poll — but a queue at or past
    /// `max_coalesce_bytes` (or any queueing at all when the bound is 0,
    /// the eager mode) flushes immediately. Returns the exact stream bytes
    /// queued: the codec frame plus its 8-byte sequence header.
    fn enqueue_frame(&mut self, from: u32, to: u32, msg: &Message) -> Result<usize> {
        let idx = self.ensure_out(from, to)?;
        let seq = self.send_seq.entry((from, to)).or_insert(0);
        let frame_seq = *seq;
        *seq += 1;
        // Invariant: ensure_out returned a live table entry.
        let conn = self.conns[idx].as_mut().expect("live outgoing conn");
        let appended = conn
            .fc
            .append_frame_with(frame_seq, |buf| wire::encode_message(msg, buf));
        if conn.fc.queued_write_bytes() >= self.opts.max_coalesce_bytes {
            self.flush_conn(idx)?;
        }
        Ok(appended)
    }

    /// Parks a transport error for [`Transport::next_delivery`] to surface
    /// (only the first error is kept; later ones add to the drop count
    /// through [`Transport::enqueue`]'s guard).
    fn defer(&mut self, e: EngineError) {
        if self.deferred.is_none() {
            self.deferred = Some(e);
        }
    }

    /// Takes the parked error, folding in how many messages were discarded
    /// while it waited.
    fn take_deferred(&mut self) -> Option<EngineError> {
        let e = self.deferred.take()?;
        let dropped = std::mem::take(&mut self.dropped_after_error);
        if dropped == 0 {
            return Some(e);
        }
        Some(match e {
            EngineError::Protocol { detail } => EngineError::Protocol {
                detail: format!(
                    "{detail} ({dropped} subsequent message(s) discarded while the error was pending)"
                ),
            },
            other => other,
        })
    }

    // ==================================================================
    // Reactor event handling
    // ==================================================================

    /// Accepts every pending connection on `slot`'s listener and starts
    /// their hello handshakes.
    fn accept_ready(&mut self, slot: usize) -> Result<()> {
        loop {
            match self.listeners[slot].accept() {
                Ok((stream, _)) => {
                    let fc = FrameConn::new(stream, wire::MAX_FRAME)
                        .map_err(|e| io_err(&format!("accept at node {slot}"), e))?;
                    self.alloc_conn(Conn {
                        fc,
                        kind: ConnKind::Handshake {
                            to: slot as u32,
                            buf: [0; HELLO_LEN],
                            have: 0,
                        },
                        armed_write: false,
                    })?;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(io_err(&format!("accept at node {slot}"), e)),
            }
        }
    }

    /// Advances a handshake connection: buffers hello bytes and, once all
    /// [`HELLO_LEN`] arrived, validates the announced sequence number
    /// against the logical stream's expectation and promotes the
    /// connection to [`ConnKind::In`].
    fn read_handshake(&mut self, idx: usize) -> Result<()> {
        // Phase 1: pull bytes (at most HELLO_LEN in total, so frames queued
        // behind the hello are never consumed here).
        let (to, from, announced) = {
            let Some(conn) = self.conns[idx].as_mut() else {
                return Ok(());
            };
            let ConnKind::Handshake { to, buf, have } = &mut conn.kind else {
                return Ok(());
            };
            loop {
                if *have == HELLO_LEN {
                    break;
                }
                match conn.fc.stream().read(&mut buf[*have..]) {
                    Ok(0) => {
                        // Closed before identifying itself: an aborted
                        // connect, not a protocol peer. Drop quietly.
                        self.close_conn(idx);
                        return Ok(());
                    }
                    Ok(n) => *have += n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => {
                        let to = *to;
                        self.close_conn(idx);
                        return Err(io_err(&format!("read hello at node {to}"), e));
                    }
                }
            }
            let from = u32::from_le_bytes(buf[..4].try_into().expect("4 bytes"));
            let announced = u64::from_le_bytes(buf[4..].try_into().expect("8 bytes"));
            (*to, from, announced)
        };
        // Phase 2: validate the announced next-frame sequence number.
        let pair = (to, from);
        let expected = self.recv_seq.get(&pair).copied().unwrap_or(0);
        if announced != expected {
            self.close_conn(idx);
            let detail = if announced > expected {
                format!(
                    "stream {from}→{to}: reconnect announces next frame #{announced} but #{expected} was expected — {} frame(s) were lost in a broken connection",
                    announced - expected
                )
            } else {
                format!(
                    "stream {from}→{to}: hello announces next frame #{announced} but #{expected} was already received — replayed or duplicated stream"
                )
            };
            return Err(EngineError::Protocol { detail });
        }
        // Promote; a stale predecessor for the pair (sender reconnected) is
        // dropped — its frames were all consumed or the hello check above
        // would have caught the gap.
        if let Some(conn) = self.conns[idx].as_mut() {
            conn.kind = ConnKind::In { to, from };
        }
        if let Some(old) = self.incoming.insert(pair, idx) {
            if old != idx {
                self.close_conn(old);
            }
        }
        // Frames may already sit behind the hello in the kernel buffer.
        self.read_established(idx)
    }

    /// Drains an established incoming stream: reassembled frames are
    /// sequence-checked and appended to the pair's inbox. Frame buffers are
    /// pool-backed; `next_delivery` returns each one after decoding.
    fn read_established(&mut self, idx: usize) -> Result<()> {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        let (read_res, pair) = {
            // Invariant: callers pass a live In connection.
            let conn = self.conns[idx].as_mut().expect("live incoming conn");
            let ConnKind::In { to, from } = conn.kind else {
                unreachable!("read_established on a non-In connection")
            };
            (
                conn.fc.read_frames(&mut scratch, &mut self.pool),
                (to, from),
            )
        };
        let mut seq_error = None;
        for (seq, frame) in scratch.drain(..) {
            if seq_error.is_some() {
                self.pool.put(frame);
                continue;
            }
            let expected = self.recv_seq.entry(pair).or_insert(0);
            if seq != *expected {
                self.pool.put(frame);
                seq_error = Some(EngineError::Protocol {
                    detail: format!(
                        "stream {}→{}: frame #{seq} arrived where #{expected} was expected — envelope/frame misalignment",
                        pair.1, pair.0
                    ),
                });
                continue;
            }
            *expected += 1;
            self.inbox.entry(pair).or_default().push_back(frame);
        }
        self.scratch = scratch;
        if let Some(e) = seq_error {
            self.close_conn(idx);
            return Err(e);
        }
        match read_res {
            Ok(true) => Ok(()),
            Ok(false) => {
                // Clean EOF at a frame boundary: the sender may reconnect;
                // the retained recv_seq will vet its hello.
                self.close_conn(idx);
                Ok(())
            }
            Err(e) => {
                let context = format!("read {}→{}", pair.1, pair.0);
                self.close_conn(idx);
                Err(io_err(&context, e))
            }
        }
    }

    /// Handles a readable event on an outgoing stream — the receiver never
    /// writes, so readable means the peer closed (tolerated: the next send
    /// reconnects and the hello check vouches for continuity) or is
    /// violating the protocol.
    fn read_out(&mut self, idx: usize) -> Result<()> {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        let read_res = {
            // Invariant: callers pass a live Out connection.
            let conn = self.conns[idx].as_mut().expect("live outgoing conn");
            conn.fc.read_frames(&mut scratch, &mut self.pool)
        };
        let unexpected = !scratch.is_empty();
        for (_, frame) in scratch.drain(..) {
            self.pool.put(frame);
        }
        self.scratch = scratch;
        if unexpected {
            self.close_conn(idx);
            return Err(EngineError::Protocol {
                detail: "received frames on a send-only stream".to_string(),
            });
        }
        match read_res {
            Ok(true) => Ok(()),
            Ok(false) | Err(_) => {
                self.close_conn(idx);
                Ok(())
            }
        }
    }

    /// Dispatches one readiness event.
    fn handle_event(&mut self, ev: Event) -> Result<()> {
        let slots = self.listeners.len();
        if (ev.token as usize) < slots {
            return self.accept_ready(ev.token as usize);
        }
        let idx = ev.token as usize - slots;
        if self.conns.get(idx).is_none_or(Option::is_none) {
            return Ok(()); // closed earlier in this batch
        }
        if ev.writable {
            // Invariant: checked non-None above.
            let conn = self.conns[idx].as_mut().expect("live conn");
            if conn.fc.wants_write() {
                self.flush_conn(idx)?;
            } else if !ev.readable {
                // Writable with nothing queued: drop the stale interest.
                self.set_write_interest(idx, false)?;
            }
        }
        if ev.readable {
            if self.conns.get(idx).is_none_or(Option::is_none) {
                return Ok(());
            }
            // Invariant: checked non-None above.
            match self.conns[idx].as_ref().expect("live conn").kind {
                ConnKind::Handshake { .. } => self.read_handshake(idx)?,
                ConnKind::In { .. } => self.read_established(idx)?,
                ConnKind::Out { .. } => self.read_out(idx)?,
            }
        }
        Ok(())
    }

    /// One reactor turn: flush every connection with queued bytes — this is
    /// the **coalesced flush point**, one vectored write per connection for
    /// everything buffered since the last poll — wait for readiness (up to
    /// [`POLL_SLICE`] when `block`), and service every event. Tracks
    /// consecutive empty blocking waits so a frame lost to a broken stream
    /// fails the run with a typed stall error instead of hanging it.
    fn poll_reactor(&mut self, block: bool) -> Result<()> {
        if self.deferred.is_some() {
            return Ok(()); // next_delivery surfaces it first
        }
        for idx in 0..self.conns.len() {
            let wants = self.conns[idx].as_ref().is_some_and(|c| c.fc.wants_write());
            if !wants {
                continue;
            }
            self.flush_conn(idx)?;
        }
        let timeout = if block {
            Some(POLL_SLICE)
        } else {
            Some(Duration::ZERO)
        };
        self.events.clear();
        let n = self
            .poller
            .wait(&mut self.events, timeout)
            .map_err(|e| io_err("poller wait", e))?;
        let events = std::mem::take(&mut self.events);
        let mut result = Ok(());
        for ev in &events {
            result = self.handle_event(*ev);
            if result.is_err() {
                break;
            }
        }
        self.events = events;
        result?;
        if n > 0 {
            self.stalled = Duration::ZERO;
        } else if block && !self.queue.is_empty() {
            self.stalled += POLL_SLICE;
            if self.stalled >= self.opts.stall_timeout {
                let head = self
                    .queue
                    .front()
                    .map(|e| format!("{}→{}", e.from.index(), e.to.index()))
                    .unwrap_or_default();
                return Err(EngineError::Protocol {
                    detail: format!(
                        "tcp transport stalled: no socket progress for {:?} while waiting for the frame of envelope {head} ({} envelopes outstanding)",
                        self.opts.stall_timeout,
                        self.queue.len()
                    ),
                });
            }
        }
        Ok(())
    }
}

impl Transport for TcpTransport {
    fn enqueue(&mut self, p: Pending) {
        if self.deferred.is_some() {
            // The transport already failed; the error surfaces first and
            // reports how many messages were discarded behind it.
            self.dropped_after_error += 1;
            return;
        }
        let Pending {
            from,
            to,
            target,
            reroute,
            msg,
            trace_id,
            trace_path,
        } = p;
        match self.enqueue_frame(from.index() as u32, to.index() as u32, &msg) {
            Ok(appended) => {
                // Exact stream cost: the codec frame plus the 8-byte
                // sequence header, as queued in place by enqueue_frame.
                self.bytes_sent[msg.kind_index()] += appended as u64;
                self.queue.push_back(Envelope {
                    from,
                    to,
                    target,
                    reroute,
                    trace_id,
                    trace_path,
                });
            }
            Err(e) => self.defer(e),
        }
    }

    fn next_delivery(&mut self) -> Result<Option<Pending>> {
        if let Some(e) = self.take_deferred() {
            return Err(e);
        }
        let Some(env) = self.queue.front() else {
            return Ok(None);
        };
        let pair = (env.to.index() as u32, env.from.index() as u32);
        let Some(frame) = self.inbox.get_mut(&pair).and_then(VecDeque::pop_front) else {
            // The head envelope's frame is still in flight; the driver
            // calls `poll(block = true)` and retries.
            return Ok(None);
        };
        // Invariant: peeked non-empty above.
        let env = self.queue.pop_front().expect("peeked above");
        let decoded = wire::decode_message(&frame, &self.catalog);
        // The frame buffer is pool-backed: recycle it for the next read,
        // whether or not the decode succeeded.
        self.pool.put(frame);
        let (msg, _) = decoded?;
        Ok(Some(Pending {
            from: env.from,
            to: env.to,
            target: env.target,
            reroute: env.reroute,
            msg,
            trace_id: env.trace_id,
            trace_path: env.trace_path,
        }))
    }

    fn poll(&mut self, block: bool) -> Result<()> {
        self.poll_reactor(block)
    }

    fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.deferred.is_none()
    }

    fn take_pipe(&mut self) -> Option<Box<FaultPipe>> {
        None
    }

    fn restore_pipe(&mut self, _pipe: Box<FaultPipe>) {
        unreachable!("the TCP transport never hands out a fault pipe");
    }

    fn has_pipe(&self) -> bool {
        false
    }

    fn take_wire_bytes(&mut self) -> Option<[u64; 11]> {
        Some(std::mem::take(&mut self.bytes_sent))
    }

    fn take_socket_stats(&mut self) -> Option<SocketStats> {
        let mut stats = std::mem::take(&mut self.stats);
        for conn in self.conns.iter_mut().flatten() {
            stats.merge_conn(&conn.fc.take_counters());
        }
        let (hits, misses) = self.pool.take_counters();
        stats.pool_hits += hits;
        stats.pool_misses += misses;
        Some(stats)
    }
}
