//! Micro-benchmarks of the overlay substrate, plus the E1 figure
//! (recursive vs iterative multisend).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use cq_overlay::{Id, IdSpace, Ring};

fn bench_route(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlay/route");
    for n in [256usize, 1024, 4096] {
        let ring = Ring::build(IdSpace::new(32), n, "bench-");
        let from = ring.alive_nodes().next().unwrap();
        let mut i = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                i = i.wrapping_add(0x9e3779b97f4a7c15);
                let target = ring.space().id(i);
                black_box(ring.route(from, target).unwrap().hops())
            })
        });
    }
    group.finish();
}

/// E1: one multisend to k targets, both designs.
fn bench_multisend(c: &mut Criterion) {
    let ring = Ring::build(IdSpace::new(32), 1024, "bench-");
    let from = ring.alive_nodes().next().unwrap();
    let mut group = c.benchmark_group("e01/multisend");
    for k in [16usize, 64, 256] {
        let ids: Vec<Id> = (0..k as u64)
            .map(|i| ring.space().id(i.wrapping_mul(0x2545F4914F6CDD1D)))
            .collect();
        group.bench_with_input(BenchmarkId::new("recursive", k), &ids, |b, ids| {
            b.iter(|| black_box(ring.multisend_recursive(from, ids).unwrap().total_hops))
        });
        group.bench_with_input(BenchmarkId::new("iterative", k), &ids, |b, ids| {
            b.iter(|| black_box(ring.multisend_iterative(from, ids).unwrap().total_hops))
        });
    }
    group.finish();
}

fn bench_ring_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlay/build");
    group.sample_size(10);
    for n in [512usize, 2048] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(Ring::build(IdSpace::new(32), n, "b-").len()))
        });
    }
    group.finish();
}

fn bench_stabilization(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlay/stabilize-round");
    group.sample_size(10);
    let base = Ring::build(IdSpace::new(32), 512, "s-");
    group.bench_function("512-nodes", |b| {
        b.iter_batched(
            || base.clone(),
            |mut ring| {
                ring.stabilize_all(1);
                black_box(ring.len())
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group! {
    name = benches;
    // short windows keep `cargo bench --workspace` minutes-scale;
    // trends matter more than microsecond precision here
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_secs(1))
        .measurement_time(std::time::Duration::from_secs(2));
    targets = bench_route, bench_multisend, bench_ring_build, bench_stabilization
}
criterion_main!(benches);
