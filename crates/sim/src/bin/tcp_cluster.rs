//! Runs one experiment over real TCP loopback sockets and checks the
//! delivered notification set and metrics against an in-memory simulator
//! run of the same seed.
//!
//! ```text
//! tcp_cluster [--alg A] [--nodes N] [--queries Q] [--tuples T] [--seed S]
//!             [--clients C]
//! ```
//!
//! Without `--clients`, the command stream is applied in-process and only
//! the engine's node-to-node traffic crosses sockets. With `--clients C`,
//! the commands additionally arrive over C concurrent client connections
//! into one server event loop (true multi-client mode), and the outcome is
//! checked against a sequential in-memory run of the same command list.
//!
//! Exits nonzero (with a description of the first divergence) if the socket
//! run and the simulator run disagree.

use cq_engine::Algorithm;
use cq_sim::cluster::{compare, run_multi_client, ClusterConfig};

fn parse<T: std::str::FromStr>(flag: &str, v: Option<&String>) -> T {
    v.and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} expects a value");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = ClusterConfig::default();
    let mut clients: Option<usize> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--alg" => {
                let name: String = parse("--alg", iter.next());
                cfg.algorithm = Algorithm::ALL
                    .into_iter()
                    .find(|a| a.to_string().eq_ignore_ascii_case(&name))
                    .unwrap_or_else(|| {
                        eprintln!("unknown algorithm {name} (expected SAI/DAI-Q/DAI-T/DAI-V)");
                        std::process::exit(2);
                    });
            }
            "--nodes" => cfg.nodes = parse("--nodes", iter.next()),
            "--queries" => cfg.queries = parse("--queries", iter.next()),
            "--tuples" => cfg.tuples = parse("--tuples", iter.next()),
            "--seed" => cfg.seed = parse("--seed", iter.next()),
            "--clients" => clients = Some(parse("--clients", iter.next())),
            other => {
                eprintln!("unknown flag {other}");
                eprintln!(
                    "usage: tcp_cluster [--alg A] [--nodes N] [--queries Q] \
                     [--tuples T] [--seed S] [--clients C]"
                );
                std::process::exit(2);
            }
        }
    }
    println!(
        "tcp_cluster: {} over {} nodes, {} queries, {} tuples, seed {}",
        cfg.algorithm, cfg.nodes, cfg.queries, cfg.tuples, cfg.seed
    );
    if let Some(clients) = clients {
        match run_multi_client(&cfg, clients) {
            Ok(report) => {
                println!(
                    "multi-client run agrees with the sequential baseline: \
                     {} commands over {} connections, {} wire bytes, \
                     {} backpressure events",
                    report.commands,
                    report.clients,
                    report.wire_bytes,
                    report.server_backpressure_events
                );
            }
            Err(divergence) => {
                eprintln!("MISMATCH: {divergence}");
                std::process::exit(1);
            }
        }
        return;
    }
    match compare(&cfg) {
        Ok(wire_bytes) => {
            println!("sim and tcp runs agree; tcp moved {wire_bytes} wire bytes");
        }
        Err(divergence) => {
            eprintln!("MISMATCH: {divergence}");
            std::process::exit(1);
        }
    }
}
