//! Deterministic consistent hashing of string keys onto the identifier ring.
//!
//! The paper uses SHA-1; any hash that spreads keys ~uniformly over the
//! identifier circle works for the protocols and the experiments (see
//! DESIGN.md, "Substitutions"). We use FNV-1a (64-bit), which is
//! deterministic across runs and platforms — a requirement for reproducible
//! simulations — and allocation-free.

use crate::id::{Id, IdSpace};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over a byte slice.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// An incremental FNV-1a hasher for keys built from several parts.
///
/// The paper forms keys by *string concatenation* (`Hash(R + A + v)`). Feeding
/// the parts through [`KeyHasher`] with a separator byte is equivalent but
/// avoids ambiguity between e.g. `("RA", "B")` and `("R", "AB")` and avoids
/// allocating the concatenated string.
#[derive(Clone, Debug)]
pub struct KeyHasher {
    state: u64,
}

impl KeyHasher {
    /// Starts a fresh hash computation.
    pub fn new() -> Self {
        KeyHasher { state: FNV_OFFSET }
    }

    /// Feeds one key component.
    pub fn write(&mut self, part: &str) -> &mut Self {
        for &b in part.as_bytes() {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
        // component separator — a byte that cannot occur in UTF-8 text
        self.state ^= 0xff;
        self.state = self.state.wrapping_mul(FNV_PRIME);
        self
    }

    /// Finishes and maps the digest into the given identifier space.
    pub fn finish(&self, space: IdSpace) -> Id {
        // Mix the upper bits down so that small spaces still see the whole
        // digest (plain masking would ignore FNV's high bits).
        let mut h = self.state;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        space.id(h)
    }

    /// Raw 64-bit digest (used where a full-width value is wanted, e.g.
    /// replica selection).
    pub fn finish_raw(&self) -> u64 {
        let mut h = self.state;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        h
    }
}

impl Default for KeyHasher {
    fn default() -> Self {
        Self::new()
    }
}

/// Hashes a single string key into the identifier space:
/// the paper's `Hash(k)`.
pub fn hash_key(space: IdSpace, key: &str) -> Id {
    let mut h = KeyHasher::new();
    h.write(key);
    h.finish(space)
}

/// Hashes the concatenation of key parts: the paper's `Hash(p1 + p2 + ...)`.
pub fn hash_parts(space: IdSpace, parts: &[&str]) -> Id {
    let mut h = KeyHasher::new();
    for p in parts {
        h.write(p);
    }
    h.finish(space)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let s = IdSpace::new(32);
        assert_eq!(hash_key(s, "R.B"), hash_key(s, "R.B"));
        assert_eq!(
            hash_parts(s, &["R", "B", "7"]),
            hash_parts(s, &["R", "B", "7"])
        );
    }

    #[test]
    fn separator_prevents_ambiguity() {
        let s = IdSpace::new(32);
        assert_ne!(hash_parts(s, &["RA", "B"]), hash_parts(s, &["R", "AB"]));
        assert_ne!(hash_parts(s, &["R", ""]), hash_parts(s, &["R"]));
    }

    #[test]
    fn stays_in_space() {
        let s = IdSpace::new(8);
        for i in 0..1000 {
            let id = hash_key(s, &format!("key-{i}"));
            assert!(id.0 < s.size());
        }
    }

    #[test]
    fn spread_is_roughly_uniform() {
        // With 4096 keys in a 16-bit space, each of 16 equal buckets should
        // receive a share not wildly far from 256.
        let s = IdSpace::new(16);
        let mut buckets = [0usize; 16];
        for i in 0..4096 {
            let id = hash_key(s, &format!("tuple-{i}-value"));
            buckets[(id.0 >> 12) as usize] += 1;
        }
        for &b in &buckets {
            assert!(b > 128 && b < 512, "bucket count {b} far from uniform");
        }
    }

    #[test]
    fn incremental_matches_batch() {
        let s = IdSpace::new(32);
        let mut h = KeyHasher::new();
        h.write("Document").write("AuthorId").write("42");
        assert_eq!(h.finish(s), hash_parts(s, &["Document", "AuthorId", "42"]));
    }
}
