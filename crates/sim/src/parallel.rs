//! Parallel fan-out of independent simulation runs.
//!
//! Every [`RunConfig`] describes a self-contained simulated network with its
//! own seeded RNG, so distinct runs share no state and can execute on any
//! thread. [`run_many`] fans a batch of configs across a worker pool and
//! returns the results **in input order** — callers observe exactly the
//! sequential semantics, only faster. With `jobs = 1` (the default) no
//! threads are spawned at all.
//!
//! The worker count is a process-wide setting ([`set_jobs`]) so the
//! `experiments` binary can honour a `--jobs N` flag without threading the
//! value through every experiment module.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::harness::{run, RunConfig, RunResult};

/// Process-wide worker count; `1` means run sequentially on the caller.
static JOBS: AtomicUsize = AtomicUsize::new(1);

/// Sets the worker count used by [`run_many`]. `0` is treated as `1`.
pub fn set_jobs(n: usize) {
    JOBS.store(n.max(1), Ordering::Relaxed);
}

/// The current worker count.
pub fn jobs() -> usize {
    JOBS.load(Ordering::Relaxed)
}

/// Executes every config and returns the results in input order.
///
/// Runs on the calling thread when `jobs() == 1` or there is at most one
/// config; otherwise fans the batch across `min(jobs, len)` scoped threads
/// pulling work from a shared index. Result ordering — and each individual
/// result, since every run owns its seeded RNG — is identical either way.
pub fn run_many(cfgs: &[RunConfig]) -> Vec<RunResult> {
    let workers = jobs().min(cfgs.len());
    if workers <= 1 {
        return cfgs.iter().map(run).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<RunResult>>> = cfgs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= cfgs.len() {
                    break;
                }
                let result = run(&cfgs[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every index was claimed by exactly one worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_engine::Algorithm;

    fn cfg(seed: u64) -> RunConfig {
        let mut c = RunConfig::new(Algorithm::Sai);
        c.nodes = 32;
        c.queries = 5;
        c.tuples = 30;
        c.workload.seed = seed;
        c
    }

    #[test]
    fn results_keep_input_order_and_match_sequential() {
        let cfgs: Vec<RunConfig> = (0..4).map(cfg).collect();
        let sequential: Vec<RunResult> = cfgs.iter().map(run).collect();

        let before = jobs();
        set_jobs(3);
        let parallel = run_many(&cfgs);
        set_jobs(before);

        assert_eq!(parallel.len(), sequential.len());
        for (p, s) in parallel.iter().zip(&sequential) {
            assert_eq!(p.filtering, s.filtering);
            assert_eq!(p.storage, s.storage);
            assert_eq!(p.total_traffic, s.total_traffic);
            assert_eq!(p.notifications, s.notifications);
        }
    }

    #[test]
    fn zero_jobs_is_clamped_to_one() {
        let before = jobs();
        set_jobs(0);
        assert_eq!(jobs(), 1);
        set_jobs(before);
    }
}
