//! E12 — Figure "Effect in filtering load distribution of increasing the
//! frequency of incoming tuples" (Section 5.4).
//!
//! Sweeps the number of tuples streamed in the window and summarizes the
//! per-node filtering-load curve. Expected shape: total load grows with the
//! rate while the *distribution* stays graceful — "our algorithms manage to
//! distribute the query answering load gracefully among existing nodes".

use cq_engine::Algorithm;
use cq_workload::WorkloadConfig;

use super::Scale;
use crate::harness::RunConfig;
use crate::parallel::run_many;
use crate::report::{fnum, Report};
use crate::stats;

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let nodes = scale.pick(128, 1024);
    let queries = scale.pick(60, 5000);
    let rates: Vec<usize> = scale.pick(vec![100, 200, 400, 800], vec![500, 1000, 2000]);
    let mut report = Report::new(
        "E12",
        &format!("filtering distribution vs tuple rate (N={nodes}, Q={queries})"),
        &[
            "tuples",
            "SAI gini",
            "SAI max",
            "DAI-T gini",
            "DAI-T max",
            "DAI-V gini",
            "DAI-V max",
        ],
    );
    let algs = [Algorithm::Sai, Algorithm::DaiT, Algorithm::DaiV];
    let mut cfgs = Vec::new();
    for &t in &rates {
        for alg in algs {
            cfgs.push(RunConfig {
                algorithm: alg,
                nodes,
                queries,
                tuples: t,
                workload: WorkloadConfig {
                    domain: scale.pick(40, 400),
                    ..WorkloadConfig::default()
                },
                ..RunConfig::new(alg)
            });
        }
    }
    let mut results = run_many(&cfgs).into_iter();
    for &t in &rates {
        let mut row = vec![t.to_string()];
        for _ in algs {
            let r = results.next().expect("one result per config");
            row.push(fnum(stats::gini(&r.filtering)));
            row.push(fnum(stats::max(&r.filtering)));
        }
        report.row(row);
    }
    report.note("paper: load grows with the rate but stays distributed; DAI-V most concentrated");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_load_grows_with_rate() {
        let r = run(Scale::Quick);
        let rows: Vec<Vec<f64>> = r
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').skip(1).map(|c| c.parse().unwrap()).collect())
            .collect();
        // SAI max at highest rate > at lowest rate.
        assert!(rows.last().unwrap()[1] > rows[0][1]);
    }
}
