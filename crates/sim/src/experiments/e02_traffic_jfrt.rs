//! E2 — Figure "Traffic cost and JFRT effect" (Section 5.2.1).
//!
//! Measures the overlay hops consumed per inserted tuple, isolating the
//! *reindex* category the Join Fingers Routing Table acts on (total traffic
//! additionally contains tuple indexing and notification delivery, which the
//! JFRT does not touch). Expected shape: with the JFRT warm, every repeated
//! reindex target costs one hop instead of O(log N), cutting reindex hops by
//! roughly the log-factor; DAI-T sends the fewest reindex messages (each
//! rewritten query at most once).

use cq_engine::{Algorithm, TrafficKind};
use cq_workload::WorkloadConfig;

use super::Scale;
use crate::harness::RunConfig;
use crate::parallel::run_many;
use crate::report::{fnum, Report};

/// Runs the experiment.
pub fn run(scale: Scale) -> Report {
    let nodes = scale.pick(128, 1024);
    let queries = scale.pick(60, 5000);
    let tuples = scale.pick(250, 800);
    let mut report = Report::new(
        "E2",
        &format!("reindex hops per tuple, JFRT on/off (N={nodes}, Q={queries}, T={tuples})"),
        &[
            "algorithm",
            "reindex/t no JFRT",
            "reindex/t JFRT",
            "saving %",
            "reindex msgs",
            "total hops/t",
        ],
    );
    let mut cfgs = Vec::new();
    for alg in Algorithm::ALL {
        for jfrt in [false, true] {
            cfgs.push(RunConfig {
                algorithm: alg,
                nodes,
                queries,
                tuples,
                use_jfrt: jfrt,
                workload: WorkloadConfig {
                    domain: scale.pick(40, 400),
                    ..WorkloadConfig::default()
                },
                ..RunConfig::new(alg)
            });
        }
    }
    let mut results = run_many(&cfgs).into_iter();
    for alg in Algorithm::ALL {
        let off = results.next().expect("one result per config");
        let on = results.next().expect("one result per config");
        let reindex = [
            off.traffic_of(TrafficKind::Reindex).hops as f64 / tuples as f64,
            on.traffic_of(TrafficKind::Reindex).hops as f64 / tuples as f64,
        ];
        let reindex_msgs = on.traffic_of(TrafficKind::Reindex).messages;
        let total = on.hops_per_tuple();
        let saving = if reindex[0] > 0.0 {
            100.0 * (reindex[0] - reindex[1]) / reindex[0]
        } else {
            0.0
        };
        report.row(vec![
            alg.name().to_string(),
            fnum(reindex[0]),
            fnum(reindex[1]),
            fnum(saving),
            reindex_msgs.to_string(),
            fnum(total),
        ]);
    }
    report.note("JFRT turns repeated O(log N) reindex lookups into 1 hop");
    report.note("DAI-T reindexes each rewritten query once; totals are notification-dominated");
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jfrt_reduces_reindex_hops_for_every_algorithm() {
        let r = run(Scale::Quick);
        assert_eq!(r.len(), 4);
        for line in r.to_csv().lines().skip(1) {
            let cells: Vec<&str> = line.split(',').collect();
            let off: f64 = cells[1].parse().unwrap();
            let on: f64 = cells[2].parse().unwrap();
            assert!(on < off, "{line}: JFRT must cut reindex hops");
            let saving: f64 = cells[3].parse().unwrap();
            assert!(
                saving > 20.0,
                "{line}: saving should be substantial, got {saving}%"
            );
        }
    }
}
